from setuptools import setup

# setup.py kept for legacy editable installs in offline environments that
# lack the 'wheel' package required by PEP 660 editable builds.
setup()
