"""SCAN structural graph clustering on top of the counts.

The SCAN family (SCAN, pSCAN, SCAN-XP — the systems the paper cites as
its consumers) clusters a graph by edge structural similarity, whose
bottleneck is exactly the all-edge common neighbor counting this library
accelerates.

Run:  python examples/structural_clustering.py
"""

import numpy as np

from repro import count_common_neighbors, load_dataset
from repro.apps import scan_clustering, structural_similarity
from repro.graph.generators import planted_partition_graph


def main() -> None:
    size = 25
    graph = planted_partition_graph(
        num_communities=6, community_size=size, p_in=0.45, p_out=0.006, seed=3
    )
    counts = count_common_neighbors(graph)
    sims = structural_similarity(counts)
    print(f"planted-communities graph: {graph}")
    print(f"edge similarity: min={sims.min():.2f} mean={sims.mean():.2f} max={sims.max():.2f}")

    result = scan_clustering(counts, eps=0.35, mu=4)
    print(f"\nSCAN(eps=0.35, mu=4): {result.num_clusters} clusters, "
          f"{len(result.cores)} cores, {len(result.hubs)} hubs, "
          f"{len(result.outliers)} outliers")

    # How pure are the clusters vs the planted ground truth?
    truth = np.arange(graph.num_vertices) // size
    clustered = result.labels >= 0
    agree = 0
    for c in range(result.num_clusters):
        members = np.flatnonzero(result.labels == c)
        if len(members):
            agree += np.bincount(truth[members]).max()
    purity = agree / max(clustered.sum(), 1)
    print(f"cluster purity vs planted communities: {purity:.1%}")

    # The same pipeline on a realistic dataset stand-in.
    lj = load_dataset("lj", scale=0.2)
    lj_counts = count_common_neighbors(lj)
    lj_result = scan_clustering(lj_counts, eps=0.5, mu=3)
    print(f"\n{lj}")
    print(f"SCAN finds {lj_result.num_clusters} clusters, "
          f"{len(lj_result.hubs)} hubs, {len(lj_result.outliers)} outliers")


if __name__ == "__main__":
    main()
