"""Quickstart: count common neighbors for every edge of a graph.

Run:  python examples/quickstart.py
"""

from repro import count_common_neighbors, csr_from_pairs, load_dataset, verify_counts


def main() -> None:
    # --- 1. a tiny hand-made graph --------------------------------------
    graph = csr_from_pairs(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]
    )
    counts = count_common_neighbors(graph)
    print("tiny graph:", graph)
    print("  cnt[(0, 1)] =", counts[0, 1], "(vertices 2 and 3 are shared)")
    print("  cnt[(3, 4)] =", counts[3, 4], "(vertex 4 is a pendant)")
    print("  triangles  =", counts.triangle_count())

    # --- 2. a realistic scaled dataset ----------------------------------
    tw = load_dataset("tw", scale=0.25)  # twitter-like stand-in
    result = count_common_neighbors(tw)
    verify_counts(result, against="networkx")  # exactness check
    print(f"\n{tw}")
    print("  total triangles:", result.triangle_count())
    print("  hottest edges (u, v, common neighbors):")
    for u, v, c in result.top_edges(5):
        print(f"    ({u:5d}, {v:5d})  {c}")

    # --- 3. choosing a backend ------------------------------------------
    fast = count_common_neighbors(tw, backend="matmul")  # SciPy sparse
    paper = count_common_neighbors(tw, backend="bitmap")  # BMP structure
    assert (fast.counts == paper.counts).all()
    print("\nmatmul and bitmap backends agree on every edge ✓")


if __name__ == "__main__":
    main()
