"""Reproduce the paper's processor comparison on your own graph.

Runs the modeled CPU / KNL / GPU executions of MPS and BMP (the paper's
Figure 10 methodology) for every dataset stand-in, prints the league
table, and shows the `recommend_processor` helper that encodes the
paper's guidance.

Run:  python examples/processor_comparison.py
"""

from repro import load_dataset, recommend_processor, simulate
from repro.graph.datasets import dataset_names
from repro.graph.stats import skew_percentage

CONFIGS = [
    ("CPU-MPS", "MPS-AVX2", "cpu", {}),
    ("CPU-BMP", "BMP-RF", "cpu", {}),
    ("KNL-MPS", "MPS-AVX512", "knl", {}),
    ("KNL-BMP", "BMP-RF", "knl", {"threads": 64}),
    ("GPU-MPS", "MPS", "gpu", {}),
    ("GPU-BMP", "BMP-RF", "gpu", {}),
]


def main() -> None:
    header = f"{'dataset':8s} {'skew%':>6s} " + " ".join(f"{n:>9s}" for n, *_ in CONFIGS)
    print(header)
    print("-" * len(header))

    for name in dataset_names():
        graph = load_dataset(name, reordered=True)
        times = {}
        for label, algo, proc, extra in CONFIGS:
            times[label] = simulate(graph, algo, proc, **extra).seconds
        best = min(times, key=times.get)
        cells = " ".join(
            f"{times[label]*1e3:8.2f}{'*' if label == best else ' '}"
            for label, *_ in CONFIGS
        )
        skew = skew_percentage(load_dataset(name))
        print(f"{name:8s} {skew:6.1f} {cells}   <- best: {best}")

    print("\n(modeled milliseconds at reproduction scale; * marks the winner)")
    print("\npaper's guidance, as code:")
    for name in ("tw", "fr"):
        graph = load_dataset(name)
        print(f"  recommend_processor({name!r}) -> {recommend_processor(graph)!r}")


if __name__ == "__main__":
    main()
