"""Similarity queries over arbitrary vertex pairs + clustering metrics.

Beyond the all-edge operation, graph analytics asks for the common
neighbor count of arbitrary (possibly non-adjacent) pairs — friend
suggestion is link prediction over two-hop pairs — and for the clustering
coefficients that the all-edge counts give for free.

Run:  python examples/similarity_queries.py
"""

import numpy as np

from repro import count_common_neighbors, load_dataset
from repro.core import count_pairs
from repro.apps import (
    average_clustering,
    local_clustering_coefficient,
    transitivity,
    triangles_per_vertex,
)


def main() -> None:
    graph = load_dataset("lj", scale=0.3)
    print(f"graph: {graph}")

    counts = count_common_neighbors(graph)

    # ---- clustering metrics straight from the counts -------------------
    print(f"\ntransitivity        : {transitivity(counts):.4f}")
    print(f"average clustering  : {average_clustering(counts):.4f}")
    tri = triangles_per_vertex(counts)
    busiest = int(tri.argmax())
    print(f"most triangulated   : vertex {busiest} "
          f"({tri[busiest]} triangles, degree {graph.degree(busiest)})")

    # ---- link prediction: two-hop pairs ranked by shared neighbors -----
    # Candidate pairs: non-adjacent two-hop neighbors of a seed vertex.
    seed = busiest
    two_hop = set()
    for v in graph.neighbors(seed):
        two_hop.update(graph.neighbors(int(v)).tolist())
    two_hop.discard(seed)
    existing = set(graph.neighbors(seed).tolist())
    candidates = sorted(two_hop - existing)[:500]

    scores = count_pairs(graph, np.full(len(candidates), seed), candidates)
    order = np.argsort(scores)[::-1][:5]
    print(f"\nlink prediction for vertex {seed} (top two-hop candidates):")
    for i in order:
        print(f"  vertex {candidates[int(i)]:5d}: {scores[i]} shared neighbors")

    # Sanity: predicted links score higher than random non-neighbors.
    rng = np.random.default_rng(0)
    random_v = rng.integers(0, graph.num_vertices, 200)
    random_scores = count_pairs(graph, np.full(200, seed), random_v)
    print(f"\nbest candidate score : {scores.max()}")
    print(f"random pair average  : {random_scores.mean():.2f}")


if __name__ == "__main__":
    main()
