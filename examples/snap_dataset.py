"""Working with real SNAP-format data and the authors' binary layout.

The paper downloads its graphs from SNAP and WebGraph and preprocesses
them into a binary CSR (the released ppSCAN-style ``b_degree.bin`` +
``b_adj.bin`` pair).  This example writes a small SNAP-style text file,
loads it through the same pipeline a real download would use, exports the
authors' binary layout, and reloads it.

With a real dataset it is exactly:

    graph = read_edge_list("com-lj.ungraph.txt.gz")   # .gz handled
    save_paper_binary(graph, "lj_bin/")

Run:  python examples/snap_dataset.py
"""

import tempfile
from pathlib import Path

from repro import count_common_neighbors
from repro.graph.generators import chung_lu_graph
from repro.graph.io import (
    load_paper_binary,
    read_edge_list,
    save_paper_binary,
    write_edge_list,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_snap_"))

    # --- pretend this came from snap.stanford.edu -----------------------
    source = chung_lu_graph(3000, 15000, exponent=2.3, seed=21)
    snap_txt = workdir / "com-example.ungraph.txt"
    write_edge_list(source, snap_txt)
    print(f"wrote SNAP-style text: {snap_txt} "
          f"({snap_txt.stat().st_size/1024:.1f} KB)")

    # --- the loading pipeline -------------------------------------------
    graph = read_edge_list(snap_txt, num_vertices=source.num_vertices)
    assert graph == source
    print(f"loaded: {graph}")

    # --- export the authors' binary layout ------------------------------
    bin_dir = workdir / "bin"
    save_paper_binary(graph, bin_dir)
    for f in sorted(bin_dir.iterdir()):
        print(f"  {f.name}: {f.stat().st_size} bytes")
    reloaded = load_paper_binary(bin_dir)
    assert reloaded == graph
    print("binary round-trip exact ✓")

    # --- count on it ------------------------------------------------------
    counts = count_common_neighbors(reloaded)
    print(f"triangles: {counts.triangle_count()}")
    print(f"files left in {workdir} for inspection")


if __name__ == "__main__":
    main()
