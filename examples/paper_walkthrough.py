"""A guided tour of the reproduction, section by paper section.

Walks the paper's structure end to end — storage format, the two
algorithms, the parallel skeleton, the three processor models, and the
headline evaluation — printing what each stage produces.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import count_common_neighbors, load_dataset, reorder_graph, simulate
from repro.algorithms import run_bmp_reference, run_mps_reference
from repro.bench.figures import ascii_bars
from repro.graph.stats import skew_percentage
from repro.kernels import (
    intersect_block_merge,
    intersect_merge,
    intersect_pivot_skip,
)
from repro.parallel import run_parallel_skeleton
from repro.types import OpCounts


def section(title: str) -> None:
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main() -> None:
    # ------------------------------------------------------------- §2.1
    section("§2.1  Storage: CSR + degree-descending reorder")
    graph = load_dataset("tw", scale=0.3)
    print(f"twitter stand-in: {graph}")
    print(f"skewed intersections (ratio > 50): {skew_percentage(graph):.1f}%")
    rr = reorder_graph(graph)
    d = rr.graph.degrees
    print(f"after reorder: degrees non-increasing? {bool(np.all(np.diff(d) <= 0))}")

    # ------------------------------------------------------------- §3.1
    section("§3.1  MPS: merge, block-wise merge, pivot-skip")
    hub = rr.graph.neighbors(0)  # the highest-degree vertex
    leaf = rr.graph.neighbors(rr.graph.num_vertices // 2)
    print(f"intersecting a hub (d={len(hub)}) with a light vertex (d={len(leaf)}):")
    for name, fn in [("plain merge (M)", intersect_merge),
                     ("block-wise (VB)", intersect_block_merge),
                     ("pivot-skip (PS)", intersect_pivot_skip)]:
        ops = OpCounts()
        got = fn(hub, leaf, ops)
        print(f"  {name:16s} -> count={got}  instructions={ops.total_instructions}")
    print("PS does orders of magnitude less work on skewed pairs -> DSH.")

    # ------------------------------------------------------------- §3.2
    section("§3.2  BMP: dynamic bitmap index")
    ops = OpCounts()
    run_bmp_reference(rr.graph, counts=ops)
    m = rr.graph.num_directed_edges
    print(f"bitmap set ops  : {ops.bitmap_set} (= directed edges {m})")
    print(f"bitmap flip ops : {ops.bitmap_clear} (amortized O(1) per edge, §3.2)")
    print(f"bitmap probes   : {ops.bitmap_test} (= Σ min(d_u, d_v))")

    # --------------------------------------------------------------- §4
    section("§4    Parallel skeleton (Algorithm 3): decomposition invariance")
    ref = count_common_neighbors(rr.graph).counts
    for task_size, threads in [(8, 2), (64, 7), (1024, 16)]:
        stats = run_parallel_skeleton(
            rr.graph, "bmp", task_size=task_size, num_threads=threads
        )
        ok = np.array_equal(stats.counts, ref)
        print(f"  |T|={task_size:5d} threads={threads:2d}: exact={ok} "
              f"bitmap rebuilds={stats.bitmap_builds}")

    # --------------------------------------------------------------- §5
    section("§5    Evaluation: the three processors (modeled)")
    results = {
        "CPU-BMP": simulate(rr.graph, "BMP-RF", "cpu").seconds,
        "KNL-MPS": simulate(rr.graph, "MPS-AVX512", "knl").seconds,
        "GPU-BMP": simulate(rr.graph, "BMP-RF", "gpu").seconds,
        "GPU-MPS": simulate(rr.graph, "MPS", "gpu").seconds,
    }
    print(ascii_bars(list(results), [v * 1e3 for v in results.values()], unit="ms"))
    print("\npaper §5.4: on skewed graphs GPU-MPS is the loser (as above);")
    print("at the full benchmark scale GPU-BMP takes the lead, while at this")
    print("walkthrough's reduced scale fixed GPU overheads favor the CPU —")
    print("run `pytest benchmarks/bench_fig10_comparison.py` for the real table.")

    # sanity: MPS reference agrees with everything else
    assert np.array_equal(run_mps_reference(rr.graph), ref)
    print("\nwalkthrough complete — every path agrees bit-for-bit.")


if __name__ == "__main__":
    main()
