"""Online product recommendation from a co-purchase graph.

This is the paper's motivating application (§1): platforms maintain
co-purchasing graphs and use common neighbor counts "on the fly to
recommend products of potential interest".

Run:  python examples/product_recommendation.py
"""

from repro import count_common_neighbors
from repro.apps import recommend_products
from repro.graph.generators import co_purchase_graph


def main() -> None:
    # Synthesize a store: 5,000 shoppers over 800 products with power-law
    # popularity; products bought together become adjacent.
    graph = co_purchase_graph(
        num_users=5000, num_products=800, purchases_per_user=6, seed=42
    )
    print(f"co-purchase graph: {graph}")

    counts = count_common_neighbors(graph)

    # Pick a popular product and a mid-tail product.
    degrees = graph.degrees
    bestseller = int(degrees.argmax())
    midtail = int(abs(degrees - degrees[degrees > 0].mean()).argmin())

    for label, product in [("bestseller", bestseller), ("mid-tail", midtail)]:
        print(f"\ncustomers viewing {label} product #{product} "
              f"(bought with {graph.degree(product)} others) also like:")
        for rank, (other, score) in enumerate(
            recommend_products(counts, product, k=5), 1
        ):
            shared = counts[product, other]
            print(
                f"  {rank}. product #{other:4d}  similarity={score:.3f}  "
                f"({shared} products co-purchased with both)"
            )

    # Degree-normalized similarity avoids recommending mere bestsellers:
    by_count = [p for p, _ in recommend_products(counts, midtail, k=5, by="count")]
    by_sim = [p for p, _ in recommend_products(counts, midtail, k=5)]
    print("\nranking by raw counts:", by_count)
    print("ranking by similarity:", by_sim)


if __name__ == "__main__":
    main()
