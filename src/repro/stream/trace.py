"""Timestamped edge traces: the replayable input format for streaming.

A *trace* is a sequence of ``(t, u, v)`` events with non-decreasing
timestamps — the on-disk twin of what `repro stream` reads from stdin.
The text format is one event per line (``t u v``, whitespace separated,
``#`` comments and blank lines ignored), so traces pipe cleanly through
standard tools and stay diffable in benchmark fixtures.

Besides parse/write, this module generates deterministic synthetic
traces (seeded R-MAT-free random endpoints with exponential interarrival
gaps) and converts a frozen CSR graph into a replay trace — the bridge
the streaming bench uses to compare windowed counts against the static
batch kernels on the same edge set.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Iterator

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import csr_to_undirected_pairs
from repro.graph.csr import CSRGraph

__all__ = [
    "read_trace",
    "parse_trace",
    "write_trace",
    "load_trace",
    "generate_trace",
    "trace_from_graph",
]

Event = tuple[float, int, int]


def parse_trace(lines: Iterable[str], source: str = "<stream>") -> Iterator[Event]:
    """Yield ``(t, u, v)`` events from an iterable of text lines.

    Malformed lines raise :class:`GraphFormatError` naming the line — a
    truncated trace should fail the replay, not silently shorten it.
    Timestamp monotonicity is *not* enforced here; the consumer
    (:class:`~repro.stream.window.StreamCounter`) owns that invariant.
    """
    for lineno, line in enumerate(lines, start=1):
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        parts = text.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"{source}:{lineno}: expected 't u v', got {line.strip()!r}"
            )
        try:
            t = float(parts[0])
            u = int(parts[1])
            v = int(parts[2])
        except ValueError:
            raise GraphFormatError(
                f"{source}:{lineno}: non-numeric event {line.strip()!r}"
            ) from None
        if u < 0 or v < 0:
            raise GraphFormatError(
                f"{source}:{lineno}: negative vertex id in {line.strip()!r}"
            )
        yield t, u, v


def read_trace(path: str | os.PathLike) -> Iterator[Event]:
    """Stream events from a trace file (lazily; the file closes at end)."""
    with open(path, encoding="utf-8") as fh:
        yield from parse_trace(fh, source=str(path))


def load_trace(path: str | os.PathLike) -> np.ndarray:
    """Whole trace as a ``(n, 3)`` float64 array (columns ``t, u, v``)."""
    events = list(read_trace(path))
    if not events:
        return np.empty((0, 3), dtype=np.float64)
    return np.asarray(events, dtype=np.float64)


def write_trace(path_or_file: str | os.PathLike | IO[str], events) -> int:
    """Write events as trace lines; returns the number written.

    ``events`` is any iterable of ``(t, u, v)``.  Timestamps are written
    with ``repr``-level precision so write → read round-trips bit-exactly
    for the float64 timestamps the generators produce.
    """
    own = not hasattr(path_or_file, "write")
    fh = open(path_or_file, "w", encoding="utf-8") if own else path_or_file
    n = 0
    try:
        for t, u, v in events:
            fh.write(f"{float(t)!r} {int(u)} {int(v)}\n")
            n += 1
    finally:
        if own:
            fh.close()
    return n


def generate_trace(
    num_events: int,
    num_vertices: int,
    seed: int = 0,
    *,
    start: float = 0.0,
    mean_gap: float = 1.0,
    duplicate_fraction: float = 0.1,
) -> np.ndarray:
    """Deterministic synthetic trace as a ``(n, 3)`` array.

    Endpoints are skewed toward low ids (square of a uniform draw) so the
    trace produces triangles rather than a near-forest; ``mean_gap`` sets
    the exponential interarrival mean, so a window of ``k * mean_gap``
    holds ~k live edges in steady state.  A ``duplicate_fraction`` of
    events re-emit an earlier pair, exercising re-arrival refresh.
    """
    if num_vertices < 2:
        raise ValueError(f"need at least 2 vertices, got {num_vertices}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap, size=num_events)
    times = start + np.cumsum(gaps)
    u = (rng.random(num_events) ** 2 * num_vertices).astype(np.int64)
    v = (rng.random(num_events) ** 2 * num_vertices).astype(np.int64)
    # Repair self-loops deterministically instead of rejecting rows.
    loops = u == v
    v[loops] = (v[loops] + 1) % num_vertices
    # Re-emit earlier pairs for a slice of the tail.
    if num_events > 4 and duplicate_fraction > 0:
        dup = rng.random(num_events) < duplicate_fraction
        dup[: num_events // 4] = False  # need history to duplicate from
        idx = np.flatnonzero(dup)
        src_idx = (rng.random(len(idx)) * idx).astype(np.int64)
        u[idx] = u[src_idx]
        v[idx] = v[src_idx]
    out = np.empty((num_events, 3), dtype=np.float64)
    out[:, 0] = times
    out[:, 1] = u
    out[:, 2] = v
    return out


def trace_from_graph(
    graph: CSRGraph, seed: int = 0, *, mean_gap: float = 1.0, start: float = 0.0
) -> np.ndarray:
    """Replay trace visiting every undirected edge of ``graph`` once.

    Edge order is a seeded shuffle with exponential interarrival gaps.
    Feeding the result to a :class:`StreamCounter` whose window spans the
    whole trace must reproduce the static batch counts bit-exactly — the
    invariant the streaming bench and fuzz paths gate on.
    """
    u, v = csr_to_undirected_pairs(graph)
    m = len(u)
    rng = np.random.default_rng(seed)
    order = rng.permutation(m)
    times = start + np.cumsum(rng.exponential(mean_gap, size=m))
    out = np.empty((m, 3), dtype=np.float64)
    out[:, 0] = times
    out[:, 1] = u[order]
    out[:, 2] = v[order]
    return out
