"""Bounded-memory approximate counting via edge reservoir sampling.

:class:`SampledCounter` maintains a uniform reservoir of ``capacity``
edges over an unbounded stream (Tangwongsan et al. / TRIÈST-style
reservoir sampling) and an *incrementally maintained* count ``tau`` of
the triangles closed inside the reservoir.  Unbiased estimates follow
from inclusion probabilities alone:

* every unordered edge *pair* is in the reservoir with probability
  ``p2 = M(M-1) / (t(t-1))``, so a per-edge common neighbor count that
  observed ``c`` sampled wedges estimates ``c / p2``;
* every edge *triple* survives with ``p3 = M(M-1)(M-2) / (t(t-1)(t-2))``,
  so the global triangle estimate is ``tau / p3``;

where ``M`` is the reservoir size and ``t`` the number of distinct edges
seen.  While ``t <= capacity`` the sample is exhaustive and every
estimate is exact with zero-width error bars.

Error bars are plug-in concentration bounds in sampled units.  For the
*per-edge* count — a sum of wedge indicators that share no sampled
edge, hence nearly independent — a Chernoff form suffices: observed
mass ``n`` deviates from its mean by at most
``w = sqrt(3 n ln(2/delta)) + 3 ln(2/delta)`` with probability at least
``1 - delta`` (the additive term keeps a zero observation from
collapsing to ``[0, 0]``).  The *global* bar must account for positive
correlation: two triangles sharing an edge survive together with
probability ``p5 > p3^2``, so the variance of ``tau`` carries a
pair-covariance term.  The reservoir estimates it from itself —
``tau2 = sum_e c_e (c_e - 1)`` over sampled edges, the observed count
of ordered triangle pairs sharing an edge — giving the plug-in
variance ``var = tau (1 - p3) + tau2 (1 - p3^2 / p5)`` and the bar
``w = sqrt(2 var ln(2/delta)) + 3 ln(2/delta)``.  Either way the
reported interval is ``[(n - w) / p, (n + w) / p]`` clamped at zero.
The statistical test harness (``tests/stream/test_sampled_stats.py``)
checks the *empirical* failure rate of these bars against ``delta``
with a Chernoff tolerance over many seeds.

Memory is a fixed byte budget: the reservoir list, its index map, and
the sampled adjacency sets cost :data:`BYTES_PER_EDGE_SLOT` per edge
(measured on CPython 3.11), so ``capacity = budget // slot_bytes``.
"""

from __future__ import annotations

import math
import random

from repro.dynamic.delta import edge_key

__all__ = ["SampledCounter", "BYTES_PER_EDGE_SLOT", "DEFAULT_BYTE_BUDGET"]

#: Estimated resident bytes per sampled edge on CPython: one reservoir
#: list slot (8) + one index dict entry (~100 at typical load) + two
#: adjacency set entries (~2×60) + the shared key tuple (~70 amortized
#: across its three references).
BYTES_PER_EDGE_SLOT = 300

#: Default budget: 1 MiB ≈ 3 400 sampled edges.
DEFAULT_BYTE_BUDGET = 1 << 20

#: Floor on the reservoir so triple statistics exist at all.
MIN_CAPACITY = 8


class SampledCounter:
    """Approximate global + per-edge counts under a fixed byte budget.

    Parameters
    ----------
    byte_budget:
        Memory allowance for the reservoir state; converted to a
        capacity via :data:`BYTES_PER_EDGE_SLOT`.  Mutually exclusive
        with ``capacity``.
    capacity:
        Explicit reservoir size (overrides the byte conversion).
    seed:
        Seeds the replacement RNG; a fixed seed makes the whole
        estimator deterministic for a given stream.
    delta:
        Error-bar confidence parameter: bars hold with probability
        at least ``1 - delta`` each.
    """

    def __init__(
        self,
        byte_budget: int | None = None,
        *,
        capacity: int | None = None,
        seed: int = 0,
        delta: float = 0.05,
    ):
        if capacity is not None and byte_budget is not None:
            raise ValueError("pass byte_budget or capacity, not both")
        if capacity is None:
            budget = DEFAULT_BYTE_BUDGET if byte_budget is None else int(byte_budget)
            if budget <= 0:
                raise ValueError(f"byte_budget must be positive, got {budget}")
            capacity = budget // BYTES_PER_EDGE_SLOT
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.capacity = max(int(capacity), MIN_CAPACITY)
        self.byte_budget = byte_budget
        self.delta = float(delta)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        #: Reservoir as a list (O(1) uniform eviction) + position index.
        self._sample: list[tuple[int, int]] = []
        self._index: dict[tuple[int, int], int] = {}
        #: Adjacency restricted to sampled edges.
        self._adj: dict[int, set[int]] = {}
        #: Triangles currently closed inside the reservoir.
        self.tau = 0
        #: Distinct edges seen on the stream.
        self.stream_edges = 0
        self.duplicates = 0
        self.ignored = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def observe(self, u: int, v: int) -> bool:
        """Feed one stream edge; returns True if it entered the reservoir.

        Re-arrivals of an edge already *in the reservoir* are counted as
        duplicates and do not advance the stream clock (the estimator
        models a stream of distinct edges; the exact windowed counter is
        the tool for re-arrival/expiry semantics).
        """
        u = int(u)
        v = int(v)
        if u == v:
            self.ignored += 1
            return False
        key = edge_key(u, v)
        if key in self._index:
            self.duplicates += 1
            return False
        self.stream_edges += 1
        if len(self._sample) < self.capacity:
            self._insert(key)
            return True
        # Classic reservoir step: keep with probability M / t.
        if self._rng.random() * self.stream_edges < self.capacity:
            self._evict(self._rng.randrange(self.capacity))
            self._insert(key)
            return True
        return False

    def ingest(self, edges) -> int:
        """Feed an iterable of ``(u, v)`` pairs; returns edges admitted."""
        return sum(1 for u, v in edges if self.observe(u, v))

    def _insert(self, key: tuple[int, int]) -> None:
        u, v = key
        adj_u = self._adj.setdefault(u, set())
        adj_v = self._adj.setdefault(v, set())
        self.tau += len(adj_u & adj_v)
        adj_u.add(v)
        adj_v.add(u)
        self._index[key] = len(self._sample)
        self._sample.append(key)

    def _evict(self, pos: int) -> None:
        key = self._sample[pos]
        u, v = key
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self.tau -= len(self._adj[u] & self._adj[v])
        if not self._adj[u]:
            del self._adj[u]
        if not self._adj[v]:
            del self._adj[v]
        last = self._sample.pop()
        if pos < len(self._sample):
            self._sample[pos] = last
            self._index[last] = pos
        del self._index[key]
        self.evictions += 1

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def _inclusion(self, k: int) -> float:
        """P[k specific distinct edges are all in the reservoir]."""
        m = len(self._sample)
        t = self.stream_edges
        if t <= self.capacity:
            return 1.0
        p = 1.0
        for i in range(k):
            p *= (m - i) / (t - i)
        return p

    @staticmethod
    def _half_width(observed: int, delta: float) -> float:
        """Chernoff half-width in sampled units at confidence 1-δ.

        The additive ``3 ln(2/δ)`` term keeps the bound informative at
        ``observed == 0``: seeing nothing rules out means much above
        ``3 ln(2/δ)``, not everything.
        """
        ln_term = math.log(2.0 / delta)
        return math.sqrt(3.0 * observed * ln_term) + 3.0 * ln_term

    def _pair_correlation(self) -> int:
        """Ordered pairs of reservoir triangles sharing an edge.

        ``sum_e c_e (c_e - 1)`` over sampled edges: the observed second
        moment driving the pair-covariance term of ``Var(tau)``.  Each
        unordered pair of triangles sharing edge ``e`` is counted twice
        at ``e`` (and a pair shares at most one edge).
        """
        total = 0
        for u, v in self._sample:
            c = len(self._adj[u] & self._adj[v])
            total += c * (c - 1)
        return total

    def triangle_estimate(self) -> dict:
        """Global triangle estimate with its (ε, δ) interval."""
        p3 = self._inclusion(3)
        est = self.tau / p3 if p3 > 0 else 0.0
        if p3 == 1.0:
            w = 0.0
        else:
            # Triangles sharing an edge survive together with
            # probability p5 > p3^2, so the naive per-indicator Chernoff
            # bar undercovers exactly when triangles cluster.  Plug the
            # observed clustering (tau2) into the variance instead.
            p5 = self._inclusion(5)
            tau2 = self._pair_correlation()
            var = self.tau * (1.0 - p3)
            if p5 > 0:
                var += tau2 * max(0.0, 1.0 - p3 * p3 / p5)
            ln_term = math.log(2.0 / self.delta)
            w = math.sqrt(2.0 * var * ln_term) + 3.0 * ln_term
        return {
            "triangles": est,
            "tau": self.tau,
            "scale": 1.0 / p3 if p3 > 0 else 0.0,
            "epsilon": w / max(self.tau, 1),
            "delta": self.delta,
            "half_width": w,
            "low": max(0.0, (self.tau - w) / p3) if p3 > 0 else 0.0,
            "high": (self.tau + w) / p3 if p3 > 0 else 0.0,
            "exact": p3 == 1.0,
        }

    def edge_estimate(self, u: int, v: int) -> dict:
        """Common neighbor estimate for the pair ``(u, v)``.

        Counts wedges closed through sampled edges and rescales by the
        pair-inclusion probability; the query pair itself need not be
        sampled (both wedge legs must be).
        """
        u = int(u)
        v = int(v)
        adj_u = self._adj.get(u)
        adj_v = self._adj.get(v)
        observed = len(adj_u & adj_v) if adj_u and adj_v else 0
        p2 = self._inclusion(2)
        est = observed / p2 if p2 > 0 else 0.0
        w = 0.0 if p2 == 1.0 else self._half_width(observed, self.delta)
        return {
            "u": u,
            "v": v,
            "count": est,
            "observed": observed,
            "epsilon": w / max(observed, 1),
            "delta": self.delta,
            "low": max(0.0, (observed - w) / p2) if p2 > 0 else 0.0,
            "high": (observed + w) / p2 if p2 > 0 else 0.0,
            "exact": p2 == 1.0,
        }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def sampled_edges(self) -> int:
        return len(self._sample)

    def reservoir(self) -> list[tuple[int, int]]:
        """The sampled edge set, in reservoir order (a copy)."""
        return list(self._sample)

    def memory_bytes(self) -> int:
        """Estimated resident bytes of the reservoir state."""
        return len(self._sample) * BYTES_PER_EDGE_SLOT

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "sampled_edges": len(self._sample),
            "stream_edges": self.stream_edges,
            "duplicates": self.duplicates,
            "ignored": self.ignored,
            "evictions": self.evictions,
            "tau": self.tau,
            "memory_bytes": self.memory_bytes(),
            "seed": self.seed,
            "delta": self.delta,
        }

    def __repr__(self) -> str:
        return (
            f"SampledCounter(capacity={self.capacity}, "
            f"sampled={len(self._sample)}/{self.stream_edges}, "
            f"tau={self.tau})"
        )
