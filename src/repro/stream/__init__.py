"""Streaming and sliding-window counting (ROADMAP item 2).

Two estimators over unbounded timestamped edge streams:

* :class:`~repro.stream.window.StreamCounter` — **exact** counts within
  a sliding time window, a timestamped overlay on the dynamic engine
  with lazy expiry;
* :class:`~repro.stream.sampled.SampledCounter` — **approximate** global
  and per-edge counts under a fixed byte budget via edge reservoir
  sampling, with computed (ε, δ) error bars;

plus :mod:`~repro.stream.trace` for the replayable timestamped-edge
trace format the ``repro stream`` CLI and the streaming bench consume.
"""

from repro.stream.sampled import BYTES_PER_EDGE_SLOT, DEFAULT_BYTE_BUDGET, SampledCounter
from repro.stream.trace import (
    generate_trace,
    load_trace,
    parse_trace,
    read_trace,
    trace_from_graph,
    write_trace,
)
from repro.stream.window import DEFAULT_CAPACITY, StreamCounter

__all__ = [
    "StreamCounter",
    "SampledCounter",
    "DEFAULT_CAPACITY",
    "DEFAULT_BYTE_BUDGET",
    "BYTES_PER_EDGE_SLOT",
    "generate_trace",
    "load_trace",
    "parse_trace",
    "read_trace",
    "trace_from_graph",
    "write_trace",
]
