"""Exact sliding-window counting over an unbounded edge stream.

:class:`StreamCounter` keeps all-edge common neighbor counts exact for
the *live* edge set — every edge whose most recent arrival lies within
``window`` of the stream clock — by generalizing the dynamic overlay's
threshold compaction to timestamp expiry.  Each ingested batch reconciles
arrivals and expiries into one disjoint insert/delete set and applies it
through a :class:`~repro.core.dynamic.DynamicCounter`, so the ±1 delta
rule, the recount fallback past ``recount_fraction``, and the session's
selective artifact invalidation are all inherited rather than rebuilt.

Expiry is *lazy*: an append-only arrival log (a deque, monotone in time)
plus a latest-stamp map.  Re-arrival of a live edge refreshes its stamp;
the stale log entry is discarded when it surfaces because its timestamp
no longer matches.  Reconciliation is O(batch), not O(live set): an edge
that arrives and expires within one batch never touches the kernel.

The vertex universe grows on demand — an arrival naming an id beyond the
current capacity doubles the CSR (offset padding only; counts are
untouched because new vertices are isolated) and rebuilds the counter
from the snapshot, skipping the initial count.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.dynamic import DEFAULT_RECOUNT_FRACTION, DynamicCounter
from repro.core.result import EdgeCounts
from repro.dynamic.delta import edge_key
from repro.dynamic.overlay import DEFAULT_COMPACTION_THRESHOLD
from repro.errors import StreamOrderError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = ["StreamCounter", "DEFAULT_CAPACITY"]

#: Initial vertex capacity when the caller does not size the universe.
DEFAULT_CAPACITY = 16


def _empty_graph(num_vertices: int) -> CSRGraph:
    offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
    return CSRGraph(offsets, np.empty(0, dtype=VERTEX_DTYPE))


class StreamCounter:
    """Exact common neighbor counts within a sliding time window.

    Parameters
    ----------
    window:
        Window width in stream-time units; an edge whose latest arrival
        was at ``t`` stays live while ``now - t < window``.  ``math.inf``
        turns the counter into a plain grow-only stream accumulator.
    num_vertices:
        Initial vertex capacity (grown automatically on demand).
    algorithm, backend, num_workers, chunks_per_worker,
    compaction_threshold, recount_fraction:
        Forwarded to the underlying :class:`DynamicCounter` (and through
        it to the engine) for recounts and compaction policy.
    """

    def __init__(
        self,
        window: float,
        num_vertices: int = DEFAULT_CAPACITY,
        *,
        algorithm: str = "auto",
        backend: str = "auto",
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        compaction_threshold: float = DEFAULT_COMPACTION_THRESHOLD,
        recount_fraction: float = DEFAULT_RECOUNT_FRACTION,
    ):
        window = float(window)
        if not window > 0:
            raise ValueError(f"window must be positive, got {window:g}")
        self.window = window
        self._counter_kwargs = dict(
            algorithm=algorithm,
            backend=backend,
            num_workers=num_workers,
            chunks_per_worker=chunks_per_worker,
            compaction_threshold=compaction_threshold,
            recount_fraction=recount_fraction,
        )
        capacity = max(int(num_vertices), 2)
        graph = _empty_graph(capacity)
        self._counter = DynamicCounter(
            graph,
            initial=EdgeCounts(graph, np.empty(0, dtype=np.int64)),
            **self._counter_kwargs,
        )
        #: Arrival log, monotone in time.  Entries whose timestamp no
        #: longer matches the stamp map are stale (the edge re-arrived).
        self._log: deque[tuple[float, tuple[int, int]]] = deque()
        #: Latest arrival stamp per live edge key — its keys ARE the
        #: live edge set between batches.
        self._stamps: dict[tuple[int, int], float] = {}
        self.now = -math.inf
        self.arrivals = 0
        self.refreshes = 0
        self.expiries = 0
        self.ignored = 0
        self.batches = 0
        self.grows = 0

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def observe(self, t: float, u: int, v: int) -> None:
        """Ingest a single timestamped edge arrival."""
        self.ingest([(t, u, v)])

    def ingest(self, events) -> dict:
        """Ingest a batch of ``(t, u, v)`` events; returns batch stats.

        Timestamps must be non-decreasing across the whole stream
        (:class:`StreamOrderError` otherwise).  Within the batch,
        arrivals and expiries are reconciled into net-disjoint insert and
        delete sets, so the kernel sees each batch as one dynamic update
        regardless of how much churn the batch internally cancelled out.
        """
        inserted: set[tuple[int, int]] = set()
        deleted: set[tuple[int, int]] = set()
        stamps = self._stamps
        vmax = -1
        n = 0
        try:
            for t, u, v in events:
                t = float(t)
                u = int(u)
                v = int(v)
                if t < self.now:
                    raise StreamOrderError(t, self.now)
                if u < 0 or v < 0:
                    raise ValueError(f"negative vertex id in event ({u}, {v})")
                self.now = t
                n += 1
                if u == v:
                    self.ignored += 1
                    continue
                key = edge_key(u, v)
                if key in stamps:
                    # Live (or not yet lazily expired) edge re-arrived:
                    # refresh its stamp, no kernel work.
                    self.refreshes += 1
                else:
                    self.arrivals += 1
                    inserted.add(key)
                    vmax = max(vmax, key[1])
                stamps[key] = t
                self._log.append((t, key))
        finally:
            # Reconcile even when an event raised mid-batch, so the
            # kernel never trails the stamp map (the prefix is applied;
            # the offending event was rejected before mutating state).
            self._expire(inserted, deleted)
            self._reconcile(inserted, deleted, vmax)
            if n:
                self.batches += 1
        return {
            "events": n,
            "inserted": len(inserted),
            "deleted": len(deleted),
            "live_edges": len(stamps),
            "now": self.now,
        }

    def advance(self, t: float) -> dict:
        """Move the stream clock to ``t`` with no arrivals (expiry tick)."""
        t = float(t)
        if t < self.now:
            raise StreamOrderError(t, self.now)
        self.now = t
        deleted: set[tuple[int, int]] = set()
        self._expire(set(), deleted)
        self._reconcile(set(), deleted, -1)
        return {
            "events": 0,
            "inserted": 0,
            "deleted": len(deleted),
            "live_edges": len(self._stamps),
            "now": self.now,
        }

    def _expire(self, inserted: set, deleted: set) -> None:
        """Pop log entries at or past the horizon; flag real expiries.

        A popped entry whose timestamp no longer matches the stamp map is
        stale (the edge re-arrived later) and is simply discarded.
        """
        cutoff = self.now - self.window
        log = self._log
        stamps = self._stamps
        while log and log[0][0] <= cutoff:
            t, key = log.popleft()
            if stamps.get(key) == t:
                del stamps[key]
                self.expiries += 1
                if key in inserted:
                    inserted.discard(key)  # arrived and died within the batch
                else:
                    deleted.add(key)

    def _reconcile(self, inserted: set, deleted: set, vmax: int) -> None:
        if vmax >= self._counter.num_vertices:
            self._grow(vmax + 1)
        if inserted or deleted:
            self._counter.apply(
                insertions=sorted(inserted) or None,
                deletions=sorted(deleted) or None,
            )

    def _grow(self, needed: int) -> None:
        """Double the vertex capacity until ``needed`` ids fit.

        Growth pads the snapshot CSR's offsets (appended vertices are
        isolated, so ``dst``, and therefore the per-edge counts array,
        are unchanged) and rebuilds the counter from the snapshot with
        ``initial=`` so no recount runs.
        """
        capacity = self._counter.num_vertices
        while capacity < needed:
            capacity *= 2
        snap = self._counter.snapshot()
        g = snap.graph
        pad = np.full(capacity - g.num_vertices, g.offsets[-1], dtype=OFFSET_DTYPE)
        padded = CSRGraph(np.concatenate([g.offsets, pad]), g.dst)
        self._counter.close()
        self._counter = DynamicCounter(
            padded,
            initial=EdgeCounts(padded, snap.counts),
            **self._counter_kwargs,
        )
        self.grows += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def live_edges(self) -> int:
        """Number of edges currently inside the window."""
        return len(self._stamps)

    @property
    def num_vertices(self) -> int:
        """Current vertex capacity (grown on demand, never shrunk)."""
        return self._counter.num_vertices

    def is_live(self, u: int, v: int) -> bool:
        return edge_key(int(u), int(v)) in self._stamps

    def count(self, u: int, v: int) -> int:
        """``|N(u) ∩ N(v)|`` within the window for the live edge (u, v)."""
        return self._counter.count(u, v)

    def triangle_count(self) -> int:
        """Total triangles among the live edges."""
        return self._counter.triangle_count()

    def graph(self) -> CSRGraph:
        """Frozen CSR of the live edge set (compacts the overlay)."""
        return self._counter.materialize()

    def snapshot(self) -> EdgeCounts:
        """Counts aligned with a fresh CSR of the live edge set."""
        return self._counter.snapshot()

    def verify(self) -> bool:
        """Full-recount equality check on the live set (raises on drift)."""
        return self._counter.verify()

    def stats(self) -> dict:
        return {
            "now": self.now,
            "window": self.window,
            "live_edges": len(self._stamps),
            "num_vertices": self._counter.num_vertices,
            "arrivals": self.arrivals,
            "refreshes": self.refreshes,
            "expiries": self.expiries,
            "ignored": self.ignored,
            "batches": self.batches,
            "grows": self.grows,
            "updates_applied": self._counter.updates_applied,
            "recounts": self._counter.recounts,
            "compactions": self._counter.overlay.compactions,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._counter.close()

    def __enter__(self) -> "StreamCounter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StreamCounter(window={self.window:g}, now={self.now:g}, "
            f"live={len(self._stamps)}, |V|={self._counter.num_vertices})"
        )
