"""Result wrapper: per-edge common neighbor counts with convenient lookup."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["EdgeCounts", "graph_fingerprint"]


def graph_fingerprint(graph: CSRGraph) -> str:
    """SHA-256 over the CSR ``offsets`` and ``dst`` bytes."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(graph.offsets).tobytes())
    h.update(np.ascontiguousarray(graph.dst).tobytes())
    return h.hexdigest()


class EdgeCounts:
    """All-edge common neighbor counts, aligned with ``graph.dst``.

    ``counts[i]`` is ``cnt[e(u, v)]`` for edge offset ``i``; both
    directions of every edge carry the same value (symmetric assignment).
    """

    __slots__ = ("graph", "counts", "parallel_stats", "hybrid_report")

    def __init__(
        self,
        graph: CSRGraph,
        counts: np.ndarray,
        parallel_stats=None,
        hybrid_report=None,
    ):
        counts = np.asarray(counts)
        if counts.shape != (graph.num_directed_edges,):
            raise ValueError(
                f"counts must align with dst: {counts.shape} != "
                f"({graph.num_directed_edges},)"
            )
        self.graph = graph
        self.counts = counts
        #: :class:`repro.parallel.metrics.ParallelStats` when the counts
        #: came from the parallel backend with telemetry enabled.
        self.parallel_stats = parallel_stats
        #: :class:`repro.plan.HybridReport` (plan + per-bucket timings)
        #: when the counts came from the hybrid backend with telemetry
        #: enabled.
        self.hybrid_report = hybrid_report

    def __getitem__(self, edge: tuple[int, int]) -> int:
        """``counts[u, v]`` — count for the edge ``(u, v)``."""
        u, v = edge
        return int(self.counts[self.graph.edge_offset(u, v)])

    def __len__(self) -> int:
        return len(self.counts)

    def triangle_count(self) -> int:
        """Total triangles: the sum over all directed edges divided by 6."""
        return int(self.counts.sum()) // 6

    def per_vertex_sum(self) -> np.ndarray:
        """Sum of counts over each vertex's incident edges.

        Accumulates in int64 (``np.add.at``) — a float64 ``bincount``
        weight pass loses exactness once partial sums cross 2^53 on dense
        graphs.
        """
        src = self.graph.edge_sources()
        out = np.zeros(self.graph.num_vertices, dtype=np.int64)
        np.add.at(out, src, self.counts.astype(np.int64, copy=False))
        return out

    def top_edges(self, k: int = 10) -> list[tuple[int, int, int]]:
        """The ``k`` edges with the highest counts, as ``(u, v, cnt)``.

        Only ``u < v`` orientations are reported (each edge once).
        """
        src = self.graph.edge_sources()
        upper = np.flatnonzero(src < self.graph.dst)
        order = upper[np.argsort(self.counts[upper], kind="stable")[::-1][:k]]
        return [
            (int(src[i]), int(self.graph.dst[i]), int(self.counts[i]))
            for i in order
        ]

    def is_symmetric(self) -> bool:
        """Check ``cnt[e(u,v)] == cnt[e(v,u)]`` for all edges."""
        from repro.kernels.batch import reverse_edge_offsets

        rev = reverse_edge_offsets(self.graph)
        return bool(np.array_equal(self.counts, self.counts[rev]))

    def histogram(self) -> tuple[np.ndarray, np.ndarray]:
        """``(count_values, edge_frequencies)`` over undirected edges."""
        src = self.graph.edge_sources()
        upper = self.counts[src < self.graph.dst]
        values, freq = np.unique(upper, return_counts=True)
        return values.astype(np.int64), freq.astype(np.int64)

    def save(self, path) -> None:
        """Persist counts plus a graph fingerprint to ``.npz``.

        The fingerprint covers the sizes *and* a content hash of the CSR
        arrays, so counts cannot be loaded against a same-sized but
        different graph.
        """
        np.savez_compressed(
            path,
            counts=self.counts,
            num_vertices=self.graph.num_vertices,
            num_directed_edges=self.graph.num_directed_edges,
            graph_sha256=graph_fingerprint(self.graph),
        )

    @classmethod
    def load(cls, graph: CSRGraph, path) -> "EdgeCounts":
        """Load counts saved by :meth:`save`, checking the fingerprint.

        Files written before the content hash existed (no ``graph_sha256``
        entry) fall back to the size-only check.
        """
        with np.load(path) as data:
            if int(data["num_vertices"]) != graph.num_vertices or int(
                data["num_directed_edges"]
            ) != graph.num_directed_edges:
                raise ValueError(f"{path} was saved for a different graph")
            if "graph_sha256" in data and str(
                data["graph_sha256"]
            ) != graph_fingerprint(graph):
                raise ValueError(
                    f"{path} was saved for a different graph "
                    f"(same sizes, different CSR content)"
                )
            return cls(graph, data["counts"])

    def __repr__(self) -> str:
        return (
            f"EdgeCounts(|E|={self.graph.num_edges}, "
            f"triangles={self.triangle_count()})"
        )
