"""Core public API: counting, results, verification."""

from repro.core.api import (
    CommonNeighborCounter,
    count_common_neighbors,
    count_pairs,
    recommend_processor,
)
from repro.core.dynamic import DynamicCounter
from repro.core.result import EdgeCounts
from repro.core.verify import verify_counts, brute_force_counts

__all__ = [
    "CommonNeighborCounter",
    "count_common_neighbors",
    "count_pairs",
    "recommend_processor",
    "DynamicCounter",
    "EdgeCounts",
    "verify_counts",
    "brute_force_counts",
]
