"""Public counting API.

``count_common_neighbors(graph)`` is the one-call entry point: it computes
the exact all-edge common neighbor counts with the fastest available
backend and returns an :class:`repro.core.result.EdgeCounts`.

:class:`CommonNeighborCounter` exposes the full configuration surface —
algorithm choice (M / MPS / BMP / BMP-RF), backend (any name registered in
the :class:`~repro.engine.registry.BackendRegistry`), and access to the
architecture simulator for modeled run times on the paper's processors.

Every call executes through a :class:`~repro.engine.session.GraphSession`:
a counter reused on the same graph object keeps its session warm, so
repeated counts skip fingerprinting, planning, shared-memory export, and
worker-pool startup.  Close the counter (context manager) to release the
session's pooled resources deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import EdgeCounts
from repro.engine import GraphSession
from repro.graph.csr import CSRGraph
from repro.graph.stats import skew_percentage

__all__ = [
    "count_common_neighbors",
    "count_pairs",
    "CommonNeighborCounter",
    "recommend_processor",
]

#: Processors the simulator models (paper §2); anything else is a typo,
#: not a request for the KNL default.
_SIM_PROCESSORS = ("cpu", "knl", "gpu")


def count_common_neighbors(
    graph: CSRGraph,
    algorithm: str = "auto",
    backend: str = "auto",
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
    collect_stats: bool = False,
) -> EdgeCounts:
    """Count ``|N(u) ∩ N(v)|`` for every edge of ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph in CSR form.
    algorithm:
        ``"auto"`` (default), or one of the registered algorithm names
        (``M``, ``MPS``, ``BMP``, ``BMP-RF``, ...).  All algorithms
        produce identical counts — the choice affects the *work model*
        used by :meth:`CommonNeighborCounter.simulate`, and BMP routes the
        computation through the degree-descending reorder.  Combining an
        explicit algorithm with an explicit backend is allowed only when
        the backend declares it executes that algorithm's structure (see
        :meth:`CommonNeighborCounter.count`); incompatible pairs raise
        :class:`~repro.errors.AlgorithmError`.
    backend:
        Execution backend for the exact counts — any name registered in
        the engine's :class:`~repro.engine.registry.BackendRegistry`:
        ``hybrid`` (cost-model planner splits edges across galloping /
        bitmap / matmul kernels), ``matmul`` (SciPy sparse), ``bitmap``
        (the paper-faithful structure), ``gallop`` (batched pivot-skip),
        ``parallel`` (shared-memory multiprocessing with work-weighted
        chunks), ``merge`` (reference), or ``auto`` (routes through the
        hybrid planner).
    num_workers / chunks_per_worker:
        Honored by every backend declaring the ``supports_num_workers``
        capability: ``parallel`` (pool size and over-decomposition — the
        paper's ``|T|`` trade-off) and ``hybrid`` (the planner's bitmap
        bucket runs work-weighted on the persistent pool).
    collect_stats:
        When true, execution telemetry is attached to the result —
        ``EdgeCounts.parallel_stats`` (per-worker chunks) for the
        parallel backend, ``EdgeCounts.hybrid_report`` (plan + per-bucket
        timings) for the hybrid backend.  Backends that declare no stats
        capability raise :class:`~repro.errors.AlgorithmError` instead of
        silently dropping the flag.

    For repeated counts over the same graph, keep a
    :class:`CommonNeighborCounter` (or a
    :class:`~repro.engine.session.GraphSession`) open instead — this
    one-shot form tears its session down on return.
    """
    with CommonNeighborCounter(
        algorithm=algorithm,
        backend=backend,
        num_workers=num_workers,
        chunks_per_worker=chunks_per_worker,
        collect_stats=collect_stats,
    ) as counter:
        return counter.count(graph)


class CommonNeighborCounter:
    """Configurable all-edge common neighbor counter.

    Holds one warm :class:`~repro.engine.session.GraphSession` per graph
    object: calling :meth:`count` repeatedly on the same graph reuses the
    session's memoized fingerprint, execution plan, shared-memory export,
    and worker pool.  Counting a *different* graph closes the old session
    and opens a fresh one.  Use as a context manager (or call
    :meth:`close`) to release pooled resources deterministically.
    """

    def __init__(
        self,
        algorithm: str = "auto",
        backend: str = "auto",
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        collect_stats: bool = False,
    ):
        self.algorithm = algorithm
        self.backend = backend
        self.num_workers = num_workers
        self.chunks_per_worker = chunks_per_worker
        self.collect_stats = collect_stats
        self._session: GraphSession | None = None

    # ------------------------------------------------------------------ #
    def session(self, graph: CSRGraph) -> GraphSession:
        """The counter's session for ``graph`` (opened/rotated on demand)."""
        if self._session is None or self._session.graph is not graph:
            if self._session is not None:
                self._session.close()
            self._session = GraphSession(graph)
        return self._session

    def count(self, graph: CSRGraph) -> EdgeCounts:
        """Exact counts with the configured algorithm/backend.

        Honored combinations: an explicit algorithm with ``backend="auto"``
        runs that algorithm's own counting path; an explicit backend with
        ``algorithm="auto"`` runs the backend.  When *both* are explicit
        the backend executes only if it declares the algorithm's structure
        in the registry — ``M``/``MPS`` (and variants) pair with ``merge``
        (MPS also with ``gallop``), ``BMP``/``BMP-RF`` pair with
        ``bitmap`` or ``parallel`` — and any other combination raises
        :class:`~repro.errors.AlgorithmError` rather than silently
        discarding the algorithm choice.
        """
        return self.session(graph).count(
            algorithm=self.algorithm,
            backend=self.backend,
            num_workers=self.num_workers,
            chunks_per_worker=self.chunks_per_worker,
            collect_stats=self.collect_stats,
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the warm session (worker pool, shared memory)."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def __enter__(self) -> "CommonNeighborCounter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def simulate(self, graph: CSRGraph, processor: str, **knobs):
        """Modeled run time on one of the paper's processors.

        ``processor`` must be ``"cpu"``, ``"knl"``, or ``"gpu"``
        (case-insensitive); anything else — including stray whitespace —
        raises :class:`~repro.errors.SimulationError` instead of silently
        simulating the wrong machine.  Delegates to
        :func:`repro.simarch.simulate`; see there for knobs.
        """
        from repro.errors import SimulationError
        from repro.simarch import simulate

        proc = processor.lower() if isinstance(processor, str) else processor
        if proc not in _SIM_PROCESSORS:
            raise SimulationError(
                f"unknown processor {processor!r}; choose from "
                f"{list(_SIM_PROCESSORS)}"
            )
        algorithm = self.algorithm
        if algorithm == "auto":
            algorithm = "BMP-RF" if proc in ("cpu", "gpu") else "MPS-AVX512"
        return simulate(graph, algorithm, proc, **knobs)


def count_pairs(graph: CSRGraph, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Common neighbor counts for arbitrary vertex *pairs* (not only edges).

    Similarity queries (paper §1) often ask about non-adjacent pairs.
    Pairs sharing a left endpoint are grouped so each group marks ``N(u)``
    in one boolean bitmap (the BMP structure) and answers all its queries
    with one vectorized gather over the concatenated right-side adjacency
    lists — no per-pair Python loop.  Pairs are given as parallel
    ``u``/``v`` arrays; returns an int64 array of counts.

    One-shot wrapper over :meth:`GraphSession.count_pairs`; for repeated
    query batches keep a session open to reuse its mark plane and degree
    vector.
    """
    with GraphSession(graph) as session:
        return session.count_pairs(u, v)


def recommend_processor(graph: CSRGraph, skew_threshold: float = 50.0) -> str:
    """The paper's §5.3 guidance, as a function.

    Degree-skewed graphs (high fraction of intersections with
    ``d_u/d_v > 50``, like web-it and twitter) run best as BMP on the
    GPU; near-uniform large graphs (friendster) as MPS on the KNL.
    """
    pct = skew_percentage(graph, skew_threshold)
    return "gpu" if pct >= 15.0 else "knl"
