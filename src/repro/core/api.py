"""Public counting API.

``count_common_neighbors(graph)`` is the one-call entry point: it computes
the exact all-edge common neighbor counts with the fastest available
backend and returns an :class:`repro.core.result.EdgeCounts`.

:class:`CommonNeighborCounter` exposes the full configuration surface —
algorithm choice (M / MPS / BMP / BMP-RF), backend (matmul / bitmap /
parallel / merge), and access to the architecture simulator for modeled
run times on the paper's processors.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import get_algorithm
from repro.core.result import EdgeCounts
from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.stats import skew_percentage
from repro.kernels.batch import (
    count_all_edges_bitmap,
    count_all_edges_matmul,
    count_all_edges_merge,
)
from repro.parallel.threadpool import count_all_edges_parallel
from repro.plan import count_all_edges_hybrid

__all__ = [
    "count_common_neighbors",
    "count_pairs",
    "CommonNeighborCounter",
    "recommend_processor",
]

_BACKENDS = {
    "matmul": count_all_edges_matmul,
    "bitmap": count_all_edges_bitmap,
    "merge": count_all_edges_merge,
    "parallel": count_all_edges_parallel,
    "hybrid": count_all_edges_hybrid,
}

#: Backends that execute each algorithm family's structure, keyed by the
#: registered :attr:`Algorithm.name`.  ``merge`` walks sorted adjacency
#: lists (the M/MPS family); ``bitmap`` and ``parallel`` both run the
#: per-vertex BMP mark-and-probe structure.  ``matmul`` is an algebraic
#: path with no per-edge kernel, so it honors no explicit algorithm.
_ALGORITHM_BACKENDS = {
    "M": frozenset({"merge"}),
    "MPS": frozenset({"merge"}),
    "BMP": frozenset({"bitmap", "parallel"}),
}


def count_common_neighbors(
    graph: CSRGraph,
    algorithm: str = "auto",
    backend: str = "auto",
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
    collect_stats: bool = False,
) -> EdgeCounts:
    """Count ``|N(u) ∩ N(v)|`` for every edge of ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph in CSR form.
    algorithm:
        ``"auto"`` (default), or one of the registered algorithm names
        (``M``, ``MPS``, ``BMP``, ``BMP-RF``, ...).  All algorithms
        produce identical counts — the choice affects the *work model*
        used by :meth:`CommonNeighborCounter.simulate`, and BMP routes the
        computation through the degree-descending reorder.  Combining an
        explicit algorithm with an explicit backend is allowed only when
        the backend executes that algorithm's structure (see
        :meth:`CommonNeighborCounter.count`); incompatible pairs raise
        :class:`~repro.errors.AlgorithmError`.
    backend:
        Execution backend for the exact counts: ``hybrid`` (cost-model
        planner splits edges across galloping / bitmap / matmul kernels),
        ``matmul`` (SciPy sparse), ``bitmap`` (the paper-faithful
        structure), ``parallel`` (shared-memory multiprocessing with
        work-weighted chunks), ``merge`` (reference), or ``auto``
        (routes through the hybrid planner).
    chunks_per_worker:
        Over-decomposition knob for the parallel backend (the paper's
        ``|T|`` trade-off).
    collect_stats:
        When true and the backend is ``parallel``, per-worker telemetry is
        attached to the result as ``EdgeCounts.parallel_stats``.
    """
    return CommonNeighborCounter(
        algorithm=algorithm,
        backend=backend,
        num_workers=num_workers,
        chunks_per_worker=chunks_per_worker,
        collect_stats=collect_stats,
    ).count(graph)


class CommonNeighborCounter:
    """Configurable all-edge common neighbor counter."""

    def __init__(
        self,
        algorithm: str = "auto",
        backend: str = "auto",
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        collect_stats: bool = False,
    ):
        self.algorithm = algorithm
        self.backend = backend
        self.num_workers = num_workers
        self.chunks_per_worker = chunks_per_worker
        self.collect_stats = collect_stats

    # ------------------------------------------------------------------ #
    def count(self, graph: CSRGraph) -> EdgeCounts:
        """Exact counts with the configured algorithm/backend.

        Honored combinations: an explicit algorithm with ``backend="auto"``
        runs that algorithm's own counting path; an explicit backend with
        ``algorithm="auto"`` runs the backend.  When *both* are explicit
        the backend executes only if it implements the algorithm's
        structure — ``M``/``MPS`` (and variants) pair with ``merge``,
        ``BMP``/``BMP-RF`` pair with ``bitmap`` or ``parallel`` — and any
        other combination raises :class:`AlgorithmError` rather than
        silently discarding the algorithm choice.
        """
        algorithm = self.algorithm
        if algorithm != "auto":
            algo = get_algorithm(algorithm)
            if self.backend == "auto":
                return EdgeCounts(graph, algo.count(graph))
            honored = _ALGORITHM_BACKENDS.get(algo.name, frozenset())
            if self.backend not in honored:
                raise AlgorithmError(
                    f"backend {self.backend!r} does not execute algorithm "
                    f"{algorithm!r}; honored backends for {algo.name}: "
                    f"{sorted(honored) or 'none'} (use backend='auto' to run "
                    f"the algorithm's own path)"
                )

        backend = self.backend
        if backend == "auto":
            # The planner prices every edge with the cost model and routes
            # each bucket to its cheapest kernel — "auto" means "let the
            # cost model decide", not "one fixed backend".
            backend = "hybrid"
        if backend not in _BACKENDS:
            raise AlgorithmError(
                f"unknown backend {backend!r}; choose from {sorted(_BACKENDS)}"
            )
        fn = _BACKENDS[backend]
        if backend == "parallel":
            if self.collect_stats:
                counts, stats = fn(
                    graph,
                    self.num_workers,
                    self.chunks_per_worker,
                    return_stats=True,
                )
                return EdgeCounts(graph, counts, parallel_stats=stats)
            counts = fn(graph, self.num_workers, self.chunks_per_worker)
        else:
            counts = fn(graph)
        return EdgeCounts(graph, counts)

    # ------------------------------------------------------------------ #
    def simulate(self, graph: CSRGraph, processor: str, **knobs):
        """Modeled run time on one of the paper's processors.

        Delegates to :func:`repro.simarch.simulate`; see there for knobs.
        """
        from repro.simarch import simulate

        algorithm = self.algorithm
        if algorithm == "auto":
            algorithm = (
                "BMP-RF" if processor.lower() in ("cpu", "gpu") else "MPS-AVX512"
            )
        return simulate(graph, algorithm, processor, **knobs)


def count_pairs(graph: CSRGraph, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Common neighbor counts for arbitrary vertex *pairs* (not only edges).

    Similarity queries (paper §1) often ask about non-adjacent pairs.
    Pairs sharing a left endpoint are grouped so each group marks ``N(u)``
    in one boolean bitmap (the BMP structure) and answers all its queries
    with vectorized gathers.  Pairs are given as parallel ``u``/``v``
    arrays; returns an int64 array of counts.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.shape != v.shape:
        raise ValueError("u and v must have the same length")
    n = graph.num_vertices
    if len(u) == 0:
        return np.empty(0, dtype=np.int64)
    if u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n:
        raise IndexError("vertex ids out of range")

    # Put the lower-degree endpoint on the probing (right) side.
    d = graph.degrees
    swap = d[u] < d[v]
    left = np.where(swap, v, u)
    right = np.where(swap, u, v)

    out = np.empty(len(u), dtype=np.int64)
    order = np.argsort(left, kind="stable")
    mark = np.zeros(n, dtype=bool)
    i = 0
    while i < len(order):
        j = i
        a = int(left[order[i]])
        while j < len(order) and left[order[j]] == a:
            j += 1
        nbrs = graph.neighbors(a)
        mark[nbrs] = True
        for k in order[i:j]:
            out[k] = int(np.count_nonzero(mark[graph.neighbors(int(right[k]))]))
        mark[nbrs] = False
        i = j
    return out


def recommend_processor(graph: CSRGraph, skew_threshold: float = 50.0) -> str:
    """The paper's §5.3 guidance, as a function.

    Degree-skewed graphs (high fraction of intersections with
    ``d_u/d_v > 50``, like web-it and twitter) run best as BMP on the
    GPU; near-uniform large graphs (friendster) as MPS on the KNL.
    """
    pct = skew_percentage(graph, skew_threshold)
    return "gpu" if pct >= 15.0 else "knl"
