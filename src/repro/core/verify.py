"""Verification of computed counts against independent references."""

from __future__ import annotations

import numpy as np

from repro.core.result import EdgeCounts
from repro.errors import VerificationError
from repro.graph.csr import CSRGraph

__all__ = ["brute_force_counts", "verify_counts", "sample_edge_offsets"]

#: Directed edge offsets spot-checked by the large-graph verification path.
DEFAULT_SAMPLE_SIZE = 512

#: Seed of the deterministic sampling RNG — fixed so a verification run is
#: reproducible (and so tests can predict which offsets get checked).
DEFAULT_SAMPLE_SEED = 0


def brute_force_counts(graph: CSRGraph) -> np.ndarray:
    """O(|E| · d_max) reference: Python-set intersection per edge."""
    neighbor_sets = [set(graph.neighbors(u).tolist()) for u in range(graph.num_vertices)]
    src = graph.edge_sources()
    counts = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for eo in range(graph.num_directed_edges):
        u = int(src[eo])
        v = int(graph.dst[eo])
        counts[eo] = len(neighbor_sets[u] & neighbor_sets[v])
    return counts


def sample_edge_offsets(
    graph: CSRGraph,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = DEFAULT_SAMPLE_SEED,
) -> np.ndarray:
    """The directed edge offsets the sampled verification pass checks.

    Deterministic for a given ``(graph, sample_size, seed)`` — exposed so
    tests can target the exact offsets that will be verified.
    """
    m = graph.num_directed_edges
    k = min(int(sample_size), m)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(m, size=k, replace=False))


def _verify_edge_sample(
    result: EdgeCounts, sample_size: int, seed: int
) -> None:
    """Check a seeded random sample of edges with Python-set intersections.

    The triangle identity ``Σcnt/6 == #triangles`` is a *sum* check —
    compensating per-edge errors (one edge over-counted, another
    under-counted) preserve it exactly.  Spot-checking individual edges
    against an independent set intersection closes that hole without
    paying the full brute-force pass.
    """
    graph = result.graph
    src = graph.edge_sources()
    for eo in sample_edge_offsets(graph, sample_size, seed).tolist():
        u = int(src[eo])
        v = int(graph.dst[eo])
        expected = len(
            set(graph.neighbors(u).tolist()) & set(graph.neighbors(v).tolist())
        )
        if int(result.counts[eo]) != expected:
            raise VerificationError(
                f"sampled count mismatch at edge offset {eo} = ({u}, {v}): "
                f"got {int(result.counts[eo])}, expected {expected}"
            )


def verify_counts(
    result: EdgeCounts,
    *,
    against: str = "auto",
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    sample_seed: int = DEFAULT_SAMPLE_SEED,
) -> None:
    """Raise :class:`VerificationError` unless the counts are correct.

    ``against``:

    * ``"brute"`` — per-edge Python set intersections (small graphs);
    * ``"networkx"`` — triangle-count identity ``Σcnt / 6 == #triangles``
      *plus* a seeded random sample of ``sample_size`` edges re-counted
      with set intersections (the sum identity alone is blind to
      compensating per-edge errors);
    * ``"auto"`` — brute force below 20k directed edges, networkx above.
    """
    graph = result.graph
    if not result.is_symmetric():
        raise VerificationError("counts are not symmetric across edge directions")

    if against == "auto":
        against = "brute" if graph.num_directed_edges <= 20_000 else "networkx"

    if against == "brute":
        expected = brute_force_counts(graph)
        if not np.array_equal(result.counts, expected):
            bad = int(np.flatnonzero(result.counts != expected)[0])
            raise VerificationError(
                f"count mismatch at edge offset {bad}: "
                f"got {result.counts[bad]}, expected {expected[bad]}"
            )
    elif against == "networkx":
        import networkx as nx

        triangles = sum(nx.triangles(graph.to_networkx()).values()) // 3
        if result.triangle_count() != triangles:
            raise VerificationError(
                f"triangle identity failed: Σcnt/6 = {result.triangle_count()}, "
                f"networkx says {triangles}"
            )
        _verify_edge_sample(result, sample_size, sample_seed)
    else:
        raise ValueError(f"unknown reference {against!r}")
