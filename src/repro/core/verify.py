"""Verification of computed counts against independent references."""

from __future__ import annotations

import numpy as np

from repro.core.result import EdgeCounts
from repro.errors import VerificationError
from repro.graph.csr import CSRGraph

__all__ = ["brute_force_counts", "verify_counts"]


def brute_force_counts(graph: CSRGraph) -> np.ndarray:
    """O(|E| · d_max) reference: Python-set intersection per edge."""
    neighbor_sets = [set(graph.neighbors(u).tolist()) for u in range(graph.num_vertices)]
    src = graph.edge_sources()
    counts = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for eo in range(graph.num_directed_edges):
        u = int(src[eo])
        v = int(graph.dst[eo])
        counts[eo] = len(neighbor_sets[u] & neighbor_sets[v])
    return counts


def verify_counts(result: EdgeCounts, *, against: str = "auto") -> None:
    """Raise :class:`VerificationError` unless the counts are correct.

    ``against``:

    * ``"brute"`` — per-edge Python set intersections (small graphs);
    * ``"networkx"`` — triangle-count identity ``Σcnt / 6 == #triangles``;
    * ``"auto"`` — brute force below 20k directed edges, networkx above.
    """
    graph = result.graph
    if not result.is_symmetric():
        raise VerificationError("counts are not symmetric across edge directions")

    if against == "auto":
        against = "brute" if graph.num_directed_edges <= 20_000 else "networkx"

    if against == "brute":
        expected = brute_force_counts(graph)
        if not np.array_equal(result.counts, expected):
            bad = int(np.flatnonzero(result.counts != expected)[0])
            raise VerificationError(
                f"count mismatch at edge offset {bad}: "
                f"got {result.counts[bad]}, expected {expected[bad]}"
            )
    elif against == "networkx":
        import networkx as nx

        triangles = sum(nx.triangles(graph.to_networkx()).values()) // 3
        if result.triangle_count() != triangles:
            raise VerificationError(
                f"triangle identity failed: Σcnt/6 = {result.triangle_count()}, "
                f"networkx says {triangles}"
            )
    else:
        raise ValueError(f"unknown reference {against!r}")
