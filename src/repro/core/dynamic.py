"""Dynamic counting facade: live all-edge counts under graph mutation.

:class:`DynamicCounter` owns a :class:`~repro.engine.session.GraphSession`
for the initial batch build and all recounts, then keeps the counts exact
under batched edge insertions and deletions through the incremental
kernel (:mod:`repro.dynamic.delta`) — no full recount per batch.  Batches
large enough that a recount is cheaper (``recount_fraction`` of the
current edge count) are instead applied structurally and recounted with
the batch backends; on large graphs the recount routes through the
shared-memory parallel backend (:mod:`repro.parallel.threadpool`).

The dynamic overlay drives the session's *selective* invalidation: when
the base CSR swaps (threshold compaction, a recount batch, a snapshot),
the applied edits since the previous swap are forwarded to
:meth:`GraphSession.apply_edits` — structure-keyed artifacts rebuild,
the degree vector is patched in place, size-keyed buffers survive.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import CommonNeighborCounter
from repro.core.result import EdgeCounts
from repro.dynamic.delta import DeltaKernel, UpdateResult, edge_key
from repro.dynamic.overlay import DEFAULT_COMPACTION_THRESHOLD, AdjacencyOverlay
from repro.engine import GraphSession
from repro.errors import EdgeNotFoundError, VerificationError
from repro.graph.csr import CSRGraph
from repro.types import OpCounts

__all__ = ["DynamicCounter"]

#: Batches larger than this fraction of the current |E| are applied as a
#: structural update followed by one batch recount instead of per-edge
#: deltas (a recount is vectorized; the delta path is per-edge Python).
DEFAULT_RECOUNT_FRACTION = 0.1

#: Graphs with at least this many undirected edges recount through the
#: shared-memory parallel backend when the backend choice is left "auto".
PARALLEL_RECOUNT_MIN_EDGES = 150_000


def _as_pairs(pairs) -> np.ndarray:
    """Normalize an edge batch into an ``(m, 2)`` int64 array."""
    if pairs is None:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edge batch must have shape (m, 2), got {arr.shape}")
    return arr


def _counts_dict(graph: CSRGraph, counts: np.ndarray) -> dict[tuple[int, int], int]:
    """Per-edge counts array (aligned with ``dst``) → canonical-key dict."""
    src = graph.edge_sources()
    mask = src < graph.dst
    return dict(
        zip(
            zip(src[mask].tolist(), graph.dst[mask].tolist()),
            np.asarray(counts)[mask].tolist(),
        )
    )


def _counts_array(graph: CSRGraph, counts: dict[tuple[int, int], int]) -> np.ndarray:
    """Canonical-key dict → counts array aligned with ``graph.dst``.

    CSR enumerates directed edges in strictly increasing ``(src, dst)``
    order, so sorting both orientations of the dict keys by that composite
    key reproduces the alignment without per-edge binary searches.
    """
    m = graph.num_directed_edges
    if 2 * len(counts) != m:
        raise ValueError(
            f"counts dict holds {len(counts)} edges but graph has {m // 2}"
        )
    out = np.empty(m, dtype=np.int64)
    if m == 0:
        return out
    k = len(counts)
    u = np.fromiter((key[0] for key in counts), dtype=np.int64, count=k)
    v = np.fromiter((key[1] for key in counts), dtype=np.int64, count=k)
    c = np.fromiter(counts.values(), dtype=np.int64, count=k)
    uu = np.concatenate([u, v])
    vv = np.concatenate([v, u])
    order = np.argsort(uu * graph.num_vertices + vv, kind="stable")
    out[:] = np.tile(c, 2)[order]
    return out


class DynamicCounter:
    """Live all-edge common neighbor counts under edge updates.

    Parameters
    ----------
    graph:
        Initial frozen CSR graph.
    algorithm, backend, num_workers, chunks_per_worker:
        Forwarded to :class:`CommonNeighborCounter` for the initial build
        and for batch recounts (see that class for the honored
        algorithm/backend combinations).
    compaction_threshold:
        Overlay delta budget as a fraction of the base adjacency volume;
        exceeded → the CSR is rebuilt (:class:`AdjacencyOverlay`).
    recount_fraction:
        Batches larger than this fraction of the current ``|E|`` recount
        instead of applying per-edge deltas.
    initial:
        Precomputed :class:`EdgeCounts` for ``graph`` (e.g. loaded via
        :meth:`EdgeCounts.load`) to skip the initial build.
    """

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: str = "auto",
        backend: str = "auto",
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        compaction_threshold: float = DEFAULT_COMPACTION_THRESHOLD,
        recount_fraction: float = DEFAULT_RECOUNT_FRACTION,
        initial: EdgeCounts | None = None,
    ):
        self.algorithm = algorithm
        self.backend = backend
        self.num_workers = num_workers
        self.chunks_per_worker = chunks_per_worker
        if backend != "auto":
            from repro.engine import default_registry
            from repro.errors import AlgorithmError

            registry = default_registry()
            spec = registry.get(backend)  # raises on unknown names
            if not spec.dynamic_compatible:
                raise AlgorithmError(
                    f"backend {backend!r} is not dynamic-compatible; choose "
                    f"from {registry.dynamic_backends()}"
                )
        self._session = GraphSession(graph)
        # Applied edits accumulated since the session last saw a base-CSR
        # swap; forwarded to apply_edits() at the next swap.
        self._pending_ins: list[tuple[int, int]] = []
        self._pending_dels: list[tuple[int, int]] = []
        self.recount_fraction = float(recount_fraction)
        self.overlay = AdjacencyOverlay(graph, compaction_threshold)
        if initial is not None:
            if initial.graph != graph:
                raise ValueError("initial counts were computed for a different graph")
            base = initial
        else:
            base = self._count_via_session()
        self._counts = _counts_dict(graph, base.counts)
        self._kernel = DeltaKernel(self.overlay, self._counts)
        self.total_ops = OpCounts()
        self.updates_applied = 0
        self.recounts = 0

    # ------------------------------------------------------------------ #
    # sizes / lookups
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.overlay.num_vertices

    @property
    def num_edges(self) -> int:
        return self.overlay.num_edges

    def count(self, u: int, v: int) -> int:
        """Current ``|N(u) ∩ N(v)|`` for the live edge ``(u, v)``."""
        try:
            return self._counts[edge_key(int(u), int(v))]
        except KeyError:
            raise EdgeNotFoundError(int(u), int(v)) from None

    def __getitem__(self, edge: tuple[int, int]) -> int:
        u, v = edge
        return self.count(u, v)

    def triangle_count(self) -> int:
        """Total triangles under the current adjacency."""
        return sum(self._counts.values()) // 3

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def apply(self, insertions=None, deletions=None) -> UpdateResult:
        """Apply one batch of edge insertions and deletions.

        ``insertions`` / ``deletions`` are ``(m, 2)`` arrays (or iterables
        of pairs).  Duplicate insertions and deletions of absent edges are
        counted as ``skipped`` no-ops.  Returns an :class:`UpdateResult`
        describing what happened; cumulative kernel accounting accrues on
        :attr:`total_ops`.
        """
        ins = _as_pairs(insertions)
        dels = _as_pairs(deletions)
        batch = len(ins) + len(dels)
        if batch == 0:
            return UpdateResult(mode="noop")
        if batch > self.recount_fraction * max(self.num_edges, 1):
            return self._apply_recount(ins, dels)

        ops = OpCounts()
        inserted = deleted = skipped = 0
        kernel = self._kernel
        for u, v in ins.tolist():
            if kernel.insert(u, v, ops):
                inserted += 1
                self._pending_ins.append((u, v))
            else:
                skipped += 1
        for u, v in dels.tolist():
            if kernel.delete(u, v, ops):
                deleted += 1
                self._pending_dels.append((u, v))
            else:
                skipped += 1
        compacted = self.overlay.maybe_compact()
        if compacted:
            self._sync_session()
        self.total_ops += ops
        self.updates_applied += inserted + deleted
        return UpdateResult(inserted, deleted, skipped, "incremental", ops, compacted)

    def _apply_recount(self, ins: np.ndarray, dels: np.ndarray) -> UpdateResult:
        """Large batch: mutate structure only, then one vectorized recount."""
        inserted = deleted = skipped = 0
        for u, v in ins.tolist():
            if self.overlay.insert_edge(u, v):
                inserted += 1
                self._pending_ins.append((u, v))
            else:
                skipped += 1
        for u, v in dels.tolist():
            if self.overlay.delete_edge(u, v):
                deleted += 1
                self._pending_dels.append((u, v))
            else:
                skipped += 1
        graph = self.overlay.compact()
        self._sync_session()
        self._counts = _counts_dict(graph, self._full_recount(graph).counts)
        self._kernel.counts = self._counts
        self.updates_applied += inserted + deleted
        self.recounts += 1
        return UpdateResult(inserted, deleted, skipped, "recount", OpCounts(), True)

    # ------------------------------------------------------------------ #
    # session plumbing
    # ------------------------------------------------------------------ #
    @property
    def session(self) -> GraphSession:
        """The counter's :class:`GraphSession` (warm artifacts, pools)."""
        return self._session

    def _sync_session(self) -> None:
        """Forward the applied-edit backlog after a base-CSR swap.

        Called whenever the overlay rebuilt its base (threshold
        compaction, recount batch, snapshot): the session selectively
        invalidates structure-keyed artifacts, patches degrees in place at
        the touched endpoints, and keeps size-keyed buffers warm.
        """
        base = self.overlay.base
        if base is self._session.graph:
            return
        self._session.apply_edits(
            _as_pairs(self._pending_ins or None),
            _as_pairs(self._pending_dels or None),
            new_graph=base,
        )
        self._pending_ins = []
        self._pending_dels = []

    def _count_via_session(self, graph: CSRGraph | None = None) -> EdgeCounts:
        if graph is not None and graph is not self._session.graph:
            # Defensive: recounts always sync first, so this only fires if
            # a caller hands in a foreign CSR.
            self._session.apply_edits(new_graph=graph)
        return self._session.count(
            algorithm=self.algorithm,
            backend=self.backend,
            num_workers=self.num_workers,
            chunks_per_worker=self.chunks_per_worker,
        )

    def _full_recount(self, graph: CSRGraph) -> EdgeCounts:
        if (
            self.backend == "auto"
            and self.algorithm == "auto"
            and graph.num_edges >= PARALLEL_RECOUNT_MIN_EDGES
        ):
            # Big graph, no explicit preference: use the session's
            # shared-memory worker pool rather than a single-process
            # batch pass.
            return self._session.count(
                backend="parallel",
                num_workers=self.num_workers,
                chunks_per_worker=self.chunks_per_worker,
            )
        return self._count_via_session(graph)

    # ------------------------------------------------------------------ #
    # snapshots / verification
    # ------------------------------------------------------------------ #
    def materialize(self) -> CSRGraph:
        """Compact the overlay, sync the session, return the live CSR.

        The serving layer's epoch hook: after an edit batch it needs a
        frozen CSR for the next read snapshot but not the per-edge counts
        array, so this skips :meth:`snapshot`'s ``O(E log E)`` counts
        realignment.  When no edits are outstanding the current base is
        returned as-is (no rebuild).
        """
        graph = self.overlay.compact()
        self._sync_session()
        return graph

    def snapshot(self) -> EdgeCounts:
        """Compact the overlay and return counts aligned with the fresh CSR."""
        graph = self.overlay.compact()
        self._sync_session()
        return EdgeCounts(graph, _counts_array(graph, self._counts))

    def verify(self) -> bool:
        """Full recount equality check (raises :class:`VerificationError`).

        The reference recount always uses the default batch backend, so it
        is independent of whichever engine built the incremental state.
        """
        snap = self.snapshot()
        expected = CommonNeighborCounter().count(snap.graph)
        if not np.array_equal(snap.counts, expected.counts):
            bad = int(np.count_nonzero(snap.counts != expected.counts))
            raise VerificationError(
                f"dynamic counts diverged from recount on {bad} of "
                f"{len(snap.counts)} edge offsets"
            )
        return True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the session's pooled resources."""
        self._session.close()

    def __enter__(self) -> "DynamicCounter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DynamicCounter(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"updates={self.updates_applied}, recounts={self.recounts})"
        )
