"""repro — reproduction of "Accelerating All-Edge Common Neighbor Counting
on Three Processors" (Che, Lai, Sun, Luo, Wang; ICPP 2019).

Quickstart::

    from repro import count_common_neighbors, load_dataset

    graph = load_dataset("tw")            # scaled twitter stand-in
    counts = count_common_neighbors(graph)
    print(counts[(0, graph.neighbors(0)[0])], counts.triangle_count())

Package map:

* :mod:`repro.graph` — CSR storage, generators, datasets, reordering;
* :mod:`repro.kernels` — instrumented set-intersection kernels (merge,
  pivot-skip, block-wise SIMD merge, bitmap, range filter) + fast paths;
* :mod:`repro.algorithms` — the paper's M / MPS / BMP algorithms;
* :mod:`repro.parallel` — tasks, FindSrc, scheduling, multiprocessing;
* :mod:`repro.simarch` — CPU / KNL / GPU architecture simulator;
* :mod:`repro.engine` — GraphSession artifact cache + backend registry;
* :mod:`repro.core` — public counting API and verification;
* :mod:`repro.apps` — SCAN clustering, similarity, recommendation;
* :mod:`repro.bench` — the per-table/figure experiment harness.
"""

from repro.version import __version__, PAPER
from repro.core import (
    CommonNeighborCounter,
    EdgeCounts,
    count_common_neighbors,
    recommend_processor,
    verify_counts,
)
from repro.engine import BackendRegistry, BackendSpec, GraphSession, default_registry
from repro.graph import CSRGraph, edges_to_csr, csr_from_pairs, reorder_graph
from repro.graph.datasets import load_dataset, dataset_names
from repro.algorithms import get_algorithm, algorithm_names
from repro.simarch import simulate, best_configuration

__all__ = [
    "__version__",
    "PAPER",
    "CommonNeighborCounter",
    "EdgeCounts",
    "count_common_neighbors",
    "recommend_processor",
    "verify_counts",
    "GraphSession",
    "BackendRegistry",
    "BackendSpec",
    "default_registry",
    "CSRGraph",
    "edges_to_csr",
    "csr_from_pairs",
    "reorder_graph",
    "load_dataset",
    "dataset_names",
    "get_algorithm",
    "algorithm_names",
    "simulate",
    "best_configuration",
]
