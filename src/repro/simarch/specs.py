"""Hardware specifications of the paper's three processors.

Numbers marked [datasheet] come from the paper's §5.1 environment
description or public datasheets of the named parts; numbers marked
[calibrated] are model constants tuned once so the modeled single-thread /
parallel ratios land near the paper's reported ratios (Table 4); the
calibration is documented in EXPERIMENTS.md and never changed per
experiment.

``scaled_specs`` divides every *capacity* by the dataset scale factor
(default 1000×, matching the stand-in datasets) while leaving rates
(frequency, bandwidth, latency, IPC) untouched — preserving all
capacity-to-working-set relations at reproduction scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CacheSpec",
    "MemorySpec",
    "CPUSpec",
    "KNLSpec",
    "GPUSpec",
    "PAPER_CPU",
    "PAPER_KNL",
    "PAPER_GPU",
    "DEFAULT_HW_SCALE",
    "scaled_specs",
]

#: Stand-in datasets are ~1000× smaller than the paper's (see
#: repro.graph.datasets); capacities scale down by the same factor.
DEFAULT_HW_SCALE = 1000.0


@dataclass(frozen=True)
class CacheSpec:
    """One cache level."""

    size_bytes: float
    line_bytes: int = 64
    latency_cycles: float = 4.0
    shared: bool = False  # shared across all cores (e.g. L3)?


@dataclass(frozen=True)
class MemorySpec:
    """One memory tier: peak bandwidth and random-access latency."""

    bandwidth_gbs: float
    latency_ns: float
    capacity_bytes: float


@dataclass(frozen=True)
class CPUSpec:
    """Dual-socket Xeon E5-2680 v4 server of the paper [datasheet]."""

    name: str = "CPU (2x Xeon E5-2680 v4)"
    kind: str = "cpu"
    cores: int = 28
    smt: int = 2
    freq_ghz: float = 2.4
    lane_width: int = 8  # AVX2: 8 x 32-bit lanes
    l1: CacheSpec = field(default_factory=lambda: CacheSpec(64 * 1024, latency_cycles=4))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(256 * 1024, latency_cycles=12))
    llc: CacheSpec = field(
        default_factory=lambda: CacheSpec(35 * 1024 * 1024, latency_cycles=40, shared=True)
    )
    dram: MemorySpec = field(
        default_factory=lambda: MemorySpec(76.8, 90.0, 512 * 1024**3)
    )
    # [calibrated] model constants
    scalar_ipc: float = 2.0  # out-of-order superscalar sustains ~2 kernel ops/cycle
    vector_ipc: float = 1.0  # one 256-bit op/cycle sustained
    branch_miss_cycles: float = 3.0  # avg penalty per data-dependent branch
    mlp: float = 10.0  # OoO window sustains ~10 outstanding misses
    smt_gain: float = 0.45  # marginal throughput of the 2nd hyperthread
    dequeue_overhead_us: float = 0.5  # OpenMP dynamic chunk dispatch
    # Adjacency-reuse curve: a list reused d times misses ~2/(2+beta*d)
    # of its streams to DRAM; the L3 keeps hot hub lists resident.
    # [calibrated]
    stream_reuse_beta: float = 0.2
    # Memory-queue contention growth once threads oversubscribe cores
    # (applied to scattered bitmap traffic only).
    contention_alpha: float = 0.5
    # Partial overlap of cache-hit latency on dependent bitmap probes
    # (deep OoO window overlaps ~6 concurrent L3 hits).
    cache_hit_hide: float = 6.0
    # The OoO window keeps ~10 bitmap gathers in flight too.
    bitmap_mlp: float = 10.0
    # DDR4 line fills on bitmap lines reach ~90% of peak: probe addresses
    # are sorted within each intersection, so fills arrive near-streaming.
    random_bw_efficiency: float = 0.9

    @property
    def max_threads(self) -> int:
        return self.cores * self.smt


@dataclass(frozen=True)
class KNLSpec:
    """Xeon Phi 7210 (KNL), quadrant mode [datasheet].

    No L3; 1MB L2 per 2-core tile; 16GB on-package MCDRAM at ~400 GB/s
    (flat or cache mode) over 96GB DDR4 at ~90 GB/s.
    """

    name: str = "KNL (Xeon Phi 7210)"
    kind: str = "knl"
    cores: int = 64
    smt: int = 4
    freq_ghz: float = 1.3
    lane_width: int = 16  # AVX-512: 16 x 32-bit lanes
    l1: CacheSpec = field(default_factory=lambda: CacheSpec(64 * 1024, latency_cycles=4))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(1024 * 1024, latency_cycles=17))
    llc: CacheSpec | None = None  # no L3
    # DDR4 latency is the *loaded* latency under 64-core contention —
    # the multi-channel MCDRAM keeps its queues short. [calibrated]
    dram: MemorySpec = field(
        default_factory=lambda: MemorySpec(90.0, 230.0, 96 * 1024**3)
    )
    mcdram: MemorySpec = field(
        default_factory=lambda: MemorySpec(400.0, 150.0, 16 * 1024**3)
    )
    # [calibrated] model constants
    scalar_ipc: float = 0.7  # 2-wide in-order-ish Silvermont-derived core
    vector_ipc: float = 2.0  # two VPUs per core
    branch_miss_cycles: float = 8.0  # in-order stalls, no OoO recovery
    mlp: float = 8.0  # outstanding misses incl. HW prefetchers
    smt_gain: float = 0.3
    dequeue_overhead_us: float = 1.0
    # Small tiled L2s capture far less adjacency reuse than a 35MB L3:
    # a much weaker reuse curve. [calibrated]
    stream_reuse_beta: float = 0.03
    # Strong queue contention with 4-way SMT random traffic. [calibrated]
    contention_alpha: float = 1.5
    # Partial overlap of cache-hit latency on dependent bitmap probes.
    cache_hit_hide: float = 2.0
    # In-order cores barely overlap dependent bitmap gathers; this is why
    # BMP is latency-crippled on the KNL (paper §5.4). [calibrated]
    bitmap_mlp: float = 2.0
    # MCDRAM delivers poor bandwidth on scattered 64B line fills —
    # back-solved from Table 4's KNL BMP numbers. [calibrated]
    random_bw_efficiency: float = 0.15
    cache_mode_efficiency: float = 0.8  # MCDRAM-as-cache movement overhead

    @property
    def max_threads(self) -> int:
        return self.cores * self.smt


@dataclass(frozen=True)
class GPUSpec:
    """NVIDIA TITAN Xp (Pascal) [datasheet]."""

    name: str = "GPU (TITAN Xp)"
    kind: str = "gpu"
    sms: int = 30
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    warp_size: int = 32
    freq_ghz: float = 1.48
    shared_mem_per_sm: float = 48 * 1024
    global_mem: MemorySpec = field(
        default_factory=lambda: MemorySpec(547.0, 350.0, 12 * 1024**3)
    )
    host_link_gbs: float = 12.0  # PCIe 3.0 x16 effective
    page_bytes: float = 64 * 1024  # Pascal unified-memory migration granule
    page_fault_us: float = 4.0  # per-page cost with Pascal's batched migration
    # [calibrated] model constants
    warp_issue_ipc: float = 1.0  # warp instructions per cycle per scheduler
    schedulers_per_sm: int = 4
    divergence_factor: float = 1.5  # warp-serialization of divergent PS lanes
    random_bw_efficiency: float = 0.25  # 32B scattered gathers vs peak GDDR
    line_bw_efficiency: float = 0.5  # 64B semi-random line fills vs peak
    atomic_overhead_cycles: float = 20.0
    min_warps_for_full_issue: int = 32  # warps/SM needed to saturate issue

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


def _scale_cache(c: CacheSpec | None, factor: float) -> CacheSpec | None:
    if c is None:
        return None
    return replace(c, size_bytes=c.size_bytes / factor)


def _scale_mem(m: MemorySpec, factor: float) -> MemorySpec:
    return replace(m, capacity_bytes=m.capacity_bytes / factor)


def scaled_specs(spec, factor: float = DEFAULT_HW_SCALE):
    """Scale every capacity by ``factor``; keep all rates unchanged."""
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    if isinstance(spec, CPUSpec):
        return replace(
            spec,
            l1=_scale_cache(spec.l1, factor),
            l2=_scale_cache(spec.l2, factor),
            llc=_scale_cache(spec.llc, factor),
            dram=_scale_mem(spec.dram, factor),
        )
    if isinstance(spec, KNLSpec):
        return replace(
            spec,
            l1=_scale_cache(spec.l1, factor),
            l2=_scale_cache(spec.l2, factor),
            dram=_scale_mem(spec.dram, factor),
            mcdram=_scale_mem(spec.mcdram, factor),
        )
    if isinstance(spec, GPUSpec):
        # page_bytes is the pager's hardware migration granule and
        # shared memory hosts the range filter, whose byte size is already
        # scale-invariant (|V|/range_scale with both scaled): neither
        # scales with capacity.
        return replace(spec, global_mem=_scale_mem(spec.global_mem, factor))
    raise TypeError(f"unknown spec type {type(spec).__name__}")


PAPER_CPU = CPUSpec()
PAPER_KNL = KNLSpec()
PAPER_GPU = GPUSpec()
