"""Address-trace generation for the trace-driven cache simulator.

The aggregate timing model uses an *analytic* cache model; this module
closes the loop by generating real byte-address traces from actual kernel
executions on graph samples and replaying them through
:class:`repro.simarch.cache.CacheSimulator`.  Tests and the cache
ablation bench compare the measured miss rates against the analytic
predictions the processor models rely on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.simarch.cache import CacheSimulator, analytic_miss_rate

__all__ = ["bitmap_probe_trace", "replay_trace", "validate_analytic_model"]


def bitmap_probe_trace(
    graph: CSRGraph, sample_edges: int = 200, seed: int = 0
) -> np.ndarray:
    """Byte addresses of BMP's bitmap-word probes for sampled edges.

    For each sampled ``u < v`` edge the probed words are
    ``(w >> 6) * 8`` for ``w ∈ N(min-degree side)`` — exactly the accesses
    BMP issues against the ``|V|``-bit bitmap.
    """
    src = graph.edge_sources()
    upper = np.flatnonzero(src < graph.dst)
    if len(upper) == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(upper, size=min(sample_edges, len(upper)), replace=False)
    addresses = []
    d = graph.degrees
    for eo in chosen:
        u, v = int(src[eo]), int(graph.dst[eo])
        probe_side = v if d[v] <= d[u] else u
        words = graph.neighbors(probe_side).astype(np.int64) >> 6
        addresses.append(words * 8)
    return np.concatenate(addresses)


def replay_trace(
    addresses: np.ndarray, cache_bytes: int, line_bytes: int = 64, ways: int = 8
) -> float:
    """Measured steady-state miss rate of a trace (warm-up = first half)."""
    sim = CacheSimulator(cache_bytes, line_bytes, ways)
    half = len(addresses) // 2
    sim.access_many(addresses[:half])
    sim.reset_stats()
    sim.access_many(addresses[half:])
    return sim.miss_rate


def validate_analytic_model(
    graph: CSRGraph, cache_bytes: int, sample_edges: int = 150, seed: int = 0
) -> tuple[float, float]:
    """``(measured, predicted)`` miss rates for BMP probes on ``graph``.

    The prediction is the analytic model the multicore timing uses, with
    the working set = the bitmap's bytes.
    """
    trace = bitmap_probe_trace(graph, sample_edges, seed)
    measured = replay_trace(trace, cache_bytes)
    predicted = analytic_miss_rate(graph.num_vertices / 8.0, cache_bytes)
    return measured, predicted
