"""Top-level simulation entry point.

``simulate(graph, "BMP", "gpu")`` prices one run of an algorithm on one of
the paper's three processors, with every knob the paper's evaluation
turns: threads and task size (CPU/KNL), MCDRAM mode (KNL), warps per
block / passes / co-processing (GPU), and the hardware scale factor that
keeps capacities proportional to the scaled-down datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import Algorithm, get_algorithm
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.kernels.rangefilter import DEFAULT_RANGE_SCALE
from repro.simarch.gpu import simulate_gpu
from repro.simarch.multicore import simulate_multicore
from repro.simarch.specs import (
    DEFAULT_HW_SCALE,
    CPUSpec,
    GPUSpec,
    KNLSpec,
    PAPER_CPU,
    PAPER_GPU,
    PAPER_KNL,
    scaled_specs,
)

__all__ = ["SimResult", "simulate", "best_configuration", "resolve_spec"]

#: Default fine-grained task size at reproduction scale: |E|/|T| stays in
#: the thousands, mirroring the paper's chunk-count regime.
SIM_TASK_SIZE = 32


@dataclass(frozen=True)
class SimResult:
    """One modeled run: seconds plus the full component breakdown."""

    processor: str
    algorithm: str
    seconds: float
    breakdown: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.algorithm} on {self.processor}: {self.seconds:.4f}s (modeled)"


def resolve_spec(processor, hw_scale: float = DEFAULT_HW_SCALE):
    """Accept ``"cpu"|"knl"|"gpu"`` or a spec instance; scale capacities."""
    if isinstance(processor, (CPUSpec, KNLSpec, GPUSpec)):
        return processor
    specs = {"cpu": PAPER_CPU, "knl": PAPER_KNL, "gpu": PAPER_GPU}
    key = str(processor).lower()
    if key not in specs:
        raise SimulationError(f"unknown processor {processor!r} (cpu|knl|gpu)")
    return scaled_specs(specs[key], hw_scale)


def _resolve_algorithm(algorithm, hw_scale: float) -> Algorithm:
    if isinstance(algorithm, Algorithm):
        return algorithm
    algo = get_algorithm(str(algorithm))
    # The paper's filter:bitmap size ratio (4096) is defined at paper
    # scale.  The behavior-preserving invariant is the per-range pass
    # probability 1-(1-s/|V|)^d: hub-built ranges saturate (pass ≈ 1,
    # RF neutral — paper's TW) while uniform builders stay sparse (RF
    # wins ~2x — paper's FR).  Our stand-ins are ~1000x smaller but also
    # ~4x denser in d/|V|, so the matched range size is 4·4096/scale.
    if getattr(algo, "range_filter", False) and algo.range_scale == DEFAULT_RANGE_SCALE:
        algo.range_scale = max(2, int(round(4 * DEFAULT_RANGE_SCALE / hw_scale)))
    return algo


def simulate(
    graph: CSRGraph,
    algorithm,
    processor,
    *,
    hw_scale: float = DEFAULT_HW_SCALE,
    threads: int | None = None,
    task_size: int = SIM_TASK_SIZE,
    mcdram_mode: str = "flat",
    warps_per_block: int = 4,
    passes: int | None = None,
    coprocessing: bool = True,
    static_schedule: bool = False,
) -> SimResult:
    """Model one run; see module docstring for the knobs.

    ``threads`` defaults to the processor's maximum (paper's best
    configurations).  The graph should be degree-descending reordered for
    BMP (``load_dataset(..., reordered=True)``).
    """
    spec = resolve_spec(processor, hw_scale)
    algo = _resolve_algorithm(algorithm, hw_scale)

    if isinstance(spec, GPUSpec):
        r = simulate_gpu(
            graph,
            algo,
            spec,
            warps_per_block=warps_per_block,
            passes=passes,
            coprocessing=coprocessing,
            host=resolve_spec("cpu", hw_scale),
        )
        return SimResult(
            processor=spec.name,
            algorithm=algo.describe(),
            seconds=r.seconds,
            breakdown={
                "kernel": r.kernel_seconds,
                "compute": r.compute_seconds,
                "latency": r.latency_seconds,
                "bandwidth": r.bandwidth_seconds,
                "paging": r.paging_seconds,
                "post": r.post_seconds,
            },
            config={
                "warps_per_block": warps_per_block,
                "passes": r.passes,
                "estimated_passes": r.estimated_passes,
                "thrashing": r.thrashing,
                "coprocessing": coprocessing,
                "occupancy": r.occupancy,
                **r.detail,
            },
        )

    if threads is None:
        threads = spec.max_threads
    r = simulate_multicore(
        graph,
        algo,
        spec,
        threads=threads,
        task_size=task_size,
        mcdram_mode=mcdram_mode,
        static_schedule=static_schedule,
    )
    return SimResult(
        processor=spec.name,
        algorithm=algo.describe(),
        seconds=r.seconds,
        breakdown={
            "compute": r.compute_seconds,
            "latency": r.latency_seconds,
            "bandwidth": r.bandwidth_seconds,
            "scheduling_overhead": r.scheduling_overhead_seconds,
            "reorder": r.reorder_seconds,
        },
        config={
            "threads": threads,
            "task_size": task_size,
            "mcdram_mode": mcdram_mode if spec.kind == "knl" else None,
            "tier": r.tier_label,
            **r.detail,
        },
    )


#: The per-processor best algorithm configurations the paper converges on
#: in §5.3 (Figure 10).
OPTIMIZED_CONFIGS = {
    "cpu": ("BMP-RF", {}),
    "knl": ("MPS-AVX512", {"mcdram_mode": "flat"}),
    "gpu": ("BMP-RF", {"coprocessing": True}),
}


def best_configuration(
    graph: CSRGraph, processor: str, hw_scale: float = DEFAULT_HW_SCALE
) -> SimResult:
    """Run the paper's optimized configuration for a processor."""
    name, extra = OPTIMIZED_CONFIGS[str(processor).lower()]
    return simulate(graph, name, processor, hw_scale=hw_scale, **extra)
