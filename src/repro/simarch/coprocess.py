"""CPU-GPU co-processing model (paper §4.2.1, Algorithm 4, Table 5).

The symmetric assignment needs the reverse offset ``e(v, u)`` of every
edge — found by binary search of ``u`` in ``N(v)``.  Without
co-processing, the CPU performs search + assignment *after* the GPU
kernels finish.  With co-processing, the CPU runs the searches *while*
the GPU counts (storing ``cnt[e(v,u)] ← e(u,v)`` for ``u > v``), leaving
only the final gather ``cnt[e] ← cnt[cnt[e]]`` as exposed post-processing
time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.simarch.specs import CPUSpec, PAPER_CPU, scaled_specs

__all__ = ["PostProcessing", "host_post_processing"]

#: [calibrated] host cycles per binary-search step / per gathered word.
SEARCH_CYCLES_PER_STEP = 6.0
GATHER_CYCLES_PER_EDGE = 12.0  # one random read + one random write


@dataclass(frozen=True)
class PostProcessing:
    """Exposed post-processing time on the host."""

    seconds: float
    search_seconds: float
    gather_seconds: float
    overlapped: bool


def host_post_processing(
    graph: CSRGraph,
    gpu_busy_seconds: float,
    coprocessing: bool,
    host: CPUSpec | None = None,
) -> PostProcessing:
    """Model the host-side symmetric assignment around the GPU kernels."""
    if host is None:
        host = scaled_specs(PAPER_CPU)
    freq = host.freq_ghz * 1e9
    m = graph.num_directed_edges
    if m == 0:
        return PostProcessing(0.0, 0.0, 0.0, coprocessing)
    avg_steps = float(np.log2(1.0 + graph.average_degree))

    search = m * avg_steps * SEARCH_CYCLES_PER_STEP / (freq * host.cores)
    gather = (m / 2.0) * GATHER_CYCLES_PER_EDGE / (freq * host.cores)

    if coprocessing:
        # Searches overlap the GPU kernels; only the remainder (if the GPU
        # finished first) plus the final gather is exposed.
        exposed = gather + max(0.0, search - gpu_busy_seconds)
    else:
        exposed = search + gather
    return PostProcessing(
        seconds=exposed,
        search_seconds=search,
        gather_seconds=gather,
        overlapped=coprocessing,
    )
