"""Cache models: a trace-driven set-associative LRU simulator and the
analytic hit-rate model the aggregate timing uses.

The trace-driven simulator exists to *validate* the analytic model (see
``tests/simarch/test_cache.py``: measured miss rates on random bitmap
probe traces match the analytic curve) and for micro-experiments; running
it over billions of accesses is infeasible, which is exactly why the
aggregate model is analytic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CacheSimulator", "analytic_miss_rate", "bitmap_working_set_miss_rate"]


class CacheSimulator:
    """Set-associative LRU cache over byte addresses.

    Ages are tracked per line with a global access counter — O(ways) per
    access, adequate for the sampled traces we feed it.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes < line_bytes * ways:
            raise ValueError("cache smaller than one set")
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.num_sets = int(size_bytes) // (self.line_bytes * self.ways)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        # tags[set, way] — -1 means invalid; ages for LRU.
        self.tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.ages = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        self.clock += 1
        row_tags = self.tags[set_idx]
        hit_ways = np.flatnonzero(row_tags == tag)
        if hit_ways.size:
            self.ages[set_idx, hit_ways[0]] = self.clock
            self.hits += 1
            return True
        self.misses += 1
        victim = int(np.argmin(self.ages[set_idx]))
        empty = np.flatnonzero(row_tags == -1)
        if empty.size:
            victim = int(empty[0])
        self.tags[set_idx, victim] = tag
        self.ages[set_idx, victim] = self.clock
        return False

    def access_many(self, addresses: np.ndarray) -> int:
        """Access a trace; returns the number of misses."""
        before = self.misses
        for a in np.asarray(addresses, dtype=np.int64):
            self.access(int(a))
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def analytic_miss_rate(
    working_set_bytes: float,
    cache_bytes: float,
    floor: float = 0.02,
) -> float:
    """Steady-state miss rate of uniform random accesses over a working set.

    Under LRU with uniform random line accesses, the resident fraction of
    a working set ``W`` in a cache of capacity ``C`` approaches
    ``min(1, C/W)``, so the miss rate is ``max(0, 1 − C/W)`` with a small
    compulsory/conflict floor.
    """
    if working_set_bytes <= 0:
        return 0.0
    if cache_bytes <= 0:
        return 1.0
    resident = min(1.0, cache_bytes / working_set_bytes)
    return float(min(1.0, max(floor, 1.0 - resident)))


def bitmap_working_set_miss_rate(
    bitmap_bytes: float,
    num_concurrent_bitmaps: float,
    cache_bytes: float,
    floor: float = 0.02,
) -> float:
    """Miss rate for BMP's bitmap probes in a shared cache.

    Every execution context (thread / thread block) owns a thread-local
    bitmap (paper §3.2); in a shared cache they all compete, so the
    working set is ``bitmap_bytes × contexts`` — the mechanism behind the
    paper's BMP slowdown on the KNL at 128/256 threads.
    """
    return analytic_miss_rate(
        bitmap_bytes * max(num_concurrent_bitmaps, 1.0), cache_bytes, floor
    )
