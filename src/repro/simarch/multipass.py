"""Multi-pass processing for unified memory (paper §4.2.2, Figure 8).

When the graph exceeds the GPU's global memory, processing all
destinations at once thrashes the on-demand pager.  The paper splits the
destination-vertex range into passes sized so each pass's working set fits
in what's left of global memory after the bitmap pool and a reserved
sequential-access region:

``passes = ceil(Mem_CSR / (Mem_global − Mem_reserved − Mem_BA))``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError
from repro.simarch.specs import GPUSpec

__all__ = ["PassPlan", "estimate_passes", "plan_passes", "page_fault_time_s"]

#: Paper §5.2.2: "the reserved memory size is 500MB" (scaled alongside).
DEFAULT_RESERVED_FRACTION_OF_GLOBAL = 500.0 / (12.0 * 1024.0)

#: Super-linear thrash exponent: when a pass's working set exceeds the
#: available memory, pages fault repeatedly; the paper's runs blow past a
#: one-hour limit (Fig. 8's missing points). [calibrated]
THRASH_EXPONENT = 3.0


@dataclass(frozen=True)
class PassPlan:
    """A multi-pass execution plan and its modeled paging cost."""

    passes: int
    estimated_passes: int
    available_bytes: float
    per_pass_bytes: float
    fault_pages: float
    thrashing: bool


def estimate_passes(
    csr_bytes: float, global_bytes: float, reserved_bytes: float, bitmap_bytes: float
) -> int:
    """The paper's pass-count estimator."""
    available = global_bytes - reserved_bytes - bitmap_bytes
    if available <= 0:
        raise CapacityError(
            "bitmap pool + reserved memory exceed GPU global memory"
        )
    return max(1, math.ceil(csr_bytes / available))


def plan_passes(
    spec: GPUSpec,
    csr_bytes: float,
    bitmap_pool_bytes: float,
    passes: int | None = None,
    reserved_bytes: float | None = None,
) -> PassPlan:
    """Build a pass plan; model page-fault volume including thrashing.

    With at least the estimated number of passes, every CSR byte faults
    in once (plus a per-pass re-touch of the offset array, folded into
    ``fault_pages``).  With fewer passes, the per-pass working set
    overflows available memory and pages fault repeatedly — super-linearly
    in the overflow ratio.
    """
    if reserved_bytes is None:
        reserved_bytes = DEFAULT_RESERVED_FRACTION_OF_GLOBAL * spec.global_mem.capacity_bytes
    est = estimate_passes(
        csr_bytes, spec.global_mem.capacity_bytes, reserved_bytes, bitmap_pool_bytes
    )
    if passes is None:
        passes = est
    if passes < 1:
        raise CapacityError("passes must be >= 1")

    available = spec.global_mem.capacity_bytes - reserved_bytes - bitmap_pool_bytes
    per_pass = csr_bytes / passes
    if per_pass <= available:
        # Clean: each byte migrates once; each extra pass re-touches ~10%
        # of the CSR (offset array + boundary neighbors).
        fault_bytes = csr_bytes * (1.0 + 0.1 * (passes - 1))
        thrashing = False
    else:
        overflow = per_pass / available
        fault_bytes = csr_bytes * (overflow**THRASH_EXPONENT) * passes
        thrashing = True
    return PassPlan(
        passes=passes,
        estimated_passes=est,
        available_bytes=available,
        per_pass_bytes=per_pass,
        fault_pages=fault_bytes / spec.page_bytes,
        thrashing=thrashing,
    )


def page_fault_time_s(spec: GPUSpec, plan: PassPlan) -> float:
    """Seconds spent servicing page faults + migrating over the host link."""
    fault_service = plan.fault_pages * spec.page_fault_us * 1e-6
    migration = plan.fault_pages * spec.page_bytes / (spec.host_link_gbs * 1e9)
    return fault_service + migration
