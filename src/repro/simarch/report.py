"""Human-readable reports for simulation results."""

from __future__ import annotations

from repro.simarch.engine import SimResult

__all__ = ["format_sim_result"]


def format_sim_result(result: SimResult) -> str:
    """Render a :class:`SimResult` as an aligned multi-line report."""
    lines = [
        f"algorithm : {result.algorithm}",
        f"processor : {result.processor}",
        f"modeled   : {result.seconds:.6f} s",
        "breakdown :",
    ]
    width = max((len(k) for k in result.breakdown), default=0)
    for key, value in result.breakdown.items():
        bar = ""
        if result.seconds > 0 and value >= 0:
            frac = min(value / result.seconds, 1.0)
            bar = " " + "#" * int(round(frac * 30))
        lines.append(f"  {key.ljust(width)} : {value:.6f} s{bar}")
    interesting = (
        "threads",
        "task_size",
        "mcdram_mode",
        "tier",
        "warps_per_block",
        "passes",
        "estimated_passes",
        "thrashing",
        "coprocessing",
        "occupancy",
    )
    config = {k: result.config[k] for k in interesting if result.config.get(k) is not None}
    if config:
        lines.append("config    :")
        cw = max(len(k) for k in config)
        for key, value in config.items():
            if isinstance(value, float):
                value = f"{value:.3g}"
            lines.append(f"  {key.ljust(cw)} : {value}")
    return "\n".join(lines)
