"""Architecture simulator: converts kernel work into modeled time.

The paper's contribution is performance behavior on three processors we do
not have.  This package models them: per-processor specs (:mod:`specs`),
cache and memory-system models (:mod:`cache`, :mod:`memsystem`), multicore
CPU/KNL execution (:mod:`multicore`), GPU execution (:mod:`gpu`), the
CPU-GPU co-processing overlap (:mod:`coprocess`), unified-memory
multi-pass processing (:mod:`multipass`), and the top-level entry point
(:mod:`engine`).

Capacities are *scaled* alongside the scaled-down datasets (see
``ProcessorSpec.scaled``) so that every capacity-to-working-set relation
of the paper — bitmap vs L3, CSR vs MCDRAM, graph vs GPU global memory —
is preserved at reproduction scale.
"""

from repro.simarch.specs import (
    CacheSpec,
    MemorySpec,
    CPUSpec,
    KNLSpec,
    GPUSpec,
    PAPER_CPU,
    PAPER_KNL,
    PAPER_GPU,
    DEFAULT_HW_SCALE,
    scaled_specs,
)
from repro.simarch.cache import CacheSimulator, analytic_miss_rate
from repro.simarch.engine import SimResult, simulate, best_configuration

__all__ = [
    "CacheSpec",
    "MemorySpec",
    "CPUSpec",
    "KNLSpec",
    "GPUSpec",
    "PAPER_CPU",
    "PAPER_KNL",
    "PAPER_GPU",
    "DEFAULT_HW_SCALE",
    "scaled_specs",
    "CacheSimulator",
    "analytic_miss_rate",
    "SimResult",
    "simulate",
    "best_configuration",
]
