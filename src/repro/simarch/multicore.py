"""CPU / KNL execution model (paper §4.1 parallelization + §4.3 opts).

Converts an algorithm's per-edge work into modeled seconds:

``T = max(T_sched_makespan, T_bandwidth) [+ T_reorder]``

* **compute** — scalar/vector instructions at the spec's IPC, with SMT
  marginal-throughput scaling beyond the physical core count;
* **latency** — random-word misses (bitmap probes, galloping jumps) priced
  at tier latency, overlapped up to the core's MLP — the mechanism behind
  "CPU favors BMP (deep OoO + L3) while KNL does not";
* **bandwidth** — streamed words plus miss-induced line fills over the
  saturating tier bandwidth — the mechanism behind "MPS stops scaling on
  the KNL past 64 threads" and the MCDRAM (HBW) gains;
* **scheduling** — the dynamic-chunk makespan (load imbalance + dequeue
  overhead) over ``|E|/|T|`` tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.kernels.costmodel import symmetry_work, upper_edges
from repro.parallel.scheduler import chunk_work, simulate_dynamic, simulate_static
from repro.parallel.tasks import DEFAULT_TASK_SIZE
from repro.simarch.cache import analytic_miss_rate, bitmap_working_set_miss_rate
from repro.simarch.memsystem import (
    cpu_tier,
    knl_tier,
    latency_time_s,
    stream_time_s,
)
from repro.simarch.specs import CPUSpec, KNLSpec

__all__ = ["MulticoreResult", "simulate_multicore"]

CACHE_LINE_BYTES = 64
#: [calibrated] cycles per vertex for the degree-descending reorder
#: (sort + remap); the paper reports < 3 s on billion-edge graphs.
REORDER_CYCLES_PER_EDGE = 4.0


@dataclass(frozen=True)
class MulticoreResult:
    """Modeled run on the CPU or KNL."""

    seconds: float
    compute_seconds: float
    latency_seconds: float
    bandwidth_seconds: float
    scheduling_overhead_seconds: float
    reorder_seconds: float
    threads: int
    tier_label: str
    efficiency: float
    detail: dict = field(default_factory=dict)


def _throughput_threads(spec, threads: int) -> float:
    """Effective compute throughput in thread-equivalents.

    Up to the core count each thread is a full core; hyperthreads beyond
    that add only ``smt_gain`` of a core each.
    """
    if threads <= spec.cores:
        return float(threads)
    return spec.cores + spec.smt_gain * (threads - spec.cores)


def simulate_multicore(
    graph: CSRGraph,
    algorithm: Algorithm,
    spec: CPUSpec | KNLSpec,
    *,
    threads: int = 1,
    task_size: int = DEFAULT_TASK_SIZE,
    mcdram_mode: str = "flat",
    include_symmetry: bool = True,
    static_schedule: bool = False,
) -> MulticoreResult:
    """Model one run of ``algorithm`` on ``spec`` with ``threads`` threads.

    ``mcdram_mode`` applies to the KNL only: ``ddr`` (HBW off), ``flat``,
    or ``cache`` (paper Figure 7).
    """
    if threads < 1 or threads > spec.max_threads:
        raise SimulationError(
            f"threads must be in [1, {spec.max_threads}] for {spec.name}"
        )

    es = upper_edges(graph)
    work = algorithm.work(es)
    if include_symmetry:
        work = work + symmetry_work(es)

    n = graph.num_vertices
    freq = spec.freq_ghz * 1e9
    is_bmp = algorithm.requires_reorder
    bitmap_bytes = n / 8.0

    cnt_bytes = 4.0 * graph.num_directed_edges
    csr_bytes = float(graph.memory_bytes()) + cnt_bytes
    working_set = csr_bytes + (threads * bitmap_bytes if is_bmp else 0.0)

    # ---------------- memory tier and miss rates ---------------- #
    if spec.kind == "knl":
        tier = knl_tier(spec, mcdram_mode, working_set)
        # No L3: each thread-local bitmap competes for its own tile's 1MB
        # L2 (two cores per tile), shared with co-resident threads.  This
        # is the locality cliff behind BMP's KNL behavior (paper Fig. 5).
        tiles = max(spec.cores // 2, 1)
        threads_per_tile = max(1.0, threads / tiles)
        miss_bitmap = analytic_miss_rate(
            bitmap_bytes, spec.l2.size_bytes / threads_per_tile
        )
        reuse_cache_bytes = spec.l2.size_bytes
    else:
        tier = cpu_tier(spec)
        # Shared L3: all concurrent thread-local bitmaps compete.
        miss_bitmap = bitmap_working_set_miss_rate(
            bitmap_bytes, threads if is_bmp else 1, spec.llc.size_bytes
        )
        reuse_cache_bytes = spec.llc.size_bytes
    if not is_bmp:
        miss_bitmap = 0.0

    # Non-bitmap random accesses (galloping/binary-search probes and the
    # symmetric-assignment lookups) target adjacency lists: a list of
    # degree d is probed by its d incident edges, so it stays cached when
    # it fits the reuse-capturing cache (L3 on the CPU, the tile L2 on the
    # KNL).  Per-edge miss rate = fit-weighted reuse curve.
    d_large = np.maximum(es.du, es.dv)
    list_bytes = 4.0 * d_large
    f_fit = np.minimum(1.0, reuse_cache_bytes / np.maximum(list_bytes, 1.0))
    reuse = 2.0 / (2.0 + spec.stream_reuse_beta * d_large)
    miss_other = np.clip(f_fit * reuse + (1.0 - f_fit), 0.02, 1.0)

    # ---------------- per-edge cost (seconds, one thread) ---------------- #
    scalar = work["scalar_ops"]
    vector = work["vector_ops"]
    bitmap_words = work["bitmap_words"]
    other_rand = np.maximum(work["rand_words"] - bitmap_words, 0.0)
    seq_words = work["seq_words"]

    # Bitmap probes that hit in cache still pay the L3 (CPU) / L2 (KNL)
    # hit latency, only partially overlapped — this is why sequential BMP
    # is cache-latency-bound, and why the paper credits the CPU's L3 for
    # BMP's behavior ("its L3 cache reduces the memory access latency").
    hit_cache_cycles = (
        spec.llc.latency_cycles if spec.kind == "cpu" else spec.l2.latency_cycles
    )
    cache_hit_s = (
        bitmap_words * (1.0 - miss_bitmap) * hit_cache_cycles
    ) / (spec.cache_hit_hide * freq)

    compute_s = (
        scalar / spec.scalar_ipc
        + vector / spec.vector_ipc
        + work["branch_ops"] * spec.branch_miss_cycles
    ) / freq + cache_hit_s
    missed = bitmap_words * miss_bitmap + other_rand * miss_other

    # ---------------- scheduling makespan (compute) ---------------- #
    # Compute throughput discounts hyperthreads by smt_gain; the latency
    # bound below gets the *full* thread count because interleaved
    # hyperthreads hide each other's stalls almost perfectly.
    speed = _throughput_threads(spec, threads) / threads
    chunks = chunk_work(compute_s, task_size) / speed
    if static_schedule:
        sched = simulate_static(chunks, threads)
    else:
        sched = simulate_dynamic(
            chunks, threads, dequeue_overhead=spec.dequeue_overhead_us * 1e-6
        )
    t_compute = sched.makespan

    # ---------------- latency bound ---------------- #
    # Oversubscribing cores multiplies concurrent random misses; memory
    # queues saturate and the effective service latency grows — the
    # mechanism behind BMP's slowdown at 128/256 KNL threads (Fig. 5).
    total_misses = float(missed.sum())
    bitmap_misses = float(bitmap_words.sum()) * miss_bitmap
    other_misses = total_misses - bitmap_misses
    contention = 1.0 + spec.contention_alpha * max(0, threads - spec.cores) / spec.cores
    t_latency = latency_time_s(
        bitmap_misses, tier.latency_ns * contention, spec.bitmap_mlp, threads
    ) + latency_time_s(other_misses, tier.latency_ns, spec.mlp, threads)

    # ---------------- bandwidth bound ---------------- #
    # An adjacency list of degree d is re-streamed for each of its d
    # incident edges; caches capture that reuse, so only a 2/(2+beta*d)
    # fraction of its streams reaches DRAM (hub lists are hot, light
    # lists miss).  Random misses transfer a whole line each.
    reuse_factor = 2.0 / (2.0 + spec.stream_reuse_beta * (es.du + es.dv))
    stream_bytes = float(seq_words.sum()) * 4.0
    dram_stream_bytes = float((seq_words * reuse_factor).sum()) * 4.0
    miss_bytes = total_misses * CACHE_LINE_BYTES
    bitmap_miss_bytes = bitmap_misses * CACHE_LINE_BYTES
    t_bw = stream_time_s(
        dram_stream_bytes + (miss_bytes - bitmap_miss_bytes), tier.bandwidth_gbs
    ) + stream_time_s(
        bitmap_miss_bytes, tier.bandwidth_gbs * spec.random_bw_efficiency
    )

    # ---------------- fixed costs ---------------- #
    # The reorder's sort+remap parallelizes across a handful of threads.
    t_reorder = (
        REORDER_CYCLES_PER_EDGE
        * graph.num_directed_edges
        / (freq * min(threads, 8))
        if is_bmp
        else 0.0
    )

    # Compute, outstanding misses and streaming overlap (OoO cores, HW
    # prefetch); the run is as slow as its tightest bottleneck.
    total = max(t_compute, t_latency, t_bw) + t_reorder
    return MulticoreResult(
        seconds=total,
        compute_seconds=t_compute,
        latency_seconds=t_latency,
        bandwidth_seconds=t_bw,
        scheduling_overhead_seconds=sched.overhead,
        reorder_seconds=t_reorder,
        threads=threads,
        tier_label=tier.label,
        efficiency=sched.efficiency,
        detail={
            "miss_bitmap": miss_bitmap,
            "miss_other": miss_other,
            "stream_bytes": stream_bytes,
            "miss_bytes": miss_bytes,
            "bandwidth_gbs": tier.bandwidth_gbs,
            "total_misses": total_misses,
        },
    )
