"""Memory-system timing: bandwidth saturation, tiers, KNL MCDRAM modes.

The timing model splits memory cost into a *streaming* term (bytes over
achievable bandwidth, which saturates as threads multiply) and a *latency*
term (cache misses waiting on DRAM, overlapped up to the core's
memory-level parallelism).  The KNL's MCDRAM enters as a tier choice:
flat mode places arrays explicitly (falling back to DDR for the
overflow), cache mode filters everything through the MCDRAM with a
movement-overhead efficiency factor (paper §4.3 / Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simarch.specs import CPUSpec, GPUSpec, KNLSpec, MemorySpec

__all__ = [
    "MemoryTier",
    "saturated_bandwidth",
    "stream_time_s",
    "latency_time_s",
    "knl_tier",
    "cpu_tier",
    "PER_THREAD_STREAM_GBS",
]

#: [calibrated] sustainable streaming bandwidth per hardware thread; the
#: aggregate saturates at the tier's peak (paper: KNL MPS stops scaling
#: past 64 threads "when the memory bandwidth is saturated").
PER_THREAD_STREAM_GBS = {"cpu": 6.0, "knl": 7.0}


@dataclass(frozen=True)
class MemoryTier:
    """The effective (bandwidth, latency) pair a run sees."""

    bandwidth_gbs: float
    latency_ns: float
    label: str


def saturated_bandwidth(peak_gbs: float, threads: int, per_thread_gbs: float) -> float:
    """min(peak, threads × per-thread): the classic saturation curve."""
    if threads < 1:
        raise SimulationError("threads must be >= 1")
    return min(peak_gbs, threads * per_thread_gbs)


def stream_time_s(total_bytes: float, bandwidth_gbs: float) -> float:
    if bandwidth_gbs <= 0:
        raise SimulationError("bandwidth must be positive")
    return total_bytes / (bandwidth_gbs * 1e9)


def latency_time_s(
    misses: float, latency_ns: float, mlp: float, contexts: int
) -> float:
    """Total stall time for ``misses`` random misses.

    Each context (hardware thread) overlaps up to ``mlp`` outstanding
    misses; contexts run concurrently, so the aggregate service rate is
    ``contexts × mlp`` misses per latency window.
    """
    if mlp <= 0 or contexts < 1:
        raise SimulationError("mlp and contexts must be positive")
    return (misses * latency_ns * 1e-9) / (mlp * contexts)


def cpu_tier(spec: CPUSpec) -> MemoryTier:
    return MemoryTier(spec.dram.bandwidth_gbs, spec.dram.latency_ns, "DDR4")


def knl_tier(spec: KNLSpec, mode: str, working_set_bytes: float) -> MemoryTier:
    """Effective tier for the KNL's three MCDRAM configurations.

    * ``ddr`` — MCDRAM unused (the pre-HBW configuration of Table 4);
    * ``flat`` — arrays allocated on MCDRAM via memkind; whatever exceeds
      its capacity spills to DDR, blending the bandwidth;
    * ``cache`` — MCDRAM as a memory-side cache: near-MCDRAM bandwidth
      when the working set fits (paper: "competitive ... because the
      capacity is large and accesses have good locality"), discounted by
      the data-movement overhead.
    """
    if mode == "ddr":
        return MemoryTier(spec.dram.bandwidth_gbs, spec.dram.latency_ns, "DDR4")
    if mode == "flat":
        cap = spec.mcdram.capacity_bytes
        if working_set_bytes <= cap:
            return MemoryTier(
                spec.mcdram.bandwidth_gbs, spec.mcdram.latency_ns, "MCDRAM-flat"
            )
        frac = cap / working_set_bytes
        bw = frac * spec.mcdram.bandwidth_gbs + (1 - frac) * spec.dram.bandwidth_gbs
        lat = frac * spec.mcdram.latency_ns + (1 - frac) * spec.dram.latency_ns
        return MemoryTier(bw, lat, "MCDRAM-flat+DDR4")
    if mode == "cache":
        eff = spec.cache_mode_efficiency
        if working_set_bytes <= spec.mcdram.capacity_bytes:
            return MemoryTier(
                spec.mcdram.bandwidth_gbs * eff,
                spec.mcdram.latency_ns + 20.0,  # miss-check overhead
                "MCDRAM-cache",
            )
        # Thrashing the memory-side cache degrades toward DDR speed.
        return MemoryTier(
            spec.dram.bandwidth_gbs, spec.dram.latency_ns + 40.0, "MCDRAM-cache-thrash"
        )
    raise SimulationError(f"unknown MCDRAM mode {mode!r} (ddr|flat|cache)")
