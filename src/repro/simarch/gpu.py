"""GPU execution model (paper §4.2: CUDA parallelization of MPS and BMP).

Coarse-grained tasks: vertex ``u``'s intersections map to one thread block
(Algorithms 5 and 6).  The model prices three kernel styles:

* **MKernel** (MPS, balanced pairs) — one warp per edge runs the
  block-wise merge at lane width 32; coalesced shared-memory loads.
* **PSKernel** (MPS, skewed pairs) — one *thread* per edge; the galloping
  lower bounds issue irregular, uncoalesced 32-byte gathers that cannot
  exploit warp-level parallelism (why GPU-MPS is the paper's overall
  loser).
* **BMPKernel** — a block builds its pooled bitmap with atomic-or, then
  each warp probes it for one edge; probes to the big bitmap are
  line-granular global transactions, optionally filtered through the
  shared-memory range filter (Table 7).

Timing = max(issue-throughput makespan over block slots, global-memory
traffic, latency exposure) + unified-memory paging (multi-pass plan) +
host post-processing (co-processing overlap, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import Algorithm
from repro.algorithms.bmp import BMP
from repro.algorithms.mps import MPS
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.kernels.costmodel import (
    block_merge_work,
    bmp_work,
    pivot_skip_work,
    skew_mask,
    upper_edges,
)
from repro.parallel.scheduler import simulate_dynamic
from repro.simarch.coprocess import host_post_processing
from repro.simarch.multipass import page_fault_time_s, plan_passes
from repro.simarch.specs import CPUSpec, GPUSpec

__all__ = ["GPUResult", "simulate_gpu", "blocks_per_sm", "bitmap_pool_bytes"]

WARP_REDUCTION_INSTRS = 5.0  # __shfl_down over {16, 8, 4, 2, 1}
TRANSACTION_BYTES = 32.0


@dataclass(frozen=True)
class GPUResult:
    """Modeled GPU run."""

    seconds: float
    kernel_seconds: float
    compute_seconds: float
    latency_seconds: float
    bandwidth_seconds: float
    paging_seconds: float
    post_seconds: float
    passes: int
    estimated_passes: int
    thrashing: bool
    warps_per_block: int
    occupancy: float
    detail: dict = field(default_factory=dict)


def blocks_per_sm(spec: GPUSpec, warps_per_block: int) -> int:
    """Concurrent blocks per SM for a block size (paper: 2048/128 = 16)."""
    if warps_per_block < 1 or warps_per_block > spec.max_warps_per_sm:
        raise SimulationError(
            f"warps_per_block must be in [1, {spec.max_warps_per_sm}]"
        )
    by_threads = spec.max_threads_per_sm // (spec.warp_size * warps_per_block)
    return max(1, min(spec.max_blocks_per_sm, by_threads))


def bitmap_pool_bytes(spec: GPUSpec, num_vertices: int, warps_per_block: int) -> float:
    """Bitmap pool: one |V|-bit bitmap per concurrent block (Algorithm 6)."""
    n_blocks = spec.sms * blocks_per_sm(spec, warps_per_block)
    return n_blocks * (num_vertices / 8.0)


def _gpu_work(graph: CSRGraph, algorithm: Algorithm, spec: GPUSpec, use_rf: bool):
    """Per-edge (warp_instrs, transactions, stream_words) for the kernels."""
    es = upper_edges(graph)
    n_edges = len(es)
    warp_instrs = np.zeros(n_edges)
    transactions = np.zeros(n_edges)
    stream_words = np.zeros(n_edges)

    if isinstance(algorithm, BMP):
        w = bmp_work(
            es,
            range_filter=use_rf,
            range_scale=algorithm.range_scale,
            assume_reordered=True,
        )
        probes = es.d_small
        # Warp-parallel probes + warp reduction + atomic build (amortized).
        warp_instrs = (
            2.0 * probes / spec.warp_size
            + WARP_REDUCTION_INSTRS
            + spec.atomic_overhead_cycles / spec.warp_size
        )
        transactions = w["bitmap_words"]  # line-granular bitmap traffic
        stream_words = probes  # coalesced reads of N(v)
        return es, warp_instrs, transactions, stream_words

    if isinstance(algorithm, MPS):
        skewed = skew_mask(es, algorithm.skew_threshold)
        vb = block_merge_work(es, lane_width=spec.warp_size)
        ps = pivot_skip_work(es, lane_width=1)
        # MKernel: each VB block step is one warp instruction bundle.
        m_instr = vb["vector_ops"] + vb["scalar_ops"] + WARP_REDUCTION_INSTRS
        # PSKernel: one thread per edge — divergent scalar execution
        # shares the warp with 31 other edges, serialized by divergence.
        ps_instr = ps["scalar_ops"] * spec.divergence_factor / spec.warp_size
        warp_instrs = np.where(skewed, ps_instr, m_instr)
        # PS lower bounds gather irregularly: one 32B transaction per step.
        transactions = np.where(skewed, ps["rand_words"], 0.0)
        stream_words = np.where(skewed, ps["seq_words"], vb["seq_words"])
        return es, warp_instrs, transactions, stream_words

    # Baseline merge on the GPU: MKernel for every edge.
    vb = block_merge_work(es, lane_width=spec.warp_size)
    warp_instrs = vb["vector_ops"] + vb["scalar_ops"] + WARP_REDUCTION_INSTRS
    stream_words = vb["seq_words"]
    return es, warp_instrs, transactions, stream_words


def simulate_gpu(
    graph: CSRGraph,
    algorithm: Algorithm,
    spec: GPUSpec,
    *,
    warps_per_block: int = 4,
    passes: int | None = None,
    coprocessing: bool = True,
    host: CPUSpec | None = None,
) -> GPUResult:
    """Model one GPU run (defaults mirror the paper: 4 warps/block)."""
    n = graph.num_vertices
    freq = spec.freq_ghz * 1e9
    is_bmp = isinstance(algorithm, BMP)

    # Range filter lives in shared memory; it is only usable when the
    # filter bitmap fits the per-block share of the SM's 48KB.
    use_rf = False
    if is_bmp and algorithm.range_filter:
        bps = blocks_per_sm(spec, warps_per_block)
        filter_bytes = n / algorithm.range_scale / 8.0
        use_rf = filter_bytes <= spec.shared_mem_per_sm / bps

    es, warp_instrs, transactions, stream_words = _gpu_work(
        graph, algorithm, spec, use_rf
    )

    # ---------------- occupancy and issue throughput ---------------- #
    bps = blocks_per_sm(spec, warps_per_block)
    active_warps = bps * warps_per_block
    occupancy = min(1.0, active_warps / spec.max_warps_per_sm)
    issue_eff = min(1.0, active_warps / spec.min_warps_for_full_issue)
    machine_rate = (
        spec.sms * spec.schedulers_per_sm * spec.warp_issue_ipc * freq * issue_eff
    )

    # ---------------- block-slot makespan ---------------- #
    per_vertex = np.bincount(es.u, weights=warp_instrs, minlength=n)
    per_vertex = per_vertex[per_vertex > 0]
    slots = spec.sms * bps
    slot_rate = machine_rate / slots
    sched = simulate_dynamic(per_vertex / slot_rate, slots)
    t_compute = sched.makespan

    # ---------------- memory bounds ---------------- #
    total_trans = float(transactions.sum())
    rand_bytes = total_trans * TRANSACTION_BYTES if not is_bmp else total_trans * 64.0
    rand_bw = spec.global_mem.bandwidth_gbs * (
        spec.line_bw_efficiency if is_bmp else spec.random_bw_efficiency
    )
    stream_bytes = float(stream_words.sum()) * 4.0
    t_bw = rand_bytes / (rand_bw * 1e9) + stream_bytes / (
        spec.global_mem.bandwidth_gbs * 1e9
    )
    outstanding = spec.sms * active_warps * 2.0  # ~2 in-flight loads per warp
    t_latency = total_trans * spec.global_mem.latency_ns * 1e-9 / max(outstanding, 1)

    # ---------------- unified memory paging (multi-pass) ------------- #
    cnt_bytes = 4.0 * graph.num_directed_edges
    csr_bytes = float(graph.memory_bytes()) + cnt_bytes
    pool = bitmap_pool_bytes(spec, n, warps_per_block) if is_bmp else 0.0
    plan = plan_passes(spec, csr_bytes, pool, passes=passes)
    t_paging = page_fault_time_s(spec, plan)

    t_kernel = max(t_compute, t_bw, t_latency)

    # ---------------- host post-processing (Table 5) ---------------- #
    post = host_post_processing(
        graph, gpu_busy_seconds=t_kernel + t_paging, coprocessing=coprocessing, host=host
    )

    total = t_kernel + t_paging + post.seconds
    return GPUResult(
        seconds=total,
        kernel_seconds=t_kernel,
        compute_seconds=t_compute,
        latency_seconds=t_latency,
        bandwidth_seconds=t_bw,
        paging_seconds=t_paging,
        post_seconds=post.seconds,
        passes=plan.passes,
        estimated_passes=plan.estimated_passes,
        thrashing=plan.thrashing,
        warps_per_block=warps_per_block,
        occupancy=occupancy,
        detail={
            "transactions": total_trans,
            "stream_bytes": stream_bytes,
            "bitmap_pool_bytes": pool,
            "use_rf": use_rf,
            "post_search_seconds": post.search_seconds,
            "post_gather_seconds": post.gather_seconds,
        },
    )
