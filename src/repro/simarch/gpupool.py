"""Executable model of Algorithm 6's bitmap pool and block execution.

The GPU BMP kernel manages a pool of ``SMs × n_C`` bitmaps through an
occupation-status array ``BS_A``: one thread per block atomically claims a
free bitmap for its SM's slot range (``AcquireBitmap``), the block builds
the index over ``N(u)`` with atomic-or, probes it warp-wise, and clears +
releases it (``ReleaseBitmap``).  This module reproduces that life cycle
with interleaved (concurrent-like) block execution so its invariants —
no slot double-acquired, every bitmap returned clear, never more
concurrent blocks per SM than ``n_C`` — are testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.kernels.batch import reverse_edge_offsets
from repro.kernels.bitmap import Bitmap, intersect_bitmap

__all__ = ["BitmapPool", "GPURunStats", "run_gpu_bmp_reference"]


class BitmapPool:
    """Pool of ``sms × blocks_per_sm`` bitmaps with per-SM slot ranges."""

    def __init__(self, sms: int, blocks_per_sm: int, cardinality: int):
        if sms < 1 or blocks_per_sm < 1:
            raise SimulationError("pool dimensions must be positive")
        self.sms = sms
        self.blocks_per_sm = blocks_per_sm
        self.bitmaps = [
            Bitmap(cardinality) for _ in range(sms * blocks_per_sm)
        ]
        # BS_A: the occupation-status array of Algorithm 6.
        self.status = np.zeros(sms * blocks_per_sm, dtype=np.int8)
        self.max_in_use = 0

    def acquire(self, sm_id: int) -> int:
        """``AcquireBitmap``: linear scan of the SM's slots (atomicCAS)."""
        if not 0 <= sm_id < self.sms:
            raise SimulationError(f"sm_id {sm_id} out of range")
        base = sm_id * self.blocks_per_sm
        for i in range(self.blocks_per_sm):
            if self.status[base + i] == 0:
                self.status[base + i] = 1
                self.max_in_use = max(self.max_in_use, int(self.status.sum()))
                return base + i
        raise SimulationError(f"no free bitmap on SM {sm_id} (oversubscribed)")

    def release(self, slot: int) -> None:
        """``ReleaseBitmap``: the bitmap must come back all-zero."""
        if self.status[slot] == 0:
            raise SimulationError(f"slot {slot} released twice")
        if not self.bitmaps[slot].is_clear():
            raise SimulationError(f"slot {slot} released dirty")
        self.status[slot] = 0

    @property
    def in_use(self) -> int:
        return int(self.status.sum())

    def memory_bytes(self) -> float:
        return sum(b.memory_bytes() for b in self.bitmaps)


@dataclass(frozen=True)
class GPURunStats:
    counts: np.ndarray
    max_concurrent_blocks: int
    blocks_executed: int


def run_gpu_bmp_reference(
    graph: CSRGraph, sms: int = 4, blocks_per_sm: int = 4
) -> GPURunStats:
    """Execute the BMP kernel's block semantics with interleaved blocks.

    One thread block per vertex (coarse-grained tasks, §4.2); blocks are
    dispatched to SM slots as they free up (the hardware scheduler), and
    each block runs acquire → build → probe-all-edges → clear → release.
    Execution interleaves ``sms × blocks_per_sm`` concurrent blocks to
    stress the pool exactly as concurrent hardware would.
    """
    n = graph.num_vertices
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    pool = BitmapPool(sms, blocks_per_sm, n)

    pending = deque(u for u in range(n) if graph.degree(u) > 0)
    # Active blocks: (vertex, slot, edge cursor, probe list).
    active: list[list] = []
    executed = 0
    max_conc = 0
    rng_sm = 0

    def _free_sm() -> int:
        nonlocal rng_sm
        # The hardware scheduler places the block on any SM with a free
        # slot; rotate for fairness.
        for probe in range(sms):
            sm_id = (rng_sm + probe) % sms
            base = sm_id * blocks_per_sm
            if (pool.status[base : base + blocks_per_sm] == 0).any():
                rng_sm = sm_id + 1
                return sm_id
        raise SimulationError("no SM has a free slot")  # pragma: no cover

    def launch():
        u = pending.popleft()
        slot = pool.acquire(_free_sm())
        nbrs = graph.neighbors(u)
        pool.bitmaps[slot].set_many(nbrs)  # AtomicConstrucBitmap
        lo, hi = graph.neighbor_range(u)
        first = int(np.searchsorted(nbrs, u + 1))
        active.append([u, slot, lo + first, hi])

    while pending or active:
        # Fill free slots with new blocks (the hardware block scheduler).
        while pending and pool.in_use < sms * blocks_per_sm:
            launch()
        max_conc = max(max_conc, len(active))
        # Advance every active block by one edge (interleaved progress).
        for block in list(active):
            u, slot, cursor, hi = block
            if cursor < hi:
                v = int(graph.dst[cursor])
                cnt[cursor] = intersect_bitmap(
                    pool.bitmaps[slot], graph.neighbors(v)
                )
                block[2] += 1
            else:
                pool.bitmaps[slot].clear_many(graph.neighbors(u))
                pool.release(slot)
                active.remove(block)
                executed += 1

    rev = reverse_edge_offsets(graph)
    src = graph.edge_sources()
    lower = src > graph.dst
    cnt[lower] = cnt[rev[lower]]
    return GPURunStats(
        counts=cnt, max_concurrent_blocks=max_conc, blocks_executed=executed
    )
