"""Shared value types: operation counts and work vectors.

Every instrumented kernel in :mod:`repro.kernels` reports what it did as an
:class:`OpCounts` record.  The architecture simulator in :mod:`repro.simarch`
consumes these records (or their vectorized aggregate, :class:`WorkVector`)
and converts them to modeled time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

__all__ = ["OpCounts", "WorkVector"]


@dataclass
class OpCounts:
    """Exact operation counts produced by one (or many) kernel invocations.

    The fields mirror the cost-relevant events of the paper's kernels:

    * merge kernels issue element *comparisons* and offset *advances*;
    * the vectorized block-wise merge (VB) issues SIMD *vector_ops* at a
      given lane width;
    * pivot-skip (PS) issues *gallop_steps* and *binary_steps* inside its
      ``LowerBound``;
    * BMP issues *bitmap_set* / *bitmap_test* / *bitmap_clear* word
      operations, and range filtering replaces some tests with
      *filter_test* (+ *filter_skip* recording avoided big-bitmap reads);
    * *seq_words* / *rand_words* classify 4-byte memory touches by access
      pattern, which is what the memory model prices.
    """

    comparisons: int = 0
    advances: int = 0
    vector_ops: int = 0
    lane_width: int = 1
    gallop_steps: int = 0
    binary_steps: int = 0
    bitmap_set: int = 0
    bitmap_test: int = 0
    bitmap_clear: int = 0
    filter_test: int = 0
    filter_skip: int = 0
    seq_words: int = 0
    rand_words: int = 0
    matches: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        if not isinstance(other, OpCounts):
            return NotImplemented
        merged = OpCounts()
        for f in dataclasses.fields(OpCounts):
            if f.name == "lane_width":
                continue
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        merged.lane_width = max(self.lane_width, other.lane_width)
        return merged

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        for f in dataclasses.fields(OpCounts):
            if f.name == "lane_width":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        self.lane_width = max(self.lane_width, other.lane_width)
        return self

    @property
    def scalar_instructions(self) -> int:
        """Scalar ALU work: comparisons, advances, and search steps."""
        return (
            self.comparisons
            + self.advances
            + self.gallop_steps
            + self.binary_steps
            + self.bitmap_set
            + self.bitmap_test
            + self.bitmap_clear
            + self.filter_test
        )

    @property
    def total_instructions(self) -> int:
        return self.scalar_instructions + self.vector_ops

    @property
    def total_words(self) -> int:
        return self.seq_words + self.rand_words

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


# Field names a WorkVector carries.  Kept in one place so the cost model,
# the scheduler, and the processor models agree on the schema.
WORK_FIELDS = (
    "scalar_ops",  # scalar ALU instructions
    "vector_ops",  # SIMD instructions (already divided by lane width)
    "branch_ops",  # data-dependent (hard-to-predict) branches
    "rand_words",  # random-access 4-byte word touches
    "seq_words",  # streaming 4-byte word touches
    "bitmap_words",  # subset of rand_words that hit the big bitmap
)


class WorkVector:
    """Per-task work, vectorized: one float per task for each work field.

    Tasks are either edges (fine-grained, CPU/KNL) or vertices
    (coarse-grained, GPU).  Arrays are aligned with the task order used by
    the producer (documented at each call site).
    """

    __slots__ = ("n", "_data")

    def __init__(self, n: int, **arrays: np.ndarray):
        self.n = int(n)
        self._data: dict[str, np.ndarray] = {}
        for name in WORK_FIELDS:
            arr = arrays.pop(name, None)
            if arr is None:
                arr = np.zeros(self.n, dtype=np.float64)
            else:
                arr = np.asarray(arr, dtype=np.float64)
                if arr.shape != (self.n,):
                    raise ValueError(
                        f"work field {name!r} has shape {arr.shape}, expected ({self.n},)"
                    )
            self._data[name] = arr
        if arrays:
            raise TypeError(f"unknown work fields: {sorted(arrays)}")

    def __getitem__(self, name: str) -> np.ndarray:
        return self._data[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in WORK_FIELDS:
            raise KeyError(name)
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.n,):
            raise ValueError(f"shape {value.shape} != ({self.n},)")
        self._data[name] = value

    def fields(self) -> tuple[str, ...]:
        return WORK_FIELDS

    def total(self, name: str) -> float:
        return float(self._data[name].sum())

    def totals(self) -> dict[str, float]:
        return {name: float(arr.sum()) for name, arr in self._data.items()}

    def scaled(self, factor: float) -> "WorkVector":
        return WorkVector(
            self.n, **{name: arr * factor for name, arr in self._data.items()}
        )

    def __add__(self, other: "WorkVector") -> "WorkVector":
        if not isinstance(other, WorkVector):
            return NotImplemented
        if other.n != self.n:
            raise ValueError("WorkVector length mismatch")
        return WorkVector(
            self.n,
            **{name: self._data[name] + other._data[name] for name in WORK_FIELDS},
        )

    def group_by(self, groups: np.ndarray, num_groups: int) -> "WorkVector":
        """Aggregate per-task work into ``num_groups`` buckets.

        ``groups[i]`` is the bucket of task ``i``.  Used to convert
        per-edge work into per-vertex (thread-block) work for the GPU model.
        """
        groups = np.asarray(groups)
        if groups.shape != (self.n,):
            raise ValueError("groups must align with tasks")
        out = WorkVector(num_groups)
        for name in WORK_FIELDS:
            out._data[name] = np.bincount(
                groups, weights=self._data[name], minlength=num_groups
            ).astype(np.float64)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        totals = ", ".join(f"{k}={v:.3g}" for k, v in self.totals().items())
        return f"WorkVector(n={self.n}, {totals})"
