"""Dynamic-scheduling simulator (the paper's OpenMP skeleton, modeled).

Given per-chunk costs, simulate ``schedule(dynamic)``: idle workers pull
the next chunk off a shared queue (paying a dequeue overhead) until the
queue drains.  The resulting makespan captures exactly the trade-off the
paper discusses in §4 — large ``|T|`` minimizes queue overhead, small
``|T|`` minimizes load imbalance — and feeds every parallel data point of
Figures 5-10.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Schedule",
    "chunk_work",
    "simulate_dynamic",
    "simulate_sharded",
    "simulate_static",
]


@dataclass(frozen=True)
class Schedule:
    """Result of a scheduling simulation (times in the caller's unit)."""

    makespan: float
    total_work: float
    overhead: float
    num_chunks: int
    num_workers: int

    @property
    def ideal(self) -> float:
        """Perfectly balanced, zero-overhead lower bound."""
        return self.total_work / self.num_workers

    @property
    def efficiency(self) -> float:
        """ideal / makespan ∈ (0, 1]; 1 means perfect scaling."""
        if self.makespan == 0:
            return 1.0
        return self.ideal / self.makespan

    @property
    def imbalance(self) -> float:
        """makespan / ideal − 1 (0 = perfectly balanced)."""
        if self.ideal == 0:
            return 0.0
        return self.makespan / self.ideal - 1.0


def chunk_work(unit_costs: np.ndarray, task_size: int) -> np.ndarray:
    """Sum per-unit costs into per-chunk costs of ``task_size`` units."""
    unit_costs = np.asarray(unit_costs, dtype=np.float64)
    if len(unit_costs) == 0:
        return unit_costs
    starts = np.arange(0, len(unit_costs), task_size, dtype=np.int64)
    return np.add.reduceat(unit_costs, starts)


def simulate_dynamic(
    chunk_costs: np.ndarray,
    num_workers: int,
    dequeue_overhead: float = 0.0,
) -> Schedule:
    """Event-driven simulation of dynamic scheduling.

    Chunks are dequeued in order; the earliest-free worker takes the next
    chunk.  This is the exact behavior of a work queue with negligible
    contention, which is what OpenMP's dynamic schedule provides.
    """
    chunk_costs = np.asarray(chunk_costs, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    total = float(chunk_costs.sum())
    n = len(chunk_costs)
    overhead_total = dequeue_overhead * n
    if n == 0:
        return Schedule(0.0, 0.0, 0.0, 0, num_workers)
    if num_workers == 1:
        return Schedule(total + overhead_total, total, overhead_total, n, 1)

    # Greedy list scheduling via a min-heap of worker-free times.
    free = [0.0] * num_workers
    heapq.heapify(free)
    makespan = 0.0
    for cost in chunk_costs:
        t = heapq.heappop(free)
        t += dequeue_overhead + float(cost)
        makespan = max(makespan, t)
        heapq.heappush(free, t)
    return Schedule(makespan, total, overhead_total, n, num_workers)


def simulate_sharded(
    shard_costs,
    shard_bytes,
    workers_per_shard: int = 1,
    copy_ns_per_byte: float = 0.25,
    dequeue_overhead: float = 0.0,
) -> Schedule:
    """Model a sharded run: per-shard dynamic schedules plus export copy.

    ``shard_costs`` is one entry per shard — either a scalar (the shard's
    total predicted cost) or an array of the shard's chunk costs.
    ``shard_bytes`` is the shared-memory footprint of each shard's
    segment, *including* the replicated boundary columns; the serial
    export copy the parent pays before any worker can start is modeled as
    ``sum(shard_bytes) * copy_ns_per_byte``.  This is the term that grows
    with cross-shard replication volume, and the reason the planner does
    not simply pick the largest K: more shards bound per-worker memory
    tighter but replicate more boundary columns.

    Shards execute concurrently (one worker set each), so compute
    makespan is the *max* over per-shard dynamic makespans; the returned
    ``overhead`` is the replication copy cost.
    """
    shard_bytes = np.asarray(shard_bytes, dtype=np.float64)
    if len(shard_costs) != len(shard_bytes):
        raise ValueError("shard_costs and shard_bytes must align")
    if workers_per_shard < 1:
        raise ValueError("workers_per_shard must be >= 1")
    copy_cost = float(shard_bytes.sum()) * copy_ns_per_byte
    total_work = 0.0
    compute_makespan = 0.0
    num_chunks = 0
    for cost in shard_costs:
        chunks = np.atleast_1d(np.asarray(cost, dtype=np.float64))
        sub = simulate_dynamic(chunks, workers_per_shard, dequeue_overhead)
        total_work += sub.total_work
        compute_makespan = max(compute_makespan, sub.makespan)
        num_chunks += sub.num_chunks
    return Schedule(
        makespan=copy_cost + compute_makespan,
        total_work=total_work,
        overhead=copy_cost,
        num_chunks=num_chunks,
        num_workers=max(1, len(shard_costs) * workers_per_shard),
    )


def simulate_static(chunk_costs: np.ndarray, num_workers: int) -> Schedule:
    """Static (contiguous block) scheduling, for the ablation benches.

    The unit range is pre-split into ``num_workers`` contiguous regions of
    (nearly) equal *count*; the makespan is the heaviest region — no queue
    overhead, but no load balancing either.
    """
    chunk_costs = np.asarray(chunk_costs, dtype=np.float64)
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    total = float(chunk_costs.sum())
    n = len(chunk_costs)
    if n == 0:
        return Schedule(0.0, 0.0, 0.0, 0, num_workers)
    bounds = np.linspace(0, n, num_workers + 1).astype(np.int64)
    region_sums = np.add.reduceat(chunk_costs, bounds[:-1].clip(max=n - 1))
    # reduceat with duplicate boundaries (more workers than chunks) yields
    # overlapping sums; recompute defensively for that corner.
    if len(np.unique(bounds[:-1])) != len(bounds[:-1]):
        region_sums = np.array(
            [chunk_costs[bounds[i] : bounds[i + 1]].sum() for i in range(num_workers)]
        )
    makespan = float(region_sums.max())
    return Schedule(makespan, total, 0.0, n, num_workers)
