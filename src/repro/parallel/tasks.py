"""Task construction (paper §4).

Two granularities:

* **fine-grained** — a task is ``|T|`` consecutive edge units; the paper
  uses these on the CPU and KNL where the task-queue (OpenMP dynamic
  scheduler) overhead must stay negligible relative to task work;
* **coarse-grained** — a task is one vertex's ``d_u`` intersections; the
  paper uses these on the GPU where the hardware block scheduler makes
  per-vertex tasks cheap (``|T| = 1``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["fine_grained_chunks", "coarse_grained_tasks", "DEFAULT_TASK_SIZE"]

#: Default fine-grained units per task.  The paper fixes |T| empirically;
#: 1024 edges balances queue overhead against load balance on our scales.
DEFAULT_TASK_SIZE = 1024


def fine_grained_chunks(num_units: int, task_size: int = DEFAULT_TASK_SIZE) -> np.ndarray:
    """Chunk boundaries for fine-grained tasks.

    Returns ``starts`` such that task ``i`` covers units
    ``[starts[i], starts[i+1])`` (with an implicit final end at
    ``num_units``); suitable for ``np.add.reduceat``.
    """
    if task_size < 1:
        raise ValueError("task_size must be >= 1")
    if num_units <= 0:
        return np.zeros(1 if num_units == 0 else 0, dtype=np.int64)[:0]
    return np.arange(0, num_units, task_size, dtype=np.int64)


def coarse_grained_tasks(graph: CSRGraph, edge_src: np.ndarray) -> np.ndarray:
    """Map each edge unit to its per-vertex (thread-block) task id.

    ``edge_src[i]`` is the source vertex of work unit ``i``; task ids are
    the vertex ids themselves, so grouping work by task is a ``bincount``.
    """
    edge_src = np.asarray(edge_src)
    if edge_src.size and (edge_src.min() < 0 or edge_src.max() >= graph.num_vertices):
        raise ValueError("edge sources out of range")
    return edge_src.astype(np.int64)
