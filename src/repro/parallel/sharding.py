"""Sharded multi-process counting over per-shard shared-memory segments.

The single-export pool (:mod:`repro.parallel.threadpool`) maps the whole
CSR into every worker; here each worker attaches only *its shard's*
segment — the owned source rows plus the replicated boundary columns a
:class:`~repro.plan.shardplan.ShardPlan` computed — so per-worker memory
stays bounded by the shard budget while the counting kernels run
unmodified.

The trick that keeps results bit-exact is the local CSR layout: a shard
segment keeps the **full-length offsets array** (vertex ids stay global)
with the degrees of non-resident rows zeroed, and gathers ``dst`` only
for resident rows.  Owned rows are then contiguous and byte-identical to
the global CSR, so a worker's locally-computed edge offsets map to
global ones by a single per-shard scalar::

    global_eo = local_eo + (graph.offsets[lo] - local_offsets[lo])

Workers return global offsets; the parent scatters them into one count
vector and finishes through the same
:func:`~repro.kernels.batch.symmetric_assign` as every other backend.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
from dataclasses import dataclass, field, replace
from queue import Empty

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import symmetric_assign
from repro.parallel.metrics import ChunkStat, ParallelStats, ShardStat, rss_bytes
from repro.parallel.sharedmem import SharedCSRHandle, SharedGraph
from repro.parallel.threadpool import count_vertex_range, resolve_start_method
from repro.plan.chunking import weighted_vertex_chunks
from repro.plan.shardplan import ShardPlan, ShardSpec, plan_shards
from repro.types import OpCounts

__all__ = [
    "ShardHandle",
    "ShardedGraph",
    "ShardedCounter",
    "build_shard_csr",
    "count_all_edges_sharded",
]

#: ``start_method`` value that runs every shard in-process through the
#: same attach/count/remap data path (no worker processes).  Used by the
#: fuzzer and property tests to exercise shard arithmetic cheaply.
INLINE = "inline"

_STOP = None  # queue sentinel


def build_shard_csr(graph: CSRGraph, spec: ShardSpec) -> tuple[CSRGraph, int]:
    """Materialize one shard's local CSR; returns ``(local, eo_delta)``.

    Resident rows are the owned range ``[lo, hi)`` plus the boundary
    columns; every other row keeps its global id but degree zero.  The
    returned delta maps local edge offsets of owned rows to global ones.
    """
    n = graph.num_vertices
    degrees = graph.degrees
    keep = np.zeros(n, dtype=bool)
    keep[spec.lo : spec.hi] = True
    if len(spec.boundary):
        keep[spec.boundary] = True
    local_deg = np.where(keep, degrees, 0).astype(np.int64)
    local_off = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(local_deg)]
    )
    rows = np.flatnonzero(keep)
    if len(rows):
        starts = graph.offsets[rows]
        lens = degrees[rows].astype(np.int64)
        # Flat gather: one index array covering every resident row's slice.
        ends = np.cumsum(lens)
        flat = np.arange(int(ends[-1]), dtype=np.int64)
        flat += np.repeat(starts - np.concatenate(([0], ends[:-1])), lens)
        local_dst = graph.dst[flat]
    else:
        local_dst = graph.dst[:0].copy()
    local = CSRGraph(local_off, local_dst, validate=False)
    delta = int(graph.offsets[spec.lo] - local_off[spec.lo]) if n else 0
    return local, delta


@dataclass(frozen=True)
class ShardHandle:
    """Picklable reference to one exported shard segment."""

    index: int
    lo: int
    hi: int
    csr: SharedCSRHandle
    edge_offset_delta: int
    nbytes: int
    owned_bytes: int
    boundary_bytes: int
    boundary_vertices: int
    predicted_cost: float = field(default=0.0, compare=False)

    def attach(self):
        return self.csr.attach()


class ShardedGraph:
    """Parent-side owner of the K per-shard shared-memory segments.

    Generalizes :class:`~repro.parallel.sharedmem.SharedGraph` from one
    export to a plan's worth of them; :attr:`handles` are the picklable
    per-shard references workers attach.  ``unlink()`` is idempotent and
    releases every segment (cleaning up partially-built state if
    construction itself fails).
    """

    def __init__(self, graph: CSRGraph, plan: ShardPlan):
        self.plan = plan
        self._segments: list[SharedGraph] = []
        self.handles: list[ShardHandle] = []
        self._unlinked = False
        try:
            for spec in plan.shards:
                local, delta = build_shard_csr(graph, spec)
                seg = SharedGraph(local)
                self._segments.append(seg)
                self.handles.append(
                    ShardHandle(
                        index=spec.index,
                        lo=spec.lo,
                        hi=spec.hi,
                        csr=seg.handle,
                        edge_offset_delta=delta,
                        nbytes=seg.nbytes(),
                        owned_bytes=spec.owned_bytes,
                        boundary_bytes=spec.boundary_bytes,
                        boundary_vertices=len(spec.boundary),
                    )
                )
        except BaseException:
            self.unlink()
            raise

    @property
    def num_shards(self) -> int:
        return len(self.handles)

    def nbytes(self) -> int:
        return sum(h.nbytes for h in self.handles)

    def max_shard_bytes(self) -> int:
        return max((h.nbytes for h in self.handles), default=0)

    @property
    def replication_factor(self) -> float:
        return self.plan.replication_factor

    def unlink(self) -> None:
        """Release every segment.  Idempotent."""
        if self._unlinked:
            return
        self._unlinked = True
        for seg in self._segments:
            seg.unlink()

    def __enter__(self) -> "ShardedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedGraph(shards={self.num_shards}, "
            f"bytes={self.nbytes()}, "
            f"replication={self.replication_factor:.2f}x)"
        )


def _shard_worker(handle: ShardHandle, task_q, result_q) -> None:
    """Shard worker loop: attach one segment, serve ``("range", lo, hi)``
    tasks over owned sub-ranges, return **global** edge offsets."""
    try:
        attached = handle.attach()
    except BaseException:  # surface attach failures as task errors
        result_q.put(("err", traceback.format_exc()))
        return
    graph = attached.graph
    pid = os.getpid()
    attached_bytes = attached.nbytes()
    delta = handle.edge_offset_delta
    while True:
        task = task_q.get()
        if task is _STOP:
            break
        try:
            _, lo, hi = task
            ops = OpCounts()
            t0 = time.perf_counter()
            eo, vals = count_vertex_range(graph, lo, hi, ops)
            dt = time.perf_counter() - t0
        except BaseException:  # pragma: no cover - defensive
            result_q.put(("err", traceback.format_exc()))
            continue
        stat = ChunkStat(
            pid,
            lo,
            hi,
            len(eo),
            dt,
            ops,
            bytes_attached=attached_bytes,
            shard=handle.index,
            rss_bytes=rss_bytes(),
        )
        result_q.put(("ok", eo + delta, vals, stat))


class ShardedCounter:
    """Persistent sharded counting service (context manager).

    One worker process per shard, each attaching only its own segment;
    requests split every shard's owned range into ``chunks_per_shard``
    cost-balanced sub-chunks served off that shard's task queue, and the
    parent merges global-offset partial counts through
    ``symmetric_assign`` — bit-exact against the single-export backends.

    Parameters mirror :class:`~repro.parallel.threadpool.ParallelCounter`
    where they overlap.  ``num_shards``/``budget_bytes``/``plan`` feed
    :func:`~repro.plan.shardplan.plan_shards` unless an explicit
    ``shard_plan`` or a borrowed :class:`ShardedGraph` (``sharded``) is
    given.  ``start_method=\"inline\"`` runs every shard in-process over
    the same attached segments — the cheap path the differential fuzzer
    and property tests drive.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_shards: int | None = None,
        budget_bytes: int | None = None,
        chunks_per_shard: int = 4,
        start_method: str | None = None,
        plan="auto",
        shard_plan: ShardPlan | None = None,
        sharded: ShardedGraph | None = None,
        on_fallback=None,
    ):
        self.graph = graph
        self.chunks_per_shard = max(1, int(chunks_per_shard))
        self._start_method_arg = start_method
        self._plan_arg = plan
        self._num_shards_arg = num_shards
        self._budget_bytes = budget_bytes
        self._shard_plan = shard_plan
        self._borrowed_sharded = sharded
        self._on_fallback = on_fallback
        self.sharded: ShardedGraph | None = None
        self.start_method = INLINE
        self.fallback_reason: str | None = None
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardedCounter":
        """Build (or borrow) the sharded export and launch the workers."""
        if self._started:
            return self
        self._started = True

        if self._borrowed_sharded is not None:
            self.sharded = self._borrowed_sharded
        else:
            plan = self._shard_plan
            if plan is None:
                plan = plan_shards(
                    self.graph,
                    num_shards=self._resolve_num_shards(),
                    budget_bytes=(
                        self._budget_bytes
                        if self._num_shards_arg is None
                        else None
                    ),
                    plan=self._plan_arg,
                )
            self.sharded = ShardedGraph(self.graph, plan)

        if not self.sharded.plan.fits_budget:
            p = self.sharded.plan
            warnings.warn(
                f"shard budget {p.budget_bytes} B is unsatisfiable: the "
                f"largest of {p.num_shards} shards still attaches "
                f"{p.max_shard_bytes} B (replicated offsets and hub "
                "boundary lists set a per-shard floor); proceeding over "
                "budget",
                RuntimeWarning,
                stacklevel=3,
            )

        # A single shard is the whole graph; a worker process would add
        # pickling and queue latency for nothing, so K=1 runs in-process
        # unless a start method was explicitly requested.
        if (
            self._start_method_arg == INLINE
            or not self.sharded.handles
            or (len(self.sharded.handles) == 1 and self._start_method_arg is None)
        ):
            return self

        try:
            method = resolve_start_method(self._start_method_arg)
            ctx = mp.get_context(method)
            self._result_q = ctx.Queue()
            for handle in self.sharded.handles:
                task_q = ctx.Queue()
                p = ctx.Process(
                    target=_shard_worker,
                    args=(handle, task_q, self._result_q),
                    daemon=True,
                )
                p.start()
                self._task_qs.append(task_q)
                self._procs.append(p)
        except (OSError, ValueError, ImportError) as exc:
            self._teardown_pool()
            self.fallback_reason = f"sharded pool setup failed: {exc}"
            message = (
                f"sharded backend running in-process "
                f"({self.fallback_reason}); shards still attach their own "
                f"segments"
            )
            if self._on_fallback is not None:
                self._on_fallback(message)
            else:
                warnings.warn(message, RuntimeWarning, stacklevel=3)
            return self

        self.start_method = method
        return self

    def _resolve_num_shards(self) -> int | None:
        if self._num_shards_arg is not None:
            if self._num_shards_arg < 1:
                raise ValueError("num_shards must be >= 1")
            return int(self._num_shards_arg)
        if self._budget_bytes is not None:
            return None  # budget-driven search inside plan_shards
        return max(1, min(os.cpu_count() or 1, 4))

    @property
    def is_parallel(self) -> bool:
        return bool(self._procs)

    @property
    def num_shards(self) -> int:
        if self.sharded is None:
            return 0
        return self.sharded.num_shards

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Stop the workers and release owned shard segments."""
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()
        if self.sharded is not None:
            if self.sharded is not self._borrowed_sharded:
                self.sharded.unlink()
            self.sharded = None

    def _teardown_pool(self) -> None:
        for task_q in self._task_qs:
            try:
                task_q.put(_STOP)
            except (OSError, ValueError):  # pragma: no cover
                pass
        for p in self._procs:
            p.join(timeout=10)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5)
        self._procs = []
        for q in [*self._task_qs, self._result_q]:
            if q is not None:
                q.close()
                q.join_thread()
        self._task_qs = []
        self._result_q = None
        self.start_method = INLINE

    def __enter__(self) -> "ShardedCounter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    def count_all_edges(
        self,
        chunks_per_shard: int | None = None,
        with_stats: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, ParallelStats]:
        """All-edge common neighbor counts, aligned with ``graph.dst``."""
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("ShardedCounter is closed")
        cps = (
            self.chunks_per_shard
            if chunks_per_shard is None
            else max(1, int(chunks_per_shard))
        )
        per_shard_tasks, pred_map = self._make_tasks(cps)
        cnt = np.zeros(self.graph.num_directed_edges, dtype=np.int64)
        t0 = time.perf_counter()
        if self.is_parallel:
            chunk_stats = self._run_pool(per_shard_tasks, cnt)
        else:
            chunk_stats = self._run_inline(per_shard_tasks, cnt)
        if pred_map:
            chunk_stats = [
                replace(s, predicted_cost=pred_map.get((s.lo, s.hi)))
                for s in chunk_stats
            ]
        wall = time.perf_counter() - t0
        counts = symmetric_assign(self.graph, cnt)
        if not with_stats:
            return counts
        stats = ParallelStats(
            requested_workers=max(1, self.num_shards),
            effective_workers=(
                self.num_shards if self.is_parallel else 1
            ),
            start_method=self.start_method,
            wall_seconds=wall,
            chunk_stats=chunk_stats,
            fallback_reason=self.fallback_reason,
            shard_stats=self.shard_stats(),
            replication_factor=self.sharded.replication_factor,
        )
        return counts, stats

    def shard_stats(self) -> list[ShardStat]:
        return [
            ShardStat(
                index=h.index,
                lo=h.lo,
                hi=h.hi,
                owned_bytes=h.owned_bytes,
                boundary_bytes=h.boundary_bytes,
                boundary_vertices=h.boundary_vertices,
                attached_bytes=h.nbytes,
            )
            for h in self.sharded.handles
        ]

    def _make_tasks(
        self, chunks_per_shard: int
    ) -> tuple[list[list[tuple[int, int]]], dict[tuple[int, int], float]]:
        """Per-shard lists of (lo, hi) sub-chunks cut on the cost curve."""
        cost = self.sharded.plan.chunk_cost
        per_shard: list[list[tuple[int, int]]] = []
        pred_map: dict[tuple[int, int], float] = {}
        for h in self.sharded.handles:
            bounds, predicted = weighted_vertex_chunks(
                cost[h.lo : h.hi], chunks_per_shard
            )
            tasks = []
            for (lo, hi), pred in zip(bounds, predicted):
                glo, ghi = h.lo + lo, h.lo + hi
                tasks.append((glo, ghi))
                pred_map[(glo, ghi)] = float(pred)
            per_shard.append(tasks)
        return per_shard, pred_map

    def _run_pool(self, per_shard_tasks, cnt) -> list[ChunkStat]:
        pending = 0
        for task_q, tasks in zip(self._task_qs, per_shard_tasks):
            for lo, hi in tasks:
                task_q.put(("range", lo, hi))
                pending += 1
        chunk_stats: list[ChunkStat] = []
        while pending:
            try:
                msg = self._result_q.get(timeout=1.0)
            except Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    codes = [p.exitcode for p in dead]
                    raise RuntimeError(
                        f"{len(dead)} shard worker(s) died "
                        f"(exit codes {codes}) with {pending} chunks pending"
                    )
                continue
            if msg[0] == "err":
                raise RuntimeError(f"shard worker failed:\n{msg[1]}")
            _, eo, vals, stat = msg
            cnt[eo] = vals
            chunk_stats.append(stat)
            pending -= 1
        return chunk_stats

    def _run_inline(self, per_shard_tasks, cnt) -> list[ChunkStat]:
        """Serve every shard in-process over its attached segment.

        Same data path as the workers — attach the shared segment, count
        on the local CSR, remap offsets by the shard delta — minus the
        processes; this is what makes shard arithmetic cheaply fuzzable.
        """
        pid = os.getpid()
        chunk_stats: list[ChunkStat] = []
        for handle, tasks in zip(self.sharded.handles, per_shard_tasks):
            attached = handle.attach()
            try:
                local = attached.graph
                for lo, hi in tasks:
                    ops = OpCounts()
                    t0 = time.perf_counter()
                    eo, vals = count_vertex_range(local, lo, hi, ops)
                    dt = time.perf_counter() - t0
                    cnt[eo + handle.edge_offset_delta] = vals
                    chunk_stats.append(
                        ChunkStat(
                            pid,
                            lo,
                            hi,
                            len(eo),
                            dt,
                            ops,
                            bytes_attached=attached.nbytes(),
                            shard=handle.index,
                            rss_bytes=rss_bytes(),
                        )
                    )
            finally:
                attached.close()
        return chunk_stats


def count_all_edges_sharded(
    graph: CSRGraph,
    num_shards: int | None = None,
    budget_bytes: int | None = None,
    chunks_per_shard: int = 4,
    *,
    start_method: str | None = None,
    return_stats: bool = False,
    plan="auto",
) -> np.ndarray | tuple[np.ndarray, ParallelStats]:
    """One-shot sharded counts using a transient :class:`ShardedCounter`."""
    with ShardedCounter(
        graph,
        num_shards=num_shards,
        budget_bytes=budget_bytes,
        chunks_per_shard=chunks_per_shard,
        start_method=start_method,
        plan=plan,
    ) as counter:
        return counter.count_all_edges(with_stats=return_stats)
