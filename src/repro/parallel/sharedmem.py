"""Shared-memory CSR export/attach for spawn-safe parallel counting.

The fork-only backend relied on copy-on-write inheritance of the CSR
arrays, which silently degrades to sequential execution on spawn-only
platforms (macOS, Windows).  This module makes data placement explicit,
the way the distributed triangle-counting literature does: the parent
exports ``offsets``/``dst`` once into named ``multiprocessing.shared_memory``
blocks, and every worker — regardless of start method — reattaches the
same physical pages zero-copy through a small picklable
:class:`SharedCSRHandle`.

Lifecycle: the parent owns the blocks (:class:`SharedGraph`, a context
manager) and unlinks them exactly once; workers only attach and let
process exit drop their mappings.  Worker-side ``close()``/``unlink()``
is deliberately avoided: with the resource tracker shared between parent
and children, a child unregistering would corrupt the parent's tracking
(observed on CPython 3.11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.errors import SharedExportError
from repro.graph.csr import CSRGraph

__all__ = ["SharedCSRHandle", "AttachedCSR", "SharedGraph"]


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable reference to a CSR graph living in shared memory.

    Carries the shared-memory block names plus the :meth:`CSRGraph.buffer_spec`
    metadata; :meth:`attach` turns it back into a zero-copy graph in any
    process that can open the blocks.
    """

    offsets_name: str
    dst_name: str
    spec: dict = field(compare=False)

    def attach(self) -> "AttachedCSR":
        return AttachedCSR(self)


class AttachedCSR:
    """A worker-side zero-copy view of an exported graph.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` objects
    alive for as long as the graph is used.  ``close()`` drops the view —
    only call it after releasing every external reference to ``graph`` and
    its arrays.
    """

    def __init__(self, handle: SharedCSRHandle):
        self._shm_offsets = None
        self._shm_dst = None
        self._closed = False
        try:
            self._shm_offsets = shared_memory.SharedMemory(
                name=handle.offsets_name
            )
            self._shm_dst = shared_memory.SharedMemory(name=handle.dst_name)
        except FileNotFoundError as exc:
            # Attaching after the owner unlinked is a lifecycle bug on the
            # caller's side; surface it as a package error instead of the
            # incidental OSError, and release the block we did open.
            self.close()
            raise SharedExportError(str(exc.filename or exc)) from exc
        self.graph: CSRGraph | None = CSRGraph.from_buffers(
            self._shm_offsets.buf, self._shm_dst.buf, handle.spec
        )

    def nbytes(self) -> int:
        """Total bytes of shared memory mapped by this attachment."""
        total = 0
        for shm in (self._shm_offsets, self._shm_dst):
            if shm is not None:
                total += shm.size
        return total

    def close(self) -> None:
        """Release the mapping (the exporter still owns the blocks).

        Idempotent: double-close (e.g. explicit close followed by a
        defensive close in a ``finally`` block) is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self.graph = None
        for shm in (self._shm_offsets, self._shm_dst):
            if shm is None:  # partial attach failure
                continue
            try:
                shm.close()
            except BufferError:  # a live view still references the buffer
                pass


class SharedGraph:
    """Parent-side owner of the shared-memory copy of a graph.

    Creating one copies the CSR arrays into fresh shared-memory blocks
    (the only copy made; every attach afterwards is zero-copy).  Use as a
    context manager, or call :meth:`unlink` when all consumers are done.
    """

    def __init__(self, graph: CSRGraph):
        spec = graph.buffer_spec()
        # POSIX shared memory rejects zero-length segments; pad so empty
        # graphs still travel through the same code path.
        self._shm_offsets = shared_memory.SharedMemory(
            create=True, size=max(1, graph.offsets.nbytes)
        )
        self._shm_dst = shared_memory.SharedMemory(
            create=True, size=max(1, graph.dst.nbytes)
        )
        self._unlinked = False
        try:
            self._copy_in(self._shm_offsets, graph.offsets)
            self._copy_in(self._shm_dst, graph.dst)
        except BaseException:
            self.unlink()
            raise
        self.handle = SharedCSRHandle(
            offsets_name=self._shm_offsets.name,
            dst_name=self._shm_dst.name,
            spec=spec,
        )

    @staticmethod
    def _copy_in(shm: shared_memory.SharedMemory, arr: np.ndarray) -> None:
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        del view  # drop the exported pointer so close() cannot fail

    def nbytes(self) -> int:
        return self._shm_offsets.size + self._shm_dst.size

    def unlink(self) -> None:
        """Close and remove the blocks.  Idempotent."""
        if self._unlinked:
            return
        self._unlinked = True
        for shm in (self._shm_offsets, self._shm_dst):
            try:
                shm.close()
                shm.unlink()
            except (BufferError, FileNotFoundError):  # pragma: no cover
                pass

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedGraph(offsets={self.handle.offsets_name}, "
            f"dst={self.handle.dst_name}, bytes={self.nbytes()})"
        )
