"""The OpenMP parallel skeleton of Algorithm 3, executed faithfully.

``run_parallel_skeleton`` partitions the *directed* edge-offset range
``[0, 2|E|)`` into ``|T|``-sized tasks, deals them to simulated threads,
and runs each thread's tasks with the paper's per-thread state:

* a :class:`~repro.parallel.findsrc.SourceFinder` (the ``u_tls`` stash),
* for BMP, a thread-local bitmap plus the ``pu_tls`` last-built vertex,
  rebuilt only when the source vertex changes (Algorithm 3, lines 18-25).

The output must be identical for every ``(task_size, num_threads,
schedule)`` combination — the decomposition-invariance property the test
suite checks — and the per-thread bitmap rebuild counting makes the
paper's amortization argument measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import reverse_edge_offsets
from repro.kernels.bitmap import Bitmap, intersect_bitmap
from repro.kernels.blockmerge import intersect_block_merge
from repro.kernels.pivotskip import intersect_pivot_skip
from repro.parallel.findsrc import SourceFinder
from repro.parallel.tasks import DEFAULT_TASK_SIZE, fine_grained_chunks
from repro.types import OpCounts

__all__ = ["SkeletonStats", "run_parallel_skeleton"]


@dataclass(frozen=True)
class SkeletonStats:
    """Bookkeeping from a skeleton run."""

    counts: np.ndarray
    bitmap_builds: int  # total thread-local bitmap (re)builds
    tasks: int
    threads: int
    op_counts: OpCounts


class _ThreadState:
    """Per-thread state: FindSrc stash + (for BMP) bitmap and pu_tls."""

    __slots__ = ("finder", "bitmap", "pu", "builds")

    def __init__(self, graph: CSRGraph, use_bitmap: bool, counts: OpCounts):
        self.finder = SourceFinder(graph, counts)
        self.bitmap = Bitmap(graph.num_vertices) if use_bitmap else None
        self.pu = -1
        self.builds = 0

    def ensure_bitmap(self, graph: CSRGraph, u: int, counts: OpCounts) -> Bitmap:
        assert self.bitmap is not None
        if u != self.pu:
            if self.pu >= 0:
                self.bitmap.clear_many(graph.neighbors(self.pu), counts)
            self.bitmap.set_many(graph.neighbors(u), counts)
            self.pu = u
            self.builds += 1
        return self.bitmap


def run_parallel_skeleton(
    graph: CSRGraph,
    algorithm: str = "bmp",
    task_size: int = DEFAULT_TASK_SIZE,
    num_threads: int = 4,
    skew_threshold: float = 50.0,
    lane_width: int = 8,
    schedule: str = "round-robin",
) -> SkeletonStats:
    """Execute Algorithm 3 with simulated threads; exact counts out.

    ``schedule`` assigns tasks to threads: ``round-robin`` (interleaved,
    like a dynamic queue under uniform progress) or ``blocked``
    (contiguous ranges per thread, like a static schedule).
    """
    if algorithm not in ("bmp", "mps"):
        raise ValueError("algorithm must be 'bmp' or 'mps'")
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")

    m = graph.num_directed_edges
    starts = fine_grained_chunks(m, task_size)
    bounds = list(starts) + [m]
    tasks = [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(starts))]

    if schedule == "round-robin":
        assignment = [tasks[i::num_threads] for i in range(num_threads)]
    elif schedule == "blocked":
        splits = np.linspace(0, len(tasks), num_threads + 1).astype(int)
        assignment = [tasks[splits[i] : splits[i + 1]] for i in range(num_threads)]
    else:
        raise ValueError("schedule must be 'round-robin' or 'blocked'")

    cnt = np.zeros(m, dtype=np.int64)
    d = graph.degrees
    ops = OpCounts()
    total_builds = 0

    for thread_tasks in assignment:
        state = _ThreadState(graph, use_bitmap=(algorithm == "bmp"), counts=ops)
        for lo, hi in thread_tasks:
            for eo in range(lo, hi):
                v = int(graph.dst[eo])
                u = state.finder.find(eo)
                if u >= v:
                    continue
                if algorithm == "bmp":
                    bitmap = state.ensure_bitmap(graph, u, ops)
                    cnt[eo] = intersect_bitmap(bitmap, graph.neighbors(v), ops)
                else:
                    du, dv = max(int(d[u]), 1), max(int(d[v]), 1)
                    a1, a2 = graph.neighbors(u), graph.neighbors(v)
                    if du / dv <= skew_threshold and dv / du <= skew_threshold:
                        cnt[eo] = intersect_block_merge(a1, a2, ops, lane_width)
                    else:
                        cnt[eo] = intersect_pivot_skip(a1, a2, ops, lane_width)
        if state.bitmap is not None and state.pu >= 0:
            state.bitmap.clear_many(graph.neighbors(state.pu), ops)
            assert state.bitmap.is_clear()
        total_builds += state.builds

    # Symmetric assignment (Algorithm 3, line 6), vectorized.
    rev = reverse_edge_offsets(graph)
    src = graph.edge_sources()
    lower = src > graph.dst
    cnt[lower] = cnt[rev[lower]]

    return SkeletonStats(
        counts=cnt,
        bitmap_builds=total_builds,
        tasks=len(tasks),
        threads=num_threads,
        op_counts=ops,
    )
