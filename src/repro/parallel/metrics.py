"""Per-worker telemetry for the real parallel counting backend.

Every chunk a worker pulls off the dynamic queue comes back with a
:class:`ChunkStat` — who ran it, which vertex range, how many edge counts
it produced, how long it took, and the kernel :class:`~repro.types.OpCounts`
it charged.  :class:`ParallelStats` aggregates a request's chunk stats
into per-worker utilization, throughput, and a measured load-imbalance
figure that can be validated directly against the event-driven
:func:`~repro.parallel.scheduler.simulate_dynamic` model (paper §4's
``|T|`` trade-off, now observable on real wall-clock data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.scheduler import Schedule, simulate_dynamic
from repro.types import OpCounts

__all__ = [
    "ChunkStat",
    "ShardStat",
    "WorkerTelemetry",
    "ParallelStats",
    "rss_bytes",
]


def rss_bytes() -> int:
    """Peak resident-set size of the calling process, in bytes (0 if
    the platform exposes no ``getrusage``).  Workers report this so the
    bench can verify the per-worker memory claim of sharded execution."""
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(rss) * (1 if sys.platform == "darwin" else 1024)
    except Exception:  # pragma: no cover - exotic platforms
        return 0


@dataclass(frozen=True)
class ChunkStat:
    """One dynamically-scheduled chunk, as measured by the worker.

    ``predicted_cost`` is the planner's cost estimate for the chunk's
    vertex range (arbitrary units, comparable across chunks of the same
    request); ``None`` when the request ran without a plan.
    ``bytes_attached`` is the shared-memory footprint the worker mapped to
    serve the chunk (the whole export for the single-export backend, one
    shard segment for sharded execution); ``shard`` is the owning shard
    index, or ``None`` outside sharded runs.  ``rss_bytes`` is the
    worker's peak RSS when it finished the chunk.
    """

    worker_pid: int
    lo: int
    hi: int
    edges: int
    seconds: float
    ops: OpCounts | None = None
    predicted_cost: float | None = None
    bytes_attached: int = 0
    shard: int | None = None
    rss_bytes: int = 0


@dataclass(frozen=True)
class ShardStat:
    """Parent-side summary of one shard of a sharded request."""

    index: int
    lo: int
    hi: int
    owned_bytes: int
    boundary_bytes: int
    boundary_vertices: int
    attached_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.attached_bytes


@dataclass(frozen=True)
class WorkerTelemetry:
    """Aggregated view of one worker process across a request."""

    pid: int
    chunks: int
    edges: int
    busy_seconds: float
    bytes_attached: int = 0
    rss_bytes: int = 0

    @property
    def edges_per_sec(self) -> float:
        if self.busy_seconds <= 0:
            return 0.0
        return self.edges / self.busy_seconds


@dataclass
class ParallelStats:
    """Telemetry for one ``count_all_edges`` request.

    ``effective_workers`` may be smaller than ``requested_workers`` when
    the backend fell back (single CPU, shared-memory setup failure);
    ``fallback_reason`` records why, and the backend also raises a
    ``RuntimeWarning`` so the degradation is never silent.
    """

    requested_workers: int
    effective_workers: int
    start_method: str
    wall_seconds: float
    chunk_stats: list[ChunkStat] = field(default_factory=list)
    fallback_reason: str | None = None
    shard_stats: list[ShardStat] = field(default_factory=list)
    replication_factor: float | None = None

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    @property
    def num_chunks(self) -> int:
        return len(self.chunk_stats)

    @property
    def total_edges(self) -> int:
        """Computed ``u < v`` edge counts (before symmetric assignment)."""
        return sum(c.edges for c in self.chunk_stats)

    @property
    def edges_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_edges / self.wall_seconds

    @property
    def busy_seconds(self) -> float:
        """Total worker-side compute time across all chunks."""
        return float(sum(c.seconds for c in self.chunk_stats))

    def per_worker(self) -> list[WorkerTelemetry]:
        """One :class:`WorkerTelemetry` per participating worker pid."""
        agg: dict[int, list[ChunkStat]] = {}
        for c in self.chunk_stats:
            agg.setdefault(c.worker_pid, []).append(c)
        return [
            WorkerTelemetry(
                pid=pid,
                chunks=len(cs),
                edges=sum(c.edges for c in cs),
                busy_seconds=float(sum(c.seconds for c in cs)),
                bytes_attached=max(c.bytes_attached for c in cs),
                rss_bytes=max(c.rss_bytes for c in cs),
            )
            for pid, cs in sorted(agg.items())
        ]

    @property
    def max_worker_bytes_attached(self) -> int:
        """Largest shared-memory footprint any single worker mapped —
        the quantity the shard budget bounds."""
        if not self.chunk_stats:
            return 0
        return max(c.bytes_attached for c in self.chunk_stats)

    def aggregate_ops(self) -> OpCounts:
        """Sum of the kernel op counts charged by every chunk."""
        total = OpCounts()
        for c in self.chunk_stats:
            if c.ops is not None:
                total += c.ops
        return total

    @property
    def imbalance(self) -> float:
        """Measured load imbalance: ``max(busy) / mean(busy) - 1``.

        The mean is taken over ``effective_workers`` (idle workers count
        as zero busy time), mirroring the scheduler simulator's
        ``makespan / ideal - 1`` definition.
        """
        busy = [w.busy_seconds for w in self.per_worker()]
        if not busy:
            return 0.0
        mean = sum(busy) / max(self.effective_workers, 1)
        if mean <= 0:
            return 0.0
        return max(busy) / mean - 1.0

    def chunk_seconds(self) -> np.ndarray:
        """Measured per-chunk costs in queue (submission) order."""
        order = sorted(self.chunk_stats, key=lambda c: c.lo)
        return np.array([c.seconds for c in order], dtype=np.float64)

    @property
    def chunk_imbalance(self) -> float:
        """Per-chunk work spread: ``max(seconds) / mean(seconds) - 1``.

        Unlike :attr:`imbalance` this is meaningful even with one worker —
        it measures how evenly the *chunking policy* split the work, which
        is exactly what work-weighted boundaries are supposed to improve.
        """
        secs = self.chunk_seconds()
        if len(secs) == 0 or secs.mean() <= 0:
            return 0.0
        return float(secs.max() / secs.mean() - 1.0)

    @property
    def predicted_chunk_imbalance(self) -> float | None:
        """Planner-predicted chunk spread, when a plan drove the chunking."""
        pred = [
            c.predicted_cost
            for c in self.chunk_stats
            if c.predicted_cost is not None
        ]
        if len(pred) != len(self.chunk_stats) or not pred:
            return None
        arr = np.asarray(pred, dtype=np.float64)
        if arr.mean() <= 0:
            return 0.0
        return float(arr.max() / arr.mean() - 1.0)

    def prediction_error(self) -> float | None:
        """Mean relative error of predicted vs measured chunk cost shares.

        Both vectors are normalized to sum to 1 (the planner's units are
        arbitrary), so this reports how well the plan ranked the chunks —
        the quantity that decides boundary quality.
        """
        stats = [c for c in self.chunk_stats if c.predicted_cost is not None]
        if len(stats) != len(self.chunk_stats) or not stats:
            return None
        pred = np.array([c.predicted_cost for c in stats], dtype=np.float64)
        meas = np.array([c.seconds for c in stats], dtype=np.float64)
        if pred.sum() <= 0 or meas.sum() <= 0:
            return None
        pred /= pred.sum()
        meas /= meas.sum()
        return float(np.abs(pred - meas).mean() / max(meas.mean(), 1e-30))

    def simulated_schedule(self, dequeue_overhead: float = 0.0) -> Schedule:
        """Replay the measured chunk costs through the dynamic-schedule
        simulator — the bridge between real telemetry and the model that
        feeds Figures 5-10."""
        return simulate_dynamic(
            self.chunk_seconds(), max(self.effective_workers, 1), dequeue_overhead
        )

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """Human-readable telemetry block (the CLI's ``--stats`` output)."""
        lines = [
            f"workers          : {self.effective_workers} effective / "
            f"{self.requested_workers} requested ({self.start_method})",
            f"chunks           : {self.num_chunks}",
            f"wall time        : {self.wall_seconds:.4f} s "
            f"({self.edges_per_sec:,.0f} edges/s)",
        ]
        if self.fallback_reason:
            lines.append(f"fallback         : {self.fallback_reason}")
        for w in self.per_worker():
            line = (
                f"worker {w.pid:<9d} : {w.chunks} chunks, {w.edges} edges, "
                f"{w.busy_seconds:.4f} s busy ({w.edges_per_sec:,.0f} edges/s)"
            )
            if w.bytes_attached:
                line += f", {w.bytes_attached / 2**20:.2f} MiB attached"
            lines.append(line)
        for s in self.shard_stats:
            lines.append(
                f"shard {s.index:<10d} : vertices [{s.lo}, {s.hi}), "
                f"{s.owned_bytes / 2**20:.2f} MiB owned + "
                f"{s.boundary_bytes / 2**20:.2f} MiB boundary "
                f"({s.boundary_vertices} cols), "
                f"{s.attached_bytes / 2**20:.2f} MiB attached"
            )
        if self.replication_factor is not None:
            lines.append(
                f"replication      : {self.replication_factor:.2f}x of the "
                "single export across all shards"
            )
        if self.chunk_stats:
            sched = self.simulated_schedule()
            lines.append(
                f"imbalance        : measured {100 * self.imbalance:.1f}%, "
                f"simulated dynamic {100 * sched.imbalance:.1f}%"
            )
            chunk_line = (
                f"chunk imbalance  : measured {100 * self.chunk_imbalance:.1f}%"
            )
            pred_imb = self.predicted_chunk_imbalance
            if pred_imb is not None:
                chunk_line += f", plan-predicted {100 * pred_imb:.1f}%"
            lines.append(chunk_line)
            err = self.prediction_error()
            if err is not None:
                lines.append(
                    f"plan accuracy    : mean chunk-share error "
                    f"{100 * err:.1f}% of mean"
                )
            ops = self.aggregate_ops()
            lines.append(
                f"kernel ops       : {ops.bitmap_set} set, {ops.bitmap_test} test, "
                f"{ops.bitmap_clear} clear, {ops.matches} matches"
            )
        return "\n".join(lines)
