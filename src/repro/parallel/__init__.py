"""Parallel runtime: task construction, FindSrc, scheduling, real threads.

The paper parallelizes with OpenMP ``schedule(dynamic, |T|)`` on the
CPU/KNL (fine-grained edge-range tasks) and with hardware block scheduling
on the GPU (coarse-grained per-vertex tasks).  This package provides the
equivalent machinery: task partitioners, the amortized ``FindSrc`` source
lookup, an event-driven dynamic-scheduler simulator (used by the processor
models), and a real ``multiprocessing`` execution path.
"""

from repro.parallel.tasks import (
    fine_grained_chunks,
    coarse_grained_tasks,
    DEFAULT_TASK_SIZE,
)
from repro.parallel.findsrc import SourceFinder
from repro.parallel.scheduler import (
    Schedule,
    simulate_dynamic,
    simulate_sharded,
    simulate_static,
    chunk_work,
)
from repro.parallel.metrics import (
    ChunkStat,
    ParallelStats,
    ShardStat,
    WorkerTelemetry,
)
from repro.parallel.sharedmem import AttachedCSR, SharedCSRHandle, SharedGraph
from repro.parallel.threadpool import (
    ParallelCounter,
    count_all_edges_parallel,
    resolve_start_method,
)
from repro.parallel.sharding import (
    ShardedCounter,
    ShardedGraph,
    ShardHandle,
    count_all_edges_sharded,
)
from repro.parallel.skeleton import run_parallel_skeleton, SkeletonStats

__all__ = [
    "fine_grained_chunks",
    "coarse_grained_tasks",
    "DEFAULT_TASK_SIZE",
    "SourceFinder",
    "Schedule",
    "simulate_dynamic",
    "simulate_sharded",
    "simulate_static",
    "chunk_work",
    "ChunkStat",
    "ParallelStats",
    "ShardStat",
    "WorkerTelemetry",
    "AttachedCSR",
    "SharedCSRHandle",
    "SharedGraph",
    "ParallelCounter",
    "count_all_edges_parallel",
    "resolve_start_method",
    "ShardedCounter",
    "ShardedGraph",
    "ShardHandle",
    "count_all_edges_sharded",
    "run_parallel_skeleton",
    "SkeletonStats",
]
