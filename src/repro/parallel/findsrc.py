"""``FindSrc`` — amortized source-vertex lookup (Algorithm 3, lines 7-15).

The parallel skeleton iterates edge *offsets*, so each task must recover
the source vertex ``u`` of offset ``e(u, v)`` without materializing the
per-edge source array.  The paper stashes the previously found vertex in a
thread-local and only runs the (expensive) lower-bound search when the
current offset leaves the stashed vertex's range — amortizing the search
over the run of offsets sharing a source.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import OpCounts

__all__ = ["SourceFinder"]


class SourceFinder:
    """Stateful per-thread source-vertex finder.

    Faithful to the paper's procedure, including the fix-ups around
    zero-degree vertices (whose empty offset ranges alias their
    neighbors' boundaries).
    """

    __slots__ = ("graph", "_u", "counts")

    def __init__(self, graph: CSRGraph, counts: OpCounts | None = None):
        self.graph = graph
        self._u = 0
        self.counts = counts

    def reset(self) -> None:
        """Forget the stash (a new task may jump backwards)."""
        self._u = 0

    def find(self, edge_offset: int) -> int:
        """Source vertex of ``edge_offset``; amortized O(1) on scans."""
        off = self.graph.offsets
        n = self.graph.num_vertices
        degrees = self.graph.degrees
        u = self._u

        if edge_offset < off[u]:
            # The stash is ahead of the target (e.g. a fresh task starting
            # earlier): restart the stash, mirroring a new thread-local.
            u = 0

        if edge_offset >= off[u + 1]:
            # Lower bound of edge_offset in off[u+1 .. n], then fix up.
            lo, hi = u + 1, n
            steps = 0
            while lo < hi:
                mid = (lo + hi) // 2
                steps += 1
                if off[mid] < edge_offset:
                    lo = mid + 1
                else:
                    hi = mid
            u = lo
            if self.counts is not None:
                self.counts.binary_steps += steps
                self.counts.rand_words += steps
            if off[u] > edge_offset:
                # Landed past the owner: step back over zero-degree runs.
                while degrees[u - 1] == 0:
                    u -= 1
                u -= 1
            else:
                # off[u] == edge_offset: skip forward over empty vertices.
                while degrees[u] == 0:
                    u += 1
        self._u = u
        return u
