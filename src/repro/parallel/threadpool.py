"""Real parallel execution of all-edge counting via ``multiprocessing``.

This is the substitute for the paper's OpenMP execution.  The vertex range
is split into ``num_workers x chunks_per_worker`` chunks of roughly equal
adjacency volume (the over-decomposition knob mirroring the paper's
``|T|``), the chunks go onto a shared dynamic queue, and a **persistent
pool of worker processes** pulls them until the queue drains — exactly the
``schedule(dynamic)`` behavior §4 tunes.

Unlike the original fork-only backend, the CSR arrays are exported once
into named shared memory (:mod:`repro.parallel.sharedmem`) and reattached
zero-copy in every worker, so the pool works under *any* start method —
``fork``, ``spawn``, or ``forkserver`` — instead of silently degrading to
sequential execution on spawn-only platforms.  A :class:`ParallelCounter`
keeps its workers alive across requests; ``count_all_edges_parallel``
wraps it for one-shot use.  Every chunk reports per-worker telemetry
(:mod:`repro.parallel.metrics`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
from dataclasses import replace
from queue import Empty

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import count_edges_bitmap, symmetric_assign
from repro.parallel.metrics import ChunkStat, ParallelStats, rss_bytes
from repro.parallel.sharedmem import SharedCSRHandle, SharedGraph
from repro.types import OpCounts

__all__ = [
    "ParallelCounter",
    "count_all_edges_parallel",
    "count_vertex_range",
    "resolve_start_method",
]

#: Environment override for the pool's start method (used by the CI matrix
#: to pin both the fork and the spawn leg).
START_METHOD_ENV = "MP_START_METHOD"

_STOP = None  # queue sentinel


def count_vertex_range(
    graph: CSRGraph,
    lo: int,
    hi: int,
    counts: OpCounts | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Counts for all ``u < v`` edges whose source ``u`` lies in [lo, hi).

    Returns ``(edge_offsets, counts)`` for the computed entries.  Runs the
    degree-bucketed :func:`~repro.kernels.batch.count_edges_bitmap` kernel
    over the range's upper edge offsets — groups of source vertices per
    NumPy dispatch, the same code path as the sequential bitmap backend —
    into a compact buffer aligned with the offsets.  When an
    :class:`OpCounts` is passed, the BMP-structure work (bitmap set/test/
    clear, word traffic, matches) is charged to it.
    """
    offsets = graph.offsets
    dst = graph.dst
    span = np.arange(int(offsets[lo]), int(offsets[hi]), dtype=np.int64)
    src = np.searchsorted(offsets, span, side="right") - 1
    eo = span[src < dst[span]]
    vals = np.zeros(len(eo), dtype=np.int64)
    if len(eo):
        count_edges_bitmap(graph, eo, vals, counts, aligned=True)
    return eo, vals


def _vertex_chunks(graph: CSRGraph, num_chunks: int) -> list[tuple[int, int]]:
    """Split vertices into chunks of roughly equal adjacency volume."""
    n = graph.num_vertices
    num_chunks = max(1, min(num_chunks, n)) if n else 1
    targets = np.linspace(0, graph.num_directed_edges, num_chunks + 1)
    bounds = np.searchsorted(graph.offsets, targets, side="left")
    bounds[0] = 0
    bounds[-1] = n
    bounds = np.maximum.accumulate(bounds)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def resolve_start_method(start_method: str | None = None) -> str:
    """Pick the pool's start method.

    Priority: explicit argument > ``MP_START_METHOD`` environment variable
    > ``fork`` when available (cheapest) > the platform default.  Unknown
    or unavailable methods raise ``ValueError`` so a CI matrix leg can
    never silently test the wrong path.
    """
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    available = mp.get_all_start_methods()
    if method is None:
        return "fork" if "fork" in available else mp.get_start_method()
    if method not in available:
        raise ValueError(
            f"start method {method!r} not available on this platform "
            f"(have {available})"
        )
    return method


def _worker_main(handle: SharedCSRHandle, task_q, result_q) -> None:
    """Worker loop: attach the shared CSR once, then serve chunk tasks.

    Two task kinds share the queue: ``("range", lo, hi)`` counts a vertex
    range (the all-edge request path), ``("edges", eo)`` counts an
    explicit sorted array of upper edge offsets (the hybrid planner
    farming its bitmap bucket out to the pool).
    """
    attached = handle.attach()
    graph = attached.graph
    pid = os.getpid()
    attached_bytes = attached.nbytes()
    while True:
        task = task_q.get()
        if task is _STOP:
            break
        try:
            ops = OpCounts()
            t0 = time.perf_counter()
            if task[0] == "range":
                _, lo, hi = task
                eo, vals = count_vertex_range(graph, lo, hi, ops)
            else:
                _, eo = task
                lo = hi = -1
                vals = np.zeros(len(eo), dtype=np.int64)
                if len(eo):
                    count_edges_bitmap(graph, eo, vals, ops, aligned=True)
            dt = time.perf_counter() - t0
        except BaseException:  # pragma: no cover - defensive
            result_q.put(("err", traceback.format_exc()))
            continue
        stat = ChunkStat(
            pid,
            lo,
            hi,
            len(eo),
            dt,
            ops,
            bytes_attached=attached_bytes,
            rss_bytes=rss_bytes(),
        )
        result_q.put(("ok", eo, vals, stat))


class ParallelCounter:
    """Persistent shared-memory counting service (context manager).

    Exports the graph to shared memory and starts ``num_workers`` worker
    processes **once**; every subsequent :meth:`count_all_edges` request
    reuses the same workers and the same zero-copy CSR pages — no pool
    construction, no graph pickling, no fork-time luck.

    Parameters
    ----------
    graph:
        The graph to serve requests for.
    num_workers:
        Worker process count; default ``os.cpu_count()``.  ``1`` runs
        in-process (no pool, no shared memory).
    chunks_per_worker:
        Over-decomposition factor (the paper's ``|T|`` knob): more chunks
        per worker means better dynamic load balance at slightly higher
        queue overhead.  Can be overridden per request.
    start_method:
        ``fork``/``spawn``/``forkserver``; see :func:`resolve_start_method`.
    plan:
        ``"auto"`` (default) prices the graph through the hybrid planner
        (:func:`repro.plan.get_plan`, cached by CSR fingerprint) and cuts
        chunk boundaries on the cumulative *predicted cost* curve instead
        of the adjacency-volume curve — the work-balanced partitioning the
        paper's scaling depends on.  Pass ``None`` for the legacy
        equal-volume chunking, or an explicit
        :class:`~repro.plan.ExecutionPlan` to reuse one you already hold.
        With a plan attached, every :class:`ChunkStat` carries the
        planner's ``predicted_cost`` next to the measured seconds.
    shared:
        An already-exported :class:`~repro.parallel.sharedmem.SharedGraph`
        for the same CSR, **borrowed** from the caller (typically a
        :class:`~repro.engine.session.GraphSession`): the pool reattaches
        it in every worker instead of exporting a second copy, and never
        unlinks it — the owner does.
    on_fallback:
        Callback receiving the sequential-fallback message instead of the
        default ``warnings.warn``.  A session that rebuilds pools across
        many requests passes a once-per-session deduplicator here so a
        warm session does not re-emit the same ``RuntimeWarning`` on
        every count.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        start_method: str | None = None,
        plan="auto",
        shared: SharedGraph | None = None,
        on_fallback=None,
    ):
        self.graph = graph
        self.plan = plan
        self._borrowed_shared = shared
        self._on_fallback = on_fallback
        self.requested_workers = max(
            1, int(num_workers) if num_workers is not None else (os.cpu_count() or 1)
        )
        self._explicit_single = num_workers is not None and int(num_workers) == 1
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self._start_method_arg = start_method
        self.start_method = "in-process"
        self.effective_workers = 1
        self.fallback_reason: str | None = None
        self._shared: SharedGraph | None = None
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ParallelCounter":
        """Export the graph and launch the persistent workers."""
        if self._started:
            return self
        self._started = True
        method = resolve_start_method(self._start_method_arg)

        if self.requested_workers == 1:
            if not self._explicit_single:
                self.fallback_reason = "only one CPU available"
            return self._finish_start_sequential()

        try:
            if self._borrowed_shared is not None:
                self._shared = self._borrowed_shared
            else:
                self._shared = SharedGraph(self.graph)
            ctx = mp.get_context(method)
            self._task_q = ctx.Queue()
            self._result_q = ctx.Queue()
            procs = []
            for _ in range(self.requested_workers):
                p = ctx.Process(
                    target=_worker_main,
                    args=(self._shared.handle, self._task_q, self._result_q),
                    daemon=True,
                )
                p.start()
                procs.append(p)
            self._procs = procs
        except (OSError, ValueError, ImportError) as exc:
            self._teardown_pool()
            self.fallback_reason = f"shared-memory pool setup failed: {exc}"
            return self._finish_start_sequential()

        self.start_method = method
        self.effective_workers = self.requested_workers
        return self

    def _finish_start_sequential(self) -> "ParallelCounter":
        self.start_method = "in-process"
        self.effective_workers = 1
        if self.fallback_reason is not None:
            requested = (
                f" of {self.requested_workers} requested"
                if self.requested_workers > 1
                else ""
            )
            message = (
                f"parallel backend running sequentially "
                f"({self.fallback_reason}); effective workers = 1{requested}"
            )
            if self._on_fallback is not None:
                self._on_fallback(message)
            else:
                warnings.warn(message, RuntimeWarning, stacklevel=3)
        return self

    @property
    def is_parallel(self) -> bool:
        return bool(self._procs)

    def worker_pids(self) -> list[int]:
        """PIDs of the persistent worker processes (empty when in-process)."""
        return [p.pid for p in self._procs]

    def close(self) -> None:
        """Stop the workers and release the shared-memory blocks."""
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()

    def _teardown_pool(self) -> None:
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put(_STOP)
                except (OSError, ValueError):  # pragma: no cover
                    break
        for p in self._procs:
            p.join(timeout=10)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=5)
        self._procs = []
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.close()
                q.join_thread()
        self._task_q = self._result_q = None
        if self._shared is not None:
            if self._shared is not self._borrowed_shared:
                self._shared.unlink()
            self._shared = None

    def __enter__(self) -> "ParallelCounter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    def count_all_edges(
        self,
        chunks_per_worker: int | None = None,
        with_stats: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, ParallelStats]:
        """All-edge common neighbor counts, aligned with ``graph.dst``.

        With ``with_stats=True`` also returns the request's
        :class:`~repro.parallel.metrics.ParallelStats`.
        """
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("ParallelCounter is closed")
        cpw = self.chunks_per_worker if chunks_per_worker is None else max(
            1, int(chunks_per_worker)
        )
        num_chunks = self.effective_workers * cpw
        chunks, pred_map = self._make_chunks(num_chunks)
        cnt = np.zeros(self.graph.num_directed_edges, dtype=np.int64)
        t0 = time.perf_counter()

        if self.is_parallel:
            chunk_stats = self._run_pool(chunks, cnt)
        else:
            chunk_stats = self._run_inline(chunks, cnt)

        if pred_map:
            chunk_stats = [
                replace(s, predicted_cost=pred_map.get((s.lo, s.hi)))
                for s in chunk_stats
            ]
        wall = time.perf_counter() - t0
        counts = symmetric_assign(self.graph, cnt)
        if not with_stats:
            return counts
        stats = ParallelStats(
            requested_workers=self.requested_workers,
            effective_workers=self.effective_workers,
            start_method=self.start_method,
            wall_seconds=wall,
            chunk_stats=chunk_stats,
            fallback_reason=self.fallback_reason,
        )
        return counts, stats

    def _make_chunks(
        self, num_chunks: int
    ) -> tuple[list[tuple[int, int]], dict[tuple[int, int], float]]:
        """Chunk boundaries plus (when planned) predicted cost per chunk."""
        plan = self.plan
        if plan == "auto":
            from repro.plan import get_plan

            plan = get_plan(self.graph)
        if plan is None:
            return _vertex_chunks(self.graph, num_chunks), {}
        from repro.plan import weighted_vertex_chunks

        n = self.graph.num_vertices
        num_chunks = max(1, min(num_chunks, n)) if n else 1
        bounds, predicted = weighted_vertex_chunks(plan.chunk_cost, num_chunks)
        if not bounds:
            return _vertex_chunks(self.graph, num_chunks), {}
        return bounds, dict(zip(bounds, predicted))

    def _run_pool(self, chunks, cnt) -> list[ChunkStat]:
        chunk_stats: list[ChunkStat] = []
        for eo, vals, stat in self._submit_and_collect(
            [("range", lo, hi) for lo, hi in chunks]
        ):
            cnt[eo] = vals
            chunk_stats.append(stat)
        return chunk_stats

    def _submit_and_collect(self, tasks) -> list[tuple]:
        """Push tasks onto the shared queue, drain all results (any order)."""
        for task in tasks:
            self._task_q.put(task)
        results: list[tuple] = []
        pending = len(tasks)
        while pending:
            try:
                msg = self._result_q.get(timeout=1.0)
            except Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    codes = [p.exitcode for p in dead]
                    raise RuntimeError(
                        f"{len(dead)} parallel worker(s) died "
                        f"(exit codes {codes}) with {pending} chunks pending"
                    )
                continue
            if msg[0] == "err":
                raise RuntimeError(f"parallel worker failed:\n{msg[1]}")
            _, eo, vals, stat = msg
            results.append((eo, vals, stat))
            pending -= 1
        return results

    def run_edge_chunks(
        self, chunks: list[np.ndarray], with_stats: bool = False
    ) -> list[tuple]:
        """Count explicit edge-offset chunks on the pool; ``(eo, vals)`` pairs.

        Each chunk is a sorted int64 array of upper (``u < v``) edge
        offsets — the hybrid planner uses this to run its bitmap bucket
        work-weighted across the persistent workers.  Results come back in
        arbitrary order (callers scatter by offset).  Falls back to
        in-process execution when the pool is sequential.

        With ``with_stats=True`` each element is ``(eo, vals, ChunkStat)``
        — edge tasks report the same per-worker telemetry (timings,
        bytes attached, peak RSS) as range tasks, so ``--stats`` covers
        the hybrid planner's pool-farmed bitmap bucket too.
        """
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("ParallelCounter is closed")
        chunks = [np.asarray(c, dtype=np.int64) for c in chunks if len(c)]
        if not chunks:
            return []
        if not self.is_parallel:
            pid = os.getpid()
            out = []
            for eo in chunks:
                ops = OpCounts()
                t0 = time.perf_counter()
                vals = np.zeros(len(eo), dtype=np.int64)
                count_edges_bitmap(self.graph, eo, vals, ops, aligned=True)
                dt = time.perf_counter() - t0
                if with_stats:
                    stat = ChunkStat(
                        pid, -1, -1, len(eo), dt, ops, rss_bytes=rss_bytes()
                    )
                    out.append((eo, vals, stat))
                else:
                    out.append((eo, vals))
            return out
        results = self._submit_and_collect([("edges", eo) for eo in chunks])
        if with_stats:
            return results
        return [(eo, vals) for eo, vals, _ in results]

    def _run_inline(self, chunks, cnt) -> list[ChunkStat]:
        pid = os.getpid()
        chunk_stats: list[ChunkStat] = []
        for lo, hi in chunks:
            ops = OpCounts()
            t0 = time.perf_counter()
            eo, vals = count_vertex_range(self.graph, lo, hi, ops)
            dt = time.perf_counter() - t0
            cnt[eo] = vals
            chunk_stats.append(ChunkStat(pid, lo, hi, len(eo), dt, ops))
        return chunk_stats


def count_all_edges_parallel(
    graph: CSRGraph,
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
    *,
    start_method: str | None = None,
    return_stats: bool = False,
    plan="auto",
) -> np.ndarray | tuple[np.ndarray, ParallelStats]:
    """One-shot all-edge counts using a transient :class:`ParallelCounter`.

    ``chunks_per_worker > 1`` gives the dynamic queue load balancing — the
    same over-decomposition trade-off the paper tunes with ``|T|``.  Works
    under every ``multiprocessing`` start method (shared-memory CSR
    export); any fallback to sequential execution emits a
    ``RuntimeWarning``.  For repeated requests on the same graph, keep a
    :class:`ParallelCounter` open instead.
    """
    with ParallelCounter(
        graph,
        num_workers=num_workers,
        chunks_per_worker=chunks_per_worker,
        start_method=start_method,
        plan=plan,
    ) as counter:
        return counter.count_all_edges(with_stats=return_stats)
