"""Real parallel execution of all-edge counting via ``multiprocessing``.

This is the substitute for the paper's OpenMP execution: the vertex range
is split into coarse chunks, each worker process counts its chunk with the
vectorized BMP-structured path (NumPy releases the GIL-equivalent cost by
running in separate processes), and the parent stitches the per-chunk
results and applies the symmetric assignment.

On fork-based platforms the graph is inherited copy-on-write, so no
serialization of the CSR arrays happens per task.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import symmetric_assign

__all__ = ["count_all_edges_parallel", "count_vertex_range"]

# Worker-global graph reference, installed by the initializer (fork) so the
# CSR arrays are shared copy-on-write rather than pickled per task.
_WORKER_GRAPH: CSRGraph | None = None


def _init_worker(graph: CSRGraph) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def count_vertex_range(
    graph: CSRGraph, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Counts for all ``u < v`` edges whose source ``u`` lies in [lo, hi).

    Returns ``(edge_offsets, counts)`` for the computed entries.
    """
    offsets = graph.offsets
    dst = graph.dst
    n = graph.num_vertices
    mark = np.zeros(n, dtype=bool)
    out_off: list[np.ndarray] = []
    out_cnt: list[np.ndarray] = []

    for u in range(lo, hi):
        a, b = offsets[u], offsets[u + 1]
        if b == a:
            continue
        nbrs = dst[a:b]
        first = int(np.searchsorted(nbrs, u + 1))
        if first == b - a:
            continue
        mark[nbrs] = True
        vs = nbrs[first:].astype(np.int64)
        starts = offsets[vs]
        lens = offsets[vs + 1] - starts
        seg_ends = np.cumsum(lens)
        flat = np.arange(int(lens.sum()), dtype=np.int64)
        flat += np.repeat(starts - (seg_ends - lens), lens)
        hits = mark[dst[flat]]
        sums = np.add.reduceat(hits, seg_ends - lens)
        out_off.append(np.arange(a + first, b, dtype=np.int64))
        out_cnt.append(sums.astype(np.int64))
        mark[nbrs] = False

    if not out_off:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(out_off), np.concatenate(out_cnt)


def _worker_task(bounds: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    return count_vertex_range(_WORKER_GRAPH, bounds[0], bounds[1])


def _vertex_chunks(graph: CSRGraph, num_chunks: int) -> list[tuple[int, int]]:
    """Split vertices into chunks of roughly equal adjacency volume."""
    n = graph.num_vertices
    num_chunks = max(1, min(num_chunks, n)) if n else 1
    targets = np.linspace(0, graph.num_directed_edges, num_chunks + 1)
    bounds = np.searchsorted(graph.offsets, targets, side="left")
    bounds[0] = 0
    bounds[-1] = n
    bounds = np.maximum.accumulate(bounds)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def count_all_edges_parallel(
    graph: CSRGraph,
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
) -> np.ndarray:
    """All-edge counts using a pool of worker processes.

    ``chunks_per_worker > 1`` gives the pool dynamic load balancing — the
    same over-decomposition trade-off the paper tunes with ``|T|``.
    Falls back to in-process execution when only one worker is available
    or the platform lacks ``fork``.
    """
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, int(num_workers))

    chunks = _vertex_chunks(graph, num_workers * chunks_per_worker)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)

    if num_workers == 1 or "fork" not in mp.get_all_start_methods():
        results = [count_vertex_range(graph, lo, hi) for lo, hi in chunks]
    else:
        ctx = mp.get_context("fork")
        with ctx.Pool(
            processes=num_workers, initializer=_init_worker, initargs=(graph,)
        ) as pool:
            results = pool.map(_worker_task, chunks)

    for eo, vals in results:
        cnt[eo] = vals
    return symmetric_assign(graph, cnt)
