"""Benchmark harness: experiment definitions and table rendering."""

from repro.bench.harness import ExperimentResult, render_table
from repro.bench.figures import ascii_bars, ascii_series
from repro.bench import experiments

__all__ = ["ExperimentResult", "render_table", "ascii_bars", "ascii_series", "experiments"]
