"""One function per paper table/figure.

Each function runs the reproduction workload (scaled stand-ins + the
architecture simulator) and returns an :class:`ExperimentResult` whose
rows mirror the paper's table/figure.  The ``benchmarks/`` suite wraps
these in pytest-benchmark targets and asserts the expected *shapes*
(who wins, roughly by how much) — see EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult
from repro.graph.datasets import (
    PAPER_TABLE1,
    PAPER_TABLE2_SKEW,
    dataset_names,
    load_dataset,
    memory_scale,
)
from repro.graph.stats import graph_statistics
from repro.simarch import simulate

__all__ = [
    "table1_datasets",
    "table2_skew",
    "fig3_skew_handling",
    "fig4_vectorization",
    "fig5_scalability",
    "table3_bitmap_memory",
    "fig6_range_filtering",
    "fig7_mcdram",
    "table4_breakdown",
    "table5_coprocessing",
    "table6_memory_passes",
    "fig8_multipass",
    "table7_gpu_rf",
    "fig9_block_size",
    "fig10_comparison",
]

#: Datasets the paper uses for the per-technique studies (§5.2).
TECH_DATASETS = ("tw", "fr")


def _graph(name: str, scale: float = 1.0):
    return load_dataset(name, scale=scale, reordered=True)


# ---------------------------------------------------------------- #
# Tables 1 & 2
# ---------------------------------------------------------------- #
def table1_datasets(scale: float = 1.0) -> ExperimentResult:
    """Table 1: dataset statistics (stand-ins vs the paper's originals)."""
    rows = []
    for name in dataset_names():
        g = load_dataset(name, scale=scale)
        s = graph_statistics(g, name)
        p = PAPER_TABLE1[name]
        rows.append(
            [
                name,
                s.num_vertices,
                s.num_edges,
                round(s.average_degree, 1),
                s.max_degree,
                p["V"],
                p["E"],
                p["avg_d"],
                p["max_d"],
            ]
        )
    return ExperimentResult(
        "table1",
        "Real-world graph statistics (stand-in | paper)",
        ["dataset", "|V|", "|E|", "avg_d", "max_d", "paper_V", "paper_E", "paper_avg_d", "paper_max_d"],
        rows,
    )


def table2_skew(scale: float = 1.0, threshold: float = 50.0) -> ExperimentResult:
    """Table 2: percentage of highly skewed intersections (d_u/d_v > 50)."""
    from repro.graph.stats import skew_percentage

    rows = []
    for name in dataset_names():
        g = load_dataset(name, scale=scale)
        rows.append(
            [
                name,
                round(skew_percentage(g, threshold), 1),
                PAPER_TABLE2_SKEW[name],
            ]
        )
    return ExperimentResult(
        "table2",
        f"Highly skewed intersections (ratio > {threshold:g}), % of edges",
        ["dataset", "skew_%", "paper_skew_%"],
        rows,
        notes=["paper value for TW (31%) is from the text; others inferred"],
    )


# ---------------------------------------------------------------- #
# Figure 3: degree skew handling (single threaded)
# ---------------------------------------------------------------- #
def fig3_skew_handling(scale: float = 1.0) -> ExperimentResult:
    """Figure 3: M vs MPS vs BMP, single-threaded, CPU and KNL."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for proc in ("cpu", "knl"):
            times = {
                name: simulate(
                    g, name, proc, threads=1, mcdram_mode="ddr"
                ).seconds
                for name in ("M", "MPS-SCALAR", "BMP")
            }
            rows.append(
                [
                    ds,
                    proc,
                    times["M"],
                    times["MPS-SCALAR"],
                    times["BMP"],
                    round(times["M"] / times["MPS-SCALAR"], 1),
                    round(times["M"] / times["BMP"], 1),
                ]
            )
    return ExperimentResult(
        "fig3",
        "Degree skew handling, single-threaded (modeled seconds)",
        ["dataset", "proc", "M", "MPS", "BMP", "MPS_speedup", "BMP_speedup"],
        rows,
        notes=["paper: TW speedups MPS 3.6x/7.1x, BMP 20.1x/29.3x (CPU/KNL); FR: MPS~1x"],
    )


# ---------------------------------------------------------------- #
# Figure 4: vectorization
# ---------------------------------------------------------------- #
def fig4_vectorization(scale: float = 1.0) -> ExperimentResult:
    """Figure 4: MPS vs vectorized MPS (AVX2 on CPU, AVX-512 on KNL) vs BMP."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for proc, vec_name in (("cpu", "MPS-AVX2"), ("knl", "MPS-AVX512")):
            t_mps = simulate(g, "MPS-SCALAR", proc, threads=1, mcdram_mode="ddr").seconds
            t_vec = simulate(g, vec_name, proc, threads=1, mcdram_mode="ddr").seconds
            t_bmp = simulate(g, "BMP", proc, threads=1, mcdram_mode="ddr").seconds
            rows.append(
                [ds, proc, t_mps, t_vec, t_bmp, round(t_mps / t_vec, 2)]
            )
    return ExperimentResult(
        "fig4",
        "Vectorization effect, single-threaded (modeled seconds)",
        ["dataset", "proc", "MPS", "MPS_vectorized", "BMP", "V_speedup"],
        rows,
        notes=["paper: AVX2 1.9-2.0x, AVX-512 2.6x/2.5x; AVX-512 gain > AVX2 gain"],
    )


# ---------------------------------------------------------------- #
# Figure 5: thread scalability
# ---------------------------------------------------------------- #
CPU_THREADS = (1, 2, 4, 8, 16, 28, 56)
KNL_THREADS = (1, 4, 16, 64, 128, 256)


def fig5_scalability(scale: float = 1.0) -> ExperimentResult:
    """Figure 5: speedup vs threads for MPS and BMP on CPU and KNL."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for proc, algn, threads in (
            ("cpu", "MPS", CPU_THREADS),
            ("cpu", "BMP", CPU_THREADS),
            ("knl", "MPS-AVX512", KNL_THREADS),
            ("knl", "BMP", KNL_THREADS),
        ):
            base = simulate(g, algn, proc, threads=1).seconds
            speedups = [
                round(base / simulate(g, algn, proc, threads=t).seconds, 1)
                for t in threads
            ]
            rows.append([ds, proc, algn.split("-")[0], list(threads), speedups])
    return ExperimentResult(
        "fig5",
        "Thread scalability (speedup over 1 thread)",
        ["dataset", "proc", "algorithm", "threads", "speedups"],
        rows,
        notes=[
            "paper: MPS-CPU 41.1x/36.1x; BMP-CPU 24x/15x; KNL-MPS up to 67-72x,",
            "saturating past 64; KNL-BMP slows down at 128/256 threads",
        ],
    )


# ---------------------------------------------------------------- #
# Table 3: bitmap memory
# ---------------------------------------------------------------- #
def table3_bitmap_memory(scale: float = 1.0) -> ExperimentResult:
    """Table 3: per-thread bitmap memory (big bitmap + range filter)."""
    from repro.kernels.rangefilter import DEFAULT_RANGE_SCALE, RangeFilteredBitmap

    rows = []
    for ds in TECH_DATASETS:
        g = load_dataset(ds, scale=scale)
        rf = RangeFilteredBitmap(g.num_vertices, max(2, DEFAULT_RANGE_SCALE // 1000 * 4))
        paper_v = PAPER_TABLE1[ds]["V"]
        rows.append(
            [
                ds,
                g.num_vertices,
                rf.big.memory_bytes(),
                rf.filter_memory_bytes(),
                round(paper_v / 8 / 1024 / 1024, 1),  # paper big bitmap, MB
                round(paper_v / DEFAULT_RANGE_SCALE / 8 / 1024, 2),  # filter, KB
            ]
        )
    return ExperimentResult(
        "table3",
        "Thread-local bitmap memory (stand-in bytes | paper MB/KB)",
        ["dataset", "|V|", "bitmap_B", "filter_B", "paper_bitmap_MB", "paper_filter_KB"],
        rows,
    )


# ---------------------------------------------------------------- #
# Figure 6: bitmap range filtering (CPU / KNL, parallel)
# ---------------------------------------------------------------- #
def fig6_range_filtering(scale: float = 1.0) -> ExperimentResult:
    """Figure 6: BMP vs BMP-RF vs vectorized MPS, fully parallel."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for proc, mps_name, thr in (("cpu", "MPS-AVX2", 56), ("knl", "MPS-AVX512", 64)):
            t_bmp = simulate(g, "BMP", proc, threads=thr).seconds
            t_rf = simulate(g, "BMP-RF", proc, threads=thr).seconds
            t_mps = simulate(g, mps_name, proc, threads=thr).seconds
            rows.append([ds, proc, t_bmp, t_rf, t_mps, round(t_bmp / t_rf, 2)])
    return ExperimentResult(
        "fig6",
        "Bitmap range filtering, parallel (modeled seconds)",
        ["dataset", "proc", "BMP", "BMP-RF", "MPS-V", "RF_speedup"],
        rows,
        notes=["paper: RF ~neutral on TW, 1.9x/2.1x on FR (CPU/KNL)"],
    )


# ---------------------------------------------------------------- #
# Figure 7: MCDRAM modes on the KNL
# ---------------------------------------------------------------- #
def fig7_mcdram(scale: float = 1.0) -> ExperimentResult:
    """Figure 7: KNL MCDRAM ddr vs flat vs cache for MPS and BMP."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for algn, thr in (("MPS-AVX512", 256), ("BMP-RF", 64)):
            t = {
                mode: simulate(g, algn, "knl", threads=thr, mcdram_mode=mode).seconds
                for mode in ("ddr", "flat", "cache")
            }
            rows.append(
                [
                    ds,
                    algn.split("-")[0],
                    t["ddr"],
                    t["flat"],
                    t["cache"],
                    round(t["ddr"] / t["flat"], 2),
                ]
            )
    return ExperimentResult(
        "fig7",
        "MCDRAM utilization on the KNL (modeled seconds)",
        ["dataset", "algorithm", "ddr", "flat", "cache", "flat_speedup"],
        rows,
        notes=["paper: MPS-Flat 1.6x/1.8x, BMP-Flat 1.2x/1.3x; cache slightly slower than flat"],
    )


# ---------------------------------------------------------------- #
# Table 4: cumulative technique breakdown
# ---------------------------------------------------------------- #
PAPER_TABLE4 = {
    ("tw", "cpu"): {"M": 20065.3, "MPS": 5527.2, "MPS+V": 2891.6, "MPS+V+P": 70.3,
                     "BMP": 996.2, "BMP+P": 41.5, "BMP+P+RF": 40.4},
    ("tw", "knl"): {"M": 108418.6, "MPS": 15244.4, "MPS+V": 5904.0, "MPS+V+P": 83.1,
                     "MPS+V+P+HBW": 52.7, "BMP": 3704.3, "BMP+P": 78.1,
                     "BMP+P+RF": 82.1, "BMP+P+RF+HBW": 68.5},
    ("fr", "cpu"): {"M": 4528.8, "MPS": 4919.1, "MPS+V": 2470.7, "MPS+V+P": 68.3,
                     "BMP": 1837.2, "BMP+P": 122.5, "BMP+P+RF": 63.8},
    ("fr", "knl"): {"M": 11199.9, "MPS": 11224.1, "MPS+V": 4569.4, "MPS+V+P": 60.1,
                     "MPS+V+P+HBW": 33.9, "BMP": 9591.3, "BMP+P": 248.7,
                     "BMP+P+RF": 115.7, "BMP+P+RF+HBW": 92.6},
}


def table4_breakdown(scale: float = 1.0) -> ExperimentResult:
    """Table 4: cumulative effect of DSH, V, P, RF, HBW over baseline M."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        for proc in ("cpu", "knl"):
            max_thr = 56 if proc == "cpu" else 256
            bmp_thr = 56 if proc == "cpu" else 64
            vec = "MPS-AVX2" if proc == "cpu" else "MPS-AVX512"
            t = {}
            t["M"] = simulate(g, "M", proc, threads=1, mcdram_mode="ddr").seconds
            t["MPS"] = simulate(g, "MPS-SCALAR", proc, threads=1, mcdram_mode="ddr").seconds
            t["MPS+V"] = simulate(g, vec, proc, threads=1, mcdram_mode="ddr").seconds
            t["MPS+V+P"] = simulate(g, vec, proc, threads=max_thr, mcdram_mode="ddr").seconds
            t["BMP"] = simulate(g, "BMP", proc, threads=1, mcdram_mode="ddr").seconds
            t["BMP+P"] = simulate(g, "BMP", proc, threads=bmp_thr, mcdram_mode="ddr").seconds
            t["BMP+P+RF"] = simulate(g, "BMP-RF", proc, threads=bmp_thr, mcdram_mode="ddr").seconds
            if proc == "knl":
                t["MPS+V+P+HBW"] = simulate(g, vec, proc, threads=max_thr, mcdram_mode="flat").seconds
                t["BMP+P+RF+HBW"] = simulate(g, "BMP-RF", proc, threads=bmp_thr, mcdram_mode="flat").seconds
            paper = PAPER_TABLE4[(ds, proc)]
            for config, seconds in t.items():
                rows.append(
                    [
                        ds,
                        proc,
                        config,
                        seconds,
                        round(t["M"] / seconds, 1),
                        paper.get(config, float("nan")),
                        round(paper["M"] / paper[config], 1) if config in paper else "",
                    ]
                )
    return ExperimentResult(
        "table4",
        "Cumulative technique breakdown (modeled | paper seconds & speedups)",
        ["dataset", "proc", "config", "seconds", "speedup_vs_M", "paper_s", "paper_speedup"],
        rows,
    )


# ---------------------------------------------------------------- #
# Table 5: co-processing
# ---------------------------------------------------------------- #
def table5_coprocessing(scale: float = 1.0) -> ExperimentResult:
    """Table 5: post-processing time with and without co-processing."""
    paper = {"tw": (5.6, 0.9), "fr": (19.0, 3.8)}
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        no_cp = simulate(g, "BMP-RF", "gpu", coprocessing=False).breakdown["post"]
        cp = simulate(g, "BMP-RF", "gpu", coprocessing=True).breakdown["post"]
        rows.append(
            [ds, no_cp, cp, round(no_cp / max(cp, 1e-12), 1), paper[ds][0], paper[ds][1]]
        )
    return ExperimentResult(
        "table5",
        "GPU post-processing time, no-CP vs CP (modeled | paper seconds)",
        ["dataset", "no_CP", "CP", "reduction", "paper_no_CP", "paper_CP"],
        rows,
        notes=["paper: CP removes >80% of post-processing on both datasets"],
    )


# ---------------------------------------------------------------- #
# Table 6: memory consumption and estimated passes
# ---------------------------------------------------------------- #
def table6_memory_passes(scale: float = 1.0) -> ExperimentResult:
    """Table 6: data-structure memory and the pass estimator's output."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        ms = memory_scale(ds, g)
        for algn in ("MPS", "BMP-RF"):
            r = simulate(g, algn, "gpu", hw_scale=ms)
            csr_mb = (g.memory_bytes() + 4 * g.num_directed_edges) / 1e6
            rows.append(
                [
                    ds,
                    algn.split("-")[0],
                    round(csr_mb, 2),
                    round(r.config.get("bitmap_pool_bytes", 0.0) / 1e6, 2),
                    r.config["estimated_passes"],
                ]
            )
    return ExperimentResult(
        "table6",
        "Memory consumption (MB at reproduction scale) and estimated passes",
        ["dataset", "algorithm", "csr+cnt_MB", "bitmap_pool_MB", "est_passes"],
        rows,
        notes=["paper: FR/BMP needs >= 3 passes; TW fits in one"],
    )


# ---------------------------------------------------------------- #
# Figure 8: multi-pass processing
# ---------------------------------------------------------------- #
PASS_SWEEP = (1, 2, 3, 4, 6, 8)


def fig8_multipass(scale: float = 1.0) -> ExperimentResult:
    """Figure 8: elapsed time vs number of passes on the GPU."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        ms = memory_scale(ds, g)
        for algn in ("MPS", "BMP-RF"):
            times = []
            thrash = []
            for p in PASS_SWEEP:
                r = simulate(g, algn, "gpu", passes=p, hw_scale=ms)
                times.append(round(r.seconds, 6))
                thrash.append(r.config["thrashing"])
            est = simulate(g, algn, "gpu", hw_scale=ms).config["estimated_passes"]
            rows.append([ds, algn.split("-")[0], est, list(PASS_SWEEP), times, thrash])
    return ExperimentResult(
        "fig8",
        "Multi-pass processing on the GPU (modeled seconds per pass count)",
        ["dataset", "algorithm", "est_passes", "passes", "seconds", "thrashing"],
        rows,
        notes=["paper: TW rises slightly with passes; FR/BMP fails below 3 passes"],
    )


# ---------------------------------------------------------------- #
# Table 7: range filtering on the GPU
# ---------------------------------------------------------------- #
def table7_gpu_rf(scale: float = 1.0) -> ExperimentResult:
    """Table 7: BMP vs BMP-RF on the GPU (shared-memory filter)."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        t_bmp = simulate(g, "BMP", "gpu").seconds
        t_rf = simulate(g, "BMP-RF", "gpu").seconds
        rows.append([ds, t_bmp, t_rf, round(t_bmp / t_rf, 2)])
    return ExperimentResult(
        "table7",
        "GPU bitmap range filtering (modeled seconds)",
        ["dataset", "BMP", "BMP-RF", "speedup"],
        rows,
        notes=["paper: RF speeds up BMP by 1.9x on both TW and FR"],
    )


# ---------------------------------------------------------------- #
# Figure 9: block size tuning
# ---------------------------------------------------------------- #
WARP_SWEEP = (1, 2, 4, 8, 16, 32)


def fig9_block_size(scale: float = 1.0) -> ExperimentResult:
    """Figure 9: warps per thread block from 1 to 32."""
    rows = []
    for ds in TECH_DATASETS:
        g = _graph(ds, scale)
        ms = memory_scale(ds, g)
        for algn in ("MPS", "BMP-RF"):
            times = [
                round(
                    simulate(g, algn, "gpu", warps_per_block=w, hw_scale=ms).seconds, 6
                )
                for w in WARP_SWEEP
            ]
            rows.append([ds, algn.split("-")[0], list(WARP_SWEEP), times])
    return ExperimentResult(
        "fig9",
        "Block size tuning on the GPU (modeled seconds per warps/block)",
        ["dataset", "algorithm", "warps_per_block", "seconds"],
        rows,
        notes=["paper: MPS flat; BMP improves to ~4 warps then flattens; FR/BMP gains again at large blocks via fewer bitmaps -> fewer passes"],
    )


# ---------------------------------------------------------------- #
# Figure 10: optimized algorithms on all datasets
# ---------------------------------------------------------------- #
def fig10_comparison(scale: float = 1.0) -> ExperimentResult:
    """Figure 10: optimized MPS and BMP on all three processors."""
    rows = []
    for ds in dataset_names():
        g = _graph(ds, scale)
        t = {
            "CPU-MPS": simulate(g, "MPS-AVX2", "cpu").seconds,
            "CPU-BMP": simulate(g, "BMP-RF", "cpu").seconds,
            "KNL-MPS": simulate(g, "MPS-AVX512", "knl").seconds,
            "KNL-BMP": simulate(g, "BMP-RF", "knl", threads=64).seconds,
            "GPU-MPS": simulate(g, "MPS", "gpu").seconds,
            "GPU-BMP": simulate(g, "BMP-RF", "gpu").seconds,
        }
        best = min(t, key=t.get)
        worst = max(t, key=t.get)
        rows.append([ds, *[t[k] for k in sorted(t)], best, worst])
    return ExperimentResult(
        "fig10",
        "Optimized algorithms on three processors (modeled seconds)",
        ["dataset", *sorted(["CPU-MPS", "CPU-BMP", "KNL-MPS", "KNL-BMP", "GPU-MPS", "GPU-BMP"]), "best", "worst"],
        rows,
        notes=[
            "paper: CPU favors BMP, KNL favors MPS, GPU favors BMP;",
            "best overall is KNL-MPS (uniform graphs) or GPU-BMP (skewed);",
            "GPU-MPS is the overall loser",
        ],
    )
