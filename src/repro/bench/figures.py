"""ASCII rendering of figure-style series (scalability curves, sweeps).

The paper's figures are line/bar charts; for a terminal-first
reproduction we render the same series as aligned ASCII charts so
``python -m repro experiment fig5`` shows the curve shapes directly.
"""

from __future__ import annotations

__all__ = ["ascii_series", "ascii_bars"]


def ascii_bars(
    labels: list[str], values: list[float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(empty)"
    peak = max(values)
    lw = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{str(label).ljust(lw)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_series(
    x: list, series: dict[str, list[float]], width: int = 50, height: int = 12
) -> str:
    """Multi-series scatter chart over a shared x axis.

    Each series gets a marker letter; points are placed on a
    ``height × width`` grid scaled to the data range.  Crude, but curve
    *shapes* (rising, saturating, dipping) read clearly.
    """
    if not series:
        return "(empty)"
    n = len(x)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGH"
    for si, (name, ys) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for i, y in enumerate(ys):
            col = int(round(i * (width - 1) / max(n - 1, 1)))
            row = height - 1 - int(round((y - y_min) * (height - 1) / span))
            grid[row][col] = mark

    lines = [f"{y_max:10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"x: {x[0]} .. {x[-1]}")
    for si, name in enumerate(series):
        lines.append(" " * 12 + f"{markers[si % len(markers)]} = {name}")
    return "\n".join(lines)
