"""Experiment result records and plain-text rendering.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` whose rows regenerate one of the paper's tables
or figures; the benchmark suite prints them through
:func:`render_table` so ``pytest benchmarks/ --benchmark-only -s`` shows
the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "render_table", "fmt"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure."""

    experiment_id: str  # e.g. "table4", "fig10"
    title: str
    columns: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]

    def row_map(self, key_column: int = 0) -> dict:
        return {row[key_column]: row for row in self.rows}


def fmt(value) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an experiment as an aligned plain-text table."""
    header = [result.columns]
    body = [[fmt(c) for c in row] for row in result.rows]
    widths = [
        max(len(str(r[i])) for r in header + body)
        for i in range(len(result.columns))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
