"""Differential fuzzing of every registered execution path.

The paper's correctness claim is that every algorithm/backend computes the
*same* all-edge common neighbor counts.  This package turns that claim
into a permanent regression net:

* :mod:`repro.fuzz.generators` — a seeded graph grammar producing the
  adversarial shapes (stars, cliques, bipartite blocks, paths, isolated
  vertices, power-law tails, duplicate-dense edge lists) plus random edit
  sequences for the dynamic path;
* :mod:`repro.fuzz.differential` — a runner that executes one case
  through every registered execution path (merge / bitmap / matmul /
  gallop / hybrid cold+warm plan cache / fork+spawn parallel pools /
  dynamic edit replay) and cross-checks counts bit-exactly, plus
  OpCounts and symmetry invariants, against
  :func:`repro.core.verify.brute_force_counts`;
* :mod:`repro.fuzz.shrink` — greedy minimization of failing cases to a
  small reproducer, serialized as a replayable JSON artifact.

Entry points: ``repro fuzz --cases N --seed S`` (CLI) and
:func:`run_fuzz` (library).
"""

from repro.fuzz.differential import (
    CaseReport,
    ExecutionPath,
    Failure,
    FuzzReport,
    InvariantViolation,
    refresh_paths,
    registered_paths,
    register_path,
    run_case,
    run_fuzz,
    unregister_path,
)
from repro.fuzz.generators import EditBatch, FuzzCase, generate_case
from repro.fuzz.shrink import (
    load_artifact,
    replay_artifact,
    save_artifact,
    shrink_case,
)

__all__ = [
    "CaseReport",
    "EditBatch",
    "ExecutionPath",
    "Failure",
    "FuzzCase",
    "FuzzReport",
    "InvariantViolation",
    "generate_case",
    "load_artifact",
    "refresh_paths",
    "register_path",
    "registered_paths",
    "replay_artifact",
    "run_case",
    "run_fuzz",
    "save_artifact",
    "shrink_case",
    "unregister_path",
]
