"""Differential execution of one fuzz case through every registered path.

Every *execution path* is a named way of producing all-edge common
neighbor counts: a backend kernel, a planner cache state, a process pool
start method, or the dynamic edit-replay engine.  The runner executes a
case through each registered path and cross-checks the result bit-exactly
against :func:`repro.core.verify.brute_force_counts` — the one reference
simple enough to be trusted by inspection — plus symmetry and OpCounts
invariants.

The registry is open: a future backend registers itself with
:func:`register_path` and is fuzzed from then on.  Paths carry a *stride*
(run every k-th case) so expensive paths — spawn-method process pools —
still get covered without dominating the budget; explicitly requested
paths always run on every case.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.fuzz.generators import FuzzCase, generate_case
from repro.graph.csr import CSRGraph
from repro.types import OpCounts

__all__ = [
    "ExecutionPath",
    "Failure",
    "CaseReport",
    "FuzzFailure",
    "FuzzReport",
    "InvariantViolation",
    "register_path",
    "unregister_path",
    "registered_paths",
    "refresh_paths",
    "run_case",
    "run_fuzz",
]


class InvariantViolation(AssertionError):
    """An execution path broke one of its own accounting invariants."""


@dataclass(frozen=True)
class ExecutionPath:
    """One registered way of computing all-edge counts.

    ``run`` takes the case's base :class:`CSRGraph` and returns counts
    aligned with ``graph.dst`` for static paths; dynamic paths
    (``kind="dynamic"``) take ``(case, graph)`` and return the *final*
    ``(graph, counts)`` after replaying the case's edit sequence.
    """

    name: str
    run: object
    kind: str = "static"  # "static" | "dynamic"
    stride: int = 1


@dataclass(frozen=True)
class Failure:
    """One differential disagreement, invariant break, or path crash."""

    path: str
    kind: str  # "mismatch" | "invariant" | "error"
    detail: str

    def format(self) -> str:
        return f"[{self.path}] {self.kind}: {self.detail}"


@dataclass
class CaseReport:
    """Outcome of running one case through a set of paths."""

    case: FuzzCase
    paths_run: list[str] = field(default_factory=list)
    failures: list[Failure] = field(default_factory=list)
    #: Set when the whole report was skipped (e.g. replay of an artifact
    #: whose recorded path is not runnable on this host) — the reason,
    #: human-readable.  A skipped report is "ok" but ran nothing.
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class FuzzFailure:
    """A failing case with its shrunk reproducer and on-disk artifact."""

    case: FuzzCase
    failure: Failure
    shrunk: FuzzCase | None = None
    artifact: str | None = None


@dataclass
class FuzzReport:
    """Summary of one fuzz run."""

    cases: int
    seed: int
    coverage: dict[str, int]
    failures: list[FuzzFailure]
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [
            f"cases            : {self.cases} (seed {self.seed}, "
            f"{self.elapsed_seconds:.1f} s)",
            "path coverage    :",
        ]
        for name, count in self.coverage.items():
            lines.append(f"  {name:16s} {count:>6d} cases")
        lines.append(f"failures         : {len(self.failures)}")
        for f in self.failures:
            lines.append(f"  {f.case.describe()}")
            lines.append(f"    {f.failure.format()}")
            if f.shrunk is not None:
                lines.append(f"    shrunk to {f.shrunk.describe()}")
            if f.artifact:
                lines.append(f"    artifact: {f.artifact}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# built-in paths
#
# The path list is enumerated from the engine's backend registry
# (:func:`repro.engine.default_registry`) — one fuzz path per registered
# backend × declared fuzz variant — so a backend registered tomorrow is
# fuzzed tomorrow, with no second table to update.  A few paths carry
# deep-checked runners that additionally enforce OpCounts and plan-cache
# invariants the generic session runner cannot see.
#
# Kernel entry points are resolved through their module at call time (not
# captured at import), so an injected fault — monkeypatching a backend to
# test the fuzzer itself — is seen by the registered path.
# --------------------------------------------------------------------- #
def _make_session_runner(backend: str, opts: dict):
    """Generic runner: one throwaway GraphSession, one backend count."""

    def run(graph: CSRGraph) -> np.ndarray:
        from repro.engine import GraphSession

        with warnings.catch_warnings():
            # A sequential fallback is telemetry, not a differential bug.
            warnings.simplefilter("ignore", RuntimeWarning)
            with GraphSession(graph) as session:
                return session.count(backend=backend, **opts).counts

    return run


def _run_count_pairs(graph: CSRGraph) -> np.ndarray:
    """Vectorized pair-query path, asked about every ``u < v`` edge.

    :meth:`GraphSession.count_pairs` answers arbitrary pair queries with
    its own grouped-gather implementation; feeding it exactly the graph's
    edges makes it differentially comparable against the edge-count
    reference.
    """
    from repro.engine import GraphSession
    from repro.kernels import batch

    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    with GraphSession(graph) as session:
        if len(eo):
            cnt[eo] = session.count_pairs(src[eo], graph.dst[eo])
    return batch.symmetric_assign(graph, cnt)


def _run_bitmap(graph: CSRGraph) -> np.ndarray:
    """Degree-bucketed BMP kernel, with OpCounts invariants enforced."""
    from repro.kernels import batch

    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    ops = OpCounts()
    batch.count_edges_bitmap(graph, eo, cnt, ops)
    if ops.bitmap_set != ops.bitmap_clear:
        raise InvariantViolation(
            f"bitmap set/clear imbalance: {ops.bitmap_set} set, "
            f"{ops.bitmap_clear} cleared (mark plane leaked)"
        )
    if ops.matches != int(cnt[eo].sum()):
        raise InvariantViolation(
            f"bitmap matches accounting ({ops.matches}) != computed "
            f"count total ({int(cnt[eo].sum())})"
        )
    return batch.symmetric_assign(graph, cnt)


def _run_gallop(graph: CSRGraph) -> np.ndarray:
    """Batched lockstep galloping over *all* upper edges (not only the
    planner's skewed bucket), with OpCounts invariants enforced."""
    from repro.kernels import batch, batchsearch

    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    ops = OpCounts()
    vals = batchsearch.count_edges_galloping(graph, eo, ops)
    if ops.matches != int(vals.sum()):
        raise InvariantViolation(
            f"gallop matches accounting ({ops.matches}) != computed "
            f"count total ({int(vals.sum())})"
        )
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    cnt[eo] = vals
    return batch.symmetric_assign(graph, cnt)


def _run_hybrid_cold(graph: CSRGraph) -> np.ndarray:
    """Hybrid planner from an empty plan cache (plan + execute)."""
    from repro.plan import clear_plan_cache, count_all_edges_hybrid, plan_cache_stats

    clear_plan_cache()
    before = plan_cache_stats().misses
    cnt = count_all_edges_hybrid(graph)
    if plan_cache_stats().misses != before + 1:
        raise InvariantViolation("cold hybrid run did not miss the plan cache")
    return cnt


def _run_hybrid_warm(graph: CSRGraph) -> np.ndarray:
    """Hybrid planner through a warm plan cache (cached-plan execution)."""
    from repro.plan import count_all_edges_hybrid, get_plan, plan_cache_stats

    get_plan(graph)  # prime (hit or miss, either way now cached)
    before = plan_cache_stats().hits
    cnt = count_all_edges_hybrid(graph)
    if plan_cache_stats().hits != before + 1:
        raise InvariantViolation("warm hybrid run did not hit the plan cache")
    return cnt


def _stream_events(case: FuzzCase) -> list[tuple[float, int, int]]:
    """The case's edges + edit-batch insertions as a timestamped stream.

    Base edges arrive at t = 0, 1, 2, ...; each edit batch's insertions
    continue the clock.  Deletions have no stream counterpart — expiry is
    the stream's deletion — so they are dropped; the window chosen by
    :func:`_run_stream_window` makes the earlier half of the stream
    expire, which exercises the same delete machinery.
    """
    events = []
    t = 0
    for u, v in case.edges.tolist():
        events.append((float(t), int(u), int(v)))
        t += 1
    for batch in case.edits:
        for u, v in batch.insert.tolist():
            events.append((float(t), int(u), int(v)))
            t += 1
    return events


def _model_live_graph(
    events, upto: int, window: float, num_vertices: int
) -> CSRGraph:
    """From-scratch reference: CSR of the window's live set after
    ``events[:upto]`` (latest arrival per edge, strict-inequality expiry)."""
    from repro.graph.build import csr_from_pairs

    now = events[upto - 1][0]
    stamps: dict[tuple[int, int], float] = {}
    for t, u, v in events[:upto]:
        if u != v:
            stamps[(min(u, v), max(u, v))] = t
    live = [key for key, t in stamps.items() if now - t < window]
    return csr_from_pairs(live, num_vertices)


def _run_stream_window(
    case: FuzzCase, graph: CSRGraph
) -> tuple[CSRGraph, np.ndarray]:
    """Drive the sliding-window counter and cross-check every checkpoint.

    The case becomes a timestamped arrival stream; the window is sized so
    roughly the older half has expired by the end.  At each edit-batch
    boundary the counter's live CSR and counts must match a from-scratch
    replay of the window — any divergence raises
    :class:`InvariantViolation` naming the checkpoint.  The final live
    graph and counts are returned for the outer brute-force comparison.
    """
    from repro.core.verify import brute_force_counts
    from repro.stream import StreamCounter

    events = _stream_events(case)
    if not events:
        return graph, brute_force_counts(graph)
    window = max(2.0, len(events) / 2.0)
    # Checkpoints: after the base edges, after each edit batch.
    marks = {len(case.edges)} if len(case.edges) else set()
    n = len(case.edges)
    for batch in case.edits:
        n += len(batch.insert)
        marks.add(n)
    marks.add(len(events))
    marks.discard(0)

    counter = StreamCounter(window, num_vertices=case.num_vertices)
    try:
        pos = 0
        for mark in sorted(marks):
            counter.ingest(events[pos:mark])
            pos = mark
            snap = counter.snapshot()
            model = _model_live_graph(
                events, mark, window, counter.num_vertices
            )
            if not (
                np.array_equal(snap.graph.offsets, model.offsets)
                and np.array_equal(snap.graph.dst, model.dst)
            ):
                raise InvariantViolation(
                    f"window live set diverged from replay at event {mark} "
                    f"({snap.graph.num_edges} live edges vs "
                    f"{model.num_edges} in the model)"
                )
            if mark != len(events):
                expected = brute_force_counts(model)
                if not np.array_equal(snap.counts, expected):
                    raise InvariantViolation(
                        f"window counts diverged from replay at event "
                        f"{mark}: {_first_mismatch(model, snap.counts, expected)}"
                    )
        final = counter.snapshot()
        return final.graph, final.counts
    finally:
        counter.close()


def _run_stream_sampled_check(graph: CSRGraph) -> np.ndarray:
    """Statistical path for the reservoir estimator.

    Three internal invariants (deterministic, so safe under fuzz):

    1. ``tau`` must equal a brute-force triangle count of the reservoir
       subgraph after the whole stream (the incremental maintenance
       check);
    2. a same-seed rerun must reproduce the sample and estimate exactly
       (determinism);
    3. with a half-size reservoir, the stated (ε, δ=0.01) interval must
       contain the true triangle total — the bars are empirically far
       more conservative than δ, and the stream order and seed are fixed
       by the case, so a pass is reproducible, not probabilistic.

    Returns counts from an exhaustive-capacity run (every edge sampled →
    estimates exact), which the outer layer compares bit-exactly.
    """
    from repro.core.verify import brute_force_counts
    from repro.graph.build import csr_to_undirected_pairs
    from repro.kernels import batch
    from repro.stream import SampledCounter

    u, v = csr_to_undirected_pairs(graph)
    edges = list(zip(u.tolist(), v.tolist()))
    expected = brute_force_counts(graph)
    true_triangles = int(expected.sum()) // 6

    # (3) statistical interval on a lossy reservoir, deterministic seed.
    if len(edges) >= 24:
        lossy = SampledCounter(capacity=len(edges) // 2, seed=7, delta=0.01)
        lossy.ingest(edges)
        est = lossy.triangle_estimate()
        if not est["low"] <= true_triangles <= est["high"]:
            raise InvariantViolation(
                f"sampled triangle interval [{est['low']:.1f}, "
                f"{est['high']:.1f}] (δ=0.01) misses the true total "
                f"{true_triangles} (tau={est['tau']}, "
                f"reservoir {lossy.sampled_edges}/{lossy.stream_edges})"
            )
        # (1) incremental tau == recount of the reservoir subgraph.
        from repro.graph.build import csr_from_pairs

        sub = csr_from_pairs(lossy.reservoir(), graph.num_vertices)
        sub_triangles = int(brute_force_counts(sub).sum()) // 6
        if lossy.tau != sub_triangles:
            raise InvariantViolation(
                f"incremental tau {lossy.tau} != reservoir subgraph "
                f"triangle count {sub_triangles}"
            )
        # (2) determinism under the same seed.
        twin = SampledCounter(capacity=len(edges) // 2, seed=7, delta=0.01)
        twin.ingest(edges)
        if twin.reservoir() != lossy.reservoir() or twin.tau != lossy.tau:
            raise InvariantViolation(
                "same-seed reservoir runs diverged (non-deterministic "
                "sampling)"
            )

    sampler = SampledCounter(capacity=max(len(edges), 8), seed=1)
    sampler.ingest(edges)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    for i in eo.tolist():
        est = sampler.edge_estimate(int(src[i]), int(graph.dst[i]))
        if not est["exact"]:
            raise InvariantViolation(
                f"exhaustive reservoir produced an inexact estimate for "
                f"edge ({int(src[i])}, {int(graph.dst[i])})"
            )
        cnt[i] = int(round(est["count"]))
    return batch.symmetric_assign(graph, cnt)


def _case_bipartite(graph: CSRGraph):
    """The case's ``u < v`` edges read as left→right bipartite pairs.

    Both sides carry the full vertex range, so every CSR-deduped edge
    becomes one bipartite edge regardless of 2-colorability — a
    deterministic bipartite instance for every fuzz case.
    """
    from repro.graph.bipartite import bipartite_from_pairs

    src = graph.edge_sources()
    mask = src < graph.dst
    pairs = list(zip(src[mask].tolist(), graph.dst[mask].tolist()))
    n = graph.num_vertices
    return bipartite_from_pairs(pairs, num_left=n, num_right=n)


def _run_motif_clique_seq(graph: CSRGraph) -> np.ndarray:
    """Cross-check the sequential clique runners against brute force.

    ``merge`` and ``bitmap`` must match :func:`brute_force_cliques` for
    every supported k, and the k=3 total must reconcile exactly with the
    common-neighbor triangle identity ``Σ counts / 6`` — the bridge
    between the motif suite and the paper's original workload.  Returns
    merge-kernel CN counts for the outer bit-exact comparison.
    """
    from repro.kernels import batch
    from repro.motif.clique import brute_force_cliques, count_cliques, orient_dag

    dag = orient_dag(graph)
    for k in (3, 4, 5):
        expected = brute_force_cliques(graph, k)
        for backend in ("merge", "bitmap"):
            got = count_cliques(graph, k, backend=backend, dag=dag)
            if got != expected:
                raise InvariantViolation(
                    f"clique-{k} runner {backend!r} counted {got}, "
                    f"brute force counted {expected}"
                )
    counts = batch.count_all_edges_merge(graph)
    triangles = int(counts.sum()) // 6
    k3 = count_cliques(graph, 3, backend="bitmap", dag=dag)
    if k3 != triangles:
        raise InvariantViolation(
            f"clique-3 total {k3} != CN triangle identity {triangles}"
        )
    return counts


def _run_motif_clique_planner(graph: CSRGraph) -> np.ndarray:
    """The hybrid clique runner, at the default and an aggressive skew
    threshold (forcing the gallop bucket to fill), against brute force."""
    from repro.kernels import batch
    from repro.motif.clique import brute_force_cliques, count_cliques, orient_dag

    dag = orient_dag(graph)
    for k in (3, 4, 5):
        expected = brute_force_cliques(graph, k)
        for threshold in (None, 1.5):
            got = count_cliques(
                graph, k, backend="hybrid", dag=dag, skew_threshold=threshold
            )
            if got != expected:
                raise InvariantViolation(
                    f"clique-{k} hybrid (skew={threshold}) counted {got}, "
                    f"brute force counted {expected}"
                )
    return batch.count_all_edges_merge(graph)


#: Deterministic work bound for the p=3 biclique sweep: cases whose
#: subset-emission cost Σ_r C(d_r, 3) exceeds this skip p=3 (p=2 always
#: runs) so one dense generated case cannot stall the fuzz budget.
_BICLIQUE_P3_EMISSION_BOUND = 50_000


def _run_motif_biclique(graph: CSRGraph) -> np.ndarray:
    """Cross-check both biclique runners against brute force.

    Runs on the case's edges read as bipartite pairs (every case yields
    an instance), plus the 2-coloring projection when the graph admits
    one — where a successful projection with a nonzero triangle count is
    itself an invariant violation (triangles are odd cycles).
    """
    from math import comb

    from repro.core.verify import brute_force_counts
    from repro.errors import AlgorithmError
    from repro.graph.bipartite import bipartite_from_graph
    from repro.motif.biclique import brute_force_bicliques, count_bicliques

    bip = _case_bipartite(graph)
    degs = bip.right_degrees
    p3_cost = sum(comb(int(d), 3) for d in degs.tolist())
    shapes = [(1, 2), (2, 2), (2, 3)]
    if p3_cost <= _BICLIQUE_P3_EMISSION_BOUND:
        shapes.append((3, 2))
    for p, q in shapes:
        expected = brute_force_bicliques(bip, p, q)
        for backend in ("hash", "bitmap"):
            got = count_bicliques(bip, p, q, backend=backend)
            if got != expected:
                raise InvariantViolation(
                    f"biclique-{p}-{q} runner {backend!r} counted {got}, "
                    f"brute force counted {expected}"
                )

    counts = brute_force_counts(graph)
    try:
        view = bipartite_from_graph(graph)
    except AlgorithmError:
        pass  # an odd cycle: no bipartite view to check
    else:
        if int(counts.sum()) != 0:
            raise InvariantViolation(
                "graph 2-colored successfully but has triangles "
                "(odd cycles) — the bipartite projection is wrong"
            )
        expected = brute_force_bicliques(view.graph, 2, 2)
        for backend in ("hash", "bitmap"):
            got = count_bicliques(view.graph, 2, 2, backend=backend)
            if got != expected:
                raise InvariantViolation(
                    f"projected biclique-2-2 runner {backend!r} counted "
                    f"{got}, brute force counted {expected}"
                )
    return counts


def _run_dynamic_replay(
    case: FuzzCase, graph: CSRGraph
) -> tuple[CSRGraph, np.ndarray]:
    """Replay the case's edit sequence through a DynamicCounter.

    The default ``recount_fraction`` stays in force, so oversized batches
    exercise the structural-recount fallback while small ones run the
    per-edge delta kernel — both against the same reference.
    """
    from repro.core.dynamic import DynamicCounter

    counter = DynamicCounter(graph, backend="matmul")
    for batch in case.edits:
        counter.apply(insertions=batch.insert, deletions=batch.delete)
    snap = counter.snapshot()
    return snap.graph, snap.counts


_REGISTRY: OrderedDict[str, ExecutionPath] = OrderedDict()


def register_path(name: str, run, kind: str = "static", stride: int = 1) -> None:
    """Register (or replace) an execution path under ``name``."""
    if kind not in ("static", "dynamic"):
        raise ValueError(f"unknown path kind {kind!r}")
    _REGISTRY[name] = ExecutionPath(name, run, kind, max(1, int(stride)))


def unregister_path(name: str) -> None:
    _REGISTRY.pop(name, None)


def registered_paths() -> list[str]:
    """Names of every registered execution path, in registration order."""
    return list(_REGISTRY)


#: Paths whose runner enforces extra invariants (OpCounts balance,
#: plan-cache hit/miss discipline) on top of the differential check; they
#: override the generic session runner for the matching registry path.
_DEEP_CHECKED = {
    "bitmap": _run_bitmap,
    "gallop": _run_gallop,
    "hybrid-cold": _run_hybrid_cold,
    "hybrid-warm": _run_hybrid_warm,
}


def _register_builtin_paths() -> None:
    """One fuzz path per registry backend × declared fuzz variant.

    Backends whose optional dependency is absent (``spec.is_available()``
    false — e.g. the compiled kernels on a host with neither numba nor a
    C toolchain) are skipped *and unregistered*, so re-invoking this
    after flipping ``REPRO_COMPILED`` converges to the host's real
    capability set instead of accreting stale paths.
    """
    from repro.engine import default_registry

    for spec in default_registry().specs():
        usable = spec.is_available()
        for variant in spec.fuzz_variants:
            name = variant.path_name(spec.name)
            if not usable:
                unregister_path(name)
                continue
            runner = _DEEP_CHECKED.get(name) or _make_session_runner(
                spec.name, dict(variant.opts)
            )
            register_path(name, runner, stride=variant.stride)
    register_path("count-pairs", _run_count_pairs)
    register_path("dynamic-replay", _run_dynamic_replay, kind="dynamic")
    register_path("stream-window", _run_stream_window, kind="dynamic", stride=2)
    register_path("stream-sampled", _run_stream_sampled_check, stride=2)
    register_path("motif-clique-seq", _run_motif_clique_seq, stride=2)
    register_path("motif-clique-planner", _run_motif_clique_planner, stride=2)
    register_path("motif-biclique", _run_motif_biclique, stride=2)


def refresh_paths() -> list[str]:
    """Re-derive the builtin path set from *current* backend availability.

    Registration happens once at import, so a path whose optional
    dependency disappeared afterwards (``REPRO_COMPILED`` flipped, a
    provider cache reset) would stay registered and crash with
    ``AlgorithmError`` when run.  Replay calls this first so "registered"
    always means "runnable on this host right now".
    """
    _register_builtin_paths()
    return registered_paths()


_register_builtin_paths()


# --------------------------------------------------------------------- #
# running cases
# --------------------------------------------------------------------- #
def _resolve_paths(names) -> list[ExecutionPath]:
    if names is None:
        return list(_REGISTRY.values())
    paths = []
    for name in names:
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown execution path {name!r}; registered: "
                f"{registered_paths()}"
            )
        # Explicitly requested paths run on every case.
        paths.append(replace(_REGISTRY[name], stride=1))
    return paths


def _first_mismatch(
    graph: CSRGraph, got: np.ndarray, expected: np.ndarray
) -> str:
    got = np.asarray(got)
    if got.shape != expected.shape:
        return f"shape {got.shape} != expected {expected.shape}"
    bad = np.flatnonzero(got != expected)
    eo = int(bad[0])
    src = graph.edge_sources()
    return (
        f"{len(bad)} of {len(expected)} offsets differ; first at edge "
        f"offset {eo} = ({int(src[eo])}, {int(graph.dst[eo])}): "
        f"got {int(got[eo])}, expected {int(expected[eo])}"
    )


def _check_symmetry(graph: CSRGraph, counts: np.ndarray) -> str | None:
    from repro.kernels.batch import reverse_edge_offsets

    rev = reverse_edge_offsets(graph)
    counts = np.asarray(counts)
    if not np.array_equal(counts, counts[rev]):
        eo = int(np.flatnonzero(counts != counts[rev])[0])
        return (
            f"counts asymmetric across edge directions (first at offset {eo})"
        )
    return None


def run_case(case: FuzzCase, paths=None) -> CaseReport:
    """Run one case through the selected paths and cross-check everything.

    Static paths compare against the brute-force reference on the base
    graph; the dynamic path replays the edit sequence and compares its
    final counts against a brute-force recount of the *final* graph (the
    edit-replay vs. from-scratch differential).  Paths are skipped by
    their stride (``case.index % stride``) unless explicitly requested.
    """
    from repro.core.verify import brute_force_counts

    report = CaseReport(case=case)
    selected = [
        p for p in _resolve_paths(paths) if case.index % p.stride == 0
    ]
    if not selected:
        return report

    graph = case.graph()
    reference = None
    for path in selected:
        if path.kind == "dynamic":
            if not case.edits:
                continue
            try:
                final_graph, counts = path.run(case, graph)
                expected = brute_force_counts(final_graph)
                check_graph = final_graph
            except InvariantViolation as exc:
                report.paths_run.append(path.name)
                report.failures.append(Failure(path.name, "invariant", str(exc)))
                continue
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                report.paths_run.append(path.name)
                report.failures.append(
                    Failure(path.name, "error", f"{type(exc).__name__}: {exc}")
                )
                continue
        else:
            if reference is None:
                reference = brute_force_counts(graph)
            expected = reference
            check_graph = graph
            try:
                counts = path.run(graph)
            except InvariantViolation as exc:
                report.paths_run.append(path.name)
                report.failures.append(Failure(path.name, "invariant", str(exc)))
                continue
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                report.paths_run.append(path.name)
                report.failures.append(
                    Failure(path.name, "error", f"{type(exc).__name__}: {exc}")
                )
                continue

        report.paths_run.append(path.name)
        if not np.array_equal(np.asarray(counts), expected):
            report.failures.append(
                Failure(
                    path.name,
                    "mismatch",
                    _first_mismatch(check_graph, counts, expected),
                )
            )
            continue
        asym = _check_symmetry(check_graph, counts)
        if asym is not None:
            report.failures.append(Failure(path.name, "invariant", asym))
    return report


def case_still_fails(case: FuzzCase, path_name: str) -> bool:
    """Shrinking predicate: does ``case`` still fail on ``path_name``?

    Any failure kind on that path counts — a mismatch that shrinks into a
    crash is still the same reproducer chain.
    """
    report = run_case(case, paths=[path_name])
    return any(f.path == path_name for f in report.failures)


def run_fuzz(
    num_cases: int,
    seed: int,
    paths=None,
    artifact_dir: str | None = None,
    shrink: bool = True,
    max_vertices: int | None = None,
    max_failures: int = 10,
    progress=None,
) -> FuzzReport:
    """Generate and differentially execute ``num_cases`` cases.

    Deterministic given ``(num_cases, seed, paths, max_vertices)``.  On a
    failing case the first failure is greedily shrunk
    (:func:`repro.fuzz.shrink.shrink_case`) and, when ``artifact_dir`` is
    given, serialized as a replayable artifact.  Stops collecting after
    ``max_failures`` distinct failing cases (the run keeps counting
    coverage).
    """
    from repro.fuzz import shrink as shrink_mod
    from repro.fuzz.generators import DEFAULT_MAX_VERTICES

    t0 = time.perf_counter()
    coverage: dict[str, int] = {
        p.name: 0 for p in _resolve_paths(paths)
    }
    failures: list[FuzzFailure] = []
    for index in range(num_cases):
        case = generate_case(
            seed, index, max_vertices=max_vertices or DEFAULT_MAX_VERTICES
        )
        report = run_case(case, paths=paths)
        for name in report.paths_run:
            coverage[name] += 1
        if report.failures and len(failures) < max_failures:
            failure = report.failures[0]
            shrunk = None
            artifact = None
            if shrink:
                shrunk = shrink_mod.shrink_case(
                    case, lambda c: case_still_fails(c, failure.path)
                )
            if artifact_dir is not None:
                artifact = shrink_mod.save_artifact(
                    shrunk if shrunk is not None else case,
                    failure,
                    artifact_dir,
                )
            failures.append(FuzzFailure(case, failure, shrunk, artifact))
        if progress is not None:
            progress(index + 1, num_cases, len(failures))
    return FuzzReport(
        cases=num_cases,
        seed=seed,
        coverage=coverage,
        failures=failures,
        elapsed_seconds=time.perf_counter() - t0,
    )
