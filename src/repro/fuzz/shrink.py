"""Greedy shrinking of failing fuzz cases and replayable artifacts.

A fuzz failure on a 48-vertex composite graph is a poor bug report; the
same failure on a 4-vertex, 3-edge graph is a unit test.  The shrinker
takes a failing case and a predicate ("does this still fail on the same
path?") and greedily minimizes, in order of leverage:

1. drop the edit sequence entirely, then whole batches, then single edits;
2. drop edge rows in exponentially shrinking chunks (delta-debugging
   style: halves, quarters, ..., single rows);
3. compact vertex ids — remove unused ids and renumber, so the reproducer
   ends at the smallest ``num_vertices`` that still fails.

Every accepted step re-runs the predicate, so the output is always a
still-failing case.  The result serializes to a JSON artifact carrying
the seed, edge pairs, edit sequence, and the failing path — enough to
replay the exact failure with ``repro fuzz --replay``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.fuzz.generators import EditBatch, FuzzCase

__all__ = [
    "shrink_case",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
    "ARTIFACT_FORMAT",
]

ARTIFACT_FORMAT = "repro-fuzz-v1"

#: Hard cap on predicate evaluations per shrink — keeps a pathological
#: failure from stalling the whole fuzz run.
MAX_PREDICATE_CALLS = 400


class _Budget:
    def __init__(self, limit: int, predicate):
        self.limit = limit
        self.calls = 0
        self.predicate = predicate

    def fails(self, case: FuzzCase) -> bool:
        if self.calls >= self.limit:
            return False  # budget exhausted: reject further shrinks
        self.calls += 1
        try:
            return bool(self.predicate(case))
        except Exception:  # noqa: BLE001 - a crashing predicate rejects
            return False


def _with(case: FuzzCase, **changes) -> FuzzCase:
    fields = {
        "num_vertices": case.num_vertices,
        "edges": case.edges,
        "edits": case.edits,
        "seed": case.seed,
        "index": case.index,
    }
    fields.update(changes)
    return FuzzCase(**fields)


# --------------------------------------------------------------------- #
# shrink passes
# --------------------------------------------------------------------- #
def _shrink_edits(case: FuzzCase, budget: _Budget) -> FuzzCase:
    if case.edits:
        candidate = _with(case, edits=[])
        if budget.fails(candidate):
            return candidate
    # Drop whole batches.
    i = 0
    while i < len(case.edits):
        candidate = _with(case, edits=case.edits[:i] + case.edits[i + 1 :])
        if budget.fails(candidate):
            case = candidate
        else:
            i += 1
    # Drop single edits inside each surviving batch.
    for i, batch in enumerate(list(case.edits)):
        for attr in ("insert", "delete"):
            rows = getattr(batch, attr)
            j = 0
            while j < len(rows):
                kept = np.delete(rows, j, axis=0)
                new_batch = EditBatch(
                    insert=kept if attr == "insert" else batch.insert,
                    delete=kept if attr == "delete" else batch.delete,
                )
                edits = list(case.edits)
                edits[i] = new_batch
                candidate = _with(case, edits=edits)
                if budget.fails(candidate):
                    case = candidate
                    batch = new_batch
                    rows = kept
                else:
                    j += 1
    return case


def _shrink_edges(case: FuzzCase, budget: _Budget) -> FuzzCase:
    """Delta-debugging row removal: big chunks first, then single rows."""
    chunk = max(1, len(case.edges) // 2)
    while chunk >= 1:
        i = 0
        while i < len(case.edges):
            kept = np.concatenate(
                [case.edges[:i], case.edges[i + chunk :]]
            ).reshape(-1, 2)
            candidate = _with(case, edges=kept)
            if budget.fails(candidate):
                case = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2
    return case


def _used_vertices(case: FuzzCase) -> np.ndarray:
    parts = [case.edges.ravel()]
    for batch in case.edits:
        parts.append(batch.insert.ravel())
        parts.append(batch.delete.ravel())
    flat = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return np.unique(flat)


def _compact_vertices(case: FuzzCase, budget: _Budget) -> FuzzCase:
    """Renumber used vertices to [0, k) and drop the unused tail."""
    used = _used_vertices(case)
    k = max(2, len(used))
    if len(used) and k < case.num_vertices:
        remap = np.full(case.num_vertices, -1, dtype=np.int64)
        remap[used] = np.arange(len(used), dtype=np.int64)

        def apply(rows: np.ndarray) -> np.ndarray:
            return remap[rows] if len(rows) else rows

        candidate = _with(
            case,
            num_vertices=k,
            edges=apply(case.edges),
            edits=[
                EditBatch(insert=apply(b.insert), delete=apply(b.delete))
                for b in case.edits
            ],
        )
        if budget.fails(candidate):
            return candidate
    # Even without renumbering, try trimming trailing isolated ids.
    hi = int(used.max()) + 1 if len(used) else 2
    hi = max(hi, 2)
    if hi < case.num_vertices:
        candidate = _with(case, num_vertices=hi)
        if budget.fails(candidate):
            return candidate
    return case


def shrink_case(
    case: FuzzCase,
    still_fails,
    max_predicate_calls: int = MAX_PREDICATE_CALLS,
) -> FuzzCase:
    """Greedily minimize ``case`` while ``still_fails(case)`` holds.

    ``still_fails`` must return True for the input case; if it does not
    (a flaky failure), the original case is returned unshrunk.  Passes
    repeat until a fixpoint or the predicate-call budget is exhausted.
    """
    budget = _Budget(max_predicate_calls, still_fails)
    if not budget.fails(case):
        return case
    while True:
        before = (len(case.edges), case.num_edits, case.num_vertices)
        case = _shrink_edits(case, budget)
        case = _shrink_edges(case, budget)
        case = _compact_vertices(case, budget)
        after = (len(case.edges), case.num_edits, case.num_vertices)
        if after == before or budget.calls >= budget.limit:
            return case


# --------------------------------------------------------------------- #
# artifacts
# --------------------------------------------------------------------- #
def save_artifact(case: FuzzCase, failure, directory: str | os.PathLike) -> str:
    """Serialize a (shrunk) failing case to a replayable JSON artifact."""
    os.makedirs(directory, exist_ok=True)
    name = (
        f"fuzz-seed{case.seed}-case{case.index}-"
        f"{failure.path.replace('/', '_')}.json"
    )
    path = os.path.join(str(directory), name)
    payload = {
        "format": ARTIFACT_FORMAT,
        "created_unix": int(time.time()),
        "failure": {
            "path": failure.path,
            "kind": failure.kind,
            "detail": failure.detail,
        },
        "case": case.to_dict(),
        "replay": f"repro fuzz --replay {name}",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return path


def load_artifact(path: str | os.PathLike) -> tuple[FuzzCase, dict]:
    """Load an artifact; returns ``(case, failure_record)``."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: unknown artifact format {payload.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT!r})"
        )
    return FuzzCase.from_dict(payload["case"]), payload.get("failure", {})


def replay_artifact(path: str | os.PathLike, paths=None):
    """Re-run a saved reproducer; returns its :class:`CaseReport`.

    By default only the artifact's recorded failing path runs.  If that
    path is not runnable on this host — its backend's optional dependency
    is absent (say the artifact came from ``gallop-compiled`` and
    ``REPRO_COMPILED=off`` here) — the replay is *skipped with a
    warning* (``report.skipped`` carries the reason) rather than either
    crashing with ``AlgorithmError`` or silently re-running every other
    path, neither of which reproduces anything.  Pass ``paths`` to
    override the path selection explicitly.
    """
    import warnings

    from repro.fuzz import differential

    case, failure = load_artifact(path)
    if paths is None:
        recorded = failure.get("path")
        if recorded is not None:
            # Converge the path set to current availability first: a path
            # registered at import can have lost its dependency since.
            if recorded not in differential.refresh_paths():
                reason = (
                    f"recorded path {recorded!r} is not runnable on this "
                    f"host (its backend is unregistered or its optional "
                    f"dependency is unavailable); skipping replay of {path}"
                )
                warnings.warn(reason, RuntimeWarning, stacklevel=2)
                return differential.CaseReport(case=case, skipped=reason)
            paths = [recorded]
    return differential.run_case(case, paths=paths)
