"""Seeded graph grammar for differential fuzzing.

Each :class:`FuzzCase` is generated deterministically from ``(seed,
index)`` — the same pair always yields the same vertices, edges, and edit
sequence, so a failing case reported by CI reproduces locally from two
integers.  The grammar composes the structures the backends disagree on
first when they disagree at all:

* **stars** — maximal degree skew, the gallop-bucket boundary;
* **cliques** — maximal density, the matmul-row boundary;
* **bipartite blocks** — zero triangles with large intersections;
* **paths** — minimal everything;
* **power-law tails** — Chung–Lu-style hub plus thin tail;
* **duplicate-dense edge lists** — repeated pairs exercising CSR dedup;
* **isolated vertices** — ``num_vertices`` beyond the last used id.

Cases additionally carry a random *edit sequence* (batched insertions and
deletions, including duplicate inserts, deletes of absent edges, and
batches large enough to cross the dynamic recount threshold) for the
:class:`~repro.core.dynamic.DynamicCounter` replay path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.build import edges_to_csr
from repro.graph.csr import CSRGraph

__all__ = ["EditBatch", "FuzzCase", "generate_case"]

#: Default vertex-count ceiling for generated cases.  Small cases keep the
#: brute-force reference and the per-edge merge path fast; the shapes, not
#: the sizes, carry the bug-finding power.
DEFAULT_MAX_VERTICES = 48

#: Maximum edit batches per case (when the case has edits at all).
DEFAULT_MAX_EDIT_BATCHES = 4


def _as_edge_array(pairs) -> np.ndarray:
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return arr.reshape(-1, 2)


@dataclass
class EditBatch:
    """One batch of edge updates for the dynamic replay path."""

    insert: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )
    delete: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )

    def __post_init__(self):
        self.insert = _as_edge_array(self.insert)
        self.delete = _as_edge_array(self.delete)

    @property
    def size(self) -> int:
        return len(self.insert) + len(self.delete)

    def to_dict(self) -> dict:
        return {
            "insert": self.insert.tolist(),
            "delete": self.delete.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EditBatch":
        return cls(insert=data.get("insert", []), delete=data.get("delete", []))


@dataclass
class FuzzCase:
    """One differential-fuzzing input: a raw edge list plus edits.

    ``edges`` is the *raw* pair list — duplicates and both orientations
    are allowed (CSR construction collapses them), because duplicate-dense
    inputs are part of the grammar.  ``seed``/``index`` record provenance
    for regenerated cases; shrunk cases keep them so artifacts point back
    at the originating fuzz run.
    """

    num_vertices: int
    edges: np.ndarray
    edits: list[EditBatch] = field(default_factory=list)
    seed: int = 0
    index: int = 0

    def __post_init__(self):
        self.edges = _as_edge_array(self.edges)

    def graph(self) -> CSRGraph:
        """The case's base graph in CSR form."""
        return edges_to_csr(
            self.edges[:, 0], self.edges[:, 1], self.num_vertices
        )

    @property
    def num_edits(self) -> int:
        return sum(b.size for b in self.edits)

    def describe(self) -> str:
        return (
            f"case(seed={self.seed}, index={self.index}, "
            f"|V|={self.num_vertices}, {len(self.edges)} edge rows, "
            f"{self.num_edits} edits in {len(self.edits)} batches)"
        )

    def to_dict(self) -> dict:
        return {
            "seed": int(self.seed),
            "index": int(self.index),
            "num_vertices": int(self.num_vertices),
            "edges": self.edges.tolist(),
            "edits": [b.to_dict() for b in self.edits],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            num_vertices=int(data["num_vertices"]),
            edges=data.get("edges", []),
            edits=[EditBatch.from_dict(b) for b in data.get("edits", [])],
            seed=int(data.get("seed", 0)),
            index=int(data.get("index", 0)),
        )


# --------------------------------------------------------------------- #
# motifs
# --------------------------------------------------------------------- #
def _motif_star(rng, n: int) -> list[tuple[int, int]]:
    hub = int(rng.integers(0, n))
    k = int(rng.integers(1, min(n, 24)))
    leaves = rng.choice(n, size=k, replace=False)
    return [(hub, int(v)) for v in leaves if v != hub]


def _motif_clique(rng, n: int) -> list[tuple[int, int]]:
    k = int(rng.integers(2, min(n, 9) + 1))
    members = rng.choice(n, size=k, replace=False)
    return [
        (int(members[i]), int(members[j]))
        for i in range(k)
        for j in range(i + 1, k)
    ]


def _motif_bipartite(rng, n: int) -> list[tuple[int, int]]:
    k = int(rng.integers(1, min(n, 12) + 1))
    both = rng.choice(n, size=min(2 * k, n), replace=False)
    left, right = both[: len(both) // 2], both[len(both) // 2 :]
    return [(int(u), int(v)) for u in left for v in right if u != v]


def _motif_path(rng, n: int) -> list[tuple[int, int]]:
    k = int(rng.integers(2, min(n, 16) + 1))
    walk = rng.choice(n, size=k, replace=False)
    return [
        (int(walk[i]), int(walk[i + 1]))
        for i in range(k - 1)
    ]


def _motif_powerlaw(rng, n: int) -> list[tuple[int, int]]:
    m = int(rng.integers(4, 4 * n))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = ranks**-1.5
    probs /= probs.sum()
    src = rng.choice(n, size=m, p=probs)
    dst = rng.choice(n, size=m, p=probs)
    keep = src != dst
    return list(zip(src[keep].tolist(), dst[keep].tolist()))


def _motif_random(rng, n: int) -> list[tuple[int, int]]:
    m = int(rng.integers(1, 3 * n))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return list(zip(src[keep].tolist(), dst[keep].tolist()))


def _motif_clique_dense(rng, n: int) -> list[tuple[int, int]]:
    """Several cliques sharing a common core — adversarial for k-clique
    counting: deep DAG recursion levels plus many cliques counted through
    more than one seed edge if the orientation were wrong."""
    core_size = int(rng.integers(2, min(n, 5) + 1))
    core = rng.choice(n, size=core_size, replace=False)
    pairs: list[tuple[int, int]] = []
    for _ in range(int(rng.integers(2, 5))):
        extra = int(rng.integers(1, min(n, 5)))
        others = rng.choice(n, size=extra, replace=False)
        members = np.unique(np.concatenate([core, others]))
        pairs.extend(
            (int(members[i]), int(members[j]))
            for i in range(len(members))
            for j in range(i + 1, len(members))
        )
    return pairs


def _motif_bipartite_skewed(rng, n: int) -> list[tuple[int, int]]:
    """A complete 2×k (or 3×k) block — maximal biclique density with one
    side tiny: the subset-emission hot case (huge C(d_r, p) per right
    vertex) and a guaranteed-bipartite region of the case graph."""
    small = int(rng.integers(2, 4))
    big = int(rng.integers(2, min(max(n - small, 3), 14)))
    chosen = rng.choice(n, size=min(small + big, n), replace=False)
    left, right = chosen[:small], chosen[small:]
    return [(int(u), int(v)) for u in left for v in right]


_MOTIFS = (
    _motif_star,
    _motif_clique,
    _motif_bipartite,
    _motif_path,
    _motif_powerlaw,
    _motif_random,
    _motif_clique_dense,
    _motif_bipartite_skewed,
)


# --------------------------------------------------------------------- #
# edit sequences
# --------------------------------------------------------------------- #
def _live_edge_set(case_edges: np.ndarray) -> set[tuple[int, int]]:
    """Canonical undirected edge set of a raw pair list (no self-loops)."""
    live = set()
    for u, v in case_edges.tolist():
        if u != v:
            live.add((u, v) if u < v else (v, u))
    return live


def _random_pairs(rng, n: int, count: int) -> list[tuple[int, int]]:
    out = []
    for _ in range(count):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            out.append((u, v))
    return out


def _generate_edits(
    rng, n: int, edges: np.ndarray, max_batches: int
) -> list[EditBatch]:
    """Random interleaved insert/delete batches over the case's graph.

    Tracks the live edge set so deletions mostly hit real edges (including
    edges inserted by an earlier batch), while still emitting duplicate
    inserts and absent-edge deletes — both must be recorded no-ops.  One
    batch in ~3 is oversized to push the dynamic counter across its
    recount-fallback threshold.
    """
    live = _live_edge_set(edges)
    batches: list[EditBatch] = []
    for _ in range(int(rng.integers(1, max_batches + 1))):
        oversized = rng.random() < 0.3
        scale = max(3, len(live))
        ins_count = (
            int(rng.integers(scale // 2 + 1, scale + 2))
            if oversized
            else int(rng.integers(0, 5))
        )
        ins = _random_pairs(rng, n, ins_count)
        # Occasionally re-insert a live edge (a recorded no-op).
        if live and rng.random() < 0.4:
            ins.append(list(live)[int(rng.integers(0, len(live)))])

        dels: list[tuple[int, int]] = []
        pool = sorted(live)
        if pool:
            k = min(int(rng.integers(0, 4)), len(pool))
            for i in rng.choice(len(pool), size=k, replace=False):
                dels.append(pool[int(i)])
        # Occasionally delete an absent edge (a recorded no-op).
        if rng.random() < 0.3:
            dels.extend(_random_pairs(rng, n, 1))

        for u, v in ins:
            live.add((u, v) if u < v else (v, u))
        for u, v in dels:
            live.discard((u, v) if u < v else (v, u))
        batches.append(EditBatch(insert=ins, delete=dels))
    return batches


# --------------------------------------------------------------------- #
# case generation
# --------------------------------------------------------------------- #
def generate_case(
    seed: int,
    index: int,
    max_vertices: int = DEFAULT_MAX_VERTICES,
    max_edit_batches: int = DEFAULT_MAX_EDIT_BATCHES,
) -> FuzzCase:
    """Deterministically generate fuzz case ``index`` of run ``seed``.

    The RNG is keyed by ``(seed, index)`` so any single case regenerates
    without replaying the run prefix.
    """
    rng = np.random.default_rng([seed & 0xFFFFFFFF, index])
    n = int(rng.integers(2, max_vertices + 1))

    pairs: list[tuple[int, int]] = []
    for _ in range(int(rng.integers(1, 4))):
        motif = _MOTIFS[int(rng.integers(0, len(_MOTIFS)))]
        pairs.extend(motif(rng, n))

    edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    # Duplicate-dense: repeat a random slice of rows (CSR must collapse
    # them; the dynamic overlay must treat them as recorded no-ops).
    if len(edges) and rng.random() < 0.5:
        k = int(rng.integers(1, len(edges) + 1))
        dup = edges[rng.choice(len(edges), size=k, replace=True)]
        # Flip orientation of half the duplicates.
        flip = rng.random(k) < 0.5
        dup[flip] = dup[flip][:, ::-1]
        edges = np.concatenate([edges, dup])
    if len(edges):
        edges = edges[rng.permutation(len(edges))]

    # Leave headroom above the last used id so isolated vertices exist.
    if rng.random() < 0.5:
        n = min(max_vertices, n + int(rng.integers(1, 6)))

    edits: list[EditBatch] = []
    if rng.random() < 0.6:
        edits = _generate_edits(rng, n, edges, max_edit_batches)

    return FuzzCase(
        num_vertices=n, edges=edges, edits=edits, seed=seed, index=index
    )
