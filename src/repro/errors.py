"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """A graph violates a structural invariant (CSR layout, sortedness...)."""


class EdgeNotFoundError(ReproError, KeyError):
    """An edge-offset lookup ``e(u, v)`` was requested for a missing edge."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u}, {v}) not present in graph")
        self.u = u
        self.v = v


class AlgorithmError(ReproError):
    """An algorithm was misconfigured or received invalid input."""


class UnknownAlgorithmError(AlgorithmError, KeyError):
    """Requested algorithm name is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        super().__init__(f"unknown algorithm {name!r}; known: {', '.join(known)}")
        self.name = name
        self.known = known


class SimulationError(ReproError):
    """The architecture simulator was given inconsistent parameters."""


class CapacityError(SimulationError):
    """A simulated memory allocation exceeds the device capacity."""


class VerificationError(ReproError):
    """Computed counts failed verification against a reference."""
