"""Exception hierarchy for the repro package.

All errors raised by this package derive from :class:`ReproError` so that
callers can catch package-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """A graph violates a structural invariant (CSR layout, sortedness...)."""


class EdgeNotFoundError(ReproError, KeyError):
    """An edge-offset lookup ``e(u, v)`` was requested for a missing edge."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u}, {v}) not present in graph")
        self.u = u
        self.v = v


class AlgorithmError(ReproError):
    """An algorithm was misconfigured or received invalid input."""


class UnknownAlgorithmError(AlgorithmError, KeyError):
    """Requested algorithm name is not registered."""

    def __init__(self, name: str, known: tuple[str, ...]):
        super().__init__(f"unknown algorithm {name!r}; known: {', '.join(known)}")
        self.name = name
        self.known = known


class SessionClosedError(ReproError, RuntimeError):
    """A :class:`~repro.engine.session.GraphSession` was used after close().

    Derives from ``RuntimeError`` so pre-existing callers catching the old
    incidental failures keep working; the message names the operation that
    was attempted so long-lived services log something actionable instead
    of a ``KeyError`` from a cleared artifact dict.
    """

    def __init__(self, operation: str = "use"):
        super().__init__(
            f"cannot {operation} a closed GraphSession; sessions release "
            "their worker pool and shared-memory export on close() and "
            "cannot be reopened"
        )
        self.operation = operation


class ServiceOverloadedError(ReproError):
    """The serving layer's admission queue is full; retry after a delay."""

    def __init__(self, queue_depth: int, retry_after: float = 0.05):
        super().__init__(
            f"admission queue full ({queue_depth} requests pending); "
            f"retry in {retry_after:g}s"
        )
        self.queue_depth = queue_depth
        self.retry_after = retry_after


class UnknownGraphError(ReproError, KeyError):
    """A serving request referenced a graph key not in the session pool."""

    def __init__(self, key: str, known: tuple[str, ...] = ()):
        super().__init__(
            f"unknown graph {key!r}; loaded graphs: {sorted(known) or 'none'}"
        )
        self.key = key
        self.known = known


class SharedExportError(ReproError):
    """A shared-memory CSR export could not be attached.

    Raised (instead of the incidental ``FileNotFoundError`` from
    ``multiprocessing.shared_memory``) when a worker attaches a handle
    whose blocks were already unlinked by the exporting process — the
    session closed, or the export was invalidated by an edit batch while
    a request was still in flight.
    """

    def __init__(self, name: str, detail: str = ""):
        super().__init__(
            f"cannot attach shared-memory block {name!r}: the export was "
            "already unlinked by its owner (session closed or invalidated)"
            + (f"; {detail}" if detail else "")
        )
        self.name = name


class StreamOrderError(ReproError, ValueError):
    """A stream event carried a timestamp earlier than the stream clock.

    Sliding-window expiry relies on non-decreasing timestamps (the
    arrival log is a monotone deque); out-of-order events would silently
    corrupt the live-edge set, so they are rejected loudly instead.
    """

    def __init__(self, timestamp: float, now: float):
        super().__init__(
            f"stream timestamp {timestamp:g} precedes the current stream "
            f"clock {now:g}; events must arrive in non-decreasing time order"
        )
        self.timestamp = timestamp
        self.now = now


class SimulationError(ReproError):
    """The architecture simulator was given inconsistent parameters."""


class CapacityError(SimulationError):
    """A simulated memory allocation exceeds the device capacity."""


class VerificationError(ReproError):
    """Computed counts failed verification against a reference."""
