"""Algorithm layer: the paper's M baseline, MPS, and BMP.

Each algorithm provides (a) exact all-edge counting and (b) the per-edge
work model consumed by the architecture simulator.  Obtain instances via
:func:`get_algorithm` or the registry in :mod:`repro.algorithms.base`.
"""

from repro.algorithms.base import Algorithm, get_algorithm, register_algorithm, algorithm_names
from repro.algorithms.baseline import MergeBaseline
from repro.algorithms.mps import MPS
from repro.algorithms.bmp import BMP
from repro.algorithms.symmetry import (
    reverse_offsets_via_search,
    coprocess_reverse_offsets,
)
from repro.algorithms.reference import (
    run_merge_reference,
    run_mps_reference,
    run_bmp_reference,
)

__all__ = [
    "Algorithm",
    "get_algorithm",
    "register_algorithm",
    "algorithm_names",
    "MergeBaseline",
    "MPS",
    "BMP",
    "reverse_offsets_via_search",
    "coprocess_reverse_offsets",
    "run_merge_reference",
    "run_mps_reference",
    "run_bmp_reference",
]
