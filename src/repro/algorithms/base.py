"""Algorithm interface and registry.

An :class:`Algorithm` bundles the two things the paper varies per
experiment: how counts are computed (the exact production path) and what
work each edge costs (the model the processor simulators price).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.errors import UnknownAlgorithmError
from repro.graph.csr import CSRGraph
from repro.kernels.costmodel import EdgeSet
from repro.types import WorkVector

__all__ = ["Algorithm", "register_algorithm", "get_algorithm", "algorithm_names"]


class Algorithm(abc.ABC):
    """One all-edge common-neighbor-counting algorithm.

    Subclasses define:

    * :attr:`name` — registry key (e.g. ``"MPS"``);
    * :attr:`requires_reorder` — whether the algorithm depends on the
      degree-descending vertex ordering (BMP does, paper §2.1);
    * :meth:`count` — exact counts aligned with ``graph.dst``;
    * :meth:`work` — per-edge :class:`WorkVector` for the simulator.
    """

    name: str = "abstract"
    requires_reorder: bool = False

    @abc.abstractmethod
    def count(self, graph: CSRGraph) -> np.ndarray:
        """Exact all-edge counts, aligned with ``graph.dst``."""

    @abc.abstractmethod
    def work(self, es: EdgeSet) -> WorkVector:
        """Modeled per-edge work over the ``u < v`` edges of ``es``."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


_REGISTRY: dict[str, Callable[[], Algorithm]] = {}


def register_algorithm(name: str, factory: Callable[[], Algorithm]) -> None:
    """Register a zero-argument factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.upper()] = factory


def algorithm_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_algorithm(name: str, **kwargs) -> Algorithm:
    """Instantiate a registered algorithm.

    ``kwargs`` override the variant's default parameters (e.g.
    ``get_algorithm("MPS", skew_threshold=20)``).
    """
    key = name.upper()
    if key not in _REGISTRY:
        raise UnknownAlgorithmError(name, algorithm_names())
    algo = _REGISTRY[key]()
    for attr, value in kwargs.items():
        if not hasattr(algo, attr):
            raise TypeError(f"{key} has no parameter {attr!r}")
        setattr(algo, attr, value)
    return algo
