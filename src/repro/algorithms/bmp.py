"""BMP — dynamically constructed bitmap index (Algorithm 2).

BMP builds the bitmap over the *larger* neighbor set (guaranteed by the
degree-descending reorder) and probes it with the smaller one, so each
intersection is ``O(min(d_u, d_v))``.  The production count path runs the
bitmap-structured counting on the reordered graph, then maps the counts
back to the original edge offsets — demonstrating that the reorder is a
performance transform, not a semantic one.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm, register_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.reorder import reorder_graph
from repro.kernels.batch import count_all_edges_bitmap
from repro.kernels.costmodel import EdgeSet, bmp_work
from repro.kernels.rangefilter import DEFAULT_RANGE_SCALE
from repro.types import WorkVector

__all__ = ["BMP", "map_counts_to_original"]


def map_counts_to_original(
    original: CSRGraph, new_id: np.ndarray, counts_new: np.ndarray
) -> np.ndarray:
    """Realign counts computed on a reordered graph with the original CSR.

    The reordered CSR enumerates directed edges sorted by
    ``(new_u, new_v)``; the original CSR sorts by ``(old_u, old_v)``.
    Lexsorting the reordered edges by their *old* endpoint ids yields, for
    each original position, the reordered position holding its count.
    """
    src_old = original.edge_sources().astype(np.int64)
    dst_old = original.dst.astype(np.int64)
    src_new = new_id[src_old]
    dst_new = new_id[dst_old]
    # Position of each original edge inside the reordered CSR: rank of
    # (src_new, dst_new) among all reordered pairs.
    order = np.lexsort((dst_new, src_new))
    positions = np.empty(len(order), dtype=np.int64)
    positions[order] = np.arange(len(order))
    return counts_new[positions]


class BMP(Algorithm):
    """Bitmap-index algorithm with optional range filtering.

    Parameters
    ----------
    range_filter:
        Enable the paper's bitmap range filtering technique (RF).
    range_scale:
        Ids covered per filter bit (paper ratio: 4096).
    """

    name = "BMP"
    requires_reorder = True

    def __init__(
        self, range_filter: bool = False, range_scale: int = DEFAULT_RANGE_SCALE
    ):
        self.range_filter = bool(range_filter)
        self.range_scale = int(range_scale)

    def count(self, graph: CSRGraph) -> np.ndarray:
        rr = reorder_graph(graph)
        counts_new = count_all_edges_bitmap(rr.graph)
        return map_counts_to_original(graph, rr.new_id, counts_new)

    def work(self, es: EdgeSet) -> WorkVector:
        return bmp_work(
            es,
            range_filter=self.range_filter,
            range_scale=self.range_scale,
            assume_reordered=True,
        )

    def describe(self) -> str:
        rf = f", RF/{self.range_scale}" if self.range_filter else ""
        return f"BMP({'reordered'}{rf})"


register_algorithm("BMP", BMP)
register_algorithm("BMP-RF", lambda: BMP(range_filter=True))
