"""Reference executions of the paper's Algorithms 1 and 2.

These run the *exact control flow* of the pseudocode — the edge loop with
the ``u < v`` constraint and symmetric assignment, MPS's threshold
dispatch between VB and PS, and BMP's per-vertex bitmap build/probe/flip
cycle — using the instrumented scalar kernels.  They are slow (pure
Python) and exist as executable specifications: the test suite checks the
fast production paths against them and validates the paper's accounting
claims (e.g. the amortized bitmap index cost of §3.2).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import reverse_edge_offsets
from repro.kernels.bitmap import Bitmap, intersect_bitmap
from repro.kernels.blockmerge import intersect_block_merge
from repro.kernels.merge import intersect_merge
from repro.kernels.pivotskip import intersect_pivot_skip
from repro.kernels.rangefilter import RangeFilteredBitmap, intersect_range_filtered
from repro.types import OpCounts

__all__ = ["run_merge_reference", "run_mps_reference", "run_bmp_reference"]


def _upper_edge_offsets(graph: CSRGraph):
    src = graph.edge_sources()
    return np.flatnonzero(src < graph.dst), src


def _mirror(graph: CSRGraph, cnt: np.ndarray) -> np.ndarray:
    rev = reverse_edge_offsets(graph)
    src = graph.edge_sources()
    lower = src > graph.dst
    cnt[lower] = cnt[rev[lower]]
    return cnt


def run_merge_reference(
    graph: CSRGraph, counts: OpCounts | None = None
) -> np.ndarray:
    """The baseline M: plain merge for every ``u < v`` edge."""
    upper, src = _upper_edge_offsets(graph)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for eo in upper:
        u, v = int(src[eo]), int(graph.dst[eo])
        cnt[eo] = intersect_merge(graph.neighbors(u), graph.neighbors(v), counts)
    return _mirror(graph, cnt)


def run_mps_reference(
    graph: CSRGraph,
    skew_threshold: float = 50.0,
    lane_width: int = 8,
    counts: OpCounts | None = None,
) -> np.ndarray:
    """Algorithm 1 verbatim: threshold-dispatched VB / PS per edge.

    Lines 2-4: ``d_u/d_v <= t and d_v/d_u <= t`` selects the block-wise
    merge; otherwise pivot-skip.  Line 5: symmetric assignment.
    """
    upper, src = _upper_edge_offsets(graph)
    d = graph.degrees
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for eo in upper:
        u, v = int(src[eo]), int(graph.dst[eo])
        du, dv = max(int(d[u]), 1), max(int(d[v]), 1)
        a1, a2 = graph.neighbors(u), graph.neighbors(v)
        if du / dv <= skew_threshold and dv / du <= skew_threshold:
            cnt[eo] = intersect_block_merge(a1, a2, counts, lane_width)
        else:
            cnt[eo] = intersect_pivot_skip(a1, a2, counts, lane_width)
    return _mirror(graph, cnt)


def run_bmp_reference(
    graph: CSRGraph,
    range_filter: bool = False,
    range_scale: int = 64,
    counts: OpCounts | None = None,
) -> np.ndarray:
    """Algorithm 2 verbatim: dynamic bitmap per vertex computation.

    For each ``u``: set ``N(u)``'s bits, probe for every neighbor
    ``v > u``, mirror the count, then *flip the same bits back* — the
    amortized-constant index cost of §3.2.  The caller should pass a
    degree-descending-reordered graph for the ``O(min(d_u, d_v))`` bound,
    but correctness holds for any ordering.
    """
    n = graph.num_vertices
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if range_filter:
        index = RangeFilteredBitmap(n, range_scale)
        probe = intersect_range_filtered
    else:
        index = Bitmap(n)
        probe = intersect_bitmap

    for u in range(n):
        nbrs = graph.neighbors(u)
        if len(nbrs) == 0:
            continue
        index.set_many(nbrs, counts)
        lo, hi = graph.neighbor_range(u)
        first = int(np.searchsorted(nbrs, u + 1))
        for j in range(first, hi - lo):
            v = int(nbrs[j])
            cnt[lo + j] = probe(index, graph.neighbors(v), counts)
        index.clear_many(nbrs, counts)

    if not (index.is_clear()):
        raise AssertionError("bitmap not restored to all-zero after the sweep")
    return _mirror(graph, cnt)
