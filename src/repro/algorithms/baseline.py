"""The baseline M: plain two-pointer merge for every edge.

This is the comparison point of the paper's Figure 3 and Table 4 — no
pivot-skip, no vectorization, no bitmap.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm, register_algorithm
from repro.graph.csr import CSRGraph
from repro.kernels.batch import count_all_edges_matmul
from repro.kernels.costmodel import EdgeSet, merge_work
from repro.types import WorkVector

__all__ = ["MergeBaseline"]


class MergeBaseline(Algorithm):
    """Merge-only baseline (``M`` in the paper's evaluation)."""

    name = "M"
    requires_reorder = False

    def count(self, graph: CSRGraph) -> np.ndarray:
        # All exact paths produce identical counts; the production
        # implementation is shared.  M's *cost* differs, not its output.
        return count_all_edges_matmul(graph)

    def work(self, es: EdgeSet) -> WorkVector:
        return merge_work(es)


register_algorithm("M", MergeBaseline)
