"""Symmetric assignment and reverse-edge-offset computation.

The paper computes each count once (for ``u < v``) and mirrors it to
``e(v, u)``.  Finding ``e(v, u)`` takes a binary search of ``u`` in
``N(v)``; on the GPU this latency is hidden by *co-processing*
(Algorithm 4): while the GPU counts, the CPU stores each reverse offset
``e(u, v) ← e(v, u)`` so the final mirroring is a gather instead of a
search.  Both strategies are implemented here; their modeled costs feed
Table 5.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import reverse_edge_offsets
from repro.types import OpCounts

__all__ = [
    "reverse_offsets_via_search",
    "coprocess_reverse_offsets",
    "symmetric_assign_with_offsets",
]


def reverse_offsets_via_search(
    graph: CSRGraph, counts: OpCounts | None = None
) -> np.ndarray:
    """Reverse offsets through per-edge binary search (the slow path).

    For every edge offset ``e(u, v)`` locate ``u`` inside ``N(v)``.  The
    binary searches are the post-processing cost that co-processing hides;
    instrumentation records one binary step per probe so Table 5's modeled
    times derive from real counts.
    """
    src = graph.edge_sources()
    dst = graph.dst
    offsets = graph.offsets
    rev = np.empty(len(dst), dtype=np.int64)
    steps_total = 0
    for eo in range(len(dst)):
        v = int(dst[eo])
        u = int(src[eo])
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        # Binary search of u in N(v).
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if dst[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        rev[eo] = lo
        steps_total += steps
    if counts is not None:
        counts.binary_steps += steps_total
        counts.rand_words += steps_total
    return rev


def coprocess_reverse_offsets(graph: CSRGraph) -> np.ndarray:
    """Vectorized reverse offsets (the co-processing fast path).

    A single lexsort of the directed edge list by ``(dst, src)`` produces
    every reverse offset at once; this is what the CPU computes while the
    GPU counts in Algorithm 4.
    """
    return reverse_edge_offsets(graph)


def symmetric_assign_with_offsets(
    graph: CSRGraph, cnt: np.ndarray, rev: np.ndarray
) -> np.ndarray:
    """Mirror ``u < v`` counts onto ``u > v`` offsets using ``rev``."""
    src = graph.edge_sources()
    lower = src > graph.dst
    cnt[lower] = cnt[rev[lower]]
    return cnt
