"""MPS — merge with pivot-skip and optional vectorization (Algorithm 1).

Dispatch per edge on the degree-skew ratio against threshold ``t``
(paper's empirical default 50): skewed pairs take the pivot-skip merge,
balanced pairs take the block-wise merge — *vectorized* at ``lane_width``
lanes when vectorization is enabled (the paper's technique **V**), scalar
otherwise (the configuration of Figure 3, before V is enabled).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm, register_algorithm
from repro.graph.csr import CSRGraph
from repro.kernels.batch import count_all_edges_matmul
from repro.kernels.costmodel import (
    EdgeSet,
    block_merge_work,
    merge_work,
    pivot_skip_work,
    skew_mask,
)
from repro.types import WorkVector

__all__ = ["MPS", "DEFAULT_SKEW_THRESHOLD"]

#: Paper: "We choose an empirical number 50 as the threshold".
DEFAULT_SKEW_THRESHOLD = 50.0


class MPS(Algorithm):
    """Merge-based pivot-skip algorithm.

    Parameters
    ----------
    skew_threshold:
        Degree-ratio cutoff ``t`` between VB (below) and PS (above).
    vectorized:
        Whether the balanced-pair merge uses the SIMD block-wise kernel.
    lane_width:
        SIMD lanes when vectorized: 8 = AVX2, 16 = AVX-512, 32 = GPU warp.
    """

    name = "MPS"
    requires_reorder = False

    def __init__(
        self,
        skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
        vectorized: bool = True,
        lane_width: int = 8,
    ):
        self.skew_threshold = float(skew_threshold)
        self.vectorized = bool(vectorized)
        self.lane_width = int(lane_width)

    def count(self, graph: CSRGraph) -> np.ndarray:
        return count_all_edges_matmul(graph)

    def work(self, es: EdgeSet) -> WorkVector:
        skewed = skew_mask(es, self.skew_threshold)
        ps = pivot_skip_work(es, self.lane_width)
        balanced = (
            block_merge_work(es, self.lane_width)
            if self.vectorized
            else merge_work(es)
        )
        w = WorkVector(len(es))
        for name in w.fields():
            w[name] = np.where(skewed, ps[name], balanced[name])
        return w

    def describe(self) -> str:
        v = f"VB{self.lane_width}" if self.vectorized else "scalar-merge"
        return f"MPS(t={self.skew_threshold:g}, {v})"


register_algorithm("MPS", MPS)
register_algorithm("MPS-SCALAR", lambda: MPS(vectorized=False))
register_algorithm("MPS-AVX2", lambda: MPS(lane_width=8))
register_algorithm("MPS-AVX512", lambda: MPS(lane_width=16))
