"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``       Table 1/2 statistics for a dataset stand-in or edge-list file.
``count``       Exact all-edge counting (optionally saving the counts), or a
                registered motif total via ``--motif clique-4`` /
                ``--motif biclique-2-2``.
``plan``        Inspect the hybrid planner's kernel buckets for a graph
                (``--motif`` prices a motif count instead).
``backends``    The backend registry: capabilities, availability, motifs.
``update``      Apply edge insertions/deletions with live count maintenance.
``serve``       Long-lived HTTP/JSON counting service with request batching.
``stream``      Sliding-window counting over a timestamped edge stream.
``fuzz``        Differential fuzzing across every registered execution path.
``simulate``    Modeled run on one of the paper's three processors.
``experiment``  Regenerate one paper table/figure (table1..table7, fig3..fig10).
``recommend``   The paper's processor guidance for a graph.
``cluster``     SCAN structural clustering on the counts.
``linkpred``    Link prediction (common neighbors / Adamic-Adar / RA).
``datasets``    List the bundled dataset stand-ins.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _load_graph(spec: str, scale: float, reordered: bool):
    """A graph argument is either a dataset name or an edge-list path."""
    from repro.graph.datasets import DATASETS, load_dataset
    from repro.graph.io import read_edge_list
    from repro.graph.reorder import reorder_graph

    if spec in DATASETS:
        return load_dataset(spec, scale=scale, reordered=reordered)
    graph = read_edge_list(spec)
    if reordered:
        graph = reorder_graph(graph).graph
    return graph


def _cmd_stats(args) -> int:
    from repro.graph.stats import graph_statistics

    graph = _load_graph(args.graph, args.scale, reordered=False)
    s = graph_statistics(graph, args.graph, skew_threshold=args.skew_threshold)
    print(f"graph            : {args.graph}")
    print(f"|V|              : {s.num_vertices}")
    print(f"|E| (undirected) : {s.num_edges}")
    print(f"average degree   : {s.average_degree:.2f}")
    print(f"max degree       : {s.max_degree}")
    print(
        f"skewed edges     : {s.skew_percentage:.1f}% "
        f"(degree ratio > {args.skew_threshold:g})"
    )
    return 0


def _cmd_count(args) -> int:
    from repro.core import verify_counts
    from repro.engine import GraphSession
    from repro.motif import DEFAULT_MOTIF

    graph = _load_graph(args.graph, args.scale, reordered=False)
    if args.motif != DEFAULT_MOTIF:
        return _count_motif(args, graph)
    backend = args.backend
    if backend == "auto" and args.shard_mb is not None:
        backend = "sharded"
    elif backend == "auto" and (args.workers is not None or args.stats):
        backend = "parallel"
    with GraphSession(graph, shard_budget_mb=args.shard_mb) as session:
        result = session.count(
            algorithm=args.algorithm,
            backend=backend,
            num_workers=args.workers,
            chunks_per_worker=args.chunks_per_worker,
            collect_stats=args.stats,
            cover=not args.no_cover,
        )
        if args.verify:
            verify_counts(result)
            print("verification     : passed")
        print(f"graph            : {graph}")
        print(f"triangles        : {result.triangle_count()}")
        if args.stats and result.parallel_stats is not None:
            print(result.parallel_stats.format())
        if args.stats and result.hybrid_report is not None:
            print(result.hybrid_report.format())
        print("top edges (u, v, common neighbors):")
        for u, v, c in result.top_edges(args.top):
            print(f"  ({u}, {v})  {c}")
        if args.output:
            np.savez_compressed(args.output, counts=result.counts)
            print(f"counts saved     : {args.output}")
    return 0


def _count_motif(args, graph) -> int:
    """``count --motif``: one motif total through the session runners."""
    from repro.engine import GraphSession
    from repro.errors import VerificationError
    from repro.motif import get_motif

    spec = get_motif(args.motif)  # unknown motif -> AlgorithmError, exit 4
    with GraphSession(graph) as session:
        result = session.count_motif(args.motif, backend=args.backend)
        print(f"graph            : {graph}")
        print(f"motif            : {result.motif} (arity {spec.arity})")
        print(f"backend          : {result.backend}")
        print(f"occurrences      : {result.total}")
        if args.verify:
            structure = (
                session.bipartite_view().graph
                if spec.structure == "bipartite"
                else graph
            )
            reference = spec.reference(structure)
            if reference != result.total:
                raise VerificationError(
                    f"motif {result.motif} backend {result.backend!r} counted "
                    f"{result.total}, brute force counted {reference}"
                )
            print("verification     : passed (brute force)")
    return 0


def _cmd_plan(args) -> int:
    from repro.engine import GraphSession
    from repro.motif import DEFAULT_MOTIF
    from repro.plan import plan_cache_stats

    graph = _load_graph(args.graph, args.scale, reordered=False)
    if args.motif != DEFAULT_MOTIF:
        return _plan_motif(args, graph)
    with GraphSession(graph) as session:
        plan = session.plan(args.skew_threshold, cover=not args.no_cover)
        print(f"graph            : {graph}")
        print(plan.format())
        if args.execute:
            report = session.count(
                backend="hybrid",
                skew_threshold=args.skew_threshold,
                num_workers=args.workers,
                collect_stats=True,
                cover=not args.no_cover,
            ).hybrid_report
            for t in report.timings:
                print(
                    f"ran    {t.name:7s}: {t.edges:>8d} edges in "
                    f"{t.measured_ms:9.2f} ms (predicted {t.predicted_ns / 1e6:9.2f} ms)"
                )
            print(f"symmetric assign : {report.fuse_seconds * 1e3:.2f} ms")
            print(f"total            : {report.total_seconds * 1e3:.2f} ms")
    cache = plan_cache_stats()
    print(
        f"plan cache       : {cache.hits} hits, {cache.misses} misses, "
        f"{cache.size} cached"
    )
    return 0


def _plan_motif(args, graph) -> int:
    """``plan --motif``: price the motif count without running it."""
    from repro.engine import GraphSession
    from repro.errors import AlgorithmError
    from repro.motif import get_motif, plan_cliques
    from repro.motif.biclique import biclique_plan_summary

    spec = get_motif(args.motif)
    with GraphSession(graph) as session:
        print(f"graph            : {graph}")
        if spec.family == "clique":
            plan = plan_cliques(
                graph,
                spec.params[0],
                dag=session.oriented_dag(),
                skew_threshold=args.skew_threshold,
            )
            print(plan.format())
        elif spec.family == "biclique":
            print(
                biclique_plan_summary(
                    session.bipartite_view().graph, *spec.params
                )
            )
        else:  # pragma: no cover - every non-edge family is handled above
            raise AlgorithmError(
                f"motif {spec.name!r} has no dedicated planner; "
                "omit --motif for the common-neighbor plan"
            )
    return 0


def _cmd_backends(args) -> int:
    from repro.engine import default_registry
    from repro.motif import motif_specs

    reg = default_registry()
    print(
        f"{'backend':<16s} {'algorithms':<10s} {'capabilities':<30s} "
        f"{'motifs':<10s} available"
    )
    for s in reg.specs():
        caps = [
            label
            for flag, label in (
                (s.supports_stats, "stats"),
                (s.supports_num_workers, "workers"),
                (s.dynamic_compatible, "dynamic"),
                (s.supports_edge_subset, "subset"),
                (not s.exact, "approx"),
            )
            if flag
        ]
        extra = sorted(s.motifs - {"common-neighbors"})
        if s.is_available():
            avail = "yes"
        else:
            avail = f"no (requires {s.requires or 'an optional dependency'})"
        print(
            f"{s.name:<16s} {','.join(sorted(s.algorithms)) or '-':<10s} "
            f"{','.join(caps) or '-':<30s} "
            f"{'+' + str(len(extra)) if extra else '-':<10s} {avail}"
        )
    print()
    print(f"{'motif':<16s} {'arity':<6s} {'structure':<10s} {'runners':<22s} default")
    for m in motif_specs():
        runners = ",".join(m.runner_names()) or "(count backends)"
        print(
            f"{m.name:<16s} {m.arity:<6d} {m.structure:<10s} "
            f"{runners:<22s} {m.default_backend}"
        )
    return 0


def _cmd_update(args) -> int:
    import time

    from repro.core import DynamicCounter
    from repro.graph.io import read_edge_pairs

    if not args.edges and not args.delete:
        print("update: provide --edges and/or --delete", file=sys.stderr)
        return 2
    graph = _load_graph(args.graph, args.scale, reordered=False)
    ins = read_edge_pairs(args.edges) if args.edges else np.empty((0, 2), np.int64)
    dels = read_edge_pairs(args.delete) if args.delete else np.empty((0, 2), np.int64)

    t0 = time.perf_counter()
    counter = DynamicCounter(
        graph,
        backend=args.backend,
        num_workers=args.workers,
        chunks_per_worker=args.chunks_per_worker,
        recount_fraction=args.recount_fraction,
    )
    build_s = time.perf_counter() - t0

    batch = args.batch_size if args.batch_size else max(len(ins) + len(dels), 1)
    inserted = deleted = skipped = 0
    t0 = time.perf_counter()
    for lo in range(0, len(ins), batch):
        r = counter.apply(insertions=ins[lo : lo + batch])
        inserted += r.inserted
        skipped += r.skipped
    for lo in range(0, len(dels), batch):
        r = counter.apply(deletions=dels[lo : lo + batch])
        deleted += r.deleted
        skipped += r.skipped
    update_s = time.perf_counter() - t0

    print(f"graph            : {graph}")
    print(f"initial build    : {build_s * 1e3:.1f} ms")
    print(f"inserted         : {inserted}")
    print(f"deleted          : {deleted}")
    print(f"skipped (no-op)  : {skipped}")
    print(f"update time      : {update_s * 1e3:.1f} ms")
    print(f"batch recounts   : {counter.recounts}")
    print(f"compactions      : {counter.overlay.compactions}")
    print(f"|E| now          : {counter.num_edges}")
    print(f"triangles        : {counter.triangle_count()}")
    if args.verify:
        counter.verify()
        print("verification     : passed")
    if args.output:
        counter.snapshot().save(args.output)
        print(f"counts saved     : {args.output}")
    return 0


def _parse_preload(spec: str) -> dict:
    """``lj`` / ``lj:0.2`` (dataset[:scale]) or an edge-list path."""
    from repro.graph.datasets import DATASETS

    name, _, scale = spec.partition(":")
    if name in DATASETS:
        return {"dataset": name, "scale": float(scale) if scale else 1.0}
    return {"path": spec}


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import CountingServer, CountingService

    service = CountingService(
        capacity=args.pool_size,
        max_pending=args.max_pending,
        dispatch_threads=args.dispatch_threads,
        coalesce=not args.no_coalesce,
    )

    async def run() -> None:
        server = CountingServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.address}", flush=True)
        for spec in args.preload or []:
            info = await service.load_graph(**_parse_preload(spec))
            print(
                f"loaded {info['graph']}  ({info['name']}: "
                f"|V|={info['vertices']}, |E|={info['edges']})",
                flush=True,
            )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def _cmd_stream(args) -> int:
    import itertools
    import json
    import math
    import time

    from repro.stream import SampledCounter, StreamCounter, parse_trace, read_trace

    window = math.inf if args.window is None else float(args.window)
    events = (
        read_trace(args.trace)
        if args.trace
        else parse_trace(sys.stdin, source="<stdin>")
    )
    if args.max_events:
        events = itertools.islice(events, args.max_events)

    sampler = None
    if args.sampled_budget is not None:
        sampler = SampledCounter(
            args.sampled_budget, seed=args.seed, delta=args.delta
        )

    counter = StreamCounter(window)
    # Pull-model backpressure: events are read from the pipe only as fast
    # as they are ingested, in batches sized to a target wall-time per
    # batch — large enough to amortize per-event cost, small enough that
    # snapshots stay fresh when the producer outruns the counter.
    adaptive = args.batch == 0
    batch_size = 256 if adaptive else max(1, args.batch)
    target = max(1e-3, args.target_batch_seconds)
    total = 0
    next_snapshot = args.snapshot_every
    t0 = time.perf_counter()
    it = iter(events)
    try:
        while True:
            chunk = list(itertools.islice(it, batch_size))
            if not chunk:
                break
            tb = time.perf_counter()
            counter.ingest(chunk)
            if sampler is not None:
                sampler.ingest((int(u), int(v)) for _, u, v in chunk)
            batch_s = time.perf_counter() - tb
            total += len(chunk)
            if adaptive:
                if batch_s > target and batch_size > 64:
                    batch_size //= 2
                elif batch_s < target / 4 and batch_size < 65536:
                    batch_size *= 2
            if args.snapshot_every and total >= next_snapshot:
                next_snapshot += args.snapshot_every
                elapsed = time.perf_counter() - t0
                snap = {
                    "type": "snapshot",
                    "events": total,
                    "now": counter.now,
                    "live_edges": counter.live_edges,
                    "triangles": counter.triangle_count(),
                    "edges_per_sec": total / elapsed if elapsed > 0 else 0.0,
                    "batch_size": batch_size,
                }
                if sampler is not None:
                    snap["sampled"] = sampler.triangle_estimate()
                print(json.dumps(snap), flush=True)
    except KeyboardInterrupt:
        print("stream interrupted; emitting final summary", file=sys.stderr)
    elapsed = time.perf_counter() - t0
    summary = {
        "type": "summary",
        "events": total,
        "elapsed_seconds": elapsed,
        "edges_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "triangles": counter.triangle_count(),
        **counter.stats(),
    }
    if sampler is not None:
        summary["sampled"] = {
            **sampler.stats(),
            "estimate": sampler.triangle_estimate(),
        }
    counter.close()
    print(json.dumps(summary), flush=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1)
            fh.write("\n")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import registered_paths, replay_artifact, run_fuzz

    if args.replay:
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RuntimeWarning)
            report = replay_artifact(args.replay, paths=args.paths)
        print(f"replay           : {args.replay}")
        print(f"case             : {report.case.describe()}")
        for w in caught:
            print(f"warning          : {w.message}", file=sys.stderr)
        if report.skipped:
            # The recorded path cannot run here (e.g. a compiled-backend
            # artifact on a host without the compiled provider): not a
            # reproduction, not a crash — an explicit skip.
            print(f"result           : skipped — {report.skipped}")
            return 0
        print(f"paths run        : {', '.join(report.paths_run) or '(none)'}")
        if report.ok:
            print("result           : no failure reproduced")
            return 0
        for f in report.failures:
            print(f"  {f.format()}")
        return 1

    if args.paths:
        unknown = set(args.paths) - set(registered_paths())
        if unknown:
            print(
                f"fuzz: unknown paths {sorted(unknown)}; registered: "
                f"{registered_paths()}",
                file=sys.stderr,
            )
            return 2

    def progress(done, total, failures):
        if done % 50 == 0 or done == total:
            print(f"  {done}/{total} cases, {failures} failing", flush=True)

    report = run_fuzz(
        num_cases=args.cases,
        seed=args.seed,
        paths=args.paths,
        artifact_dir=args.artifact_dir,
        shrink=not args.no_shrink,
        max_vertices=args.max_vertices,
        progress=progress if args.cases >= 50 else None,
    )
    print(report.format())
    return 0 if report.ok else 1


def _cmd_simulate(args) -> int:
    from repro.simarch import simulate
    from repro.simarch.report import format_sim_result

    graph = _load_graph(args.graph, args.scale, reordered=True)
    result = simulate(
        graph,
        args.algorithm,
        args.processor,
        threads=args.threads,
        mcdram_mode=args.mcdram,
        warps_per_block=args.warps,
        passes=args.passes,
    )
    print(format_sim_result(result))
    return 0


def _cmd_experiment(args) -> int:
    from repro.bench import experiments
    from repro.bench.harness import render_table

    registry = {
        "table1": experiments.table1_datasets,
        "table2": experiments.table2_skew,
        "table3": experiments.table3_bitmap_memory,
        "table4": experiments.table4_breakdown,
        "table5": experiments.table5_coprocessing,
        "table6": experiments.table6_memory_passes,
        "table7": experiments.table7_gpu_rf,
        "fig3": experiments.fig3_skew_handling,
        "fig4": experiments.fig4_vectorization,
        "fig5": experiments.fig5_scalability,
        "fig6": experiments.fig6_range_filtering,
        "fig7": experiments.fig7_mcdram,
        "fig8": experiments.fig8_multipass,
        "fig9": experiments.fig9_block_size,
        "fig10": experiments.fig10_comparison,
    }
    if args.id == "list":
        print("\n".join(sorted(registry)))
        return 0
    if args.id not in registry:
        print(f"unknown experiment {args.id!r}; try 'experiment list'", file=sys.stderr)
        return 2
    result = registry[args.id](scale=args.scale)
    print(render_table(result))
    if args.chart:
        _print_charts(result)
    return 0


def _print_charts(result) -> None:
    """Render figure-style series as ASCII charts when the rows carry
    (x-list, y-list) columns (fig5, fig8, fig9)."""
    from repro.bench.figures import ascii_series

    series_specs = {
        "fig5": (3, 4, ("dataset", "proc", "algorithm")),   # threads, speedups
        "fig8": (3, 4, ("dataset", "algorithm")),            # passes, seconds
        "fig9": (2, 3, ("dataset", "algorithm")),            # warps, seconds
    }
    spec = series_specs.get(result.experiment_id)
    if spec is None:
        return
    x_col, y_col, key_cols = spec
    groups: dict[tuple, dict[str, list]] = {}
    for row in result.rows:
        x = tuple(row[x_col])
        label = "-".join(str(row[result.columns.index(c)]) for c in key_cols[1:])
        key = (row[0], x)
        groups.setdefault(key, {})[label] = row[y_col]
    for (ds, x), series in groups.items():
        print(f"\n[{result.experiment_id}] {ds}")
        print(ascii_series(list(x), series))


def _cmd_cluster(args) -> int:
    from repro.apps import scan_clustering
    from repro.core import count_common_neighbors

    graph = _load_graph(args.graph, args.scale, reordered=False)
    counts = count_common_neighbors(graph)
    result = scan_clustering(counts, eps=args.eps, mu=args.mu)
    print(f"graph     : {graph}")
    print(f"SCAN(eps={args.eps:g}, mu={args.mu})")
    print(f"clusters  : {result.num_clusters}")
    print(f"cores     : {len(result.cores)}")
    print(f"hubs      : {len(result.hubs)}")
    print(f"outliers  : {len(result.outliers)}")
    import numpy as np

    if result.num_clusters:
        sizes = np.bincount(result.labels[result.labels >= 0])
        shown = ", ".join(map(str, sorted(sizes.tolist(), reverse=True)[:10]))
        print(f"sizes     : {shown}{' ...' if result.num_clusters > 10 else ''}")
    return 0


def _cmd_linkpred(args) -> int:
    from repro.apps import predict_links

    graph = _load_graph(args.graph, args.scale, reordered=False)
    seed = args.vertex if args.vertex is not None else int(graph.degrees.argmax())
    preds = predict_links(graph, seed, k=args.top, method=args.method)
    print(f"graph     : {graph}")
    print(f"candidate links for vertex {seed} ({args.method}):")
    if not preds:
        print("  (no two-hop candidates)")
    for cand, score in preds:
        print(f"  {cand:8d}  score={score:.4f}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.core import recommend_processor
    from repro.graph.stats import skew_percentage

    graph = _load_graph(args.graph, args.scale, reordered=False)
    proc = recommend_processor(graph)
    algo = "BMP" if proc == "gpu" else "MPS"
    print(
        f"{args.graph}: {skew_percentage(graph):.1f}% skewed intersections "
        f"-> run {algo} on the {proc.upper()} (paper §5.3)"
    )
    return 0


def _cmd_datasets(args) -> int:
    from repro.graph.datasets import DATASETS

    for name, spec in DATASETS.items():
        p = spec.paper_stats()
        print(
            f"{name:4s} {spec.full_name:28s} paper: |V|={p['V']:>12,} "
            f"|E|={p['E']:>14,}  {spec.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.engine import default_registry
    from repro.motif import motif_specs

    parser = argparse.ArgumentParser(
        prog="repro",
        description="All-edge common neighbor counting (ICPP 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    backend_choices = ["auto", *default_registry().names()]
    # Motif runners that are not also counting backends (e.g. the
    # biclique ``hash`` path) are still valid ``--backend`` spellings.
    for m in motif_specs():
        for runner in m.runner_names():
            if runner not in backend_choices:
                backend_choices.append(runner)
    dynamic_choices = ["auto", *default_registry().dynamic_backends()]

    def add_graph_args(p):
        p.add_argument("graph", help="dataset name (lj/or/wi/tw/fr) or edge-list path")
        p.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")

    p = sub.add_parser("stats", help="graph statistics (Tables 1-2)")
    add_graph_args(p)
    p.add_argument("--skew-threshold", type=float, default=50.0)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("count", help="exact all-edge counting")
    add_graph_args(p)
    p.add_argument("--algorithm", default="auto")
    p.add_argument("--backend", default="auto", choices=backend_choices)
    p.add_argument("--motif", default="common-neighbors",
                   help="count a registered motif instead (clique-3/4/5, "
                        "biclique-2-2 ... 3-3); see 'repro backends'")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for the parallel backend "
                        "(implies --backend parallel)")
    p.add_argument("--chunks-per-worker", type=int, default=4,
                   help="over-decomposition knob |T| for dynamic scheduling")
    p.add_argument("--stats", action="store_true",
                   help="print per-worker telemetry (implies --backend parallel)")
    p.add_argument("--shard-mb", type=float, default=None,
                   help="per-worker shared-memory budget in MiB; implies "
                        "--backend sharded (overrides REPRO_SHARD_BUDGET)")
    p.add_argument("--top", type=int, default=5, help="print the k hottest edges")
    p.add_argument("--verify", action="store_true", help="verify against a reference")
    p.add_argument("--no-cover", action="store_true",
                   help="disable the hybrid planner's cover-edge pre-pass "
                        "(every edge runs on a real intersection kernel)")
    p.add_argument("--output", help="save counts to a .npz file")
    p.set_defaults(fn=_cmd_count)

    p = sub.add_parser(
        "plan", help="inspect the hybrid planner's kernel buckets"
    )
    add_graph_args(p)
    p.add_argument("--skew-threshold", type=float, default=50.0,
                   help="degree-skew ratio above which edges become "
                        "galloping candidates")
    p.add_argument("--execute", action="store_true",
                   help="also run the plan and print measured bucket times")
    p.add_argument("--workers", type=int, default=None,
                   help="with --execute, run the bitmap bucket on this many "
                        "worker processes")
    p.add_argument("--no-cover", action="store_true",
                   help="plan without the cover-edge pre-pass bucket")
    p.add_argument("--motif", default="common-neighbors",
                   help="price a motif count instead (clique-k buckets DAG "
                        "edges; biclique-p-q prices subset emission)")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser(
        "backends",
        help="list registered backends, capabilities, and motifs",
    )
    p.set_defaults(fn=_cmd_backends)

    p = sub.add_parser(
        "update", help="apply edge insertions/deletions with live counts"
    )
    add_graph_args(p)
    p.add_argument("--edges", help="edge-list file of edges to insert")
    p.add_argument("--delete", help="edge-list file of edges to delete")
    p.add_argument("--batch-size", type=int, default=0,
                   help="apply updates in batches of this size (default: one batch)")
    p.add_argument("--backend", default="auto", choices=dynamic_choices,
                   help="backend for the initial build and batch recounts")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for parallel batch recounts")
    p.add_argument("--chunks-per-worker", type=int, default=4)
    p.add_argument("--recount-fraction", type=float, default=0.1,
                   help="batches above this fraction of |E| recount instead "
                        "of applying per-edge deltas")
    p.add_argument("--verify", action="store_true",
                   help="recount from scratch and check equality afterwards")
    p.add_argument("--output", help="save the final counts to a .npz file")
    p.set_defaults(fn=_cmd_update)

    p = sub.add_parser(
        "serve", help="HTTP/JSON counting service with request batching"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8707,
                   help="listen port (0 binds an ephemeral port)")
    p.add_argument("--pool-size", type=int, default=4,
                   help="graphs kept live in the LRU session pool")
    p.add_argument("--max-pending", type=int, default=256,
                   help="admission bound; excess requests get 503 + Retry-After")
    p.add_argument("--dispatch-threads", type=int, default=None,
                   help="kernel dispatch threads (default: min(4, cpus + 1))")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable request batching (one dispatch per request)")
    p.add_argument("--preload", action="append", metavar="GRAPH",
                   help="dataset[:scale] or edge-list path to load at startup "
                        "(repeatable)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "stream",
        help="sliding-window counting over a timestamped edge stream",
    )
    p.add_argument("--trace", default=None,
                   help="trace file of 't u v' lines (default: read stdin)")
    p.add_argument("--window", type=float, default=None,
                   help="sliding window width in stream time units "
                        "(default: infinite — nothing ever expires)")
    p.add_argument("--batch", type=int, default=0,
                   help="events per ingest batch; 0 picks adaptively from "
                        "measured batch latency (backpressure)")
    p.add_argument("--target-batch-seconds", type=float, default=0.05,
                   help="latency target steering the adaptive batch size")
    p.add_argument("--snapshot-every", type=int, default=0,
                   help="emit a JSON snapshot line every N events (0: off)")
    p.add_argument("--sampled-budget", type=int, default=None, metavar="BYTES",
                   help="also run a byte-budgeted reservoir estimator and "
                        "report its (ε, δ) interval")
    p.add_argument("--seed", type=int, default=0,
                   help="reservoir RNG seed (with --sampled-budget)")
    p.add_argument("--delta", type=float, default=0.05,
                   help="error-bar confidence parameter (with --sampled-budget)")
    p.add_argument("--max-events", type=int, default=0,
                   help="stop after N events (0: run the stream dry)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the final summary to this file")
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "fuzz", help="differential fuzzing across all execution paths"
    )
    p.add_argument("--cases", type=int, default=200,
                   help="number of generated cases to run")
    p.add_argument("--seed", type=int, default=0,
                   help="run seed; every case regenerates from (seed, index)")
    p.add_argument("--paths", nargs="*", default=None,
                   help="restrict to these execution paths "
                        "(default: every registered path)")
    p.add_argument("--max-vertices", type=int, default=None,
                   help="vertex-count ceiling for generated cases")
    p.add_argument("--artifact-dir", default="fuzz-artifacts",
                   help="directory for shrunk reproducer artifacts")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip minimizing failing cases")
    p.add_argument("--replay",
                   help="replay a saved reproducer artifact instead of fuzzing")
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser("simulate", help="modeled run on cpu/knl/gpu")
    add_graph_args(p)
    p.add_argument("--algorithm", default="BMP-RF")
    p.add_argument("--processor", default="cpu", choices=["cpu", "knl", "gpu"])
    p.add_argument("--threads", type=int, default=None)
    p.add_argument("--mcdram", default="flat", choices=["ddr", "flat", "cache"])
    p.add_argument("--warps", type=int, default=4, help="warps per GPU thread block")
    p.add_argument("--passes", type=int, default=None, help="GPU multi-pass count")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help="table1..table7, fig3..fig10, or 'list'")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--chart", action="store_true", help="also render ASCII charts (fig5/fig8/fig9)")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("recommend", help="processor guidance for a graph")
    add_graph_args(p)
    p.set_defaults(fn=_cmd_recommend)

    p = sub.add_parser("cluster", help="SCAN structural clustering")
    add_graph_args(p)
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--mu", type=int, default=3)
    p.set_defaults(fn=_cmd_cluster)

    p = sub.add_parser("linkpred", help="link prediction for one vertex")
    add_graph_args(p)
    p.add_argument("--vertex", type=int, default=None, help="default: highest degree")
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--method", default="adamic-adar",
                   choices=["common", "adamic-adar", "resource-allocation"])
    p.set_defaults(fn=_cmd_linkpred)

    p = sub.add_parser("datasets", help="list bundled dataset stand-ins")
    p.set_defaults(fn=_cmd_datasets)

    return parser


#: Known-failure → exit-code mapping, checked in order (most specific
#: first).  Bad input gets a one-line message and a distinct nonzero
#: code; a raw traceback with exit code 1 is reserved for actual bugs.
#: Code 2 stays argparse's usage-error code.
EXIT_GRAPH_FORMAT = 3
EXIT_ALGORITHM = 4
EXIT_VERIFICATION = 5
EXIT_REPRO = 6
EXIT_FILE_NOT_FOUND = 7


def _known_error_exits():
    from repro.errors import (
        AlgorithmError,
        GraphFormatError,
        ReproError,
        VerificationError,
    )

    return (
        (GraphFormatError, EXIT_GRAPH_FORMAT),
        (AlgorithmError, EXIT_ALGORITHM),
        (VerificationError, EXIT_VERIFICATION),
        (ReproError, EXIT_REPRO),
        (FileNotFoundError, EXIT_FILE_NOT_FOUND),
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    known = _known_error_exits()
    try:
        return args.fn(args)
    except tuple(cls for cls, _ in known) as exc:
        for cls, code in known:
            if isinstance(exc, cls):
                print(f"repro {args.command}: {exc}", file=sys.stderr)
                return code
        raise  # pragma: no cover - unreachable


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
