"""Online counting service over the GraphSession engine.

An asyncio HTTP/JSON front end (:mod:`repro.serve.http`) on top of a
batching, epoch-snapshotted request engine (:mod:`repro.serve.service`)
and an LRU pool of per-graph state (:mod:`repro.serve.pool`).  Start it
from the CLI with ``repro serve`` or embed :class:`CountingService`
directly.
"""

from repro.serve.http import DEFAULT_HOST, DEFAULT_PORT, CountingServer
from repro.serve.pool import DEFAULT_POOL_CAPACITY, SessionPool
from repro.serve.service import (
    DEFAULT_MAX_PENDING,
    CountingService,
    ReadSnapshot,
    ServedGraph,
    ServiceTelemetry,
)

__all__ = [
    "CountingServer",
    "CountingService",
    "ServedGraph",
    "ReadSnapshot",
    "ServiceTelemetry",
    "SessionPool",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_POOL_CAPACITY",
    "DEFAULT_MAX_PENDING",
]
