"""Online counting service: coalesced reads, epoch-snapshot writes.

This is the serving layer ROADMAP item 1 calls for.  It turns the warm
:class:`~repro.engine.session.GraphSession` regime — per-graph artifacts
amortized across many probes — into a long-lived request/response
service with three properties the one-shot CLI cannot give:

**Request coalescing.**  Concurrent per-pair queries against one graph
are merged into *one* batched kernel dispatch: while a dispatch is in
flight on the executor, newly arriving queries accumulate, and the next
dispatch takes the whole backlog in a single
:meth:`GraphSession.count_pairs` call.  The batch size therefore adapts
to load — one pair per dispatch when idle, the entire queue under
pressure — which amortizes the per-dispatch fixed cost (executor hop,
group segmentation, mark-plane setup) exactly the way the paper
amortizes BMP structure construction across an adjacency list.

**Epoch snapshots.**  Edits go through :class:`~repro.core.dynamic.
DynamicCounter` and *never* mutate the graph reads are running against:
each edit batch produces a fresh CSR (``DynamicCounter.materialize``,
the epoch hook), wrapped in a new refcounted :class:`ReadSnapshot` that
is swapped in atomically.  In-flight reads keep a reference to the
pre-edit snapshot and finish against it; the old snapshot's session is
closed when its last reader releases it.  Reads never wait on writes,
writes never tear a read, and every response carries the epoch it was
answered at.

**Admission control + telemetry.**  The service bounds the number of
admitted-but-unanswered requests; past the bound it fails fast with
:class:`~repro.errors.ServiceOverloadedError` (HTTP 503 + Retry-After)
instead of letting the queue grow without bound.  Every request records
its end-to-end latency into a bounded reservoir; ``stats()`` reports
p50/p95/p99, queue depth, and the batch-size histogram the coalescer
produced.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.dynamic import DynamicCounter
from repro.engine.session import GraphSession
from repro.errors import (
    ServiceOverloadedError,
    SessionClosedError,
    UnknownGraphError,
)
from repro.graph.csr import CSRGraph
from repro.serve.pool import DEFAULT_POOL_CAPACITY, KEY_LENGTH, SessionPool

__all__ = [
    "CountingService",
    "ServedGraph",
    "ReadSnapshot",
    "ServiceTelemetry",
    "DEFAULT_MAX_PENDING",
]

#: Admitted-but-unanswered request bound before 503s start.
DEFAULT_MAX_PENDING = 256

#: Seconds suggested to a rejected client (the Retry-After header).
DEFAULT_RETRY_AFTER = 0.05

#: Cap on concurrently open sliding-window stream sessions.
MAX_STREAM_SESSIONS = 16


class ReadSnapshot:
    """One immutable epoch of a served graph, refcounted by its readers.

    Owns a :class:`GraphSession` over the epoch's frozen CSR — degrees
    and the mark plane build lazily on the first probe and stay warm for
    the snapshot's lifetime.  The creator holds one reference; each
    in-flight read holds one more.  When the last reference releases
    (the writer swapped in a newer epoch *and* every read against this
    one finished), the session closes.
    """

    __slots__ = ("graph", "epoch", "session", "_refs", "_lock")

    def __init__(self, graph: CSRGraph, epoch: int):
        self.graph = graph
        self.epoch = epoch
        self.session = GraphSession(graph)
        self._refs = 1
        self._lock = threading.Lock()

    def acquire(self) -> "ReadSnapshot | None":
        """Take a reader reference; ``None`` if the snapshot already died."""
        with self._lock:
            if self._refs <= 0:
                return None
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            dead = self._refs == 0
        if dead:
            self.session.close()


class ServiceTelemetry:
    """Thread-safe per-request/per-batch counters and latency reservoir."""

    def __init__(self, reservoir: int = 8192):
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=reservoir)
        self._batch_sizes: Counter[int] = Counter()
        self.requests = 0
        self.pairs = 0
        self.batches = 0
        self.rejected = 0
        self.edits = 0
        self.edited_edges = 0
        self.kernel_seconds = 0.0
        self.queue_depth = 0
        self.queue_depth_max = 0

    def note_admitted(self, queue_depth: int) -> None:
        with self._lock:
            self.requests += 1
            self.queue_depth = queue_depth
            self.queue_depth_max = max(self.queue_depth_max, queue_depth)

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def note_batch(self, num_requests: int, num_pairs: int, kernel_s: float) -> None:
        with self._lock:
            self.batches += 1
            self.pairs += num_pairs
            self._batch_sizes[num_requests] += 1
            self.kernel_seconds += kernel_s

    def note_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def note_edit(self, edited_edges: int) -> None:
        with self._lock:
            self.edits += 1
            self.edited_edges += edited_edges

    def snapshot(self) -> dict:
        with self._lock:
            lats = np.asarray(self._latencies, dtype=np.float64)
            hist = dict(sorted(self._batch_sizes.items()))
            counters = {
                "requests": self.requests,
                "pairs": self.pairs,
                "batches": self.batches,
                "rejected": self.rejected,
                "edits": self.edits,
                "edited_edges": self.edited_edges,
                "kernel_seconds": self.kernel_seconds,
            }
            depth = {"current": self.queue_depth, "max": self.queue_depth_max}
        if len(lats):
            p50, p95, p99 = np.percentile(lats, [50.0, 95.0, 99.0])
            latency = {
                "count": int(len(lats)),
                "mean_ms": float(lats.mean() * 1e3),
                "p50_ms": float(p50 * 1e3),
                "p95_ms": float(p95 * 1e3),
                "p99_ms": float(p99 * 1e3),
                "max_ms": float(lats.max() * 1e3),
            }
        else:
            latency = {"count": 0}
        batches = counters["batches"]
        return {
            **counters,
            "latency_ms": latency,
            "queue_depth": depth,
            "batch_size": {
                "histogram": hist,
                "mean": (counters["pairs"] / batches) if batches else 0.0,
                "max": max(hist) if hist else 0,
            },
        }


class _PendingQuery:
    __slots__ = ("u", "v", "future", "enqueued_at")

    def __init__(self, u, v, future):
        self.u = u
        self.v = v
        self.future = future
        self.enqueued_at = time.perf_counter()


class ServedGraph:
    """One pooled graph: live counts, the current read snapshot, a batcher.

    All batching state (``_pending``, ``_dispatching``) is touched only
    from the event-loop thread; kernel work and edit application run on
    the service executor.  Writes serialize on an ``asyncio.Lock`` so
    edit batches apply in arrival order.
    """

    def __init__(
        self,
        key: str,
        name: str,
        graph: CSRGraph,
        *,
        executor: ThreadPoolExecutor,
        telemetry: ServiceTelemetry,
        coalesce: bool = True,
    ):
        self.key = key
        self.name = name
        self.counter = DynamicCounter(graph)
        self.epoch = 0
        self.loaded_at = time.time()
        self._executor = executor
        self._telemetry = telemetry
        self._coalesce = coalesce
        self._snap_lock = threading.Lock()
        self._snapshot = ReadSnapshot(self.counter.materialize(), 0)
        self._pending: deque[_PendingQuery] = deque()
        self._dispatching = False
        self._write_lock = asyncio.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    async def count_pairs(self, u: np.ndarray, v: np.ndarray):
        """Counts for the pair arrays; returns ``(counts, epoch)``.

        With coalescing on, the query joins the pending batch and is
        answered by the next dispatch together with every other query
        that arrived while the previous dispatch ran.
        """
        loop = asyncio.get_running_loop()
        query = _PendingQuery(u, v, loop.create_future())
        if self._coalesce:
            self._pending.append(query)
            self._kick(loop)
        else:
            self._dispatch(loop, [query])
        return await query.future

    def pending_queries(self) -> int:
        return len(self._pending)

    def _kick(self, loop) -> None:
        """Start a dispatch if none is in flight and work is queued."""
        if self._dispatching or not self._pending:
            return
        batch = list(self._pending)
        self._pending.clear()
        self._dispatching = True
        self._dispatch(loop, batch)

    def _dispatch(self, loop, batch: list[_PendingQuery]) -> None:
        snap = self._acquire_snapshot()
        if snap is None:
            exc = SessionClosedError("dispatch queries on")
            for q in batch:
                q.future.set_exception(exc)
            self._dispatching = False
            return
        fut = loop.run_in_executor(self._executor, self._run_batch, snap, batch)
        fut.add_done_callback(lambda f: self._batch_done(f, batch, snap, loop))

    def _run_batch(self, snap: ReadSnapshot, batch: list[_PendingQuery]):
        """Executor thread: one kernel dispatch for the whole batch."""
        u = np.concatenate([q.u for q in batch])
        v = np.concatenate([q.v for q in batch])
        t0 = time.perf_counter()
        counts = snap.session.count_pairs(u, v)
        kernel_s = time.perf_counter() - t0
        out = []
        pos = 0
        for q in batch:
            out.append(counts[pos : pos + len(q.u)])
            pos += len(q.u)
        return out, len(u), kernel_s

    def _batch_done(self, fut, batch, snap: ReadSnapshot, loop) -> None:
        """Event-loop thread: distribute results, recurse on the backlog."""
        if self._coalesce:
            self._dispatching = False
        epoch = snap.epoch
        snap.release()
        try:
            out, num_pairs, kernel_s = fut.result()
        except BaseException as exc:  # noqa: BLE001 - forwarded to callers
            for q in batch:
                if not q.future.done():
                    q.future.set_exception(exc)
        else:
            now = time.perf_counter()
            self._telemetry.note_batch(len(batch), num_pairs, kernel_s)
            for q, counts in zip(batch, out):
                self._telemetry.note_latency(now - q.enqueued_at)
                if not q.future.done():
                    q.future.set_result((counts, epoch))
        if self._coalesce:
            self._kick(loop)

    def _acquire_snapshot(self) -> ReadSnapshot | None:
        with self._snap_lock:
            if self._closed:
                return None
            return self._snapshot.acquire()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    async def apply_edits(self, insertions, deletions):
        """Apply one edit batch; returns ``(UpdateResult, epoch)``.

        The batch goes through the dynamic counter on the executor, then
        a fresh epoch snapshot is swapped in.  Reads already dispatched
        keep the pre-edit snapshot; reads admitted afterwards see the
        post-edit graph.  No-op batches (every edge already present /
        absent) do not advance the epoch.
        """
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            return await loop.run_in_executor(
                self._executor, self._apply_sync, insertions, deletions
            )

    def _apply_sync(self, insertions, deletions):
        result = self.counter.apply(insertions=insertions, deletions=deletions)
        changed = result.inserted + result.deleted
        if changed == 0:
            return result, self.epoch
        new_snap = ReadSnapshot(self.counter.materialize(), self.epoch + 1)
        with self._snap_lock:
            old = self._snapshot
            self._snapshot = new_snap
            self.epoch = new_snap.epoch
        old.release()
        self._telemetry.note_edit(changed)
        return result, new_snap.epoch

    async def triangle_count(self) -> int:
        """Live triangle total (serialized with writes; the counts dict
        must not be summed while an edit batch mutates it)."""
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            return await loop.run_in_executor(
                self._executor, self.counter.triangle_count
            )

    async def count_motif(self, motif: str, backend: str = "auto"):
        """Motif total against the current epoch; ``(MotifResult, epoch)``.

        Runs on the read snapshot's :class:`GraphSession`, so the derived
        structure (oriented DAG, bipartite view) memoizes once per epoch
        and repeated motif queries against an unedited graph are warm.
        """
        snap = self._acquire_snapshot()
        if snap is None:
            raise SessionClosedError("count motifs on")
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor,
                lambda: snap.session.count_motif(motif, backend=backend),
            )
            return result, snap.epoch
        finally:
            snap.release()

    # ------------------------------------------------------------------ #
    def info(self) -> dict:
        return {
            "graph": self.key,
            "name": self.name,
            "vertices": int(self.counter.num_vertices),
            "edges": int(self.counter.num_edges),
            "epoch": self.epoch,
            "pending": len(self._pending),
            "updates_applied": self.counter.updates_applied,
            "recounts": self.counter.recounts,
        }

    def close(self) -> None:
        with self._snap_lock:
            if self._closed:
                return
            self._closed = True
            snapshot = self._snapshot
        snapshot.release()
        self.counter.close()

    def __repr__(self) -> str:
        return (
            f"ServedGraph({self.key}, name={self.name!r}, "
            f"epoch={self.epoch}, pending={len(self._pending)})"
        )


class CountingService:
    """The request-facing facade: session pool + admission + telemetry.

    Parameters
    ----------
    capacity:
        LRU session-pool size (graphs kept live at once).
    max_pending:
        Admitted-but-unanswered request bound; excess requests raise
        :class:`ServiceOverloadedError` (503 at the HTTP layer).
    dispatch_threads:
        Executor threads running kernel dispatches and edit batches.
    coalesce:
        ``False`` disables request batching (one kernel dispatch per
        request) — the naive regime the serving benchmark compares
        against.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_POOL_CAPACITY,
        max_pending: int = DEFAULT_MAX_PENDING,
        dispatch_threads: int | None = None,
        coalesce: bool = True,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.pool = SessionPool(capacity)
        self.telemetry = ServiceTelemetry()
        self.coalesce = coalesce
        self.max_pending = int(max_pending)
        self.retry_after = float(retry_after)
        threads = dispatch_threads or min(4, (os.cpu_count() or 1) + 1)
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve"
        )
        self._inflight = 0  # event-loop thread only
        #: Sliding-window stream sessions, keyed by client-chosen name.
        #: Each entry is (StreamCounter, asyncio.Lock) — the lock
        #: serializes ingest batches per stream (the counter's clock is
        #: monotone state) while distinct streams ingest concurrently.
        self._streams: dict[str, tuple[object, asyncio.Lock]] = {}
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    # graph lifecycle
    # ------------------------------------------------------------------ #
    async def load_graph(
        self,
        *,
        dataset: str | None = None,
        scale: float = 1.0,
        path: str | None = None,
        graph: CSRGraph | None = None,
        name: str | None = None,
    ) -> dict:
        """Load a graph and admit it to the pool; returns its info dict.

        Exactly one of ``dataset``/``path``/``graph`` must be given.  The
        load plus the dynamic counter's initial count run on the executor
        (they are the cold cost the pool exists to amortize); the
        returned ``graph`` field is the key every later request uses.
        """
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(
            self._executor, self._build_entry, dataset, scale, path, graph, name
        )
        self.pool.add(entry.key, entry)
        return entry.info()

    def _build_entry(self, dataset, scale, path, graph, name) -> ServedGraph:
        from repro.core.result import graph_fingerprint

        given = [x for x in (dataset, path, graph) if x is not None]
        if len(given) != 1:
            raise ValueError("specify exactly one of dataset=, path=, graph=")
        if dataset is not None:
            from repro.graph.datasets import load_dataset

            graph = load_dataset(dataset, scale=scale)
            name = name or f"{dataset}:{scale:g}"
        elif path is not None:
            from repro.graph.io import read_edge_list

            graph = read_edge_list(path)
            name = name or os.path.basename(str(path))
        key = graph_fingerprint(graph)[:KEY_LENGTH]
        return ServedGraph(
            key,
            name or key,
            graph,
            executor=self._executor,
            telemetry=self.telemetry,
            coalesce=self.coalesce,
        )

    def graphs(self) -> list[dict]:
        out = []
        for key in self.pool.keys():
            try:
                with self.pool.acquire(key) as entry:
                    out.append(entry.info())
            except UnknownGraphError:  # evicted between keys() and acquire()
                continue
        return out

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    async def count_pairs(self, key: str, pairs) -> dict:
        """Common neighbor counts for ``pairs`` on graph ``key``.

        The pool lease is held across the whole dispatch: a concurrent
        ``load_graph`` evicting this entry defers its ``close()`` until
        the request (and every other in-flight lease) finishes, so a
        reader never observes a closed session mid-request.
        """
        with self.pool.acquire(key) as entry:
            u, v = _parse_pairs(pairs)
            self._admit()
            self._inflight += 1
            try:
                counts, epoch = await entry.count_pairs(u, v)
            finally:
                self._inflight -= 1
            return {
                "graph": key,
                "epoch": epoch,
                "counts": counts.tolist(),
            }

    async def apply_edits(self, key: str, insertions=None, deletions=None) -> dict:
        """Apply an edit batch to graph ``key``; returns the new epoch."""
        with self.pool.acquire(key) as entry:
            ins = _parse_edge_array(insertions)
            dels = _parse_edge_array(deletions)
            result, epoch = await entry.apply_edits(ins, dels)
            return {
                "graph": key,
                "epoch": epoch,
                "inserted": result.inserted,
                "deleted": result.deleted,
                "skipped": result.skipped,
                "mode": result.mode,
            }

    async def triangle_count(self, key: str) -> dict:
        with self.pool.acquire(key) as entry:
            return {
                "graph": key,
                "epoch": entry.epoch,
                "triangles": await entry.triangle_count(),
            }

    async def motif_count(self, key: str, motif: str, backend: str = "auto") -> dict:
        """Motif total for graph ``key`` (the ``/count`` motif form).

        An unknown motif or a backend that cannot count it raises
        :class:`~repro.errors.AlgorithmError` — mapped to 400 at the
        HTTP layer, mirroring the CLI's exit code 4.
        """
        with self.pool.acquire(key) as entry:
            self._admit()
            self._inflight += 1
            try:
                result, epoch = await entry.count_motif(motif, backend=backend)
            finally:
                self._inflight -= 1
            return {
                "graph": key,
                "epoch": epoch,
                "motif": result.motif,
                "backend": result.backend,
                "total": result.total,
            }

    async def stream_ingest(self, name, *, window=None, events=None) -> dict:
        """Ingest timestamped events into the named stream session.

        The first request naming a stream creates it (``window`` sets
        the sliding-window width; omitted means infinite).  Later
        requests append events — timestamps must be non-decreasing per
        stream, enforced by :class:`~repro.stream.StreamCounter` — and
        get back the live-window summary including the triangle total.
        An empty ``events`` list is a pure poll.
        """
        import math

        from repro.stream import StreamCounter

        name = str(name)
        if not name:
            raise ValueError("stream name must be non-empty")
        entry = self._streams.get(name)
        if entry is None:
            if len(self._streams) >= MAX_STREAM_SESSIONS:
                raise ServiceOverloadedError(
                    len(self._streams), self.retry_after
                )
            width = math.inf if window is None else float(window)
            entry = (StreamCounter(width), asyncio.Lock())
            self._streams[name] = entry
        counter, lock = entry
        if window is not None and float(window) != counter.window:
            raise ValueError(
                f"stream {name!r} already exists with window "
                f"{counter.window:g}; cannot reopen with {float(window):g}"
            )
        parsed = [(float(t), int(u), int(v)) for t, u, v in (events or [])]
        self._admit()
        self._inflight += 1
        try:
            async with lock:
                loop = asyncio.get_running_loop()
                summary = await loop.run_in_executor(
                    self._executor, _stream_ingest_sync, counter, parsed
                )
        finally:
            self._inflight -= 1
        # Unbounded window / untouched clock go out as null: strict JSON
        # has no Infinity literal, and stdlib json would emit one.
        width = counter.window if math.isfinite(counter.window) else None
        if not math.isfinite(summary.get("now", 0.0)):
            summary["now"] = None
        return {"stream": name, "window": width, **summary}

    def _admit(self) -> None:
        if self._inflight >= self.max_pending:
            self.telemetry.note_rejected()
            raise ServiceOverloadedError(self._inflight, self.retry_after)
        self.telemetry.note_admitted(self._inflight + 1)

    # ------------------------------------------------------------------ #
    # telemetry / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "inflight": self._inflight,
            "max_pending": self.max_pending,
            "coalesce": self.coalesce,
            "pool": {
                "graphs": len(self.pool),
                "capacity": self.pool.capacity,
                "evictions": self.pool.evictions,
                "keys": self.pool.keys(),
                "leases": self.pool.lease_counts(),
            },
            "streams": {
                name: counter.live_edges
                for name, (counter, _lock) in self._streams.items()
            },
            **self.telemetry.snapshot(),
        }

    def close(self) -> None:
        """Close every served graph and stop the dispatch executor."""
        self.pool.close()
        for counter, _lock in self._streams.values():
            counter.close()
        self._streams.clear()
        self._executor.shutdown(wait=True, cancel_futures=True)


def _stream_ingest_sync(counter, events) -> dict:
    """Executor body for one stream batch: ingest, then summarize."""
    summary = counter.ingest(events)
    summary["triangles"] = counter.triangle_count()
    summary["num_vertices"] = counter.num_vertices
    return summary


def _parse_pairs(pairs) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("pairs must be a non-empty list of [u, v] pairs")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {arr.shape}")
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def _parse_edge_array(pairs) -> np.ndarray:
    if pairs is None:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edit batch must have shape (m, 2), got {arr.shape}")
    return arr
