"""Minimal asyncio HTTP/1.1 + JSON front end for the counting service.

Stdlib only — ``asyncio`` streams plus a small hand-rolled HTTP/1.1
request parser (request line, headers, ``Content-Length`` body,
keep-alive).  No routing framework, no dependency: the route table is a
dict and every response is one JSON object with a ``Content-Length``.

Routes
------
======  ==============  ====================================================
GET     ``/healthz``    liveness + loaded-graph count
GET     ``/stats``      service telemetry (p50/p95/p99, queue depth, batches)
GET     ``/graphs``     info for every pooled graph
POST    ``/graphs``     load ``{"dataset": "lj", "scale": 0.2}`` or a
                        ``{"path": ...}`` edge list; returns the graph key
POST    ``/count``      ``{"graph": key, "pairs": [[u, v], ...]}`` →
                        per-pair counts + the answering epoch; or
                        ``{"graph": key, "motif": "clique-4"}`` (optional
                        ``"backend"``) → the motif total
POST    ``/edits``      ``{"graph": key, "insert": [...], "delete": [...]}``
POST    ``/triangles``  ``{"graph": key}`` → live triangle total
POST    ``/stream``     ``{"stream": name, "window": W, "events":
                        [[t, u, v], ...]}`` → sliding-window ingest +
                        live summary (first request creates the stream)
======  ==============  ====================================================

Failure mapping: unknown graph key → 404, malformed request or an
unknown motif / backend-motif mismatch → 400, admission-queue overflow →
503 with a ``Retry-After`` header, anything unexpected → 500 (message
included, connection kept alive).
"""

from __future__ import annotations

import asyncio
import json
import math

from repro.errors import (
    AlgorithmError,
    ServiceOverloadedError,
    UnknownGraphError,
)
from repro.serve.service import CountingService

__all__ = ["CountingServer", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8707

#: Request bodies past this are rejected with 413 (edit batches and pair
#: lists are JSON int arrays; 16 MiB is millions of pairs).
MAX_BODY_BYTES = 16 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class CountingServer:
    """Serve a :class:`CountingService` over HTTP on ``host:port``.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start`.  The server owns only the
    listener — closing it does not close the service (the caller that
    built the service releases it).
    """

    def __init__(
        self,
        service: CountingService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._routes = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/stats"): self._stats,
            ("GET", "/graphs"): self._list_graphs,
            ("POST", "/graphs"): self._load_graph,
            ("POST", "/count"): self._count,
            ("POST", "/edits"): self._edits,
            ("POST", "/triangles"): self._triangles,
            ("POST", "/stream"): self._stream,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "CountingServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HTTPError as exc:
                    # Parse-level failures (bad request line, oversized
                    # body) still deserve a response, but the stream is
                    # no longer in a known state — answer and close.
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)},
                        exc.headers, keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, extra = await self._dispatch(method, path, body)
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # Server stop can cancel the handler while it awaits the
                # transport close — already closing, nothing left to do.
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        """Parse one request; ``None`` on a cleanly closed connection."""
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line {line!r}")
        method, path, _version = parts
        headers = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise _HTTPError(413, f"body of {length} bytes exceeds limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], headers, body

    async def _dispatch(self, method, path, body):
        """Route one request; returns ``(status, json_payload, headers)``."""
        try:
            handler = self._routes.get((method, path))
            if handler is None:
                known_paths = {p for _, p in self._routes}
                if path in known_paths:
                    raise _HTTPError(405, f"{method} not allowed on {path}")
                raise _HTTPError(404, f"no route for {path}")
            payload = {}
            if body:
                try:
                    payload = json.loads(body)
                except json.JSONDecodeError as exc:
                    raise _HTTPError(400, f"invalid JSON body: {exc}") from None
                if not isinstance(payload, dict):
                    raise _HTTPError(400, "JSON body must be an object")
            return 200, await handler(payload), {}
        except _HTTPError as exc:
            return exc.status, {"error": str(exc)}, exc.headers
        except ServiceOverloadedError as exc:
            # RFC 9110 §10.2.3: the header is integer delta-seconds (a
            # fractional value like "0.05" is invalid and gets clamped or
            # ignored by clients); the JSON body keeps the precise float
            # for clients that can act on sub-second backoff.
            return (
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(max(1, math.ceil(exc.retry_after)))},
            )
        except UnknownGraphError as exc:
            return 404, {"error": str(exc)}, {}
        except FileNotFoundError as exc:
            return 404, {"error": str(exc)}, {}
        except AlgorithmError as exc:
            # Unknown motif / backend-motif mismatch: a client error (the
            # message lists what is supported), not a server fault.
            return 400, {"error": str(exc)}, {}
        except (ValueError, TypeError, KeyError, IndexError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}, {}
        except Exception as exc:  # noqa: BLE001 - the server must not die
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    async def _write_response(self, writer, status, payload, extra, keep_alive):
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{k}: {v}" for k, v in extra.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    async def _healthz(self, _payload) -> dict:
        return {"status": "ok", "graphs": len(self.service.pool)}

    async def _stats(self, _payload) -> dict:
        return self.service.stats()

    async def _list_graphs(self, _payload) -> dict:
        return {"graphs": self.service.graphs()}

    async def _load_graph(self, payload) -> dict:
        return await self.service.load_graph(
            dataset=payload.get("dataset"),
            scale=float(payload.get("scale", 1.0)),
            path=payload.get("path"),
            name=payload.get("name"),
        )

    async def _count(self, payload) -> dict:
        if "motif" in payload:
            return await self.service.motif_count(
                _require(payload, "graph"),
                str(payload["motif"]),
                backend=str(payload.get("backend", "auto")),
            )
        return await self.service.count_pairs(
            _require(payload, "graph"), _require(payload, "pairs")
        )

    async def _edits(self, payload) -> dict:
        return await self.service.apply_edits(
            _require(payload, "graph"),
            insertions=payload.get("insert"),
            deletions=payload.get("delete"),
        )

    async def _triangles(self, payload) -> dict:
        return await self.service.triangle_count(_require(payload, "graph"))

    async def _stream(self, payload) -> dict:
        return await self.service.stream_ingest(
            _require(payload, "stream"),
            window=payload.get("window"),
            events=payload.get("events"),
        )


def _require(payload: dict, field: str):
    try:
        return payload[field]
    except KeyError:
        raise _HTTPError(400, f"missing required field {field!r}") from None
