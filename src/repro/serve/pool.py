"""LRU pool of served graphs, keyed by CSR fingerprint.

The serving layer's whole value is that per-graph state — the dynamic
counter's live counts, the session's warm artifacts, the current read
snapshot — survives across requests.  :class:`SessionPool` owns that
state for many graphs at once (the multi-tenant regime of ROADMAP item
2): each loaded graph becomes one entry keyed by a prefix of its SHA-256
CSR fingerprint, entries move to most-recently-used on access, and when
the pool exceeds its capacity the least-recently-used entry is closed
and evicted — its worker pool, shared-memory export, and read snapshot
all release.

The pool is thread-safe: the HTTP front end touches it from the event
loop while dispatch threads resolve keys concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import UnknownGraphError

__all__ = ["SessionPool", "DEFAULT_POOL_CAPACITY", "KEY_LENGTH"]

#: Graphs kept live by default; the LRU entry is closed beyond this.
DEFAULT_POOL_CAPACITY = 4

#: Hex characters of the SHA-256 CSR fingerprint used as the public key.
KEY_LENGTH = 12


class SessionPool:
    """Ordered ``key -> entry`` mapping with LRU eviction.

    Entries are any object with a ``close()`` method (in practice
    :class:`~repro.serve.service.ServedGraph`).  ``add`` returns the key
    under which the entry is now served; re-adding the same fingerprint
    replaces (and closes) the previous entry, so reloading a graph is
    idempotent rather than a capacity leak.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY):
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> list[str]:
        """Keys from least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def add(self, key: str, entry) -> list:
        """Insert ``entry`` under ``key``; returns the entries evicted.

        Evicted entries (including a replaced same-key entry) are closed
        before this returns, so callers never observe a half-released
        session.
        """
        closed = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                closed.append(old)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                closed.append(victim)
                self.evictions += 1
        for victim in closed:
            victim.close()
        return closed

    def get(self, key: str):
        """The entry for ``key``, promoted to most-recently-used."""
        with self._lock:
            try:
                entry = self._entries[key]
            except KeyError:
                raise UnknownGraphError(key, tuple(self._entries)) from None
            self._entries.move_to_end(key)
            return entry

    def remove(self, key: str) -> bool:
        """Close and drop one entry; ``False`` when the key is unknown."""
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is None:
            return False
        entry.close()
        return True

    def close(self) -> None:
        """Close and drop every entry (server shutdown)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.close()

    def __repr__(self) -> str:
        return (
            f"SessionPool({len(self._entries)}/{self.capacity} entries, "
            f"{self.evictions} evictions)"
        )
