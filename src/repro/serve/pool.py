"""LRU pool of served graphs, keyed by CSR fingerprint.

The serving layer's whole value is that per-graph state — the dynamic
counter's live counts, the session's warm artifacts, the current read
snapshot — survives across requests.  :class:`SessionPool` owns that
state for many graphs at once (the multi-tenant regime of ROADMAP item
2): each loaded graph becomes one entry keyed by a prefix of its SHA-256
CSR fingerprint, entries move to most-recently-used on access, and when
the pool exceeds its capacity the least-recently-used entry is closed
and evicted — its worker pool, shared-memory export, and read snapshot
all release.

The pool is thread-safe: the HTTP front end touches it from the event
loop while dispatch threads resolve keys concurrently.  Because lookups
and evictions race, entries are *leased*: :meth:`SessionPool.acquire`
pins an entry for the duration of a request, and an evicted entry's
``close()`` is deferred until its last in-flight lease drains.  A bare
:meth:`get` (no pin) remains for callers that only peek; request
dispatch must hold a lease, or a concurrent ``add`` can close the entry
mid-request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import UnknownGraphError

__all__ = ["SessionPool", "PoolLease", "DEFAULT_POOL_CAPACITY", "KEY_LENGTH"]

#: Graphs kept live by default; the LRU entry is closed beyond this.
DEFAULT_POOL_CAPACITY = 4

#: Hex characters of the SHA-256 CSR fingerprint used as the public key.
KEY_LENGTH = 12


class _PoolSlot:
    """One pooled entry plus its lease bookkeeping (guarded by pool lock)."""

    __slots__ = ("entry", "leases", "evicted")

    def __init__(self, entry):
        self.entry = entry
        self.leases = 0
        self.evicted = False


class PoolLease:
    """A pinned pool entry: the entry cannot close while the lease is held.

    Usable as a context manager; :meth:`release` is idempotent.  If the
    entry was evicted while leased, the *last* lease to release performs
    the deferred ``close()``.
    """

    __slots__ = ("entry", "_pool", "_slot")

    def __init__(self, pool: "SessionPool", slot: _PoolSlot):
        self._pool = pool
        self._slot = slot
        self.entry = slot.entry

    def release(self) -> None:
        slot, self._slot = self._slot, None
        if slot is not None:
            self._pool._release_slot(slot)

    def __enter__(self):
        return self.entry

    def __exit__(self, *exc) -> None:
        self.release()


class SessionPool:
    """Ordered ``key -> entry`` mapping with LRU eviction and leases.

    Entries are any object with a ``close()`` method (in practice
    :class:`~repro.serve.service.ServedGraph`).  ``add`` returns the key
    under which the entry is now served; re-adding the same fingerprint
    replaces (and closes) the previous entry, so reloading a graph is
    idempotent rather than a capacity leak.  Eviction never closes an
    entry out from under an in-flight request: leased entries close only
    when their last lease releases.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY):
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._slots: OrderedDict[str, _PoolSlot] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._slots

    def keys(self) -> list[str]:
        """Keys from least- to most-recently used."""
        with self._lock:
            return list(self._slots)

    def add(self, key: str, entry) -> list:
        """Insert ``entry`` under ``key``; returns the entries evicted.

        Evicted entries (including a replaced same-key entry) with no
        in-flight leases are closed before this returns; a leased victim
        is closed by its final :meth:`PoolLease.release` instead, so a
        concurrent request never observes a half-released session.
        """
        evicted = []
        with self._lock:
            old = self._slots.pop(key, None)
            if old is not None:
                old.evicted = True
                evicted.append(old)
            self._slots[key] = _PoolSlot(entry)
            while len(self._slots) > self.capacity:
                _, victim = self._slots.popitem(last=False)
                victim.evicted = True
                evicted.append(victim)
                self.evictions += 1
            closeable = [s.entry for s in evicted if s.leases == 0]
        for victim in closeable:
            victim.close()
        return [s.entry for s in evicted]

    def acquire(self, key: str) -> PoolLease:
        """Lease the entry for ``key`` (promoted to most-recently-used).

        The returned :class:`PoolLease` pins the entry: a concurrent
        eviction defers the entry's ``close()`` until every lease has
        released.  Use as a context manager around request dispatch.
        """
        with self._lock:
            slot = self._lookup(key)
            slot.leases += 1
            return PoolLease(self, slot)

    def get(self, key: str):
        """The entry for ``key``, promoted to most-recently-used.

        No lease is taken: the entry may be evicted and closed by a
        concurrent ``add`` at any point after this returns.  Request
        paths must use :meth:`acquire` instead.
        """
        with self._lock:
            return self._lookup(key).entry

    def _lookup(self, key: str) -> _PoolSlot:
        try:
            slot = self._slots[key]
        except KeyError:
            raise UnknownGraphError(key, tuple(self._slots)) from None
        self._slots.move_to_end(key)
        return slot

    def _release_slot(self, slot: _PoolSlot) -> None:
        with self._lock:
            slot.leases -= 1
            close_now = slot.evicted and slot.leases == 0
        if close_now:
            slot.entry.close()

    def lease_counts(self) -> dict[str, int]:
        """In-flight lease count per pooled key (telemetry)."""
        with self._lock:
            return {key: slot.leases for key, slot in self._slots.items()}

    def remove(self, key: str) -> bool:
        """Close and drop one entry; ``False`` when the key is unknown.

        A leased entry is dropped from the pool immediately but closed
        only when its last lease releases.
        """
        with self._lock:
            slot = self._slots.pop(key, None)
            if slot is None:
                return False
            slot.evicted = True
            close_now = slot.leases == 0
        if close_now:
            slot.entry.close()
        return True

    def close(self) -> None:
        """Close and drop every entry (server shutdown); leased entries
        close when their last lease releases."""
        with self._lock:
            slots = list(self._slots.values())
            self._slots.clear()
            for slot in slots:
                slot.evicted = True
            closeable = [s.entry for s in slots if s.leases == 0]
        for entry in closeable:
            entry.close()

    def __repr__(self) -> str:
        with self._lock:
            size = len(self._slots)
            leased = sum(1 for s in self._slots.values() if s.leases)
        return (
            f"SessionPool({size}/{self.capacity} entries, {leased} leased, "
            f"{self.evictions} evictions)"
        )
