"""Unified execution engine: GraphSession + declarative backend registry."""

from repro.engine.registry import (
    BackendRegistry,
    BackendSpec,
    PathVariant,
    default_registry,
)
from repro.engine.session import ArtifactStats, GraphSession

__all__ = [
    "GraphSession",
    "ArtifactStats",
    "BackendRegistry",
    "BackendSpec",
    "PathVariant",
    "default_registry",
]
