"""GraphSession: one graph, lazily memoized artifacts, declarative backends.

The paper's speedups come from *reusing* per-vertex structures across many
probes (BMP's dynamically constructed bitmap index, §4).  The codebase
used to rebuild per-**graph** structures on every call instead: each
``count()`` re-derived degrees and SHA-256 fingerprints, the planner kept
its own cache, the parallel backend re-exported shared memory and
respawned workers per request, and ``count_pairs`` allocated a fresh mark
plane per query batch.

:class:`GraphSession` owns a CSR plus every derived artifact, memoized on
first use:

=================  =====================================================
artifact            invalidated by
=================  =====================================================
``degrees``         structure (but *patched in place* by edit batches)
``fingerprint``     structure
``upper_edges``     structure
``reorder``         structure
``plan:<skew>``     structure
``shared_export``   structure (shared-memory blocks are unlinked)
``worker_pool``     structure / a different worker configuration
``mark_buffer``     vertex-count change only (survives edit batches)
``oriented_dag``    structure (degree ranks shift under edits)
``bipartite_view``  structure (an edit can create or break 2-colorability)
=================  =====================================================

Invalidation is **selective** and driven by the dynamic overlay: a batch
of applied edits (:meth:`apply_edits`) drops only the artifacts whose
inputs actually changed.  The degree vector is patched incrementally at
the touched endpoints instead of rebuilt, and size-keyed buffers survive
untouched.  A warm session therefore answers repeated counts, plans,
pair queries, and updates without re-deriving anything — the
amortize-across-queries regime streaming triangle-counting systems
exploit with persistent per-graph state.

Backends are resolved through a :class:`~repro.engine.registry.
BackendRegistry`; capability mismatches (``MPS`` + ``bitmap``,
``collect_stats`` on a stats-less backend) are rejected by one
declarative check instead of per-call-site tables.

Thread safety
-------------
A session may be shared across threads (the serving layer dispatches
reads from a thread pool): artifact memoization, execution, edit
application, and close all serialize on one reentrant lock, so
concurrent ``count``/``count_pairs`` calls interleaved with
``apply_edits`` are linearized — every read observes a fully pre-edit or
fully post-edit graph, never a torn one, and the shared mark plane is
never probed by two readers at once.  Readers that must not wait on
writers should read from a snapshot session instead (see
:mod:`repro.serve.service`).
"""

from __future__ import annotations

import os
import threading
import time
import warnings
import weakref
from dataclasses import dataclass

import numpy as np

from repro.engine.registry import BackendRegistry, default_registry
from repro.errors import AlgorithmError, SessionClosedError
from repro.graph.csr import CSRGraph

__all__ = ["GraphSession", "ArtifactStats", "SHARD_BUDGET_ENV"]

#: Environment override (in MiB) for the sharded-execution memory budget:
#: when a session's CSR export would exceed it, ``backend="auto"`` routes
#: to the ``sharded`` backend instead of ``hybrid``.  The CI leg forces
#: this low so K>1 shard paths execute on the bundled graphs.
SHARD_BUDGET_ENV = "REPRO_SHARD_BUDGET"


def _budget_from_env() -> int | None:
    raw = os.environ.get(SHARD_BUDGET_ENV)
    if not raw:
        return None
    try:
        return int(float(raw) * 2**20)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {SHARD_BUDGET_ENV}={raw!r} (expected MiB)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


@dataclass
class ArtifactStats:
    """Build/reuse telemetry for one session artifact.

    ``build_seconds`` accumulates wall time across rebuilds (a
    structure edit forces a rebuild that is counted again);
    ``last_build_seconds`` keeps only the most recent build so
    :meth:`GraphSession.profile` can separate "expensive once" from
    "expensive every invalidation".
    """

    builds: int = 0
    hits: int = 0
    invalidations: int = 0
    updates: int = 0
    build_seconds: float = 0.0
    last_build_seconds: float = 0.0


class _Artifact:
    """One cached value plus its invalidation policy."""

    __slots__ = ("value", "deps", "close", "update")

    def __init__(self, value, deps, close=None, update=None):
        self.value = value
        self.deps = deps  # subset of {"structure", "size"}
        self.close = close  # optional resource release hook
        self.update = update  # optional in-place edit-batch patcher


def _close_runtime(artifacts: dict) -> None:
    """Finalizer body: release closeable artifacts (pool, shared memory).

    Module-level (not a bound method) so the ``weakref.finalize`` it backs
    holds no reference to the session itself.  Releases in reverse
    insertion order so dependents go first — the worker pool must join
    its children before the shared-memory export they attach is
    unlinked, or a slow-starting spawn worker can re-register a segment
    with the resource tracker after the parent already unregistered it.
    """
    for art in reversed(list(artifacts.values())):
        if art.close is not None:
            try:
                art.close(art.value)
            except Exception:  # pragma: no cover - teardown is best-effort
                pass
    artifacts.clear()


class GraphSession:
    """Owns one graph and every derived artifact; routes all execution.

    Parameters
    ----------
    graph:
        The CSR graph served by this session.  Mutations arrive only
        through :meth:`apply_edits` (the dynamic overlay's invalidation
        hook) — the graph object itself stays immutable.
    registry:
        Backend registry; defaults to the process-wide
        :func:`~repro.engine.registry.default_registry`.
    start_method:
        Default ``multiprocessing`` start method for the worker-pool
        artifact (per-request override wins).
    shard_budget_mb:
        Memory budget (MiB) for one worker's attached shared memory.
        When the CSR export exceeds it, ``backend="auto"`` routes to the
        ``sharded`` backend, which bounds each worker to one shard
        segment.  Defaults to the ``REPRO_SHARD_BUDGET`` environment
        variable; ``None`` (and no env) disables budget routing.

    Use as a context manager (or call :meth:`close`) to release the
    worker pool and shared-memory export deterministically; a finalizer
    also releases them when the session is garbage collected.
    """

    def __init__(
        self,
        graph: CSRGraph,
        registry: BackendRegistry | None = None,
        start_method: str | None = None,
        shard_budget_mb: float | None = None,
    ):
        self._graph = graph
        self.registry = registry if registry is not None else default_registry()
        self.start_method = start_method
        self.shard_budget_bytes = (
            int(shard_budget_mb * 2**20)
            if shard_budget_mb is not None
            else _budget_from_env()
        )
        self._artifacts: dict[str, _Artifact] = {}
        self._stats: dict[str, ArtifactStats] = {}
        self._closed = False
        self._lock = threading.RLock()
        self._fallback_warned = False
        self._finalizer = weakref.finalize(self, _close_runtime, self._artifacts)

    # ------------------------------------------------------------------ #
    # artifact cache machinery
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self, operation: str) -> None:
        if self._closed:
            raise SessionClosedError(operation)

    def _memo(self, name, build, *, deps, close=None, update=None):
        """Return the cached artifact ``name``, building it on first use."""
        with self._lock:
            self._check_open(f"build artifact {name!r} on")
            stats = self._stats.setdefault(name, ArtifactStats())
            art = self._artifacts.get(name)
            if art is not None:
                stats.hits += 1
                return art.value
            t0 = time.perf_counter()
            value = build()
            elapsed = time.perf_counter() - t0
            self._artifacts[name] = _Artifact(value, frozenset(deps), close, update)
            stats.builds += 1
            stats.build_seconds += elapsed
            stats.last_build_seconds = elapsed
            return value

    def invalidate(self, *names: str) -> None:
        """Drop the named artifacts (all of them when called with none).

        Bulk invalidation runs in reverse insertion order so dependent
        artifacts release before what they borrow (pool before shared
        export — see :func:`_close_runtime`).
        """
        with self._lock:
            targets = names or tuple(reversed(self._artifacts))
            for name in targets:
                art = self._artifacts.pop(name, None)
                if art is None:
                    continue
                if art.close is not None:
                    art.close(art.value)
                self._stats.setdefault(name, ArtifactStats()).invalidations += 1

    def artifact_stats(self) -> dict[str, ArtifactStats]:
        """Per-artifact build/hit/invalidation counters (telemetry)."""
        return dict(self._stats)

    def profile(self) -> dict:
        """Build-time summary: where this session's wall time went.

        Returns ``{"artifacts": {name: {...}}, "total_build_seconds",
        "total_builds"}`` with artifacts sorted by cumulative build time,
        most expensive first — the first place to look when a warm
        session's first request is slow.
        """
        with self._lock:
            rows = {
                name: {
                    "builds": s.builds,
                    "hits": s.hits,
                    "invalidations": s.invalidations,
                    "updates": s.updates,
                    "build_seconds": s.build_seconds,
                    "last_build_seconds": s.last_build_seconds,
                }
                for name, s in sorted(
                    self._stats.items(),
                    key=lambda kv: kv[1].build_seconds,
                    reverse=True,
                )
            }
            return {
                "artifacts": rows,
                "total_build_seconds": sum(
                    r["build_seconds"] for r in rows.values()
                ),
                "total_builds": sum(r["builds"] for r in rows.values()),
            }

    def cached_artifacts(self) -> list[str]:
        """Names of the artifacts currently held warm."""
        return list(self._artifacts)

    # ------------------------------------------------------------------ #
    # artifacts
    # ------------------------------------------------------------------ #
    def degrees(self) -> np.ndarray:
        """Per-vertex degree vector (int64, owned by the session).

        Survives :meth:`apply_edits` via an in-place ±1 patch at the
        touched endpoints instead of a rebuild.
        """

        def patch(deg, ins, dels, old_graph, new_graph):
            if len(ins):
                np.add.at(deg, ins.ravel(), 1)
            if len(dels):
                np.add.at(deg, dels.ravel(), -1)
            return deg

        return self._memo(
            "degrees",
            lambda: np.diff(self._graph.offsets).astype(np.int64, copy=False),
            deps={"structure"},
            update=patch,
        )

    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the CSR arrays (plan/save cache key)."""
        from repro.core.result import graph_fingerprint

        return self._memo(
            "fingerprint",
            lambda: graph_fingerprint(self._graph),
            deps={"structure"},
        )

    def upper_edge_offsets(self) -> np.ndarray:
        """Edge offsets of every ``u < v`` edge, ascending."""

        def build():
            g = self._graph
            return np.flatnonzero(g.edge_sources() < g.dst)

        return self._memo("upper_edges", build, deps={"structure"})

    def reorder(self):
        """Degree-descending :class:`~repro.graph.reorder.ReorderResult`."""
        from repro.graph.reorder import reorder_graph

        return self._memo(
            "reorder", lambda: reorder_graph(self._graph), deps={"structure"}
        )

    def plan(self, skew_threshold: float | None = None, cover: bool = True):
        """The hybrid :class:`~repro.plan.ExecutionPlan`, memoized per
        ``(skew, cover)`` configuration.

        The first access consults the global plan cache (so unrelated
        sessions over the same graph still share plans); subsequent
        accesses skip even the fingerprint hash.  ``cover=False`` plans
        without the cover-edge pre-pass bucket.
        """
        from repro.plan.planner import DEFAULT_SKEW_THRESHOLD, get_plan

        skew = DEFAULT_SKEW_THRESHOLD if skew_threshold is None else float(skew_threshold)
        return self._memo(
            f"plan:{skew:g}:{'cover' if cover else 'nocover'}",
            lambda: get_plan(
                self._graph, skew, fingerprint=self.fingerprint(), cover=cover
            ),
            deps={"structure"},
        )

    def mark_buffer(self) -> np.ndarray:
        """All-``False`` boolean mark plane of ``num_vertices`` entries.

        The BMP probe structure for :meth:`count_pairs`.  Callers must
        leave it fully cleared.  Survives edit batches — only a
        vertex-count change invalidates it.
        """
        return self._memo(
            "mark_buffer",
            lambda: np.zeros(self._graph.num_vertices, dtype=bool),
            deps={"size"},
        )

    def oriented_dag(self) -> CSRGraph:
        """The degree-ascending DAG orientation of the graph
        (:func:`repro.motif.clique.orient_dag`), memoized for every
        clique-family motif count.  Structure-keyed: any edit batch drops
        it, because one inserted edge can flip degree ranks globally.
        """
        from repro.motif.clique import orient_dag

        return self._memo(
            "oriented_dag",
            lambda: orient_dag(self._graph),
            deps={"structure"},
        )

    def bipartite_view(self):
        """The 2-colored :class:`~repro.graph.bipartite.BipartiteProjection`
        of the graph, memoized for every biclique-family motif count.

        Raises :class:`~repro.errors.AlgorithmError` when the graph has
        an odd cycle; the failure is *not* cached, so a session whose
        graph becomes bipartite after edits succeeds on retry.
        """
        from repro.graph.bipartite import bipartite_from_graph

        return self._memo(
            "bipartite_view",
            lambda: bipartite_from_graph(self._graph),
            deps={"structure"},
        )

    def shared_export(self):
        """The CSR exported once into named shared memory (`SharedGraph`).

        Reused by every worker pool the session starts; unlinked on
        invalidation or :meth:`close`.
        """
        from repro.parallel.sharedmem import SharedGraph

        return self._memo(
            "shared_export",
            lambda: SharedGraph(self._graph),
            deps={"structure"},
            close=lambda shared: shared.unlink(),
        )

    def worker_pool(
        self,
        num_workers: int | None = None,
        start_method: str | None = None,
        chunks_per_worker: int = 4,
    ):
        """Persistent :class:`~repro.parallel.threadpool.ParallelCounter`.

        Started once and reused across requests; a request with a
        different worker count or start method rebuilds the pool (the
        shared-memory export is kept).  ``chunks_per_worker`` is a
        per-request knob and never forces a rebuild.

        A pool that degrades to sequential execution warns **once per
        session**: the fallback reason (single CPU, shared-memory setup
        failure) is a property of the host, not of the request, so a warm
        session answering many requests — or rebuilding pools for varying
        worker counts — does not spam one ``RuntimeWarning`` per count.
        """
        from repro.parallel.threadpool import ParallelCounter

        with self._lock:
            method = start_method if start_method is not None else self.start_method
            key = (
                None if num_workers is None else int(num_workers),
                method,
            )
            art = self._artifacts.get("worker_pool")
            if art is not None and art.value[0] != key:
                self.invalidate("worker_pool")
                art = None

            def build():
                shared = None
                if num_workers is None or int(num_workers) != 1:
                    try:
                        shared = self.shared_export()
                    except (OSError, ValueError):
                        shared = None  # pool retries (and may fall back) itself
                pool = ParallelCounter(
                    self._graph,
                    num_workers=num_workers,
                    chunks_per_worker=chunks_per_worker,
                    start_method=method,
                    shared=shared,
                    on_fallback=self._warn_fallback_once,
                )
                pool.start()
                return (key, pool)

            return self._memo(
                "worker_pool",
                build,
                deps={"structure"},
                close=lambda entry: entry[1].close(),
            )[1]

    def sharded_export(self, num_shards: int | None = None):
        """K per-shard shared-memory segments (`ShardedGraph`), memoized
        per requested shard count.

        ``num_shards=None`` resolves K from the session's shard budget
        (smallest K whose largest segment fits, simulator-arbitrated);
        the shard plan reuses the session's memoized execution plan as
        the cost curve.  Unlinked on invalidation or :meth:`close`.
        """
        from repro.parallel.sharding import ShardedGraph
        from repro.plan.shardplan import plan_shards

        def build():
            plan = plan_shards(
                self._graph,
                num_shards=num_shards,
                budget_bytes=(
                    self.shard_budget_bytes if num_shards is None else None
                ),
                plan=self.plan(),
            )
            return ShardedGraph(self._graph, plan)

        return self._memo(
            f"sharded_export:{num_shards if num_shards is not None else 'auto'}",
            build,
            deps={"structure"},
            close=lambda sharded: sharded.unlink(),
        )

    def sharded_counter(
        self,
        num_shards: int | None = None,
        start_method: str | None = None,
        chunks_per_shard: int = 4,
    ):
        """Persistent :class:`~repro.parallel.sharding.ShardedCounter`.

        Started once and reused across requests; a request with a
        different shard count or start method rebuilds the pool (the
        sharded export is kept).  Borrows :meth:`sharded_export`, so the
        session owns segment lifetime and workers never unlink.
        """
        from repro.parallel.sharding import ShardedCounter

        with self._lock:
            method = start_method if start_method is not None else self.start_method
            key = (
                None if num_shards is None else int(num_shards),
                method,
            )
            art = self._artifacts.get("sharded_pool")
            if art is not None and art.value[0] != key:
                self.invalidate("sharded_pool")

            def build():
                sharded = self.sharded_export(num_shards)
                pool = ShardedCounter(
                    self._graph,
                    chunks_per_shard=chunks_per_shard,
                    start_method=method,
                    sharded=sharded,
                    on_fallback=self._warn_fallback_once,
                )
                pool.start()
                return (key, pool)

            return self._memo(
                "sharded_pool",
                build,
                deps={"structure"},
                close=lambda entry: entry[1].close(),
            )[1]

    def _warn_fallback_once(self, message: str) -> None:
        """Emit the pool's sequential-fallback warning at most once."""
        if self._fallback_warned:
            return
        self._fallback_warned = True
        warnings.warn(message, RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def count(
        self,
        algorithm: str = "auto",
        backend: str = "auto",
        *,
        num_workers: int | None = None,
        chunks_per_worker: int = 4,
        collect_stats: bool = False,
        skew_threshold: float | None = None,
        start_method: str | None = None,
        cover: bool = True,
    ):
        """Exact all-edge counts through the registry-resolved backend.

        Mirrors :meth:`repro.core.api.CommonNeighborCounter.count` but
        executes against this session's warm artifacts: the hybrid path
        reuses the memoized plan, the parallel path reuses the persistent
        pool and shared-memory export.  ``collect_stats`` on a backend
        with no declared stats capability raises
        :class:`~repro.errors.AlgorithmError` instead of being silently
        dropped; ``num_workers``/``chunks_per_worker`` are honored by
        every backend declaring ``supports_num_workers`` (``parallel``
        *and* ``hybrid``, whose bitmap bucket then runs on the pool).
        """
        from repro.core.result import EdgeCounts

        with self._lock:
            self._check_open("count on")
            if algorithm != "auto":
                from repro.algorithms import get_algorithm

                algo = get_algorithm(algorithm)
                if backend == "auto":
                    if collect_stats:
                        raise AlgorithmError(
                            f"algorithm {algorithm!r} runs its own counting path, "
                            "which collects no execution stats; pick a backend "
                            "with stats capability (hybrid or parallel)"
                        )
                    return EdgeCounts(self._graph, algo.count(self._graph))
                self.registry.check_algorithm(algorithm, algo.name, backend)

            spec = self.registry.check_available(
                self._auto_backend() if backend == "auto" else backend
            )
            if collect_stats and not spec.supports_stats:
                stats_capable = [
                    s.name for s in self.registry.specs() if s.supports_stats
                ]
                raise AlgorithmError(
                    f"backend {spec.name!r} declares no stats capability; "
                    f"collect_stats is supported by {stats_capable}"
                )
            counts, stats = spec.run(
                self,
                num_workers=num_workers,
                chunks_per_worker=chunks_per_worker,
                collect_stats=collect_stats,
                skew_threshold=skew_threshold,
                start_method=start_method,
                cover=cover,
            )
            return self._wrap_result(counts, stats)

    def count_motif(self, motif: str = "common-neighbors", backend: str = "auto", **opts):
        """Count one registered motif; returns a
        :class:`~repro.motif.spec.MotifResult`.

        The edge family (``common-neighbors``) routes through
        :meth:`count` — its backends, stats, and parallel options all
        apply, and the result carries the full per-edge
        :class:`~repro.core.result.EdgeCounts` with the triangle total.
        Clique motifs run on the memoized :meth:`oriented_dag`, biclique
        motifs on the memoized :meth:`bipartite_view`; ``backend="auto"``
        picks the motif's default runner, and a backend that cannot count
        the motif raises :class:`~repro.errors.AlgorithmError` naming the
        capable ones (CLI exit code 4).
        """
        from repro.motif.spec import MotifResult, get_motif

        spec = get_motif(motif)
        if spec.family == "edge":
            counts = self.count(backend=backend, **opts)
            return MotifResult(
                motif=spec.name,
                params=spec.params,
                total=counts.triangle_count(),
                backend=backend,
                edge_counts=counts,
            )
        with self._lock:
            self._check_open("count motif on")
            name = spec.default_backend if backend == "auto" else backend
            runner = spec.runners.get(name)
            if runner is None:
                if name in self.registry:
                    # A registered counting backend whose kernels do not
                    # execute this motif's structure.
                    self.registry.check_motif(name, spec.name)
                raise AlgorithmError(
                    f"unknown backend {name!r} for motif {spec.name!r}; "
                    f"its runners are {spec.runner_names()} and the "
                    f"motif-capable counting backends are "
                    f"{self.registry.motif_backends(spec.name) or 'none'}"
                )
            if spec.structure == "dag":
                structure = self.oriented_dag()
            else:
                structure = self.bipartite_view().graph
            total = runner(structure, **opts)
            return MotifResult(
                motif=spec.name,
                params=spec.params,
                total=int(total),
                backend=name,
            )

    def _auto_backend(self) -> str:
        """``backend="auto"`` resolution: hybrid, unless the CSR export
        would blow the shard budget — then sharded execution bounds each
        worker to one segment."""
        if (
            self.shard_budget_bytes is not None
            and self._graph.memory_bytes() > self.shard_budget_bytes
            and "sharded" in self.registry
        ):
            return "sharded"
        return "hybrid"

    def _wrap_result(self, counts, stats):
        from repro.core.result import EdgeCounts
        from repro.parallel.metrics import ParallelStats

        if isinstance(stats, ParallelStats):
            return EdgeCounts(self._graph, counts, parallel_stats=stats)
        if stats is not None:
            return EdgeCounts(self._graph, counts, hybrid_report=stats)
        return EdgeCounts(self._graph, counts)

    def count_pairs(self, u, v) -> np.ndarray:
        """Common neighbor counts for arbitrary vertex *pairs* (paper §1).

        Pairs sharing a left endpoint are grouped by a stable sort; each
        group marks ``N(left)`` once in the session's reusable mark plane
        and answers **all** its queries with one vectorized gather over
        the concatenated right-side adjacency lists — no per-pair Python
        loop.  Returns an int64 array aligned with the inputs.
        """
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValueError("u and v must have the same length")
        if len(u) == 0:
            return np.empty(0, dtype=np.int64)
        # The whole probe runs under the session lock: the mark plane is a
        # shared scratch buffer, and an edit batch must never swap the
        # graph between the degree read and the gather.
        with self._lock:
            self._check_open("count pairs on")
            graph = self._graph
            n = graph.num_vertices
            if u.min() < 0 or v.min() < 0 or u.max() >= n or v.max() >= n:
                raise IndexError("vertex ids out of range")
            return self._count_pairs_locked(graph, u, v)

    def _count_pairs_locked(self, graph, u, v) -> np.ndarray:
        # Put the lower-degree endpoint on the probing (right) side.
        d = self.degrees()
        swap = d[u] < d[v]
        left = np.where(swap, v, u)
        right = np.where(swap, u, v)

        order = np.argsort(left, kind="stable")
        lsort = left[order]
        rsort = right[order]
        # Segment boundaries of equal-left runs in the sorted order.
        starts = np.flatnonzero(np.r_[True, lsort[1:] != lsort[:-1]])
        ends = np.r_[starts[1:], len(lsort)]

        offsets, dst = graph.offsets, graph.dst
        mark = self.mark_buffer()
        out = np.empty(len(u), dtype=np.int64)
        for s, e in zip(starts, ends):
            a = int(lsort[s])
            nbrs = graph.neighbors(a)
            mark[nbrs] = True
            rights = rsort[s:e]
            lens = d[rights]
            total = int(lens.sum())
            if total:
                # Flat gather indices over the concatenated N(right) lists.
                firsts = np.cumsum(lens) - lens
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(firsts, lens)
                    + np.repeat(offsets[rights], lens)
                )
                seg = np.repeat(np.arange(len(rights)), lens)
                sums = np.bincount(
                    seg, weights=mark[dst[flat]], minlength=len(rights)
                ).astype(np.int64)
            else:
                sums = np.zeros(len(rights), dtype=np.int64)
            out[order[s:e]] = sums
            mark[nbrs] = False
        return out

    # ------------------------------------------------------------------ #
    # invalidation hooks (driven by the dynamic overlay)
    # ------------------------------------------------------------------ #
    def apply_edits(self, insertions=None, deletions=None, new_graph=None) -> None:
        """Selective invalidation after a batch of *applied* edits.

        ``insertions``/``deletions`` are ``(m, 2)`` arrays of the edges
        that actually changed the adjacency (no-ops must be filtered by
        the caller — the overlay already knows).  ``new_graph`` is the
        post-edit CSR the session serves from now on.

        Only the artifacts whose inputs changed are touched: structure-
        keyed artifacts (fingerprint, plans, upper-edge index, reorder,
        shared-memory export, worker pool) are dropped and closeables
        released; the degree vector is patched in place at the touched
        endpoints; size-keyed buffers (the mark plane) survive untouched
        unless the vertex count changed.
        """
        ins = _edit_array(insertions)
        dels = _edit_array(deletions)
        with self._lock:
            self._check_open("apply edits to")
            old_graph = self._graph
            size_changed = (
                new_graph is not None
                and new_graph.num_vertices != old_graph.num_vertices
            )
            if new_graph is not None:
                self._graph = new_graph

            for name in reversed(list(self._artifacts)):
                art = self._artifacts[name]
                if art.update is not None and not size_changed:
                    art.value = art.update(
                        art.value, ins, dels, old_graph, self._graph
                    )
                    self._stats.setdefault(name, ArtifactStats()).updates += 1
                elif "structure" in art.deps or (
                    "size" in art.deps and size_changed
                ):
                    self.invalidate(name)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the worker pool and shared-memory export.

        Idempotent: closing twice (or closing a session whose finalizer
        already ran) is a no-op.  Any later ``count``/``count_pairs``/
        ``apply_edits``/artifact access raises
        :class:`~repro.errors.SessionClosedError` instead of failing with
        an incidental ``KeyError`` from the cleared artifact dict.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._finalizer.detach()
            _close_runtime(self._artifacts)

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        warm = ", ".join(self.cached_artifacts()) or "none"
        return f"GraphSession({self._graph!r}, warm=[{warm}])"


def _edit_array(pairs) -> np.ndarray:
    if pairs is None:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edit batch must have shape (m, 2), got {arr.shape}")
    return arr
