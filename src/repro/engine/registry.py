"""One declarative backend registry for every entry point.

Before this module existed the codebase kept three divergent tables of
"ways to compute all-edge counts": ``_BACKENDS`` and
``_ALGORITHM_BACKENDS`` in :mod:`repro.core.api`, and a hand-maintained
list of built-in execution paths in :mod:`repro.fuzz.differential`.
Adding a backend meant editing all three and hoping they stayed in sync.

:class:`BackendRegistry` replaces them: each backend registers **once**
as a :class:`BackendSpec` carrying its runner plus declared capabilities —
which algorithm structure it executes, whether it can surface execution
stats, whether it honors ``num_workers``, whether it may serve dynamic
recounts, and whether it can count an arbitrary subset of edge offsets.
Every consumer (the public API, the CLI, :class:`~repro.core.dynamic.
DynamicCounter`, the differential fuzzer, the bench harness) asks the
registry instead of keeping its own table, so capability mismatches like
``MPS`` + ``bitmap`` are rejected by one declarative check.

Runners execute against a :class:`repro.engine.session.GraphSession`, so
they transparently reuse the session's memoized artifacts (fingerprint,
execution plan, shared-memory export, persistent worker pool).
"""

from __future__ import annotations

import multiprocessing as mp
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlgorithmError

__all__ = [
    "BackendSpec",
    "PathVariant",
    "BackendRegistry",
    "default_registry",
]


@dataclass(frozen=True)
class PathVariant:
    """One fuzzable flavor of a backend (e.g. ``parallel-spawn``).

    ``suffix`` extends the backend name to the execution-path name
    (empty → the bare backend name); ``stride`` runs the path on every
    k-th fuzz case (expensive paths still get coverage without dominating
    the budget); ``opts`` are extra keyword arguments passed to
    :meth:`GraphSession.count`.
    """

    suffix: str = ""
    stride: int = 1
    opts: dict = field(default_factory=dict)

    def path_name(self, backend: str) -> str:
        return f"{backend}-{self.suffix}" if self.suffix else backend


@dataclass(frozen=True)
class BackendSpec:
    """One registered counting backend plus its declared capabilities.

    ``run(session, **opts)`` returns ``(counts, stats)`` where ``counts``
    aligns with ``graph.dst`` and ``stats`` is backend-specific telemetry
    (``None`` when the backend collects none, or stats were not asked
    for).

    Capabilities
    ------------
    ``algorithms``
        Names of the algorithm families whose structure this backend
        executes (``M``/``MPS``/``BMP``); an explicit ``algorithm=`` in
        the API is honored only by backends declaring it.  Empty set →
        the backend pairs with no explicit algorithm (``matmul`` is an
        algebraic path; ``hybrid`` picks kernels itself).
    ``supports_stats``
        ``collect_stats=True`` yields a telemetry object
        (:class:`~repro.parallel.metrics.ParallelStats` or
        :class:`~repro.plan.HybridReport`); backends without it raise
        instead of silently dropping the flag.
    ``supports_num_workers``
        ``num_workers``/``chunks_per_worker`` change execution; other
        backends ignore them (documented single-process paths).
    ``dynamic_compatible``
        May serve :class:`~repro.core.dynamic.DynamicCounter` initial
        builds and batch recounts.
    ``supports_edge_subset``
        Can produce counts for an arbitrary sorted subset of ``u < v``
        edge offsets (the planner uses this to farm its bitmap bucket out
        to the worker pool).
    ``available``
        Optional zero-arg callable probed at use time; ``False`` means
        the backend's dependency is absent on this host.  Unavailable
        backends stay *registered* (they appear in ``names()`` and CLI
        choices with a clear error on use) but are skipped by the fuzzer
        and the bench harness — the capability flag ROADMAP item 3 calls
        for.  ``requires`` names the dependency for error messages.
    ``exact``
        Counts are bit-identical to the brute-force reference.  ``False``
        marks estimators (``stream-sampled``): they are excluded from
        bit-exact agreement sweeps and cross-checked statistically
        instead (fuzz path + the streaming statistical test harness).
    ``motifs``
        Names of the registered motifs (see :mod:`repro.motif.spec`)
        whose structure this backend's kernels execute.  Every backend
        counts the paper's per-edge common neighbors; backends whose
        intersection primitive also drives the oriented-DAG clique
        recursion or the bipartite subset emission declare those motif
        names too, and :meth:`BackendRegistry.check_motif` rejects
        mismatches (``sharded`` + ``clique-4``) with the capable list.
    """

    name: str
    run: object
    algorithms: frozenset = frozenset()
    supports_stats: bool = False
    supports_num_workers: bool = False
    dynamic_compatible: bool = True
    supports_edge_subset: bool = False
    fuzz_variants: tuple = (PathVariant(),)
    description: str = ""
    available: object = None
    requires: str = ""
    exact: bool = True
    motifs: frozenset = frozenset({"common-neighbors"})

    def is_available(self) -> bool:
        """Probe the optional availability hook (no hook → available)."""
        return bool(self.available()) if self.available is not None else True


class BackendRegistry:
    """Ordered name → :class:`BackendSpec` mapping with capability queries."""

    def __init__(self):
        self._specs: OrderedDict[str, BackendSpec] = OrderedDict()

    # ------------------------------------------------------------------ #
    def register(self, spec: BackendSpec, replace: bool = False) -> None:
        if not replace and spec.name in self._specs:
            raise ValueError(f"backend {spec.name!r} is already registered")
        self._specs[spec.name] = spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> list[str]:
        """Registered backend names, in registration order."""
        return list(self._specs)

    def specs(self) -> list[BackendSpec]:
        return list(self._specs.values())

    def get(self, name: str) -> BackendSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise AlgorithmError(
                f"unknown backend {name!r}; choose from {sorted(self._specs)}"
            ) from None

    # ------------------------------------------------------------------ #
    # capability queries
    # ------------------------------------------------------------------ #
    def backends_for(self, algorithm_name: str) -> list[str]:
        """Backends declaring they execute ``algorithm_name``'s structure."""
        return [
            s.name for s in self._specs.values() if algorithm_name in s.algorithms
        ]

    def check_algorithm(self, algorithm: str, algorithm_name: str, backend: str) -> None:
        """Raise unless ``backend`` executes ``algorithm_name``'s structure.

        ``algorithm`` is the user-facing spelling (e.g. ``"BMP-RF"``),
        ``algorithm_name`` the registered family (``"BMP"``).
        """
        spec = self.get(backend)
        if algorithm_name not in spec.algorithms:
            honored = self.backends_for(algorithm_name)
            raise AlgorithmError(
                f"backend {backend!r} does not execute algorithm "
                f"{algorithm!r}; honored backends for {algorithm_name}: "
                f"{honored or 'none'} (use backend='auto' to run "
                f"the algorithm's own path)"
            )

    def dynamic_backends(self) -> list[str]:
        return [s.name for s in self._specs.values() if s.dynamic_compatible]

    def motif_backends(self, motif: str) -> list[str]:
        """Backends declaring they execute ``motif``'s structure."""
        return [s.name for s in self._specs.values() if motif in s.motifs]

    def check_motif(self, backend: str, motif: str) -> BackendSpec:
        """Raise unless ``backend`` declares it can count ``motif``.

        Mirrors :meth:`check_available`: the error names the capable
        backends so CLI users get an actionable exit-code-4 message
        instead of a KeyError deep in a runner table.
        """
        spec = self.get(backend)
        if motif not in spec.motifs:
            raise AlgorithmError(
                f"backend {backend!r} does not count motif {motif!r}; "
                f"motif-capable backends: {self.motif_backends(motif) or 'none'} "
                f"(use backend='auto' for the motif's default runner)"
            )
        return spec

    def available_names(self) -> list[str]:
        """Names of the backends whose dependencies are present."""
        return [s.name for s in self._specs.values() if s.is_available()]

    def check_available(self, backend: str) -> BackendSpec:
        """The spec for ``backend``, or raise naming the missing dependency."""
        spec = self.get(backend)
        if not spec.is_available():
            raise AlgorithmError(
                f"backend {backend!r} is unavailable on this host: "
                f"requires {spec.requires or 'an optional dependency'} "
                f"(available backends: {self.available_names()})"
            )
        return spec


# --------------------------------------------------------------------- #
# built-in backend runners
#
# Kernel entry points resolve through their module at call time (not
# captured at import), so monkeypatched fault injection — the fuzz suite
# testing itself — is seen by registered backends.
# --------------------------------------------------------------------- #
def _run_merge(session, **_):
    from repro.kernels import batch

    return batch.count_all_edges_merge(session.graph), None


def _run_matmul(session, **_):
    from repro.kernels import batch

    return batch.count_all_edges_matmul(session.graph), None


def _run_bitmap(session, **_):
    from repro.kernels import batch

    graph = session.graph
    eo = session.upper_edge_offsets()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if len(eo):
        batch.count_edges_bitmap(graph, eo, cnt)
    return batch.symmetric_assign(graph, cnt), None


def _run_gallop(session, **_):
    from repro.kernels import batch, batchsearch

    graph = session.graph
    eo = session.upper_edge_offsets()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if len(eo):
        cnt[eo] = batchsearch.count_edges_galloping(graph, eo)
    return batch.symmetric_assign(graph, cnt), None


def _compiled_available() -> bool:
    from repro import compiled

    return compiled.available()


def _run_gallop_compiled(session, **_):
    from repro import compiled
    from repro.kernels import batch

    graph = session.graph
    eo = session.upper_edge_offsets()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if len(eo):
        cnt[eo] = compiled.count_edges_galloping_compiled(graph, eo)
    return batch.symmetric_assign(graph, cnt), None


def _run_bitmap_compiled(session, **_):
    from repro import compiled
    from repro.kernels import batch

    graph = session.graph
    eo = session.upper_edge_offsets()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    if len(eo):
        compiled.count_edges_bitmap_compiled(graph, eo, cnt)
    return batch.symmetric_assign(graph, cnt), None


def _run_parallel(
    session,
    *,
    num_workers=None,
    chunks_per_worker=4,
    collect_stats=False,
    start_method=None,
    **_,
):
    pool = session.worker_pool(num_workers=num_workers, start_method=start_method)
    if collect_stats:
        return pool.count_all_edges(
            chunks_per_worker=chunks_per_worker, with_stats=True
        )
    return pool.count_all_edges(chunks_per_worker=chunks_per_worker), None


def _run_hybrid(
    session,
    *,
    num_workers=None,
    chunks_per_worker=4,
    collect_stats=False,
    skew_threshold=None,
    start_method=None,
    cover=True,
    **_,
):
    from repro.plan.executor import execute_plan
    from repro.plan.planner import DEFAULT_SKEW_THRESHOLD

    plan = session.plan(
        DEFAULT_SKEW_THRESHOLD if skew_threshold is None else skew_threshold,
        cover=cover,
    )
    pool = None
    if num_workers is not None and int(num_workers) != 1 and len(plan.bitmap_edges):
        pool = session.worker_pool(num_workers=num_workers, start_method=start_method)
        if not pool.is_parallel:
            pool = None
    cnt, report = execute_plan(
        session.graph, plan, pool=pool, chunks_per_worker=chunks_per_worker
    )
    return cnt, (report if collect_stats else None)


def _run_sharded(
    session,
    *,
    num_workers=None,
    chunks_per_worker=4,
    collect_stats=False,
    start_method=None,
    **_,
):
    # ``num_workers`` doubles as the shard count: one worker per shard.
    pool = session.sharded_counter(
        num_shards=num_workers, start_method=start_method
    )
    if collect_stats:
        return pool.count_all_edges(
            chunks_per_shard=chunks_per_worker, with_stats=True
        )
    return pool.count_all_edges(chunks_per_shard=chunks_per_worker), None


def _run_stream_exact(session, **_):
    """Replay the graph's edges through the sliding-window engine.

    Every edge is ingested as one timestamped batch under an infinite
    window, so the snapshot's live set is exactly the input graph and the
    counts must be bit-identical to the batch kernels — streaming's
    equivalence anchor in the registry (and therefore the fuzzer).
    """
    import math

    from repro.graph.build import csr_to_undirected_pairs
    from repro.stream import StreamCounter

    graph = session.graph
    u, v = csr_to_undirected_pairs(graph)
    with StreamCounter(
        window=math.inf, num_vertices=graph.num_vertices
    ) as stream:
        stream.ingest(
            (float(i), a, b)
            for i, (a, b) in enumerate(zip(u.tolist(), v.tolist()))
        )
        return stream.snapshot().counts, None


def _run_stream_sampled(session, *, byte_budget=None, seed=0, delta=0.05, **_):
    """Reservoir-sampled estimates, rounded to the counts-array contract.

    Approximate by design (``exact=False``): under the default budget the
    reservoir may be smaller than the edge set, so counts carry sampling
    error bounded by the estimator's (ε, δ) bars — see
    :mod:`repro.stream.sampled`.
    """
    from repro.graph.build import csr_to_undirected_pairs
    from repro.kernels import batch
    from repro.stream import SampledCounter

    graph = session.graph
    u, v = csr_to_undirected_pairs(graph)
    sampler = SampledCounter(byte_budget, seed=seed, delta=delta)
    sampler.ingest(zip(u.tolist(), v.tolist()))
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    for i in eo.tolist():
        est = sampler.edge_estimate(int(src[i]), int(graph.dst[i]))
        cnt[i] = int(round(est["count"]))
    return batch.symmetric_assign(graph, cnt), None


def _sharded_fuzz_variants() -> tuple:
    """Shard-arithmetic and real-pool flavors of the sharded path.

    The inline flavor runs K=3 shards in-process over their attached
    segments every few cases (cheap, covers boundary/delta math); one
    process-backed flavor per platform keeps the worker protocol honest.
    """
    variants = [
        PathVariant(
            suffix="inline",
            stride=3,
            opts={"num_workers": 3, "start_method": "inline"},
        )
    ]
    available = mp.get_all_start_methods()
    method = "fork" if "fork" in available else "spawn"
    variants.append(
        PathVariant(
            suffix=method,
            stride=16,
            opts={"num_workers": 2, "start_method": method},
        )
    )
    return tuple(variants)


def _parallel_fuzz_variants() -> tuple:
    """Fork/spawn fuzz flavors, gated on platform availability."""
    variants = []
    available = mp.get_all_start_methods()
    for method, stride in (("fork", 4), ("spawn", 16)):
        if method in available:
            variants.append(
                PathVariant(
                    suffix=method,
                    stride=stride,
                    opts={
                        "num_workers": 2,
                        "chunks_per_worker": 3,
                        "start_method": method,
                    },
                )
            )
    return tuple(variants)


#: Motif families whose runners reuse the named kernels (the clique
#: runner table in :mod:`repro.motif.clique` uses the same names).
_CLIQUE_MOTIFS = frozenset({f"clique-{k}" for k in (3, 4, 5)})
_BICLIQUE_MOTIFS = frozenset(
    {f"biclique-{p}-{q}" for p, q in ((2, 2), (2, 3), (3, 2), (3, 3))}
)
_CN = frozenset({"common-neighbors"})


def _builtin_specs() -> list[BackendSpec]:
    return [
        BackendSpec(
            name="merge",
            run=_run_merge,
            algorithms=frozenset({"M", "MPS"}),
            motifs=_CN | _CLIQUE_MOTIFS,
            description="per-edge searchsorted merge (reference path)",
        ),
        BackendSpec(
            name="bitmap",
            run=_run_bitmap,
            algorithms=frozenset({"BMP"}),
            supports_edge_subset=True,
            motifs=_CN | _CLIQUE_MOTIFS | _BICLIQUE_MOTIFS,
            description="degree-bucketed BMP mark-and-probe structure",
        ),
        BackendSpec(
            name="matmul",
            run=_run_matmul,
            supports_edge_subset=True,
            description="blocked sparse (A·A) ⊙ A (SciPy SpGEMM)",
        ),
        BackendSpec(
            name="gallop",
            run=_run_gallop,
            algorithms=frozenset({"MPS"}),
            supports_edge_subset=True,
            description="batched lockstep lower-bound (pivot-skip structure)",
        ),
        BackendSpec(
            name="gallop-compiled",
            run=_run_gallop_compiled,
            algorithms=frozenset({"MPS"}),
            supports_edge_subset=True,
            available=_compiled_available,
            requires="numba or a system C compiler (repro.compiled)",
            description="galloping intersection, machine code (no interpreter)",
        ),
        BackendSpec(
            name="bitmap-compiled",
            run=_run_bitmap_compiled,
            algorithms=frozenset({"BMP"}),
            supports_edge_subset=True,
            available=_compiled_available,
            requires="numba or a system C compiler (repro.compiled)",
            description="BMP mark/probe loop, machine code (no interpreter)",
        ),
        BackendSpec(
            name="parallel",
            run=_run_parallel,
            algorithms=frozenset({"BMP"}),
            supports_stats=True,
            supports_num_workers=True,
            supports_edge_subset=True,
            fuzz_variants=_parallel_fuzz_variants(),
            description="shared-memory multiprocessing with work-weighted chunks",
        ),
        BackendSpec(
            name="sharded",
            run=_run_sharded,
            algorithms=frozenset({"BMP"}),
            supports_stats=True,
            supports_num_workers=True,
            fuzz_variants=_sharded_fuzz_variants(),
            description=(
                "K-way 2D shard partitioning; each worker attaches only "
                "its own shared-memory segment"
            ),
        ),
        BackendSpec(
            name="hybrid",
            run=_run_hybrid,
            supports_stats=True,
            supports_num_workers=True,
            fuzz_variants=(
                PathVariant(suffix="cold"),
                PathVariant(suffix="warm"),
                PathVariant(suffix="nocover", opts={"cover": False}),
            ),
            motifs=_CN | _CLIQUE_MOTIFS,
            description="cost-model planner splitting edges across kernels",
        ),
        BackendSpec(
            name="stream-exact",
            run=_run_stream_exact,
            dynamic_compatible=False,
            fuzz_variants=(PathVariant(stride=4),),
            description="sliding-window stream replay (exact, per-edge deltas)",
        ),
        BackendSpec(
            name="stream-sampled",
            run=_run_stream_sampled,
            dynamic_compatible=False,
            exact=False,
            # No generic bit-exact fuzz path — the estimator is validated
            # by its own statistical fuzz path (repro.fuzz.differential).
            fuzz_variants=(),
            description="edge-reservoir estimator (approximate, byte-budgeted)",
        ),
    ]


_DEFAULT: BackendRegistry | None = None


def default_registry() -> BackendRegistry:
    """The process-wide registry, populated with the built-in backends."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BackendRegistry()
        for spec in _builtin_specs():
            _DEFAULT.register(spec)
    return _DEFAULT
