"""Incremental count maintenance kernel (the per-edge delta rule).

Inserting an edge ``(u, v)`` creates one triangle per common neighbor
``w ∈ N(u) ∩ N(v)``: the counts of the existing edges ``(u, w)`` and
``(v, w)`` each grow by one, and the new edge's own count is the
intersection size.  Deletion is the exact mirror.  Each update therefore
costs one neighborhood intersection plus ``O(|N(u) ∩ N(v)|)`` scattered
count adjustments — the locality argument of streaming triangle counting
(Tangwongsan et al.) applied to the all-edge counting problem.

The intersection itself reuses the paper's bitmap kernel
(:class:`repro.kernels.bitmap.Bitmap`): build the index over the smaller
neighbor set, probe the larger, flip-clear — charged to
:class:`repro.types.OpCounts` exactly like the batch BMP path, so
incremental work is comparable with the cost model's per-edge estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.overlay import AdjacencyOverlay
from repro.kernels.bitmap import Bitmap
from repro.types import OpCounts

__all__ = ["DeltaKernel", "UpdateResult", "edge_key"]


def edge_key(u: int, v: int) -> tuple[int, int]:
    """Canonical ``u < v`` dictionary key for an undirected edge."""
    return (u, v) if u < v else (v, u)


@dataclass
class UpdateResult:
    """Outcome of one :meth:`repro.core.dynamic.DynamicCounter.apply` call."""

    inserted: int = 0
    deleted: int = 0
    skipped: int = 0  # duplicate inserts / missing deletes (no-ops)
    mode: str = "incremental"  # "incremental" | "recount" | "noop"
    ops: OpCounts = field(default_factory=OpCounts)
    compacted: bool = False

    @property
    def applied(self) -> int:
        return self.inserted + self.deleted

    def __repr__(self) -> str:
        return (
            f"UpdateResult(mode={self.mode!r}, +{self.inserted} -{self.deleted} "
            f"skipped={self.skipped}, compacted={self.compacted})"
        )


class DeltaKernel:
    """Applies per-edge count deltas against a live overlay.

    ``counts`` maps canonical edge keys (``u < v`` tuples) to the current
    common neighbor count of that edge; the kernel keeps it exactly equal
    to a from-scratch recount of the overlay's adjacency after every
    single-edge operation.  One ``|V|``-bit bitmap is allocated up front
    and reused across updates (the BMP build/probe/flip-clear discipline),
    so per-update cost never touches ``O(|V|)``.
    """

    __slots__ = ("overlay", "counts", "_bitmap")

    def __init__(self, overlay: AdjacencyOverlay, counts: dict[tuple[int, int], int]):
        self.overlay = overlay
        self.counts = counts
        self._bitmap = Bitmap(overlay.num_vertices)

    # ------------------------------------------------------------------ #
    def common_members(
        self, u: int, v: int, ops: OpCounts | None = None
    ) -> np.ndarray:
        """``N(u) ∩ N(v)`` members under the overlay's current adjacency."""
        a = self.overlay.neighbors(u)
        b = self.overlay.neighbors(v)
        if len(a) == 0 or len(b) == 0:
            return np.empty(0, dtype=np.int64)
        # One-shot pair: building over the smaller side minimizes
        # set + clear work (unlike batch BMP, there is no reuse across v).
        build, probe = (a, b) if len(a) <= len(b) else (b, a)
        # Overlay neighbor ids are adjacency entries, provably in
        # [0, |V|): skip the bitmap's bounds scan in this hot loop.
        bm = self._bitmap
        bm.set_many(build, ops, checked=False)
        hits = bm.test_many(probe, ops, checked=False)
        bm.clear_many(build, ops, checked=False)
        members = probe[hits].astype(np.int64, copy=False)
        if ops is not None:
            ops.matches += len(members)
        return members

    # ------------------------------------------------------------------ #
    def insert(self, u: int, v: int, ops: OpCounts | None = None) -> bool:
        """Insert ``(u, v)`` and patch all affected counts.

        Returns False (graph and counts untouched) when the edge already
        exists.
        """
        if not self.overlay.insert_edge(u, v):
            return False
        # Membership of any w ≠ u, v in N(u) ∩ N(v) is unaffected by the
        # presence of (u, v) itself, so post-insert neighborhoods serve
        # both the new edge's count and the ±1 adjustments.
        members = self.common_members(u, v, ops)
        counts = self.counts
        counts[edge_key(u, v)] = len(members)
        for w in members.tolist():
            counts[edge_key(u, w)] += 1
            counts[edge_key(v, w)] += 1
        return True

    def delete(self, u: int, v: int, ops: OpCounts | None = None) -> bool:
        """Delete ``(u, v)`` and patch all affected counts (mirror of insert)."""
        if not self.overlay.delete_edge(u, v):
            return False
        members = self.common_members(u, v, ops)
        counts = self.counts
        del counts[edge_key(u, v)]
        for w in members.tolist():
            counts[edge_key(u, w)] -= 1
            counts[edge_key(v, w)] -= 1
        return True
