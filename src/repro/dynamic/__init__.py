"""Dynamic-graph subsystem: incremental all-edge count maintenance.

The paper computes the counts as a one-shot batch job, but a serving
deployment mutates the graph (new follows, deleted edges) far faster than
a full recount can run.  Following the locality argument of streaming
triangle counting (Tangwongsan et al., PAPERS.md), inserting or deleting
one edge ``(u, v)`` only perturbs the counts of edges incident to ``u``,
``v`` and their common neighbors — an
``O(d_u + d_v + Σ_{w ∈ N(u)∩N(v)} d_w)`` delta instead of an
``O(|E|·d)`` recount.

* :mod:`repro.dynamic.overlay` — :class:`AdjacencyOverlay`, a mutable
  adjacency view layered over the frozen CSR with threshold-triggered
  compaction.
* :mod:`repro.dynamic.delta` — the incremental kernel applying per-edge
  count deltas through the existing bitmap intersection kernel, with
  :class:`repro.types.OpCounts` accounting.

The user-facing facade is :class:`repro.core.dynamic.DynamicCounter`.
"""

from repro.dynamic.overlay import AdjacencyOverlay
from repro.dynamic.delta import DeltaKernel, UpdateResult

__all__ = ["AdjacencyOverlay", "DeltaKernel", "UpdateResult"]
