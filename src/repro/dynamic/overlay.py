"""Updatable adjacency overlay on top of the frozen CSR.

:class:`repro.graph.csr.CSRGraph` is immutable by design — every kernel
and backend assumes sorted, packed adjacency arrays.  The overlay keeps
that frozen *base* untouched and records mutations as sorted per-vertex
delta lists (insertions and deletions), merging them with the CSR row on
access.  Reads stay ``O(d_u + δ_u)``; writes are ``O(log δ_u)`` bisects.

When the accumulated delta grows past ``compaction_threshold`` times the
base adjacency volume the overlay rebuilds a fresh CSR and resets the
deltas, so merge overhead is amortized and batch backends (which want the
packed arrays) always operate on a recent snapshot.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = ["AdjacencyOverlay", "DEFAULT_COMPACTION_THRESHOLD"]

#: Rebuild the CSR once the delta lists hold more than this fraction of
#: the base's directed entries (25% keeps merge overhead bounded while
#: amortizing the O(|V| + |E|) rebuild over many updates).
DEFAULT_COMPACTION_THRESHOLD = 0.25

#: Below this many directed base entries the threshold is measured against
#: this floor instead, so tiny graphs do not recompact on every update.
_MIN_COMPACTION_ENTRIES = 64


class AdjacencyOverlay:
    """Mutable undirected adjacency: frozen CSR base + sorted delta lists.

    Invariants (maintained by :meth:`insert_edge` / :meth:`delete_edge`):

    * ``_adds[u]`` holds neighbors of ``u`` absent from the base row;
    * ``_dels[u]`` holds neighbors of ``u`` present in the base row;
    * both lists are sorted and mirror-consistent (``v ∈ _adds[u]`` iff
      ``u ∈ _adds[v]``), so the overlay always describes an undirected
      simple graph.
    """

    __slots__ = (
        "base",
        "compaction_threshold",
        "compactions",
        "_adds",
        "_dels",
        "_num_directed",
    )

    def __init__(
        self,
        base: CSRGraph,
        compaction_threshold: float = DEFAULT_COMPACTION_THRESHOLD,
    ):
        if compaction_threshold <= 0:
            raise ValueError("compaction_threshold must be positive")
        self.base = base
        self.compaction_threshold = float(compaction_threshold)
        self.compactions = 0
        self._adds: dict[int, list[int]] = {}
        self._dels: dict[int, list[int]] = {}
        self._num_directed = base.num_directed_edges

    # ------------------------------------------------------------------ #
    # sizes
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices

    @property
    def num_directed_edges(self) -> int:
        return self._num_directed

    @property
    def num_edges(self) -> int:
        return self._num_directed // 2

    @property
    def delta_entries(self) -> int:
        """Total directed entries across all add and delete lists."""
        return sum(len(x) for x in self._adds.values()) + sum(
            len(x) for x in self._dels.values()
        )

    def degree(self, u: int) -> int:
        return (
            self.base.degree(u)
            + len(self._adds.get(u, ()))
            - len(self._dels.get(u, ()))
        )

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted merged neighbor array of ``u`` (base ⊕ deltas)."""
        row = self.base.neighbors(u)
        dels = self._dels.get(u)
        adds = self._adds.get(u)
        if dels is None and adds is None:
            return row
        if dels:
            keep = np.ones(len(row), dtype=bool)
            keep[np.searchsorted(row, np.asarray(dels, dtype=row.dtype))] = False
            row = row[keep]
        if adds:
            merged = np.concatenate([row, np.asarray(adds, dtype=row.dtype)])
            merged.sort(kind="stable")
            return merged
        return row

    def has_edge(self, u: int, v: int) -> bool:
        adds = self._adds.get(u)
        if adds and _in_sorted(adds, v):
            return True
        dels = self._dels.get(u)
        if dels and _in_sorted(dels, v):
            return False
        return self.base.has_edge(u, v)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def _check_pair(self, u: int, v: int) -> None:
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise IndexError(f"vertex ids ({u}, {v}) out of range [0, {n})")
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) not allowed")

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert undirected ``(u, v)``; False if it already exists."""
        self._check_pair(u, v)
        if self.has_edge(u, v):
            return False
        for a, b in ((u, v), (v, u)):
            dels = self._dels.get(a)
            if dels and _in_sorted(dels, b):
                _remove_sorted(dels, b)
                if not dels:
                    del self._dels[a]
            else:
                bisect.insort(self._adds.setdefault(a, []), b)
        self._num_directed += 2
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete undirected ``(u, v)``; False if it does not exist."""
        self._check_pair(u, v)
        if not self.has_edge(u, v):
            return False
        for a, b in ((u, v), (v, u)):
            adds = self._adds.get(a)
            if adds and _in_sorted(adds, b):
                _remove_sorted(adds, b)
                if not adds:
                    del self._adds[a]
            else:
                bisect.insort(self._dels.setdefault(a, []), b)
        self._num_directed -= 2
        return True

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    @property
    def needs_compaction(self) -> bool:
        budget = max(
            self.compaction_threshold * self.base.num_directed_edges,
            self.compaction_threshold * _MIN_COMPACTION_ENTRIES,
        )
        return self.delta_entries > budget

    def to_csr(self, *, validate: bool = False) -> CSRGraph:
        """Materialize the current adjacency as a fresh packed CSR."""
        if not self._adds and not self._dels:
            return self.base
        rows = [self.neighbors(u) for u in range(self.num_vertices)]
        offsets = np.zeros(self.num_vertices + 1, dtype=OFFSET_DTYPE)
        np.cumsum([len(r) for r in rows], out=offsets[1:])
        dst = (
            np.concatenate(rows).astype(VERTEX_DTYPE, copy=False)
            if rows
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        return CSRGraph(offsets, dst, validate=validate)

    def compact(self) -> CSRGraph:
        """Rebuild the base CSR from base ⊕ deltas and reset the deltas."""
        if self._adds or self._dels:
            self.base = self.to_csr()
            self._adds = {}
            self._dels = {}
            self.compactions += 1
        return self.base

    def maybe_compact(self) -> bool:
        """Compact when past the threshold; returns whether it happened."""
        if self.needs_compaction:
            self.compact()
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"AdjacencyOverlay(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"delta={self.delta_entries}, compactions={self.compactions})"
        )


def _in_sorted(lst: list[int], x: int) -> bool:
    i = bisect.bisect_left(lst, x)
    return i < len(lst) and lst[i] == x


def _remove_sorted(lst: list[int], x: int) -> None:
    del lst[bisect.bisect_left(lst, x)]
