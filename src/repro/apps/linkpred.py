"""Link prediction scores built on neighbor-set intersections.

Friend/product suggestion ranks *non-adjacent* pairs by how many (and
which) neighbors they share — the same intersections the paper
accelerates, applied beyond the edge set:

* **common neighbors** — ``|N(u) ∩ N(v)|``;
* **Adamic-Adar** — ``Σ_{w ∈ N(u) ∩ N(v)} 1 / log d_w`` (down-weights
  shared hubs);
* **resource allocation** — ``Σ 1 / d_w``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "common_neighbors_of",
    "common_neighbor_score",
    "adamic_adar_score",
    "resource_allocation_score",
    "predict_links",
]


def common_neighbors_of(graph: CSRGraph, u: int, v: int) -> np.ndarray:
    """The actual shared-neighbor vertex ids (sorted)."""
    return np.intersect1d(
        graph.neighbors(u), graph.neighbors(v), assume_unique=True
    )


def common_neighbor_score(graph: CSRGraph, u: int, v: int) -> float:
    return float(len(common_neighbors_of(graph, u, v)))


def adamic_adar_score(graph: CSRGraph, u: int, v: int) -> float:
    shared = common_neighbors_of(graph, u, v)
    if len(shared) == 0:
        return 0.0
    d = graph.degrees[shared].astype(np.float64)
    d = d[d > 1]  # log(1) = 0 would blow up; degree-1 sharers carry no signal
    if len(d) == 0:
        return 0.0
    return float((1.0 / np.log(d)).sum())


def resource_allocation_score(graph: CSRGraph, u: int, v: int) -> float:
    shared = common_neighbors_of(graph, u, v)
    if len(shared) == 0:
        return 0.0
    d = graph.degrees[shared].astype(np.float64)
    return float((1.0 / np.maximum(d, 1.0)).sum())


_SCORES = {
    "common": common_neighbor_score,
    "adamic-adar": adamic_adar_score,
    "resource-allocation": resource_allocation_score,
}


def predict_links(
    graph: CSRGraph,
    seed: int,
    k: int = 10,
    method: str = "adamic-adar",
    max_candidates: int = 2000,
) -> list[tuple[int, float]]:
    """Top-``k`` non-adjacent two-hop candidates for ``seed``.

    Candidates are vertices reachable in exactly two hops that are not
    already neighbors; ties broken by vertex id for determinism.
    """
    if method not in _SCORES:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(_SCORES)}")
    if not 0 <= seed < graph.num_vertices:
        raise IndexError(f"seed {seed} out of range")
    score = _SCORES[method]

    existing = set(graph.neighbors(seed).tolist())
    candidates: set[int] = set()
    for v in graph.neighbors(seed):
        candidates.update(graph.neighbors(int(v)).tolist())
    candidates.discard(seed)
    candidates -= existing
    ordered = sorted(candidates)[:max_candidates]

    scored = [(c, score(graph, seed, c)) for c in ordered]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:k]
