"""Structural similarity measures derived from common neighbor counts.

SCAN-family algorithms define the structural similarity of an edge
``(u, v)`` over the *closed* neighborhoods ``N[u] = N(u) ∪ {u}``:

``σ(u, v) = |N[u] ∩ N[v]| / sqrt(|N[u]|·|N[v]|)``

For adjacent vertices, ``|N[u] ∩ N[v]| = cnt[(u,v)] + 2`` (the common
neighbors plus the two endpoints themselves) — which is exactly why
all-edge common neighbor counting is the bottleneck those systems share.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import EdgeCounts

__all__ = ["structural_similarity", "jaccard_similarity"]


def structural_similarity(result: EdgeCounts) -> np.ndarray:
    """Cosine structural similarity per edge offset (aligned with dst)."""
    graph = result.graph
    src = graph.edge_sources()
    d = graph.degrees
    du = d[src].astype(np.float64) + 1.0  # closed neighborhoods
    dv = d[graph.dst].astype(np.float64) + 1.0
    shared = result.counts.astype(np.float64) + 2.0
    return shared / np.sqrt(du * dv)


def jaccard_similarity(result: EdgeCounts) -> np.ndarray:
    """Jaccard similarity of closed neighborhoods per edge offset."""
    graph = result.graph
    src = graph.edge_sources()
    d = graph.degrees
    du = d[src].astype(np.float64) + 1.0
    dv = d[graph.dst].astype(np.float64) + 1.0
    shared = result.counts.astype(np.float64) + 2.0
    union = du + dv - shared
    return shared / np.maximum(union, 1.0)
