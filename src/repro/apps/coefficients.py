"""Clustering coefficients derived from all-edge common neighbor counts.

A triangle through vertex ``u`` contributes twice to the sum of ``u``'s
incident edge counts (once per participating edge), so

``triangles(u) = Σ_{v ∈ N(u)} cnt[(u, v)] / 2``

which yields the local clustering coefficient and global transitivity
without any further graph traversal — a standard consumer of the counting
operation the paper accelerates.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import EdgeCounts

__all__ = [
    "triangles_per_vertex",
    "local_clustering_coefficient",
    "average_clustering",
    "transitivity",
]


def triangles_per_vertex(result: EdgeCounts) -> np.ndarray:
    """Number of triangles through each vertex.

    Raises :class:`ValueError` when any per-vertex sum is odd — possible
    only for corrupted (asymmetric) counts.  A bare ``assert`` would
    vanish under ``python -O``.
    """
    sums = result.per_vertex_sum()
    if not np.all(sums % 2 == 0):
        bad = int(np.flatnonzero(sums % 2)[0])
        raise ValueError(
            f"per-vertex count sums must be even (triangles are counted "
            f"twice per vertex); vertex {bad} has odd sum {int(sums[bad])} "
            f"— counts are corrupted or asymmetric"
        )
    return sums // 2


def local_clustering_coefficient(result: EdgeCounts) -> np.ndarray:
    """Watts–Strogatz local coefficient ``2·T(u) / (d_u · (d_u − 1))``.

    Vertices of degree < 2 get coefficient 0 (networkx convention).
    """
    graph = result.graph
    d = graph.degrees.astype(np.float64)
    tri = triangles_per_vertex(result).astype(np.float64)
    denom = d * (d - 1.0)
    coeff = np.zeros(graph.num_vertices, dtype=np.float64)
    mask = denom > 0
    coeff[mask] = 2.0 * tri[mask] / denom[mask]
    return coeff


def average_clustering(result: EdgeCounts) -> float:
    """Mean local clustering coefficient over all vertices."""
    coeff = local_clustering_coefficient(result)
    return float(coeff.mean()) if len(coeff) else 0.0


def transitivity(result: EdgeCounts) -> float:
    """Global transitivity ``3·triangles / open triads``."""
    graph = result.graph
    d = graph.degrees.astype(np.float64)
    triads = float((d * (d - 1.0)).sum()) / 2.0
    if triads == 0:
        return 0.0
    return 3.0 * result.triangle_count() / triads
