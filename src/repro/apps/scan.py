"""SCAN structural graph clustering on top of the counts.

SCAN (Xu et al., KDD'07) and its fast descendants (pSCAN, SCAN-XP,
ppSCAN) cluster a graph by the structural similarity of its edges — the
paper's primary motivating workload.  Implementation:

1. compute σ(u, v) for every edge from the common neighbor counts;
2. an edge is an *ε-edge* when σ ≥ ε;
3. a vertex is a *core* when it has ≥ μ ε-neighbors (including itself);
4. clusters are the connected components of cores linked by ε-edges,
   plus the non-core ε-neighbors of those cores (border vertices);
5. remaining vertices are *hubs* (adjacent to ≥ 2 clusters) or
   *outliers*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.similarity import structural_similarity
from repro.core.result import EdgeCounts

__all__ = ["SCANResult", "scan_clustering", "clique_density_scores"]


@dataclass(frozen=True)
class SCANResult:
    """Clustering output: labels plus role classification.

    ``labels[v]`` is the cluster id of ``v`` (−1 when unclustered);
    ``cores``, ``hubs`` and ``outliers`` are vertex-id arrays.
    """

    labels: np.ndarray
    cores: np.ndarray
    hubs: np.ndarray
    outliers: np.ndarray

    @property
    def num_clusters(self) -> int:
        return int(self.labels.max() + 1) if self.labels.size else 0


def scan_clustering(
    result: EdgeCounts, eps: float = 0.5, mu: int = 3
) -> SCANResult:
    """Run SCAN with parameters ``(ε, μ)`` on a counted graph."""
    if not 0.0 < eps <= 1.0:
        raise ValueError("eps must be in (0, 1]")
    if mu < 2:
        raise ValueError("mu must be >= 2")

    graph = result.graph
    n = graph.num_vertices
    sigma = structural_similarity(result)
    src = graph.edge_sources()
    dst = graph.dst

    eps_edge = sigma >= eps
    # ε-neighborhood size includes the vertex itself.
    eps_degree = np.bincount(src[eps_edge], minlength=n) + 1
    is_core = eps_degree >= mu

    # Union cores along ε-edges between two cores.
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    core_edges = np.flatnonzero(eps_edge & is_core[src] & is_core[dst])
    for eo in core_edges:
        a, b = find(int(src[eo])), find(int(dst[eo]))
        if a != b:
            parent[b] = a

    labels = np.full(n, -1, dtype=np.int64)
    core_ids = np.flatnonzero(is_core)
    roots = {int(find(int(c))) for c in core_ids}
    root_label = {r: i for i, r in enumerate(sorted(roots))}
    for c in core_ids:
        labels[c] = root_label[find(int(c))]

    # Border assignment: non-core ε-neighbors of cores join the cluster.
    border_edges = np.flatnonzero(eps_edge & is_core[src] & ~is_core[dst])
    for eo in border_edges:
        v = int(dst[eo])
        if labels[v] < 0:
            labels[v] = labels[int(src[eo])]

    # Hubs vs outliers among the unclustered.
    unclustered = np.flatnonzero(labels < 0)
    hubs = []
    outliers = []
    for v in unclustered:
        neighbor_labels = {int(l) for l in labels[graph.neighbors(v)] if l >= 0}
        (hubs if len(neighbor_labels) >= 2 else outliers).append(int(v))

    return SCANResult(
        labels=labels,
        cores=core_ids,
        hubs=np.array(hubs, dtype=np.int64),
        outliers=np.array(outliers, dtype=np.int64),
    )


def clique_density_scores(
    graph, result: SCANResult, k: int = 3, backend: str = "auto"
) -> list[dict]:
    """How *dense* each SCAN cluster is, measured by k-clique saturation.

    SCAN's ε/μ thresholds admit clusters of very different internal
    cohesion; the k-clique count of a cluster's induced subgraph,
    normalized by the ``C(size, k)`` cliques a complete cluster would
    hold, separates near-cliques (density → 1) from loose chains
    (density → 0).  Counts run through :meth:`GraphSession.count_motif`
    on the induced subgraph, so they use the same oriented-DAG kernels
    as ``repro count --motif clique-k``.

    Returns one dict per cluster — ``{"cluster", "size", "cliques",
    "density"}`` — sorted by density, densest first.  Clusters smaller
    than ``k`` score density 0 (they cannot hold a single k-clique).
    """
    from math import comb

    from repro.engine.session import GraphSession
    from repro.graph.sample import induced_subgraph

    rows = []
    for cluster in range(result.num_clusters):
        members = np.flatnonzero(result.labels == cluster)
        size = int(len(members))
        if size < k:
            rows.append(
                {"cluster": cluster, "size": size, "cliques": 0, "density": 0.0}
            )
            continue
        sub, _ = induced_subgraph(graph, members)
        with GraphSession(sub) as session:
            cliques = session.count_motif(f"clique-{k}", backend=backend).total
        rows.append(
            {
                "cluster": cluster,
                "size": size,
                "cliques": cliques,
                "density": cliques / comb(size, k),
            }
        )
    rows.sort(key=lambda r: r["density"], reverse=True)
    return rows
