"""Co-purchase recommendation — the paper's introductory use case.

"Online platforms maintain graphs of user co-purchasing relations and
analyze the data on the fly to recommend products of potential interest"
(§1).  Given a product co-purchase graph, the common neighbor count of an
edge measures how many products are co-purchased with *both* endpoints —
a strong signal of relatedness.  Recommendations for a product are its
neighbors ranked by (count-weighted) similarity.
"""

from __future__ import annotations

import numpy as np

from repro.apps.similarity import structural_similarity
from repro.core.result import EdgeCounts

__all__ = ["recommend_products", "co_engagement"]


def recommend_products(
    result: EdgeCounts,
    product: int,
    k: int = 5,
    *,
    by: str = "similarity",
) -> list[tuple[int, float]]:
    """Top-``k`` products related to ``product``.

    ``by`` selects the ranking signal: ``"similarity"`` (cosine structural
    similarity, degree-normalized — avoids recommending mere bestsellers)
    or ``"count"`` (raw common neighbor counts).
    """
    graph = result.graph
    if not 0 <= product < graph.num_vertices:
        raise IndexError(f"product {product} out of range")
    lo, hi = graph.neighbor_range(product)
    if hi == lo:
        return []
    neighbors = graph.dst[lo:hi]
    if by == "similarity":
        scores = structural_similarity(result)[lo:hi]
    elif by == "count":
        scores = result.counts[lo:hi].astype(np.float64)
    else:
        raise ValueError(f"unknown ranking signal {by!r}")
    order = np.argsort(scores, kind="stable")[::-1][:k]
    return [(int(neighbors[i]), float(scores[i])) for i in order]


def co_engagement(
    bipartite, product: int, k: int = 5, *, p: int = 2
) -> list[tuple[int, int]]:
    """Top-``k`` products sharing committed user cohorts with ``product``.

    Works on the user→product :class:`~repro.graph.bipartite.
    BipartiteGraph` directly (products on the right), before any
    co-purchase projection: a candidate product ``r`` is scored by
    :func:`repro.motif.biclique.bicliques_containing_pair` — the number
    of (p, 2)-bicliques whose right side is ``{product, r}``, i.e.
    ``C(shared_users, p)``.  Unlike the raw shared-user count this grows
    combinatorially with cohort size, so products bound to ``product``
    by a large committed cohort dominate ones touched by scattered
    single co-occurrences.

    Candidates are the two-hop products (those sharing ≥ 1 user);
    ties break toward the lower product id.  Returns ``(product_id,
    biclique_count)`` pairs, highest count first.
    """
    from repro.motif.biclique import bicliques_containing_pair

    if not 0 <= product < bipartite.num_right:
        raise IndexError(f"product {product} out of range")
    users = bipartite.right_neighbors(product)
    if len(users) == 0:
        return []
    cands = np.unique(
        np.concatenate([bipartite.left_neighbors(int(u)) for u in users.tolist()])
    )
    cands = cands[cands != product]
    scored = [
        (int(r), bicliques_containing_pair(bipartite, product, int(r), p=p))
        for r in cands.tolist()
    ]
    scored = [(r, c) for r, c in scored if c > 0]
    scored.sort(key=lambda rc: (-rc[1], rc[0]))
    return scored[:k]
