"""Co-purchase recommendation — the paper's introductory use case.

"Online platforms maintain graphs of user co-purchasing relations and
analyze the data on the fly to recommend products of potential interest"
(§1).  Given a product co-purchase graph, the common neighbor count of an
edge measures how many products are co-purchased with *both* endpoints —
a strong signal of relatedness.  Recommendations for a product are its
neighbors ranked by (count-weighted) similarity.
"""

from __future__ import annotations

import numpy as np

from repro.apps.similarity import structural_similarity
from repro.core.result import EdgeCounts

__all__ = ["recommend_products"]


def recommend_products(
    result: EdgeCounts,
    product: int,
    k: int = 5,
    *,
    by: str = "similarity",
) -> list[tuple[int, float]]:
    """Top-``k`` products related to ``product``.

    ``by`` selects the ranking signal: ``"similarity"`` (cosine structural
    similarity, degree-normalized — avoids recommending mere bestsellers)
    or ``"count"`` (raw common neighbor counts).
    """
    graph = result.graph
    if not 0 <= product < graph.num_vertices:
        raise IndexError(f"product {product} out of range")
    lo, hi = graph.neighbor_range(product)
    if hi == lo:
        return []
    neighbors = graph.dst[lo:hi]
    if by == "similarity":
        scores = structural_similarity(result)[lo:hi]
    elif by == "count":
        scores = result.counts[lo:hi].astype(np.float64)
    else:
        raise ValueError(f"unknown ranking signal {by!r}")
    order = np.argsort(scores, kind="stable")[::-1][:k]
    return [(int(neighbors[i]), float(scores[i])) for i in order]
