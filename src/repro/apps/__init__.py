"""Applications built on all-edge common neighbor counts.

These are the downstream consumers the paper motivates: structural
similarity (§1's similarity queries), SCAN structural clustering (the
pSCAN / SCAN-XP family the paper cites), and co-purchase recommendation
(§1's online-shopping example).
"""

from repro.apps.similarity import structural_similarity, jaccard_similarity
from repro.apps.scan import scan_clustering, SCANResult, clique_density_scores
from repro.apps.recommend import recommend_products, co_engagement
from repro.apps.linkpred import (
    adamic_adar_score,
    common_neighbor_score,
    common_neighbors_of,
    predict_links,
    resource_allocation_score,
)
from repro.apps.coefficients import (
    average_clustering,
    local_clustering_coefficient,
    transitivity,
    triangles_per_vertex,
)

__all__ = [
    "structural_similarity",
    "jaccard_similarity",
    "scan_clustering",
    "SCANResult",
    "clique_density_scores",
    "recommend_products",
    "co_engagement",
    "average_clustering",
    "local_clustering_coefficient",
    "transitivity",
    "triangles_per_vertex",
    "adamic_adar_score",
    "common_neighbor_score",
    "common_neighbors_of",
    "predict_links",
    "resource_allocation_score",
]
