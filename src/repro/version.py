"""Version information for the reproduction package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER = (
    "Yulin Che, Zhuohang Lai, Shixuan Sun, Qiong Luo, Yue Wang. "
    "Accelerating All-Edge Common Neighbor Counting on Three Processors. "
    "ICPP 2019."
)
