"""Execute a hybrid plan: one vectorized pass per kernel bucket.

The planner (:mod:`repro.plan.planner`) decides *where* each ``u < v``
edge's count comes from; this module runs the three production kernels
over their buckets and fuses everything through
:func:`repro.kernels.batch.symmetric_assign`:

* **cover** bucket → no kernel at all: zero-class edges keep the zeroed
  count vector, probe-class edges run one batched wedge-closure search
  (:func:`repro.plan.coveredge.probe_cover_counts`)
* **gallop** bucket → :func:`repro.kernels.batchsearch.count_edges_galloping`
* **bitmap** bucket → :func:`repro.kernels.batch.count_edges_bitmap`
* **matmul** bucket → :func:`repro.kernels.batch.count_all_edges_matmul`
  restricted to the planned rows

SpGEMM over a row produces counts for *all* of the row's edge offsets, not
just the planned ones; writing them is harmless because every kernel is
exact — overlapping writes agree bit-for-bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.batch import (
    count_all_edges_matmul,
    count_edges_bitmap,
    symmetric_assign,
)
from repro.kernels.batchsearch import count_edges_galloping
from repro.plan.planner import DEFAULT_SKEW_THRESHOLD, ExecutionPlan, get_plan

__all__ = [
    "HybridReport",
    "execute_plan",
    "count_all_edges_hybrid",
]


@dataclass(frozen=True)
class BucketTiming:
    """Measured wall time of one bucket next to the planner's prediction."""

    name: str
    edges: int
    predicted_ns: float
    measured_seconds: float

    @property
    def measured_ms(self) -> float:
        return self.measured_seconds * 1e3


@dataclass(frozen=True)
class HybridReport:
    """Execution record of one hybrid run (bench/CLI telemetry)."""

    plan: ExecutionPlan
    timings: tuple[BucketTiming, ...]
    fuse_seconds: float
    total_seconds: float

    def format(self) -> str:
        lines = [self.plan.format()]
        for t in self.timings:
            lines.append(
                f"ran    {t.name:7s}: {t.edges:>8d} edges in {t.measured_ms:9.2f} ms"
                f" (predicted {t.predicted_ns / 1e6:9.2f} ms)"
            )
        lines.append(f"symmetric assign : {self.fuse_seconds * 1e3:.2f} ms")
        lines.append(f"total            : {self.total_seconds * 1e3:.2f} ms")
        return "\n".join(lines)


def _bitmap_edge_chunks(plan: ExecutionPlan, num_chunks: int) -> list[np.ndarray]:
    """Split the bitmap bucket into cost-balanced contiguous edge chunks.

    Cuts the cumulative predicted-cost curve of ``plan.bitmap_cost`` into
    ``num_chunks`` equal-work spans — the same work-balanced partitioning
    the parallel backend applies per vertex, here at edge granularity.
    """
    eo = plan.bitmap_edges
    m = len(eo)
    num_chunks = max(1, min(num_chunks, m))
    cost = plan.bitmap_cost
    if cost is None or len(cost) != m:
        bounds = np.linspace(0, m, num_chunks + 1).astype(np.int64)
    else:
        cum = np.concatenate([[0.0], np.cumsum(cost)])
        targets = np.linspace(0.0, cum[-1], num_chunks + 1)
        bounds = np.searchsorted(cum, targets, side="left")
        bounds[0], bounds[-1] = 0, m
        bounds = np.maximum.accumulate(bounds)
    return [
        eo[int(bounds[i]) : int(bounds[i + 1])]
        for i in range(num_chunks)
        if bounds[i] < bounds[i + 1]
    ]


def execute_plan(
    graph: CSRGraph,
    plan: ExecutionPlan,
    pool=None,
    chunks_per_worker: int = 4,
) -> tuple[np.ndarray, HybridReport]:
    """Run every bucket of ``plan`` and mirror to the full count vector.

    With a started :class:`~repro.parallel.threadpool.ParallelCounter` as
    ``pool``, the bitmap bucket — the hybrid plan's dominant work on
    real graphs — is split into ``effective_workers × chunks_per_worker``
    cost-balanced edge chunks and farmed out to the persistent workers;
    the gallop and matmul buckets stay vectorized in-process.  Results
    are bit-identical either way.
    """
    t_start = time.perf_counter()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    timings = []

    bucket_ns = {b.name: b.predicted_ns for b in plan.buckets()}

    # Cover bucket: zero-class edges need no write (cnt starts zeroed);
    # probe-class edges are one batched wedge-closure search each.
    t0 = time.perf_counter()
    if len(plan.cover_probe_edges):
        from repro.plan.coveredge import probe_cover_counts

        cnt[plan.cover_probe_edges] = probe_cover_counts(
            graph, plan.cover_probe_src, plan.cover_probe_target
        )
    timings.append(
        BucketTiming(
            "cover",
            plan.num_cover_edges,
            bucket_ns["cover"],
            time.perf_counter() - t0,
        )
    )

    t0 = time.perf_counter()
    if len(plan.gallop_edges):
        cnt[plan.gallop_edges] = count_edges_galloping(graph, plan.gallop_edges)
    timings.append(
        BucketTiming(
            "gallop",
            len(plan.gallop_edges),
            bucket_ns["gallop"],
            time.perf_counter() - t0,
        )
    )

    t0 = time.perf_counter()
    if len(plan.bitmap_edges):
        if pool is not None and pool.is_parallel:
            num_chunks = pool.effective_workers * max(1, int(chunks_per_worker))
            chunks = _bitmap_edge_chunks(plan, num_chunks)
            for eo, vals in pool.run_edge_chunks(chunks):
                cnt[eo] = vals
        else:
            count_edges_bitmap(graph, plan.bitmap_edges, cnt)
    timings.append(
        BucketTiming(
            "bitmap",
            len(plan.bitmap_edges),
            bucket_ns["bitmap"],
            time.perf_counter() - t0,
        )
    )

    t0 = time.perf_counter()
    if len(plan.matmul_rows):
        mm = count_all_edges_matmul(graph, rows=plan.matmul_rows)
        # The row product covers all of the row's offsets; restricting the
        # write to planned offsets would only discard identical values.
        lo = graph.offsets[plan.matmul_rows]
        hi = graph.offsets[plan.matmul_rows + 1]
        for a, b in zip(lo, hi):
            cnt[a:b] = mm[a:b]
    timings.append(
        BucketTiming(
            "matmul",
            len(plan.matmul_edges),
            bucket_ns["matmul"],
            time.perf_counter() - t0,
        )
    )

    t0 = time.perf_counter()
    symmetric_assign(graph, cnt)
    fuse_seconds = time.perf_counter() - t0

    report = HybridReport(
        plan=plan,
        timings=tuple(timings),
        fuse_seconds=fuse_seconds,
        total_seconds=time.perf_counter() - t_start,
    )
    return cnt, report


def count_all_edges_hybrid(
    graph: CSRGraph,
    skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
    return_report: bool = False,
    cover: bool = True,
):
    """Plan (cached) + execute; the ``backend="hybrid"`` entry point.

    ``cover=False`` disables the cover-edge pre-pass bucket — every edge
    runs on a real intersection kernel (the pre-cover behavior, kept as
    a differential fuzz path and a planner A/B knob).
    """
    plan = get_plan(graph, skew_threshold, cover=cover)
    cnt, report = execute_plan(graph, plan)
    if return_report:
        return cnt, report
    return cnt
