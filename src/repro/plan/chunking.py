"""Work-weighted vertex chunking for the parallel backend.

The shared-memory backend used to cut worker chunks by *adjacency volume*
(equal directed-edge counts per chunk).  That equalizes memory footprint,
not work: a chunk of hub vertices gathers far more than a chunk of leaves
with the same edge count — the KNL imbalance the paper's §5 scaling curves
hinge on.  With a plan attached, the per-vertex predicted cost from the
cost model replaces edge count as the balancing weight: chunk boundaries
fall on the cumulative-cost curve via one ``searchsorted``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_vertex_chunks"]


def weighted_vertex_chunks(
    vertex_cost: np.ndarray, num_chunks: int
) -> tuple[list[tuple[int, int]], np.ndarray]:
    """Split ``[0, n)`` into ``num_chunks`` ranges of ~equal predicted cost.

    ``vertex_cost[i]`` is the predicted work of vertex ``i`` (the plan's
    ``chunk_cost``).  Boundaries are the positions where the cumulative
    cost crosses ``k / num_chunks`` of the total, found with a single
    ``searchsorted`` over the prefix sum — the same trick the equal-volume
    splitter plays on ``graph.offsets``, but on predicted nanoseconds.

    Returns ``(bounds, predicted)``: the non-empty ``(lo, hi)`` vertex
    ranges and the predicted cost of each.
    """
    vertex_cost = np.asarray(vertex_cost, dtype=np.float64)
    n = len(vertex_cost)
    if n == 0 or num_chunks <= 0:
        return [], np.empty(0, dtype=np.float64)
    cum = np.cumsum(vertex_cost)
    total = cum[-1]
    if total <= 0.0:
        # Degenerate plan (no work anywhere): fall back to equal ranges.
        edges = np.linspace(0, n, num_chunks + 1).astype(np.int64)
    else:
        targets = np.linspace(0.0, total, num_chunks + 1)[1:-1]
        cuts = np.searchsorted(cum, targets, side="left") + 1
        edges = np.concatenate(([0], cuts, [n]))
        edges = np.minimum(edges, n)
        edges = np.maximum.accumulate(edges)
    bounds = []
    predicted = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        if hi > lo:
            bounds.append((int(lo), int(hi)))
            predicted.append(float(vertex_cost[lo:hi].sum()))
    return bounds, np.asarray(predicted, dtype=np.float64)
