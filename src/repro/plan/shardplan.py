"""Shard planning: cut the vertex space into K cost-balanced segments.

The single-export backend ships the whole CSR to every worker; its
scaling ceiling is the size of that one export.  Following the 2D
edge-space decomposition of Tom & Karypis (distributed triangle
counting), a :class:`ShardPlan` instead assigns each shard a contiguous
*source-vertex range* cut on the planner's cumulative predicted-cost
curve (the same curve :func:`~repro.plan.chunking.weighted_vertex_chunks`
balances worker chunks on), plus the *boundary columns* — adjacency
lists of out-of-range destination vertices — that make every ``u < v``
edge with an owned source locally resolvable.  Owning both endpoint
lists is what lets a shard worker run the unmodified counting kernels
on its local segment and still produce bit-exact global results.

Picking K is a memory/replication trade-off: more shards bound each
worker's attached bytes tighter, but boundary columns (and the full
offsets array, replicated per shard so vertex ids stay global) are
copied once per shard that needs them.  ``plan_shards`` resolves a byte
budget to the smallest feasible K, then lets
:func:`~repro.parallel.scheduler.simulate_sharded` — which charges that
replication volume as serial export-copy time — arbitrate between the
nearby candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.scheduler import Schedule, simulate_sharded
from repro.plan.chunking import weighted_vertex_chunks

__all__ = ["ShardSpec", "ShardPlan", "plan_shards", "shard_boundary"]

#: Hard ceiling on K during budget-driven search; beyond this the
#: replicated offsets arrays dominate and more shards stop helping.
MAX_SHARDS = 64

#: How many feasible K candidates the simulator arbitrates between.
_K_CANDIDATES = 3


def shard_boundary(graph: CSRGraph, lo: int, hi: int) -> np.ndarray:
    """Destination vertices outside ``[lo, hi)`` whose adjacency lists the
    shard must replicate.

    Only ``u < v`` edges are counted by a shard (mirrors come from
    ``symmetric_assign`` in the parent), so the boundary is exactly the
    set of destinations ``v >= hi`` reachable from an owned source ``u``
    with ``u < v``; destinations inside the range are owned rows already.
    """
    offsets = graph.offsets
    span_lo, span_hi = int(offsets[lo]), int(offsets[hi])
    d = graph.dst[span_lo:span_hi].astype(np.int64, copy=False)
    src = np.repeat(
        np.arange(lo, hi, dtype=np.int64), graph.degrees[lo:hi]
    )
    out = np.unique(d[d > src])
    return out[(out < lo) | (out >= hi)]


@dataclass(frozen=True)
class ShardSpec:
    """One shard: an owned source range plus replicated boundary columns."""

    index: int
    lo: int
    hi: int
    boundary: np.ndarray = field(compare=False)
    owned_bytes: int
    boundary_bytes: int
    offsets_bytes: int
    predicted_cost: float

    @property
    def num_owned(self) -> int:
        return self.hi - self.lo

    @property
    def total_bytes(self) -> int:
        """Shared-memory footprint of this shard's segment."""
        return self.owned_bytes + self.boundary_bytes + self.offsets_bytes


@dataclass(frozen=True)
class ShardPlan:
    """A complete K-way sharding of one graph."""

    shards: tuple[ShardSpec, ...]
    chunk_cost: np.ndarray = field(compare=False)
    graph_bytes: int
    budget_bytes: int | None = None
    fits_budget: bool = True

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_bytes(self) -> int:
        return sum(s.total_bytes for s in self.shards)

    @property
    def max_shard_bytes(self) -> int:
        if not self.shards:
            return 0
        return max(s.total_bytes for s in self.shards)

    @property
    def replication_bytes(self) -> int:
        """Bytes copied *beyond* one plain export: boundary columns plus
        the offsets arrays replicated into every shard after the first."""
        extra_offsets = sum(s.offsets_bytes for s in self.shards[1:])
        return sum(s.boundary_bytes for s in self.shards) + extra_offsets

    @property
    def replication_factor(self) -> float:
        """``total shard bytes / single-export bytes`` (>= 1 for K >= 1)."""
        if self.graph_bytes <= 0:
            return 1.0
        return self.total_bytes / self.graph_bytes

    def shard_for_vertex(self, u: int) -> ShardSpec:
        for s in self.shards:
            if s.lo <= u < s.hi:
                return s
        raise IndexError(f"vertex {u} not covered by any shard")

    def simulate(
        self,
        workers_per_shard: int = 1,
        copy_ns_per_byte: float = 0.25,
        chunks_per_shard: int = 1,
    ) -> Schedule:
        """Model this plan's makespan including replication copy cost."""
        costs = []
        for s in self.shards:
            if chunks_per_shard > 1:
                _, pred = weighted_vertex_chunks(
                    self.chunk_cost[s.lo : s.hi], chunks_per_shard
                )
                costs.append(pred)
            else:
                costs.append(s.predicted_cost)
        return simulate_sharded(
            costs,
            [s.total_bytes for s in self.shards],
            workers_per_shard=workers_per_shard,
            copy_ns_per_byte=copy_ns_per_byte,
        )


def _resolve_cost(graph: CSRGraph, plan) -> np.ndarray:
    if isinstance(plan, np.ndarray):
        return np.asarray(plan, dtype=np.float64)
    if plan is None:
        # Volume-based fallback: adjacency bytes as the balance weight.
        return graph.degrees.astype(np.float64)
    if plan == "auto":
        from repro.plan.planner import get_plan

        plan = get_plan(graph)
    return np.asarray(plan.chunk_cost, dtype=np.float64)


def _layout(
    graph: CSRGraph, cost: np.ndarray, num_shards: int
) -> tuple[ShardSpec, ...]:
    offsets = graph.offsets
    degrees = graph.degrees
    offsets_bytes = int(offsets.nbytes)
    itemsize = graph.dst.dtype.itemsize
    bounds, predicted = weighted_vertex_chunks(cost, num_shards)
    shards = []
    for i, ((lo, hi), pred) in enumerate(zip(bounds, predicted)):
        boundary = shard_boundary(graph, lo, hi)
        shards.append(
            ShardSpec(
                index=i,
                lo=lo,
                hi=hi,
                boundary=boundary,
                owned_bytes=int(offsets[hi] - offsets[lo]) * itemsize,
                boundary_bytes=int(degrees[boundary].sum()) * itemsize,
                offsets_bytes=offsets_bytes,
                predicted_cost=float(pred),
            )
        )
    return tuple(shards)


def plan_shards(
    graph: CSRGraph,
    num_shards: int | None = None,
    budget_bytes: int | None = None,
    plan="auto",
    max_shards: int = MAX_SHARDS,
) -> ShardPlan:
    """Build a :class:`ShardPlan` for ``graph``.

    Exactly one of ``num_shards`` / ``budget_bytes`` drives K:

    - ``num_shards`` given: cut that many cost-balanced ranges directly.
    - ``budget_bytes`` given: find the smallest K whose largest shard
      fits the budget, then pick — among that K and the next few — the
      one :func:`simulate_sharded` scores fastest once replication copy
      volume is charged.  If even ``max_shards`` cannot fit (the
      replicated offsets array alone is a per-shard floor),
      ``fits_budget`` is ``False`` on the returned plan and the caller
      decides whether to proceed degraded or fail.
    - neither: K = 1 (a sharded run degenerating to one segment).

    ``plan`` selects the balance weight: ``"auto"`` prices vertices with
    the cost-model planner, ``None`` falls back to adjacency volume, or
    pass an :class:`~repro.plan.planner.ExecutionPlan` / per-vertex cost
    array directly.
    """
    cost = _resolve_cost(graph, plan)
    if len(cost) != graph.num_vertices:
        raise ValueError(
            f"cost vector length {len(cost)} != num_vertices "
            f"{graph.num_vertices}"
        )
    graph_bytes = graph.memory_bytes()

    if num_shards is not None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        shards = _layout(graph, cost, num_shards)
        fits = (
            budget_bytes is None
            or max((s.total_bytes for s in shards), default=0) <= budget_bytes
        )
        return ShardPlan(shards, cost, graph_bytes, budget_bytes, fits)

    if budget_bytes is None:
        shards = _layout(graph, cost, 1)
        return ShardPlan(shards, cost, graph_bytes, None, True)

    # Budget-driven: smallest feasible K, then simulator arbitration.
    feasible_k = None
    layouts: dict[int, tuple[ShardSpec, ...]] = {}
    for k in range(1, max_shards + 1):
        shards = _layout(graph, cost, k)
        layouts[k] = shards
        if max((s.total_bytes for s in shards), default=0) <= budget_bytes:
            feasible_k = k
            break
    if feasible_k is None:
        return ShardPlan(
            layouts[max_shards], cost, graph_bytes, budget_bytes, False
        )
    best_k, best_makespan = feasible_k, None
    for k in range(feasible_k, min(feasible_k + _K_CANDIDATES, max_shards) + 1):
        shards = layouts.get(k) or _layout(graph, cost, k)
        layouts[k] = shards
        if max((s.total_bytes for s in shards), default=0) > budget_bytes:
            continue  # cost curve cuts are not monotone in shard size
        candidate = ShardPlan(shards, cost, graph_bytes, budget_bytes, True)
        makespan = candidate.simulate().makespan
        if best_makespan is None or makespan < best_makespan:
            best_k, best_makespan = k, makespan
    return ShardPlan(layouts[best_k], cost, graph_bytes, budget_bytes, True)
