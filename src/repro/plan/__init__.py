"""Cost-model-driven hybrid execution planning.

Connects the simulator-grade cost model (:mod:`repro.kernels.costmodel`)
to the production hot path: price every ``u < v`` edge, partition into
kernel buckets (batched galloping / degree-bucketed bitmap / blocked
SpGEMM), execute each bucket vectorized, and reuse the same per-edge cost
vector for work-weighted parallel chunk boundaries.
"""

from repro.plan.chunking import weighted_vertex_chunks
from repro.plan.coveredge import (
    CoverClassification,
    classify_cover_edges,
    probe_cover_counts,
)
from repro.plan.executor import (
    HybridReport,
    count_all_edges_hybrid,
    execute_plan,
)
from repro.plan.planner import (
    DEFAULT_SKEW_THRESHOLD,
    BucketInfo,
    ExecutionPlan,
    PlanCacheStats,
    build_plan,
    clear_plan_cache,
    get_plan,
    plan_cache_stats,
)
from repro.plan.shardplan import ShardPlan, ShardSpec, plan_shards, shard_boundary

__all__ = [
    "DEFAULT_SKEW_THRESHOLD",
    "BucketInfo",
    "CoverClassification",
    "ExecutionPlan",
    "HybridReport",
    "PlanCacheStats",
    "build_plan",
    "classify_cover_edges",
    "clear_plan_cache",
    "count_all_edges_hybrid",
    "execute_plan",
    "get_plan",
    "plan_cache_stats",
    "plan_shards",
    "probe_cover_counts",
    "ShardPlan",
    "ShardSpec",
    "shard_boundary",
    "weighted_vertex_chunks",
]
