"""Cost-model-driven execution planning (plan once, execute vectorized).

The paper's central idea is *adaptive* kernel selection: MPS flips between
a vectorized merge and pivot-skip per edge by degree skew, and its scaling
rests on work-balanced (not edge-balanced) partitioning.  This module
applies the same idea to the production NumPy/SciPy paths: price every
``u < v`` edge with the closed-form estimators of
:mod:`repro.kernels.costmodel`, partition the edges into three kernel
buckets, and remember the decision.

Bucketing rule
--------------
* **gallop** — degree-skewed pairs (``d_large/d_small > skew_threshold``)
  whose pivot-skip estimate undercuts both alternatives run on the batched
  lower-bound kernel (:mod:`repro.kernels.batchsearch`):
  ``O(d_small · log d_large)`` per edge.
* **bitmap / matmul** — the remaining edges are assigned per *source
  vertex* (both kernels amortize per-row work): a row goes to blocked
  SpGEMM only when its full product cost ``Σ_{w∈N(u)} d_w`` beats the
  bitmap gather total of its surviving edges, otherwise to the
  degree-bucketed BMP kernel.  SpGEMM row cost is all-or-nothing — the
  product of a row computes every column — which is exactly why the
  decision cannot be per-edge.

Plans are cached keyed by the same SHA-256 CSR fingerprint that
:meth:`repro.core.result.EdgeCounts.save` embeds, so repeated counts on an
identical graph skip pricing and partitioning entirely; a graph whose CSR
content changed fingerprints differently and misses the cache.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.costmodel import (
    bmp_work,
    cover_work,
    matmul_work,
    pivot_skip_work,
    upper_edges,
)
from repro.types import WorkVector

__all__ = [
    "ExecutionPlan",
    "BucketInfo",
    "build_plan",
    "get_plan",
    "plan_cache_stats",
    "clear_plan_cache",
    "PlanCacheStats",
    "DEFAULT_SKEW_THRESHOLD",
]

#: Skew ratio above which an edge becomes a pivot-skip candidate — the
#: paper's MPS threshold (§3.1, T=50).
DEFAULT_SKEW_THRESHOLD = 50.0

#: Collapse weights turning a :class:`WorkVector` into one relative cost
#: per edge.  Branch cost is folded into the scalar weight: the batched
#: kernels execute branch-free NumPy passes.
COST_WEIGHTS = {
    "scalar_ops": 1.0,
    "vector_ops": 1.0,
    "branch_ops": 0.0,
    "rand_words": 1.5,
    "seq_words": 0.8,
    "bitmap_words": 0.0,  # subset of rand_words; charging both double-counts
}

#: Nanoseconds per collapsed cost unit for each production kernel,
#: calibrated against wall-clock runs of the three paths on the bundled
#: dataset stand-ins (``benchmarks/bench_counting_backends.py --quick``
#: reports predicted-vs-measured so drift is visible).  The planner only
#: needs these to be relatively right within ~2×.
KERNEL_NS_PER_UNIT = {
    "gallop": 3.8,
    "bitmap": 4.0,
    "matmul": 16.0,
    # The cover pre-pass is whole-array gathers + one batched search —
    # same memory physics as the bitmap gather path.
    "cover": 4.0,
}

#: Fixed per-edge dispatch overhead (ns) added to the batched NumPy
#: kernels; biases toss-ups toward the single-dispatch SpGEMM path.
BATCH_EDGE_OVERHEAD_NS = 15.0

#: Fixed cost (ns) of routing one row through the scattered-row SpGEMM
#: path: CSR fancy-index extraction plus the edge-id alignment matrices
#: are paid per row regardless of its flop count, so thin rows measure an
#: order of magnitude above the per-flop rate.  Keeps the matmul bucket
#: reserved for rows whose product is genuinely heavy.
MATMUL_ROW_OVERHEAD_NS = 50_000.0


def _collapse(w: WorkVector) -> np.ndarray:
    """Weighted sum of the work fields: one relative cost per edge."""
    out = np.zeros(w.n, dtype=np.float64)
    for name, weight in COST_WEIGHTS.items():
        if weight:
            out += weight * w[name]
    return out


@dataclass(frozen=True)
class BucketInfo:
    """Planned size and predicted work of one kernel bucket."""

    name: str
    edges: int
    predicted_ns: float

    @property
    def predicted_ms(self) -> float:
        return self.predicted_ns / 1e6


@dataclass
class ExecutionPlan:
    """The partition of a graph's ``u < v`` edges into kernel buckets.

    ``edge_cost`` is the chosen-kernel predicted cost (ns) per upper edge
    in CSR order; ``chunk_cost`` aggregates the *bitmap-structure* cost per
    source vertex — the parallel backend executes the BMP kernel whatever
    the hybrid buckets say, so its chunk boundaries weight by that.
    """

    fingerprint: str
    skew_threshold: float
    num_upper_edges: int
    gallop_edges: np.ndarray
    bitmap_edges: np.ndarray
    matmul_edges: np.ndarray
    matmul_rows: np.ndarray
    edge_cost: np.ndarray
    chunk_cost: np.ndarray
    planning_seconds: float
    from_cache: bool = False
    #: Predicted cost (ns) per bitmap-bucket edge, aligned with
    #: ``bitmap_edges`` — the executor's weighted parallel chunking key.
    bitmap_cost: np.ndarray | None = None
    #: Cover pre-pass bucket (:mod:`repro.plan.coveredge`): edges whose
    #: counts are provably zero, plus wedge-closure edges answered by one
    #: batched lower-bound probe of ``probe_target`` in ``N(probe_src)``.
    cover_zero_edges: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    cover_probe_edges: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    cover_probe_src: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    cover_probe_target: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def num_cover_edges(self) -> int:
        return len(self.cover_zero_edges) + len(self.cover_probe_edges)

    def buckets(self) -> list[BucketInfo]:
        return [
            BucketInfo("cover", self.num_cover_edges, self._bucket_ns("cover")),
            BucketInfo("gallop", len(self.gallop_edges), self._bucket_ns("gallop")),
            BucketInfo("bitmap", len(self.bitmap_edges), self._bucket_ns("bitmap")),
            BucketInfo("matmul", len(self.matmul_edges), self._bucket_ns("matmul")),
        ]

    def _bucket_ns(self, name: str) -> float:
        return float(self._bucket_cost.get(name, 0.0))

    _bucket_cost: dict = field(default_factory=dict)

    @property
    def predicted_total_ns(self) -> float:
        return float(sum(self._bucket_cost.values()))

    def format(self) -> str:
        """Human-readable plan summary (the CLI's ``repro plan`` output)."""
        total = max(self.num_upper_edges, 1)
        lines = [
            f"edges (u < v)    : {self.num_upper_edges}",
            f"skew threshold   : {self.skew_threshold:g}",
            f"planning time    : {self.planning_seconds * 1e3:.2f} ms"
            + (" (cached)" if self.from_cache else ""),
            f"predicted total  : {self.predicted_total_ns / 1e6:.2f} ms",
        ]
        for b in self.buckets():
            share = 100.0 * b.edges / total
            lines.append(
                f"bucket {b.name:7s}: {b.edges:>8d} edges ({share:5.1f}%), "
                f"predicted {b.predicted_ms:9.2f} ms"
            )
        if len(self.matmul_rows):
            lines.append(f"matmul rows      : {len(self.matmul_rows)}")
        if self.num_cover_edges:
            lines.append(
                f"cover split      : {len(self.cover_zero_edges)} provably "
                f"zero, {len(self.cover_probe_edges)} wedge probes"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanCacheStats:
    """Planner telemetry: how often pricing/partitioning was skipped."""

    hits: int
    misses: int
    evictions: int
    size: int


_PLAN_CACHE: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
_PLAN_CACHE_CAPACITY = 8
_hits = 0
_misses = 0
_evictions = 0


def plan_cache_stats() -> PlanCacheStats:
    return PlanCacheStats(_hits, _misses, _evictions, len(_PLAN_CACHE))


def clear_plan_cache() -> None:
    global _hits, _misses, _evictions
    _PLAN_CACHE.clear()
    _hits = _misses = _evictions = 0


def build_plan(
    graph: CSRGraph,
    skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
    fingerprint: str | None = None,
    cover: bool = True,
) -> ExecutionPlan:
    """Price and partition all ``u < v`` edges (no cache interaction).

    With ``cover=True`` (the default, so ``plan="auto"`` exploits it
    automatically) the cover-edge pre-pass
    (:mod:`repro.plan.coveredge`) runs first: edges whose counts are
    provably zero or derivable from one wedge-closure probe go to the
    ``cover`` bucket whenever the priced skip undercuts every real
    kernel, and only the remainder is partitioned across
    gallop/bitmap/matmul.
    """
    from repro.core.result import graph_fingerprint
    from repro.plan.coveredge import classify_cover_edges

    t0 = time.perf_counter()
    if fingerprint is None:
        fingerprint = graph_fingerprint(graph)
    es = upper_edges(graph)
    m = len(es)
    n = graph.num_vertices
    empty = np.empty(0, dtype=np.int64)
    if m == 0:
        return ExecutionPlan(
            fingerprint=fingerprint,
            skew_threshold=skew_threshold,
            num_upper_edges=0,
            gallop_edges=empty,
            bitmap_edges=empty,
            matmul_edges=empty,
            matmul_rows=empty,
            edge_cost=np.empty(0, dtype=np.float64),
            chunk_cost=np.zeros(n, dtype=np.float64),
            planning_seconds=time.perf_counter() - t0,
        )

    c_gallop = (
        KERNEL_NS_PER_UNIT["gallop"] * _collapse(pivot_skip_work(es))
        + BATCH_EDGE_OVERHEAD_NS
    )
    c_bitmap = (
        KERNEL_NS_PER_UNIT["bitmap"]
        * _collapse(bmp_work(es, assume_reordered=False))
        + BATCH_EDGE_OVERHEAD_NS
    )
    c_matmul = KERNEL_NS_PER_UNIT["matmul"] * _collapse(matmul_work(es))

    covered = np.zeros(m, dtype=bool)
    c_cover = np.zeros(m, dtype=np.float64)
    cover_zero = cover_probe = covered
    probe_src = probe_target = empty
    if cover:
        cls = classify_cover_edges(graph, es)
        c_cover = KERNEL_NS_PER_UNIT["cover"] * _collapse(
            cover_work(es, cls.zero_mask, cls.probe_mask)
        )
        covered = cls.covered_mask & (
            c_cover < np.minimum(c_gallop, np.minimum(c_bitmap, c_matmul))
        )
        cover_zero = cls.zero_mask & covered
        cover_probe = cls.probe_mask & covered
        keep = covered[np.flatnonzero(cls.probe_mask)]
        probe_src = cls.probe_src[keep]
        probe_target = cls.probe_target[keep]

    gallop = (
        ~covered
        & (es.skew_ratio > skew_threshold)
        & (c_gallop < np.minimum(c_bitmap, c_matmul))
    )
    rest = ~gallop & ~covered

    # Row-granularity bitmap-vs-matmul choice over the surviving edges:
    # SpGEMM computes a row completely or not at all, so compare the full
    # product cost of each row against the bitmap gather of its remainder.
    deg = graph.degrees.astype(np.float64)
    row_flops = np.bincount(
        graph.edge_sources(), weights=deg[graph.dst], minlength=n
    )
    mm_unit = COST_WEIGHTS["scalar_ops"] + COST_WEIGHTS["seq_words"]
    row_matmul_ns = (
        KERNEL_NS_PER_UNIT["matmul"] * mm_unit * row_flops
        + MATMUL_ROW_OVERHEAD_NS
    )
    src_rest = es.u[rest]
    bitmap_ns_per_row = np.bincount(src_rest, weights=c_bitmap[rest], minlength=n)
    has_rest = np.bincount(src_rest, minlength=n) > 0
    matmul_row = has_rest & (row_matmul_ns < bitmap_ns_per_row)

    matmul = rest & matmul_row[es.u]
    bitmap = rest & ~matmul

    edge_cost = np.where(
        covered,
        c_cover,
        np.where(gallop, c_gallop, np.where(bitmap, c_bitmap, c_matmul)),
    )
    chunk_cost = np.bincount(es.u, weights=c_bitmap, minlength=n)

    plan = ExecutionPlan(
        fingerprint=fingerprint,
        skew_threshold=skew_threshold,
        num_upper_edges=m,
        gallop_edges=es.edge_offsets[gallop],
        bitmap_edges=es.edge_offsets[bitmap],
        matmul_edges=es.edge_offsets[matmul],
        matmul_rows=np.flatnonzero(matmul_row).astype(np.int64),
        edge_cost=edge_cost,
        chunk_cost=chunk_cost,
        planning_seconds=time.perf_counter() - t0,
        bitmap_cost=c_bitmap[bitmap],
        cover_zero_edges=es.edge_offsets[cover_zero],
        cover_probe_edges=es.edge_offsets[cover_probe],
        cover_probe_src=probe_src,
        cover_probe_target=probe_target,
    )
    plan._bucket_cost.update(
        cover=float(edge_cost[covered].sum()),
        gallop=float(edge_cost[gallop].sum()),
        bitmap=float(edge_cost[bitmap].sum()),
        matmul=float(edge_cost[matmul].sum()),
    )
    return plan


def get_plan(
    graph: CSRGraph,
    skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
    *,
    fingerprint: str | None = None,
    cover: bool = True,
) -> ExecutionPlan:
    """Cached :func:`build_plan`, keyed by the CSR SHA-256 fingerprint.

    A cache hit returns the stored plan with ``from_cache=True`` — the
    pricing and partitioning passes are skipped entirely.  Any change to
    the CSR arrays changes the fingerprint, so a stale plan can never be
    applied to a mutated graph.  Callers that already hold the graph's
    fingerprint (a warm :class:`~repro.engine.session.GraphSession`) pass
    it to skip even the hash.
    """
    from repro.core.result import graph_fingerprint

    global _hits, _misses, _evictions
    if fingerprint is None:
        fingerprint = graph_fingerprint(graph)
    key = (fingerprint, float(skew_threshold), bool(cover))
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        _hits += 1
        _PLAN_CACHE.move_to_end(key)
        cached.from_cache = True
        return cached
    _misses += 1
    plan = build_plan(graph, skew_threshold, fingerprint=key[0], cover=cover)
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_CAPACITY:
        _PLAN_CACHE.popitem(last=False)
        _evictions += 1
    return plan
