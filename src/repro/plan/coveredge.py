"""Cover-edge pre-pass: edges whose counts need no intersection at all.

Bader et al. ("Cover Edge-Based Novel Triangle Counting", PAPERS.md)
observe that a large share of a real graph's edges never participate in
a triangle, and that many of the rest close a *wedge* whose existence is
decidable with a single adjacency probe.  This module applies the same
idea to all-edge common neighbor counting: classify, with a few
vectorized passes over the CSR arrays, the ``u < v`` edges whose exact
count is **derivable without running any intersection kernel**, so the
hybrid planner can bucket them out of the gallop/bitmap/matmul work
entirely.

Two provably exact classes are recognized:

**zero** (``|N(u) ∩ N(v)| = 0`` by construction)
    * a degree-1 endpoint: its only neighbor is the other endpoint of
      the edge, which is never a *common* neighbor (no self loops);
    * disjoint trimmed ranges: the exact ``[min, max]`` spans of
      ``N(u)\\{v}`` and ``N(v)\\{u}`` do not overlap — both adjacency
      lists are sorted, so min/max after excluding the endpoint are two
      gathers each, and disjoint spans mean an empty intersection.

**probe** (``d_small = 2``: the count is one wedge-closure test)
    The smaller endpoint's neighbors are exactly ``{large, w}``, so
    ``N(small)\\{large} = {w}`` and the count is 1 iff the wedge
    ``large – small – w`` closes, i.e. the edge ``(large, w)`` exists.
    One batched lower-bound search of ``w`` in ``N(large)`` answers a
    whole bucket of such edges per NumPy dispatch — and runs on the
    compiled lower-bound kernel (:mod:`repro.compiled`) when a provider
    is available.

Classification costs a handful of whole-array gathers; the planner
prices the skip with :func:`repro.kernels.costmodel.cover_work` and
assigns an edge to the cover bucket only when that beats every real
kernel (in practice: always, which is the point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.costmodel import EdgeSet

__all__ = [
    "CoverClassification",
    "classify_cover_edges",
    "probe_cover_counts",
]


@dataclass(frozen=True)
class CoverClassification:
    """The cover-eligible subset of an :class:`EdgeSet`.

    ``zero_mask``/``probe_mask`` align with the edge set; the ``probe_*``
    arrays are compacted to the probe edges only, in edge-set order.
    """

    zero_mask: np.ndarray
    probe_mask: np.ndarray
    probe_src: np.ndarray  # larger endpoint of each probe edge
    probe_target: np.ndarray  # the wedge's third vertex w

    @property
    def covered_mask(self) -> np.ndarray:
        return self.zero_mask | self.probe_mask

    @property
    def num_covered(self) -> int:
        return int(np.count_nonzero(self.zero_mask)) + len(self.probe_src)


def classify_cover_edges(graph: CSRGraph, es: EdgeSet) -> CoverClassification:
    """Vectorized exact classification of the cover-eligible edges."""
    m = len(es)
    empty = np.empty(0, dtype=np.int64)
    if m == 0:
        mask = np.zeros(0, dtype=bool)
        return CoverClassification(mask, mask.copy(), empty, empty)

    offsets = graph.offsets
    dst = graph.dst
    d_small = es.d_small

    # Class zero, part 1: a degree-1 endpoint's only neighbor is the
    # other endpoint, never a common neighbor.
    zero = d_small <= 1.0

    # Class zero, part 2: exact [min, max] spans of N(u)\{v} and N(v)\{u}
    # for edges where both trimmed lists are nonempty.  Lists are sorted,
    # so excluding the endpoint moves the extreme inward by one slot at
    # most; two gathers per side recover the exact trimmed min/max.
    eligible = (es.du >= 2.0) & (es.dv >= 2.0)
    min_u, max_u = _trimmed_span(offsets, dst, es.u, es.v)
    min_v, max_v = _trimmed_span(offsets, dst, es.v, es.u)
    zero |= eligible & ((max_u < min_v) | (max_v < min_u))

    # Class probe: d_small == 2 leaves exactly one candidate common
    # neighbor w; the count is [edge (large, w) exists].
    probe = (d_small == 2.0) & ~zero
    idx = np.flatnonzero(probe)
    if len(idx):
        swap = es.dv[idx] < es.du[idx]
        small = np.where(swap, es.v[idx], es.u[idx])
        large = np.where(swap, es.u[idx], es.v[idx])
        first = dst[offsets[small]].astype(np.int64)
        second = dst[offsets[small] + 1].astype(np.int64)
        w = np.where(first == large, second, first)
        return CoverClassification(zero, probe, large, w)
    return CoverClassification(zero, probe, empty, empty)


def _trimmed_span(offsets, dst, a, b):
    """Exact min/max of ``N(a)\\{b}`` per edge (valid where ``d_a >= 2``)."""
    lo = offsets[a]
    hi = offsets[a + 1]
    first = dst[lo].astype(np.int64)
    last = dst[hi - 1].astype(np.int64)
    second = dst[np.minimum(lo + 1, hi - 1)].astype(np.int64)
    second_last = dst[np.maximum(hi - 2, lo)].astype(np.int64)
    mn = np.where(first == b, second, first)
    mx = np.where(last == b, second_last, last)
    return mn, mx


def probe_cover_counts(
    graph: CSRGraph, probe_src: np.ndarray, probe_target: np.ndarray
) -> np.ndarray:
    """0/1 counts for the probe-class edges: does ``(src, target)`` exist?

    One independent lower-bound search of each target in its source's
    adjacency segment — through the compiled provider when one is
    available, otherwise the lockstep NumPy search.
    """
    out = np.zeros(len(probe_src), dtype=np.int64)
    if len(probe_src) == 0:
        return out
    from repro import compiled

    offsets = graph.offsets
    dst = graph.dst
    lo = offsets[probe_src]
    hi = offsets[probe_src + 1]
    if compiled.available():
        tgt = probe_target.astype(np.int32, copy=False)
        pos = compiled.batched_lower_bound_compiled(dst, lo, hi, tgt)
    else:
        from repro.kernels.batchsearch import batched_lower_bound

        pos = batched_lower_bound(dst, lo, hi, probe_target)
    found = pos < hi
    found &= dst[np.minimum(pos, len(dst) - 1)] == probe_target
    out[found] = 1
    return out
