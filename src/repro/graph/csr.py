"""Compressed Sparse Row (CSR) undirected graph storage.

The paper (§2.1) stores the graph as an *offset* array ``off`` and a
*neighbor* array ``dst``: the neighbors of vertex ``u`` occupy
``dst[off[u] : off[u+1]]`` and are sorted ascending.  Both directions of
every undirected edge are stored, so ``len(dst) == 2·|E_undirected|`` and an
*edge offset* ``e(u, v)`` — the position of ``v`` inside ``u``'s adjacency
list — identifies one direction of one edge.  The all-edge common neighbor
counts are stored in an array aligned with ``dst``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EdgeNotFoundError, GraphFormatError

__all__ = ["CSRGraph"]

OFFSET_DTYPE = np.int64
VERTEX_DTYPE = np.int32


class CSRGraph:
    """Immutable undirected graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``offsets[0] == 0``, ``offsets[-1] == len(dst)``.
    dst:
        ``int32`` array of neighbor vertex ids; each adjacency list is
        strictly ascending (sorted, no duplicates).
    validate:
        When true (default), structural invariants are checked eagerly.
    """

    __slots__ = ("offsets", "dst", "_degrees")

    def __init__(self, offsets: np.ndarray, dst: np.ndarray, *, validate: bool = True):
        self.offsets = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        self.dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        self._degrees: np.ndarray | None = None
        if validate:
            from repro.graph.validate import validate_csr

            validate_csr(self)

    # ------------------------------------------------------------------ #
    # basic size accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries, ``2·|E|``."""
        return len(self.dst)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self.dst) // 2

    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            self._degrees = np.diff(self.offsets)
        return self._degrees

    def degree(self, u: int) -> int:
        return int(self.offsets[u + 1] - self.offsets[u])

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max(initial=0))

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_directed_edges / self.num_vertices

    # ------------------------------------------------------------------ #
    # adjacency access
    # ------------------------------------------------------------------ #
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of ``u`` (a view, do not mutate)."""
        return self.dst[self.offsets[u] : self.offsets[u + 1]]

    def neighbor_range(self, u: int) -> tuple[int, int]:
        """Half-open offset range ``[off[u], off[u+1])`` of ``u``'s list."""
        return int(self.offsets[u]), int(self.offsets[u + 1])

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return i < len(nbrs) and nbrs[i] == v

    def edge_offset(self, u: int, v: int) -> int:
        """Return ``e(u, v)``: position of ``v`` inside ``u``'s list.

        Raises :class:`EdgeNotFoundError` when the edge does not exist.
        """
        lo, hi = self.neighbor_range(u)
        i = int(np.searchsorted(self.dst[lo:hi], v))
        if i >= hi - lo or self.dst[lo + i] != v:
            raise EdgeNotFoundError(int(u), int(v))
        return lo + i

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge offset (materialized; ``len(dst)``)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees
        )

    def source_of(self, edge_offset: int) -> int:
        """Source vertex ``u`` for an edge offset ``e(u, v)``.

        This is the *naive* lookup of the paper's ``FindSrc`` (Algorithm 3):
        the last vertex whose offset range starts at or before the target.
        Zero-degree vertices share their start offset with the next vertex;
        ``searchsorted(..., side="right") - 1`` lands on the last of the
        run, which is the unique vertex with a non-empty range.
        """
        if not 0 <= edge_offset < self.num_directed_edges:
            raise IndexError(f"edge offset {edge_offset} out of range")
        u = int(np.searchsorted(self.offsets, edge_offset, side="right")) - 1
        return u

    def reverse_edge_offset(self, edge_offset: int) -> int:
        """Return ``e(v, u)`` given ``e(u, v)`` (binary search on N(v))."""
        u = self.source_of(edge_offset)
        v = int(self.dst[edge_offset])
        return self.edge_offset(v, u)

    # ------------------------------------------------------------------ #
    # bulk views
    # ------------------------------------------------------------------ #
    def directed_edge_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` arrays over all stored directions."""
        return self.edge_sources(), self.dst.copy()

    def memory_bytes(self) -> int:
        """Bytes used by the CSR arrays (offsets + dst)."""
        return self.offsets.nbytes + self.dst.nbytes

    # ------------------------------------------------------------------ #
    # raw-buffer export / attach (shared-memory backends)
    # ------------------------------------------------------------------ #
    def buffer_spec(self) -> dict:
        """Shape/dtype metadata needed to rebuild the graph from raw buffers.

        The returned dict is plain data (picklable), so it can travel to a
        worker process alongside shared-memory block names and be fed back
        into :meth:`from_buffers`.
        """
        return {
            "offsets": {"shape": self.offsets.shape, "dtype": str(self.offsets.dtype)},
            "dst": {"shape": self.dst.shape, "dtype": str(self.dst.dtype)},
        }

    @classmethod
    def from_buffers(cls, offsets_buf, dst_buf, spec: dict) -> "CSRGraph":
        """Zero-copy view of CSR arrays living in caller-owned buffers.

        ``offsets_buf``/``dst_buf`` are any objects exposing the buffer
        protocol (``memoryview`` of a shared-memory block, ``bytearray``,
        mmap, ...); ``spec`` is a :meth:`buffer_spec` dict.  The arrays are
        *views*: the caller must keep the buffers alive for the lifetime of
        the returned graph.  Validation is skipped — the exporter already
        held a validated graph.
        """
        offsets = np.ndarray(
            tuple(spec["offsets"]["shape"]),
            dtype=np.dtype(spec["offsets"]["dtype"]),
            buffer=offsets_buf,
        )
        dst = np.ndarray(
            tuple(spec["dst"]["shape"]),
            dtype=np.dtype(spec["dst"]["dtype"]),
            buffer=dst_buf,
        )
        return cls(offsets, dst, validate=False)

    # ------------------------------------------------------------------ #
    # conversions / dunder
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        src = self.edge_sources()
        mask = src < self.dst
        g.add_edges_from(zip(src[mask].tolist(), self.dst[mask].tolist()))
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.dst, other.dst
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"avg_d={self.average_degree:.1f}, max_d={self.max_degree})"
        )
