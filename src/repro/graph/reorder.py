"""Degree-descending vertex reordering (paper §2.1).

BMP relies on the invariant ``u < v → d_u ≥ d_v`` so that the bitmap is
always built on the *larger* neighbor set and the loop runs over the
*smaller* one, giving each bitmap-array intersection complexity
``O(min(d_u, d_v))``.  The reordering sorts vertices by descending degree
(ties broken by original id for determinism), remaps every edge, and
rebuilds the CSR.  Complexity ``O(|V| log |V| + |E|)`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = ["degree_descending_order", "reorder_graph", "ReorderResult"]


@dataclass(frozen=True)
class ReorderResult:
    """A reordered graph plus the permutations linking old and new ids.

    ``new_id[old]`` gives the new id of an original vertex, and
    ``old_id[new]`` inverts it.  Counts computed on ``graph`` can be mapped
    back to original-id edges through these arrays.
    """

    graph: CSRGraph
    new_id: np.ndarray
    old_id: np.ndarray

    def to_original(self, u_new: int) -> int:
        return int(self.old_id[u_new])

    def to_new(self, u_old: int) -> int:
        return int(self.new_id[u_old])


def degree_descending_order(graph: CSRGraph) -> np.ndarray:
    """Return ``new_id`` such that degrees are non-increasing in new ids."""
    degrees = graph.degrees
    # argsort on (-degree, old_id): stable sort on -degree keeps old-id order.
    order = np.argsort(-degrees, kind="stable")  # old ids in new-id order
    new_id = np.empty(graph.num_vertices, dtype=np.int64)
    new_id[order] = np.arange(graph.num_vertices)
    return new_id


def reorder_graph(graph: CSRGraph) -> ReorderResult:
    """Apply degree-descending reordering and rebuild the CSR.

    The rebuilt graph satisfies ``u < v → d_u ≥ d_v`` and its adjacency
    lists are re-sorted under the new ids.
    """
    new_id = degree_descending_order(graph)
    old_id = np.empty_like(new_id)
    old_id[new_id] = np.arange(graph.num_vertices)

    n = graph.num_vertices
    new_degrees = graph.degrees[old_id]
    offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(new_degrees, out=offsets[1:])

    # Remap destination ids, then regroup rows under the new ordering.
    src_new = new_id[graph.edge_sources()]
    dst_new = new_id[graph.dst]
    key = src_new * n + dst_new
    order = np.argsort(key, kind="stable")
    dst = dst_new[order].astype(VERTEX_DTYPE)

    reordered = CSRGraph(offsets, dst)
    return ReorderResult(graph=reordered, new_id=new_id, old_id=old_id)
