"""Deterministic, vectorized random-graph generators.

The paper evaluates on five real-world graphs (LJ, OR, WI, TW, FR) that are
too large to ship and require network access to fetch.  These generators
produce scaled-down stand-ins with controllable *degree-skew profiles* —
the property that drives every performance crossover in the paper
(Table 2): R-MAT for hub-dominated web/twitter-like graphs, Chung–Lu for
power-law social graphs, and a near-uniform configuration model for
friendster-like graphs.

All generators are seeded and fully vectorized (no per-edge Python loops).
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import edges_to_csr
from repro.graph.csr import CSRGraph

__all__ = [
    "rmat_graph",
    "chung_lu_graph",
    "erdos_renyi_graph",
    "uniformish_graph",
    "co_purchase_graph",
    "planted_partition_graph",
    "small_test_graph",
]


def rmat_graph(
    scale: int,
    edge_factor: float = 8.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """R-MAT generator (Chakrabarti et al.): ``2**scale`` vertices.

    Skewed parameters (the Graph500 defaults used here) produce heavy hubs
    and a high fraction of degree-skewed edges — the signature of the
    paper's WI and TW datasets.
    """
    if not 1 <= scale <= 30:
        raise ValueError("scale must be in [1, 30]")
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum <= 1")
    n = 1 << scale
    m = int(edge_factor * n)
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # At each level pick one of the four quadrants for every edge at once.
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        r = rng.random(m)
        quad = np.searchsorted(thresholds, r)  # 0..3
        src = (src << 1) | (quad >> 1)
        dst = (dst << 1) | (quad & 1)

    # Random vertex relabeling decorrelates id and degree so that the
    # degree-descending reorder in BMP has real work to do.
    perm = rng.permutation(n)
    return edges_to_csr(perm[src], perm[dst], n)


def chung_lu_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.2,
    min_weight: float = 1.0,
    seed: int = 0,
) -> CSRGraph:
    """Chung–Lu model with power-law expected degrees.

    Endpoint of each edge is drawn with probability proportional to the
    vertex weight ``w_i ~ min_weight · i^{-1/(exponent-1)}`` — the standard
    construction giving a degree power law with the requested exponent.
    Social graphs like LJ and OR fit exponents around 2.1-2.5.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = min_weight * ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    # Oversample: self-loops and duplicates are dropped downstream.
    m = int(num_edges * 1.15) + 16
    src = rng.choice(num_vertices, size=m, p=probs)
    dst = rng.choice(num_vertices, size=m, p=probs)
    # Random relabeling so ids are uncorrelated with degree.
    perm = rng.permutation(num_vertices)
    return edges_to_csr(perm[src], perm[dst], num_vertices)


def erdos_renyi_graph(num_vertices: int, num_edges: int, seed: int = 0) -> CSRGraph:
    """G(n, m) uniform random graph — the zero-skew extreme."""
    rng = np.random.default_rng(seed)
    m = int(num_edges * 1.1) + 16
    src = rng.integers(0, num_vertices, size=m)
    dst = rng.integers(0, num_vertices, size=m)
    return edges_to_csr(src, dst, num_vertices)


def uniformish_graph(
    num_vertices: int,
    num_edges: int,
    spread: float = 0.5,
    seed: int = 0,
) -> CSRGraph:
    """Near-uniform degrees with mild variance (friendster-like profile).

    Draws endpoint weights from a lognormal with small sigma: degrees
    cluster around the mean with a thin tail, giving a low percentage of
    highly skewed intersections (paper Table 2's FR row).
    """
    rng = np.random.default_rng(seed)
    weights = rng.lognormal(mean=0.0, sigma=spread, size=num_vertices)
    probs = weights / weights.sum()
    m = int(num_edges * 1.1) + 16
    src = rng.choice(num_vertices, size=m, p=probs)
    dst = rng.choice(num_vertices, size=m, p=probs)
    return edges_to_csr(src, dst, num_vertices)


def co_purchase_graph(
    num_users: int,
    num_products: int,
    purchases_per_user: int = 6,
    popularity_exponent: float = 1.6,
    seed: int = 0,
) -> CSRGraph:
    """Product co-purchasing graph (the paper's motivating application).

    Users buy products with power-law popularity; two products are linked
    when at least one user bought both (bipartite projection).  Returns
    the product-product graph.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_products + 1, dtype=np.float64)
    pop = ranks ** (-1.0 / (popularity_exponent - 1.0))
    probs = pop / pop.sum()

    baskets = rng.choice(
        num_products, size=(num_users, purchases_per_user), p=probs
    )
    # Project: all intra-basket pairs.  purchases_per_user is small, so the
    # pair expansion is vectorized over users.
    i_idx, j_idx = np.triu_indices(purchases_per_user, k=1)
    src = baskets[:, i_idx].ravel()
    dst = baskets[:, j_idx].ravel()
    return edges_to_csr(src, dst, num_products)


def planted_partition_graph(
    num_communities: int,
    community_size: int,
    p_in: float = 0.4,
    p_out: float = 0.01,
    seed: int = 0,
) -> CSRGraph:
    """Planted-partition model: dense communities, sparse noise between.

    The canonical ground-truth input for clustering evaluations (used by
    the SCAN example and tests): vertices ``[c·size, (c+1)·size)`` form
    community ``c``; intra-community pairs connect with probability
    ``p_in``, inter-community pairs with ``p_out``.
    """
    if num_communities < 1 or community_size < 2:
        raise ValueError("need >= 1 community of >= 2 vertices")
    if not (0 <= p_out <= p_in <= 1):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    rng = np.random.default_rng(seed)
    n = num_communities * community_size

    srcs = []
    dsts = []
    # Intra-community: Bernoulli over each community's upper triangle.
    iu, ju = np.triu_indices(community_size, k=1)
    for c in range(num_communities):
        keep = rng.random(len(iu)) < p_in
        base = c * community_size
        srcs.append(base + iu[keep])
        dsts.append(base + ju[keep])
    # Inter-community noise: sample the expected number of pairs.
    inter_pairs = n * (n - 1) // 2 - num_communities * len(iu)
    m_out = rng.binomial(inter_pairs, p_out) if p_out > 0 else 0
    if m_out:
        a = rng.integers(0, n, size=2 * m_out)
        b = rng.integers(0, n, size=2 * m_out)
        cross = (a // community_size) != (b // community_size)
        srcs.append(a[cross][:m_out])
        dsts.append(b[cross][:m_out])
    return edges_to_csr(np.concatenate(srcs), np.concatenate(dsts), n)


def small_test_graph() -> CSRGraph:
    """A fixed 8-vertex graph with known common-neighbor counts.

    Used across the test suite; contains triangles, a hub, a degree-1
    pendant and an isolated vertex (vertex 7).
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),  # hub 0
        (1, 2), (1, 3),                           # triangles 0-1-2, 0-1-3
        (2, 3),                                   # triangle 0-2-3, 1-2-3
        (4, 5),                                   # triangle 0-4-5
        (5, 6),                                   # pendant path to 6
    ]
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    return edges_to_csr(src, dst, 8)
