"""Dataset statistics: Table 1 (sizes/degrees) and Table 2 (skew %).

Table 2 reports, over all intersections performed for edges ``(u, v)`` with
``u < v``, the percentage that are *highly skewed*: ``max(d_u, d_v) /
min(d_u, d_v) > 50``.  The same ratio (threshold ``t``) controls the
VB-vs-PS dispatch inside MPS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.build import csr_to_undirected_pairs
from repro.graph.csr import CSRGraph

__all__ = ["GraphStatistics", "graph_statistics", "skew_percentage", "skew_ratios"]


@dataclass(frozen=True)
class GraphStatistics:
    """Row of the paper's Table 1 plus the Table 2 skew percentage."""

    name: str
    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    skew_percentage: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            round(self.average_degree, 1),
            self.max_degree,
            f"{self.skew_percentage:.0f}%",
        )


def skew_ratios(graph: CSRGraph) -> np.ndarray:
    """Degree-skew ratio ``max(d_u,d_v)/min(d_u,d_v)`` per undirected edge."""
    u, v = csr_to_undirected_pairs(graph)
    if len(u) == 0:
        return np.empty(0, dtype=np.float64)
    d = graph.degrees
    du = d[u].astype(np.float64)
    dv = d[v].astype(np.float64)
    hi = np.maximum(du, dv)
    lo = np.minimum(du, dv)
    # Every endpoint of a stored edge has degree >= 1, so lo >= 1.
    return hi / lo


def skew_percentage(graph: CSRGraph, threshold: float = 50.0) -> float:
    """Percentage of undirected edges whose skew ratio exceeds ``threshold``."""
    ratios = skew_ratios(graph)
    if len(ratios) == 0:
        return 0.0
    return float(100.0 * np.count_nonzero(ratios > threshold) / len(ratios))


def graph_statistics(
    graph: CSRGraph, name: str = "", skew_threshold: float = 50.0
) -> GraphStatistics:
    """Compute the Table 1 + Table 2 statistics for one graph."""
    return GraphStatistics(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=graph.max_degree,
        skew_percentage=skew_percentage(graph, skew_threshold),
    )
