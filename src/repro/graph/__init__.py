"""Graph substrate: CSR storage, construction, reordering, generators, I/O."""

from repro.graph.csr import CSRGraph
from repro.graph.build import edges_to_csr, csr_from_pairs, csr_to_undirected_pairs
from repro.graph.reorder import degree_descending_order, reorder_graph, ReorderResult
from repro.graph.validate import validate_csr
from repro.graph.stats import graph_statistics, skew_percentage, GraphStatistics
from repro.graph.degrees import (
    degree_histogram,
    degree_ccdf,
    hill_tail_exponent,
    gini_coefficient,
)
from repro.graph.sample import (
    induced_subgraph,
    ego_network,
    sample_edges,
    largest_degree_core,
)
from repro.graph.bipartite import (
    BipartiteGraph,
    BipartiteProjection,
    bipartite_from_graph,
    bipartite_from_pairs,
    validate_bipartite,
)

__all__ = [
    "CSRGraph",
    "edges_to_csr",
    "csr_from_pairs",
    "csr_to_undirected_pairs",
    "degree_descending_order",
    "reorder_graph",
    "ReorderResult",
    "validate_csr",
    "graph_statistics",
    "skew_percentage",
    "GraphStatistics",
    "degree_histogram",
    "degree_ccdf",
    "hill_tail_exponent",
    "gini_coefficient",
    "induced_subgraph",
    "ego_network",
    "sample_edges",
    "largest_degree_core",
    "BipartiteGraph",
    "BipartiteProjection",
    "bipartite_from_graph",
    "bipartite_from_pairs",
    "validate_bipartite",
]
