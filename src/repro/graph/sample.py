"""Graph sampling utilities: subgraphs, ego networks, edge samples.

Used by the trace-driven cache experiments (which replay *sampled* kernel
executions) and handy for downsizing user graphs to test-scale.
"""

from __future__ import annotations

import numpy as np

from repro.graph.build import csr_to_undirected_pairs, edges_to_csr
from repro.graph.csr import CSRGraph

__all__ = ["induced_subgraph", "ego_network", "sample_edges", "largest_degree_core"]


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``; ids are compacted to ``[0, k)``.

    Returns ``(subgraph, old_ids)`` where ``old_ids[new]`` maps back.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if len(vertices) and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise IndexError("vertices out of range")
    new_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    new_id[vertices] = np.arange(len(vertices))
    u, v = csr_to_undirected_pairs(graph)
    keep = (new_id[u] >= 0) & (new_id[v] >= 0)
    sub = edges_to_csr(new_id[u[keep]], new_id[v[keep]], len(vertices))
    return sub, vertices


def ego_network(graph: CSRGraph, center: int, radius: int = 1):
    """Induced subgraph of everything within ``radius`` hops of ``center``."""
    if not 0 <= center < graph.num_vertices:
        raise IndexError("center out of range")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    frontier = {center}
    seen = {center}
    for _ in range(radius):
        nxt = set()
        for u in frontier:
            nxt.update(graph.neighbors(u).tolist())
        frontier = nxt - seen
        seen |= nxt
    return induced_subgraph(graph, np.fromiter(seen, dtype=np.int64))


def sample_edges(
    graph: CSRGraph, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """``k`` distinct undirected edges sampled uniformly, as (u, v) arrays."""
    u, v = csr_to_undirected_pairs(graph)
    if k > len(u):
        raise ValueError(f"cannot sample {k} of {len(u)} edges")
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(u), size=k, replace=False)
    return u[idx], v[idx]


def largest_degree_core(graph: CSRGraph, k: int) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of the ``k`` highest-degree vertices.

    The hub core is where the paper's skewed intersections live; this
    extracts it for focused micro-experiments.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, graph.num_vertices)
    top = np.argsort(-graph.degrees, kind="stable")[:k]
    return induced_subgraph(graph, top)
