"""Graph I/O: SNAP-style edge-list text and binary ``.npz`` CSR files.

The paper loads SNAP / WebGraph datasets from disk and measures in-memory
time only; this module provides the equivalent loading path for our
stand-ins and any user-supplied edge lists.
"""

from __future__ import annotations

import gzip
import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import edges_to_csr
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_csr",
    "load_csr",
    "save_paper_binary",
    "load_paper_binary",
]


def read_edge_list(
    path: str | os.PathLike,
    *,
    comments: str = "#",
    num_vertices: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP text format).

    Lines starting with ``comments`` are skipped.  Each data line must have
    at least two integer columns ``u v``; extra columns (weights) are
    ignored.  Paths ending in ``.gz`` are decompressed transparently (SNAP
    distributes its datasets gzipped).  The result is symmetrized and
    deduplicated.
    """
    src_list: list[int] = []
    dst_list: list[int] = []
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(f"{path}:{lineno}: negative vertex id")
            src_list.append(u)
            dst_list.append(v)
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    return edges_to_csr(src, dst, num_vertices)


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the undirected edges (``u < v``) as SNAP text."""
    from repro.graph.build import csr_to_undirected_pairs

    u, v = csr_to_undirected_pairs(graph)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# Undirected graph: |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        np.savetxt(fh, np.column_stack([u, v]), fmt="%d")


def save_csr(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(path, offsets=graph.offsets, dst=graph.dst)


def load_csr(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_csr`."""
    with np.load(path) as data:
        if "offsets" not in data or "dst" not in data:
            raise GraphFormatError(f"{path}: missing 'offsets'/'dst' arrays")
        return CSRGraph(data["offsets"], data["dst"])


def save_paper_binary(graph: CSRGraph, directory: str | os.PathLike) -> None:
    """Write the binary layout the paper's released code consumes.

    The authors' preprocessing produces two little-endian files:

    * ``b_degree.bin`` — int32 header ``[int_size, |V|, 2|E|]`` followed by
      the int32 degree of every vertex;
    * ``b_adj.bin`` — the int32 neighbor array (CSR ``dst``).
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    degrees = np.diff(graph.offsets).astype(np.int32)
    header = np.array(
        [4, graph.num_vertices, graph.num_directed_edges], dtype=np.int32
    )
    with open(os.path.join(directory, "b_degree.bin"), "wb") as fh:
        header.tofile(fh)
        degrees.tofile(fh)
    with open(os.path.join(directory, "b_adj.bin"), "wb") as fh:
        graph.dst.astype(np.int32).tofile(fh)


def load_paper_binary(directory: str | os.PathLike) -> CSRGraph:
    """Read the ``b_degree.bin`` + ``b_adj.bin`` layout back into a CSR."""
    directory = os.fspath(directory)
    deg_path = os.path.join(directory, "b_degree.bin")
    adj_path = os.path.join(directory, "b_adj.bin")
    with open(deg_path, "rb") as fh:
        header = np.fromfile(fh, dtype=np.int32, count=3)
        if len(header) != 3:
            raise GraphFormatError(f"{deg_path}: truncated header")
        int_size, n, m = (int(x) for x in header)
        if int_size != 4:
            raise GraphFormatError(f"{deg_path}: unsupported int size {int_size}")
        degrees = np.fromfile(fh, dtype=np.int32, count=n)
    if len(degrees) != n:
        raise GraphFormatError(f"{deg_path}: expected {n} degrees")
    if degrees.sum() != m:
        raise GraphFormatError(
            f"{deg_path}: degree sum {degrees.sum()} != edge count {m}"
        )
    dst = np.fromfile(adj_path, dtype=np.int32)
    if len(dst) != m:
        raise GraphFormatError(f"{adj_path}: expected {m} neighbors, got {len(dst)}")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return CSRGraph(offsets, dst)
