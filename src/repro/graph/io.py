"""Graph I/O: SNAP-style edge-list text and binary ``.npz`` CSR files.

The paper loads SNAP / WebGraph datasets from disk and measures in-memory
time only; this module provides the equivalent loading path for our
stand-ins and any user-supplied edge lists.
"""

from __future__ import annotations

import gzip
import os

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import edges_to_csr
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "read_edge_pairs",
    "write_edge_list",
    "save_csr",
    "load_csr",
    "save_paper_binary",
    "load_paper_binary",
]


#: Bytes of text read per streaming block; bounds peak Python-object
#: overhead regardless of file size (the old reader accumulated ~50 B of
#: boxed-int overhead per edge for the whole file).
_BLOCK_BYTES = 1 << 20


def _parse_block_slow(path, lines, base_lineno: int, comments: str) -> np.ndarray:
    """Per-line fallback parser: exact ``path:line`` diagnostics.

    Used for blocks the vectorized parser rejects — it either raises the
    precise :class:`GraphFormatError` or handles the benign irregularity
    (ragged extra columns) the fast path cannot.
    """
    out = np.empty((len(lines), 2), dtype=np.int64)
    k = 0
    for i, raw in enumerate(lines):
        line = raw.strip()
        if not line or line.startswith(comments):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path}:{base_lineno + i}: expected 'u v', got {line!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"{path}:{base_lineno + i}: non-integer vertex id in {line!r}"
            ) from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"{path}:{base_lineno + i}: negative vertex id")
        out[k, 0] = u
        out[k, 1] = v
        k += 1
    return out[:k]


def _parse_block(path, lines, base_lineno: int, comments: str) -> np.ndarray:
    """Parse one block of raw lines into an ``(n, 2)`` int64 pair array.

    Fast path: NumPy's C text parser over the comment-stripped lines.
    Anything it cannot digest (short lines, non-integer ids, ragged
    column counts) falls back to the per-line parser, which either
    accepts the block or raises with the exact line number.
    """
    data = [ln for ln in lines if (s := ln.strip()) and not s.startswith(comments)]
    if not data:
        return np.empty((0, 2), dtype=np.int64)
    try:
        pairs = np.loadtxt(
            data, dtype=np.int64, usecols=(0, 1), comments=None, ndmin=2
        )
    except (ValueError, IndexError, OverflowError):
        return _parse_block_slow(path, lines, base_lineno, comments)
    if pairs.size and pairs.min() < 0:
        # Re-parse slowly purely to pinpoint the offending line.
        return _parse_block_slow(path, lines, base_lineno, comments)
    return pairs


def read_edge_list(
    path: str | os.PathLike,
    *,
    comments: str = "#",
    num_vertices: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list (SNAP text format).

    Lines starting with ``comments`` are skipped.  Each data line must have
    at least two integer columns ``u v``; extra columns (weights) are
    ignored.  Paths ending in ``.gz`` are decompressed transparently (SNAP
    distributes its datasets gzipped).  The result is symmetrized and
    deduplicated.

    The file is streamed in ~1 MB blocks that are parsed straight into
    NumPy arrays, so peak memory is the packed edge array plus one block —
    not a Python list of boxed ints — while malformed input still reports
    its exact ``path:line``.
    """
    blocks: list[np.ndarray] = []
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:
        lineno = 1
        while True:
            lines = fh.readlines(_BLOCK_BYTES)
            if not lines:
                break
            pairs = _parse_block(path, lines, lineno, comments)
            lineno += len(lines)
            if len(pairs):
                blocks.append(pairs)
    if blocks:
        pairs = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        src, dst = pairs[:, 0].copy(), pairs[:, 1].copy()
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    return edges_to_csr(src, dst, num_vertices)


def read_edge_pairs(
    path: str | os.PathLike, *, comments: str = "#"
) -> np.ndarray:
    """Read raw ``(u, v)`` pairs from an edge-list file, no CSR building.

    Same text format (and streaming parser) as :func:`read_edge_list`, but
    the pairs come back as an ``(m, 2)`` int64 array in file order —
    no symmetrization, deduplication, or self-loop dropping.  This is the
    input format of update batches (``repro update``), where order and
    multiplicity carry meaning (a duplicate insert is a recorded no-op).
    """
    blocks: list[np.ndarray] = []
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:
        lineno = 1
        while True:
            lines = fh.readlines(_BLOCK_BYTES)
            if not lines:
                break
            pairs = _parse_block(path, lines, lineno, comments)
            lineno += len(lines)
            if len(pairs):
                blocks.append(pairs)
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(blocks) if len(blocks) > 1 else blocks[0]


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write the undirected edges (``u < v``) as SNAP text."""
    from repro.graph.build import csr_to_undirected_pairs

    u, v = csr_to_undirected_pairs(graph)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# Undirected graph: |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        np.savetxt(fh, np.column_stack([u, v]), fmt="%d")


def save_csr(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file."""
    np.savez_compressed(path, offsets=graph.offsets, dst=graph.dst)


def load_csr(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously saved with :func:`save_csr`."""
    with np.load(path) as data:
        if "offsets" not in data or "dst" not in data:
            raise GraphFormatError(f"{path}: missing 'offsets'/'dst' arrays")
        return CSRGraph(data["offsets"], data["dst"])


def save_paper_binary(graph: CSRGraph, directory: str | os.PathLike) -> None:
    """Write the binary layout the paper's released code consumes.

    The authors' preprocessing produces two little-endian files:

    * ``b_degree.bin`` — int32 header ``[int_size, |V|, 2|E|]`` followed by
      the int32 degree of every vertex;
    * ``b_adj.bin`` — the int32 neighbor array (CSR ``dst``).
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    degrees = np.diff(graph.offsets).astype(np.int32)
    header = np.array(
        [4, graph.num_vertices, graph.num_directed_edges], dtype=np.int32
    )
    with open(os.path.join(directory, "b_degree.bin"), "wb") as fh:
        header.tofile(fh)
        degrees.tofile(fh)
    with open(os.path.join(directory, "b_adj.bin"), "wb") as fh:
        graph.dst.astype(np.int32).tofile(fh)


def load_paper_binary(directory: str | os.PathLike) -> CSRGraph:
    """Read the ``b_degree.bin`` + ``b_adj.bin`` layout back into a CSR."""
    directory = os.fspath(directory)
    deg_path = os.path.join(directory, "b_degree.bin")
    adj_path = os.path.join(directory, "b_adj.bin")
    with open(deg_path, "rb") as fh:
        header = np.fromfile(fh, dtype=np.int32, count=3)
        if len(header) != 3:
            raise GraphFormatError(f"{deg_path}: truncated header")
        int_size, n, m = (int(x) for x in header)
        if int_size != 4:
            raise GraphFormatError(f"{deg_path}: unsupported int size {int_size}")
        degrees = np.fromfile(fh, dtype=np.int32, count=n)
    if len(degrees) != n:
        raise GraphFormatError(f"{deg_path}: expected {n} degrees")
    if degrees.sum() != m:
        raise GraphFormatError(
            f"{deg_path}: degree sum {degrees.sum()} != edge count {m}"
        )
    dst = np.fromfile(adj_path, dtype=np.int32)
    if len(dst) != m:
        raise GraphFormatError(f"{adj_path}: expected {m} neighbors, got {len(dst)}")
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return CSRGraph(offsets, dst)
