"""Scaled stand-ins for the paper's five evaluation datasets.

The paper evaluates on livejournal (LJ), orkut (OR), web-it (WI), twitter
(TW) and friendster (FR) — up to 1.8 billion edges, downloaded from SNAP
and WebGraph.  Those datasets are unavailable offline, so we generate
deterministic synthetic stand-ins roughly 10³× smaller that preserve the
properties the paper's results depend on:

* the *average degree* profile (Table 1),
* the *degree-skew percentage* — fraction of intersections with
  ``d_u/d_v > 50`` (Table 2): WI and TW are skewed, LJ/OR/FR are not,
* the *bitmap cardinality* ratio: FR has ~3× more vertices than TW, which
  drives the paper's range-filtering and KNL-locality findings.

Absolute run times are therefore not comparable with the paper, but the
relative shapes (who wins, crossovers) are; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.graph.generators import chung_lu_graph, uniformish_graph
from repro.graph.reorder import reorder_graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "clear_dataset_cache",
    "PAPER_TABLE1",
]

#: Table 1 of the paper (real dataset statistics), for side-by-side report.
PAPER_TABLE1 = {
    "lj": dict(V=4_036_538, E=34_681_189, avg_d=17.2, max_d=14_815),
    "or": dict(V=3_072_627, E=117_185_083, avg_d=76.3, max_d=33_312),
    "wi": dict(V=41_291_083, E=583_044_292, avg_d=28.2, max_d=1_243_927),
    "tw": dict(V=41_652_230, E=684_500_375, avg_d=32.9, max_d=1_405_985),
    "fr": dict(V=124_836_180, E=1_806_067_135, avg_d=28.9, max_d=5_214),
}

#: Table 2: percentage of highly skewed intersections (d_u/d_v > 50).
#: The text states 31% for TW and that WI/TW are the skewed datasets; the
#: remaining entries are inferred from the paper's qualitative description.
PAPER_TABLE2_SKEW = {"lj": 10.0, "or": 5.0, "wi": 45.0, "tw": 31.0, "fr": 2.0}


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: paper statistics + stand-in generator."""

    name: str
    full_name: str
    skewed: bool
    generator: Callable[[float, int], CSRGraph]
    description: str

    def paper_stats(self) -> dict:
        return PAPER_TABLE1[self.name]


def _gen_lj(scale: float, seed: int) -> CSRGraph:
    n = max(64, int(12_000 * scale))
    return chung_lu_graph(n, int(4.8 * n), exponent=2.4, seed=seed)


def _gen_or(scale: float, seed: int) -> CSRGraph:
    n = max(64, int(6_000 * scale))
    return chung_lu_graph(n, int(20 * n), exponent=2.6, seed=seed + 1)


def _gen_wi(scale: float, seed: int) -> CSRGraph:
    # Heavy-tailed Chung-Lu: measured skew ≈ 45% at scale 1 (paper: WI is
    # the most skewed dataset; exact Table 2 value assumed 45%).
    n = max(64, int(20_000 * scale))
    return chung_lu_graph(n, int(7.0 * n), exponent=1.88, seed=seed + 2)


def _gen_tw(scale: float, seed: int) -> CSRGraph:
    # Measured skew ≈ 32% at scale 1, matching the paper's 31% for TW.
    n = max(64, int(20_000 * scale))
    return chung_lu_graph(n, int(9.0 * n), exponent=2.05, seed=seed + 3)


def _gen_fr(scale: float, seed: int) -> CSRGraph:
    n = max(64, int(42_000 * scale))
    return uniformish_graph(n, int(7.3 * n), spread=0.6, seed=seed + 4)


DATASETS: dict[str, DatasetSpec] = {
    "lj": DatasetSpec(
        "lj",
        "livejournal (stand-in)",
        skewed=False,
        generator=_gen_lj,
        description="power-law social graph, moderate degrees",
    ),
    "or": DatasetSpec(
        "or",
        "orkut (stand-in)",
        skewed=False,
        generator=_gen_or,
        description="dense power-law social graph",
    ),
    "wi": DatasetSpec(
        "wi",
        "web-it (stand-in)",
        skewed=True,
        generator=_gen_wi,
        description="hub-dominated web graph, highly skewed",
    ),
    "tw": DatasetSpec(
        "tw",
        "twitter (stand-in)",
        skewed=True,
        generator=_gen_tw,
        description="hub-dominated follower graph, highly skewed",
    ),
    "fr": DatasetSpec(
        "fr",
        "friendster (stand-in)",
        skewed=False,
        generator=_gen_fr,
        description="near-uniform degrees, large vertex count",
    ),
}

_CACHE: dict[tuple, CSRGraph] = {}


def dataset_names() -> tuple[str, ...]:
    return tuple(DATASETS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    *,
    reordered: bool = False,
    cache: bool = True,
) -> CSRGraph:
    """Generate (or fetch from cache) a dataset stand-in.

    Parameters
    ----------
    name: one of ``lj``, ``or``, ``wi``, ``tw``, ``fr``.
    scale: linear size multiplier; 1.0 is the default benchmark size
        (roughly 50k-300k undirected edges), 0.1 is test-sized.
    reordered: when true, apply the degree-descending reorder (required by
        BMP; see :mod:`repro.graph.reorder`).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    key = (name, float(scale), int(seed), bool(reordered))
    if cache and key in _CACHE:
        return _CACHE[key]
    graph = DATASETS[name].generator(scale, seed)
    if reordered:
        graph = reorder_graph(graph).graph
    if cache:
        _CACHE[key] = graph
    return graph


def clear_dataset_cache() -> None:
    _CACHE.clear()


def memory_scale(name: str, graph: CSRGraph) -> float:
    """Ratio of the real dataset's CSR footprint to the stand-in's.

    The stand-ins are *nominally* 1000× smaller, but each dataset shrinks
    by a slightly different true factor.  Experiments whose subject is a
    capacity relation (GPU multi-pass planning, Figure 8 / Table 6 /
    Figure 9) pass this as ``hw_scale`` so that "does the graph fit in
    global memory" is answered exactly as at paper scale.
    """
    # Vertex-count ratio: the bitmap pool (the largest fixed allocation)
    # scales with |V|, so the vertex ratio preserves the pool-vs-global
    # capacity relation that gates the pass planner.
    return PAPER_TABLE1[name]["V"] / max(graph.num_vertices, 1)
