"""Structural validation of CSR graphs.

These checks guard every loader and generator: the counting kernels assume
sorted, duplicate-free adjacency lists and a symmetric edge set, and
silently produce wrong counts when the assumptions break.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["validate_csr", "check_symmetric"]


def validate_csr(graph) -> None:
    """Validate CSR layout invariants; raise :class:`GraphFormatError`.

    Checks (paper §2.1 storage format):

    * ``offsets`` starts at 0, ends at ``len(dst)``, non-decreasing;
    * every neighbor id lies in ``[0, |V|)``;
    * each adjacency list is strictly ascending (sorted, no duplicates);
    * no self-loops.
    """
    offsets, dst = graph.offsets, graph.dst
    if offsets.ndim != 1 or dst.ndim != 1:
        raise GraphFormatError("offsets and dst must be 1-D arrays")
    if len(offsets) == 0:
        raise GraphFormatError("offsets must have at least one entry")
    if offsets[0] != 0:
        raise GraphFormatError(f"offsets[0] must be 0, got {offsets[0]}")
    if offsets[-1] != len(dst):
        raise GraphFormatError(
            f"offsets[-1] ({offsets[-1]}) must equal len(dst) ({len(dst)})"
        )
    if len(offsets) > 1 and np.any(np.diff(offsets) < 0):
        raise GraphFormatError("offsets must be non-decreasing")

    n = len(offsets) - 1
    if len(dst) > 0:
        if dst.min() < 0 or dst.max() >= n:
            raise GraphFormatError("neighbor ids out of range [0, |V|)")

        # Strictly ascending within each row: dst[i] < dst[i+1] except at
        # row boundaries.  Row starts are offsets[1:-1].
        interior = np.ones(len(dst) - 1, dtype=bool) if len(dst) > 1 else None
        if interior is not None:
            boundary = offsets[1:-1]
            boundary = boundary[(boundary > 0) & (boundary < len(dst))]
            interior[boundary - 1] = False
            bad = (np.diff(dst) <= 0) & interior
            if bad.any():
                pos = int(np.flatnonzero(bad)[0])
                raise GraphFormatError(
                    f"adjacency list not strictly ascending at dst[{pos}]"
                )

        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        if np.any(src == dst):
            raise GraphFormatError("self-loops are not allowed")


def check_symmetric(graph) -> None:
    """Verify every stored edge has its reverse stored too."""
    src = graph.edge_sources().astype(np.int64)
    dst = graph.dst.astype(np.int64)
    n = graph.num_vertices
    forward = src * n + dst
    backward = dst * n + src
    if not np.array_equal(np.sort(forward), np.sort(backward)):
        raise GraphFormatError("edge set is not symmetric")
