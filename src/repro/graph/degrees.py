"""Degree-distribution analysis used to calibrate the dataset stand-ins.

The paper's performance crossovers are driven by each dataset's degree
profile (Table 1's max degree, Table 2's skew).  These helpers quantify a
profile: histogram, complementary CDF, and a Hill estimator of the
power-law tail exponent — the quantity the Chung-Lu stand-in generators
take as input.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "degree_histogram",
    "degree_ccdf",
    "hill_tail_exponent",
    "gini_coefficient",
]


def degree_histogram(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """``(degrees, counts)`` for the distinct degrees present."""
    values, counts = np.unique(graph.degrees, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def degree_ccdf(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF: fraction of vertices with degree ≥ d."""
    values, counts = degree_histogram(graph)
    total = counts.sum()
    if total == 0:
        return values, np.zeros(0)
    tail = np.cumsum(counts[::-1])[::-1] / total
    return values, tail


def hill_tail_exponent(graph: CSRGraph, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the power-law exponent of the degree tail.

    For degrees ``d_(1) >= ... >= d_(k)`` in the top ``tail_fraction`` of
    non-zero degrees, the estimator is ``1 + k / Σ ln(d_i / d_(k))``.
    Heavy-tailed social graphs land around 2-3; near-uniform profiles
    produce large values (a steep, fast-decaying tail).
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    d = graph.degrees[graph.degrees > 0]
    if len(d) < 10:
        raise ValueError("too few non-isolated vertices for a tail fit")
    d = np.sort(d)[::-1].astype(np.float64)
    k = max(int(len(d) * tail_fraction), 2)
    tail = d[:k]
    x_min = tail[-1]
    logs = np.log(tail / x_min)
    s = logs.sum()
    if s <= 0:
        return float("inf")  # all tail degrees equal: no measurable tail
    return 1.0 + k / s


def gini_coefficient(graph: CSRGraph) -> float:
    """Gini coefficient of the degree distribution (0 = uniform).

    A compact scalar for "how hub-dominated" a graph is; the skewed
    stand-ins (wi, tw) should score far above fr's.
    """
    d = np.sort(graph.degrees.astype(np.float64))
    n = len(d)
    if n == 0 or d.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * d).sum() - (n + 1) * d.sum()) / (n * d.sum()))
