"""Bipartite CSR storage: side-tagged adjacency for (p,q)-biclique counting.

A :class:`BipartiteGraph` keeps two vertex namespaces — ``num_left`` left
vertices and ``num_right`` right vertices — and one edge set between
them, stored as *two* CSR adjacencies (left→right and its mirror
right→left) so both the subset-emission kernel (iterates right rows) and
the two-hop enumeration kernel (alternates sides) stream sorted rows.

Construction mirrors :func:`repro.graph.build.edges_to_csr`: raw pair
lists are deduplicated and validated in vectorized numpy.  Unlike the
unipartite CSR there is no symmetrization and no self-loop concept — the
two endpoints of an edge live in different namespaces, so ``(3, 3)`` is a
perfectly good edge.

Calibrated generators live here too (bipartite siblings of the
R-MAT/Chung–Lu family in :mod:`repro.graph.generators`): power-law
left/right degree profiles for review/engagement-shaped data and a
basket-style user×product sampler for the recommendation app.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError, GraphFormatError
from repro.graph.csr import OFFSET_DTYPE, VERTEX_DTYPE, CSRGraph

__all__ = [
    "BipartiteGraph",
    "bipartite_from_pairs",
    "validate_bipartite",
    "bipartite_from_graph",
    "BipartiteProjection",
    "bipartite_chung_lu",
    "bipartite_uniform",
    "purchase_bipartite",
]


def _side_csr(src, dst, num_src: int, num_dst: int):
    """Dedup ``src→dst`` pairs into one CSR side (offsets, sorted rows)."""
    key = src.astype(np.int64) * num_dst + dst.astype(np.int64)
    key = np.unique(key)
    src = (key // num_dst).astype(np.int64)
    dst = (key % num_dst).astype(VERTEX_DTYPE)
    counts = np.bincount(src, minlength=num_src)
    offsets = np.zeros(num_src + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return offsets, dst


class BipartiteGraph:
    """Immutable bipartite graph in dual-CSR form.

    ``l_offsets``/``l_dst`` index right-neighbor rows by left vertex;
    ``r_offsets``/``r_dst`` are the exact mirror.  Rows are strictly
    ascending (no duplicate edges).  Use :func:`bipartite_from_pairs` to
    build one from a raw (possibly duplicate-dense) pair list.
    """

    __slots__ = (
        "num_left",
        "num_right",
        "l_offsets",
        "l_dst",
        "r_offsets",
        "r_dst",
    )

    def __init__(
        self,
        num_left: int,
        num_right: int,
        l_offsets: np.ndarray,
        l_dst: np.ndarray,
        r_offsets: np.ndarray | None = None,
        r_dst: np.ndarray | None = None,
        validate: bool = True,
    ):
        self.num_left = int(num_left)
        self.num_right = int(num_right)
        self.l_offsets = np.asarray(l_offsets, dtype=OFFSET_DTYPE)
        self.l_dst = np.asarray(l_dst, dtype=VERTEX_DTYPE)
        if r_offsets is None or r_dst is None:
            src = np.repeat(
                np.arange(self.num_left, dtype=np.int64),
                np.diff(self.l_offsets),
            )
            self.r_offsets, self.r_dst = _side_csr(
                self.l_dst, src, self.num_right, self.num_left
            )
        else:
            self.r_offsets = np.asarray(r_offsets, dtype=OFFSET_DTYPE)
            self.r_dst = np.asarray(r_dst, dtype=VERTEX_DTYPE)
        if validate:
            validate_bipartite(self)

    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return int(len(self.l_dst))

    @property
    def left_degrees(self) -> np.ndarray:
        return np.diff(self.l_offsets)

    @property
    def right_degrees(self) -> np.ndarray:
        return np.diff(self.r_offsets)

    def left_neighbors(self, u: int) -> np.ndarray:
        """Sorted right-side neighbors of left vertex ``u`` (a view)."""
        return self.l_dst[self.l_offsets[u] : self.l_offsets[u + 1]]

    def right_neighbors(self, r: int) -> np.ndarray:
        """Sorted left-side neighbors of right vertex ``r`` (a view)."""
        return self.r_dst[self.r_offsets[r] : self.r_offsets[r + 1]]

    def has_edge(self, u: int, r: int) -> bool:
        nbrs = self.left_neighbors(u)
        i = np.searchsorted(nbrs, r)
        return bool(i < len(nbrs) and nbrs[i] == r)

    def memory_bytes(self) -> int:
        return (
            self.l_offsets.nbytes
            + self.l_dst.nbytes
            + self.r_offsets.nbytes
            + self.r_dst.nbytes
        )

    def to_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """``(left, right)`` endpoint arrays, one row per edge."""
        left = np.repeat(
            np.arange(self.num_left, dtype=np.int64), np.diff(self.l_offsets)
        )
        return left, self.l_dst.astype(np.int64)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.num_left == other.num_left
            and self.num_right == other.num_right
            and np.array_equal(self.l_offsets, other.l_offsets)
            and np.array_equal(self.l_dst, other.l_dst)
        )

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={self.num_left}, |R|={self.num_right}, "
            f"|E|={self.num_edges})"
        )


def validate_bipartite(bip: BipartiteGraph) -> None:
    """Structural invariants of one :class:`BipartiteGraph`.

    Checks each side's CSR independently (monotone offsets, in-range ids,
    strictly ascending rows — which rejects duplicate edges) plus the
    cross-side consistency that makes the mirror an actual mirror: both
    adjacencies must describe the same edge count.
    """
    if bip.num_left < 0 or bip.num_right < 0:
        raise GraphFormatError("vertex counts must be non-negative")
    for side, offsets, dst, num_rows, num_ids in (
        ("left", bip.l_offsets, bip.l_dst, bip.num_left, bip.num_right),
        ("right", bip.r_offsets, bip.r_dst, bip.num_right, bip.num_left),
    ):
        if offsets.shape != (num_rows + 1,):
            raise GraphFormatError(
                f"{side} offsets must have {num_rows + 1} entries, "
                f"got {offsets.shape}"
            )
        if len(offsets) and (offsets[0] != 0 or offsets[-1] != len(dst)):
            raise GraphFormatError(
                f"{side} offsets must start at 0 and end at |E|={len(dst)}"
            )
        if np.any(np.diff(offsets) < 0):
            raise GraphFormatError(f"{side} offsets must be non-decreasing")
        if len(dst) and (dst.min() < 0 or dst.max() >= num_ids):
            raise GraphFormatError(
                f"{side} adjacency ids must lie in [0, {num_ids})"
            )
        # Strictly ascending within each row: a repeated id means the same
        # cross-side edge was stored twice.
        row = np.repeat(np.arange(num_rows, dtype=np.int64), np.diff(offsets))
        if len(dst) > 1:
            same_row = row[1:] == row[:-1]
            if np.any(same_row & (np.diff(dst.astype(np.int64)) <= 0)):
                raise GraphFormatError(
                    f"{side} adjacency rows must be strictly ascending "
                    "(duplicate cross-side edge?)"
                )
    if len(bip.l_dst) != len(bip.r_dst):
        raise GraphFormatError(
            f"side edge counts disagree: left stores {len(bip.l_dst)}, "
            f"right stores {len(bip.r_dst)}"
        )
    # The mirror must be the *exact* transpose, not merely the same size:
    # rebuild the right CSR from the left rows and compare.
    src = np.repeat(
        np.arange(bip.num_left, dtype=np.int64), np.diff(bip.l_offsets)
    )
    r_offsets, r_dst = _side_csr(bip.l_dst, src, bip.num_right, bip.num_left)
    if not (
        np.array_equal(r_offsets, bip.r_offsets)
        and np.array_equal(r_dst, bip.r_dst)
    ):
        raise GraphFormatError(
            "right CSR is not the transpose of the left CSR"
        )


def bipartite_from_pairs(
    pairs, num_left: int | None = None, num_right: int | None = None
) -> BipartiteGraph:
    """Build a :class:`BipartiteGraph` from raw ``(left, right)`` pairs.

    Duplicate pairs collapse (like :func:`~repro.graph.build.edges_to_csr`);
    negative or out-of-range ids raise :class:`GraphFormatError`.  Vertex
    counts default to one past the largest used id on each side.
    """
    arr = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs)
    if arr.size == 0:
        arr = np.empty((0, 2), dtype=np.int64)
    arr = arr.reshape(-1, 2).astype(np.int64)
    left, right = arr[:, 0], arr[:, 1]
    if len(arr) and (left.min() < 0 or right.min() < 0):
        raise GraphFormatError("vertex ids must be non-negative")
    nl = int(left.max()) + 1 if num_left is None and len(arr) else (num_left or 0)
    nr = int(right.max()) + 1 if num_right is None and len(arr) else (num_right or 0)
    if len(arr) and (left.max() >= nl or right.max() >= nr):
        raise GraphFormatError(
            f"pair ids exceed declared sizes (|L|={nl}, |R|={nr})"
        )
    l_offsets, l_dst = _side_csr(left, right, nl, max(nr, 1))
    bip = BipartiteGraph(nl, nr, l_offsets, l_dst, validate=False)
    validate_bipartite(bip)
    return bip


class BipartiteProjection:
    """A unipartite graph 2-colored into a bipartite view.

    ``graph`` is the :class:`BipartiteGraph`; ``left_ids``/``right_ids``
    map its compact side-local ids back to the original vertex ids.
    """

    __slots__ = ("graph", "left_ids", "right_ids")

    def __init__(self, graph: BipartiteGraph, left_ids, right_ids):
        self.graph = graph
        self.left_ids = np.asarray(left_ids, dtype=np.int64)
        self.right_ids = np.asarray(right_ids, dtype=np.int64)

    def __repr__(self) -> str:
        return f"BipartiteProjection({self.graph!r})"


def bipartite_from_graph(graph: CSRGraph) -> BipartiteProjection:
    """2-color a unipartite CSR into a :class:`BipartiteProjection`.

    BFS-colors every connected component; an odd cycle raises
    :class:`AlgorithmError` (the graph has no bipartite structure to
    count bicliques on).  Deterministic side rule: each component's
    smallest vertex id goes on the left, so the same graph always
    produces the same projection.  Isolated vertices join the left side.
    """
    n = graph.num_vertices
    color = np.full(n, -1, dtype=np.int8)
    for root in range(n):
        if color[root] != -1:
            continue
        color[root] = 0
        frontier = np.array([root], dtype=np.int64)
        while len(frontier):
            nxt = []
            for u in frontier.tolist():
                nbrs = graph.neighbors(u)
                want = 1 - color[u]
                bad = nbrs[(color[nbrs] != -1) & (color[nbrs] != want)]
                if len(bad):
                    raise AlgorithmError(
                        f"graph is not bipartite: edge ({u}, {int(bad[0])}) "
                        "closes an odd cycle; biclique motifs need a "
                        "2-colorable graph"
                    )
                fresh = nbrs[color[nbrs] == -1]
                color[fresh] = want
                nxt.append(fresh.astype(np.int64))
            frontier = (
                np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
            )
    left_ids = np.flatnonzero(color == 0)
    right_ids = np.flatnonzero(color == 1)
    # Compact per-side relabeling, then every u<v edge becomes one pair.
    side_rank = np.empty(n, dtype=np.int64)
    side_rank[left_ids] = np.arange(len(left_ids))
    side_rank[right_ids] = np.arange(len(right_ids))
    src = graph.edge_sources()
    mask = color[src] == 0  # each undirected edge once, from its left end
    pairs = np.stack(
        [side_rank[src[mask]], side_rank[graph.dst[mask]]], axis=1
    )
    bip = bipartite_from_pairs(
        pairs, num_left=len(left_ids), num_right=len(right_ids)
    )
    return BipartiteProjection(bip, left_ids, right_ids)


# --------------------------------------------------------------------- #
# calibrated generators
# --------------------------------------------------------------------- #
def _powerlaw_probs(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    return weights / weights.sum()


def bipartite_chung_lu(
    num_left: int,
    num_right: int,
    num_edges: int,
    left_exponent: float = 2.2,
    right_exponent: float = 2.2,
    seed: int = 0,
) -> BipartiteGraph:
    """Chung–Lu bipartite model: power-law degrees on *both* sides.

    The bipartite sibling of :func:`repro.graph.generators.chung_lu_graph`
    — endpoints are drawn independently with rank-power-law weights, then
    relabeled so ids are uncorrelated with degree.  Review/engagement
    data (users × items) fits exponents around 2–2.5 per side.
    """
    if num_left < 1 or num_right < 1:
        raise ValueError("need at least one vertex per side")
    rng = np.random.default_rng(seed)
    m = int(num_edges * 1.15) + 16  # oversample: duplicates collapse
    left = rng.choice(num_left, size=m, p=_powerlaw_probs(num_left, left_exponent))
    right = rng.choice(
        num_right, size=m, p=_powerlaw_probs(num_right, right_exponent)
    )
    lperm = rng.permutation(num_left)
    rperm = rng.permutation(num_right)
    return bipartite_from_pairs(
        np.stack([lperm[left], rperm[right]], axis=1),
        num_left=num_left,
        num_right=num_right,
    )


def bipartite_uniform(
    num_left: int, num_right: int, num_edges: int, seed: int = 0
) -> BipartiteGraph:
    """Uniform bipartite G(n_l, n_r, m) — the zero-skew extreme."""
    if num_left < 1 or num_right < 1:
        raise ValueError("need at least one vertex per side")
    rng = np.random.default_rng(seed)
    m = int(num_edges * 1.1) + 16
    left = rng.integers(0, num_left, size=m)
    right = rng.integers(0, num_right, size=m)
    return bipartite_from_pairs(
        np.stack([left, right], axis=1),
        num_left=num_left,
        num_right=num_right,
    )


def purchase_bipartite(
    num_users: int,
    num_products: int,
    purchases_per_user: int = 6,
    popularity_exponent: float = 1.6,
    seed: int = 0,
) -> BipartiteGraph:
    """User×product purchase incidence (users left, products right).

    The *unprojected* form of :func:`repro.graph.generators.
    co_purchase_graph` — same popularity power law and basket size, but
    keeping the two-mode structure so (p,q)-biclique counts (q products
    co-engaged by p users) are computable directly.
    """
    if num_users < 1 or num_products < 1:
        raise ValueError("need at least one user and one product")
    rng = np.random.default_rng(seed)
    probs = _powerlaw_probs(num_products, popularity_exponent)
    baskets = rng.choice(
        num_products, size=(num_users, purchases_per_user), p=probs
    )
    users = np.repeat(np.arange(num_users, dtype=np.int64), purchases_per_user)
    return bipartite_from_pairs(
        np.stack([users, baskets.ravel()], axis=1),
        num_left=num_users,
        num_right=num_products,
    )
