"""Edge-list → CSR construction pipeline.

The paper preprocesses raw edge lists into CSR (§2.1).  This module does the
same: symmetrize, drop self-loops, deduplicate, sort adjacency lists, and
pack offsets — all vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE

__all__ = ["edges_to_csr", "csr_from_pairs", "csr_to_undirected_pairs"]


def edges_to_csr(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int | None = None,
    *,
    symmetrize: bool = True,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel ``src``/``dst`` arrays.

    Self-loops are dropped and duplicate edges collapse to one.  When
    ``symmetrize`` is true (the default, matching the paper's undirected
    setting) each input pair contributes both directions.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise GraphFormatError("src and dst must have the same length")

    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    num_vertices = int(num_vertices)
    if len(src) and (
        src.min() < 0 or dst.min() < 0 or src.max() >= num_vertices or dst.max() >= num_vertices
    ):
        raise GraphFormatError("vertex ids out of range [0, num_vertices)")

    keep = src != dst
    src, dst = src[keep], dst[keep]

    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])

    if len(src) == 0:
        offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
        return CSRGraph(offsets, np.empty(0, dtype=VERTEX_DTYPE))

    # Sort by (src, dst) then deduplicate via the combined key.
    key = src * num_vertices + dst
    key = np.unique(key)
    src = key // num_vertices
    dst = key % num_vertices

    counts = np.bincount(src, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets, dst.astype(VERTEX_DTYPE))


def csr_from_pairs(pairs, num_vertices: int | None = None) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs."""
    arr = np.array(list(pairs), dtype=np.int64)
    if arr.size == 0:
        return edges_to_csr(
            np.empty(0, np.int64), np.empty(0, np.int64), num_vertices or 0
        )
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError("pairs must be (u, v) 2-tuples")
    return edges_to_csr(arr[:, 0], arr[:, 1], num_vertices)


def csr_to_undirected_pairs(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(u, v)`` arrays with ``u < v``, one row per undirected edge."""
    src = graph.edge_sources()
    mask = src < graph.dst
    return src[mask].astype(np.int64), graph.dst[mask].astype(np.int64)
