"""Motif counting suite: k-cliques and (p,q)-bicliques behind MotifSpec.

The per-edge intersection machinery the paper builds for common
neighbors generalizes: a :class:`~repro.motif.spec.MotifSpec` names a
structure to derive (oriented DAG, bipartite view), a brute-force
reference, and a set of exact runners reusing the batch kernels.
``GraphSession.count_motif``, ``repro count --motif``, and the serve
layer's ``/count`` all resolve motifs through this registry.
"""

from repro.motif.spec import (
    DEFAULT_MOTIF,
    MotifResult,
    MotifSpec,
    get_motif,
    motif_names,
    motif_specs,
    register_motif,
    unregister_motif,
)
from repro.motif.clique import (
    brute_force_cliques,
    count_cliques,
    orient_dag,
    plan_cliques,
)
from repro.motif.biclique import (
    bicliques_containing_pair,
    brute_force_bicliques,
    count_bicliques,
)

__all__ = [
    "DEFAULT_MOTIF",
    "MotifResult",
    "MotifSpec",
    "get_motif",
    "motif_names",
    "motif_specs",
    "register_motif",
    "unregister_motif",
    "brute_force_cliques",
    "count_cliques",
    "orient_dag",
    "plan_cliques",
    "bicliques_containing_pair",
    "brute_force_bicliques",
    "count_bicliques",
]
