"""MotifSpec: one declarative record per countable motif.

The engine's original workload — all-edge common neighbors — is one
instance of a family: count occurrences of a small structure, using
ordered-adjacency intersection as the primitive.  A :class:`MotifSpec`
captures everything a generic executor needs to run one family member:

* ``structure`` — which derived artifact the runners consume (``graph``
  for per-edge counts, ``dag`` for the degree-oriented CSR cliques
  recurse on, ``bipartite`` for the 2-colored dual-CSR view);
* ``orientation`` — the rule that builds that artifact;
* ``result_shape`` — ``per-edge`` (an array aligned with ``graph.dst``)
  or ``total`` (one integer);
* ``reference`` — the brute-force callable differential checks trust;
* ``runners`` — named execution paths, each bit-exact vs the reference.

Adding a motif is one module defining its runners + reference and one
:func:`register_motif` call — the session, CLI, serve layer, and fuzzer
all discover it through this registry (see ``clique-*`` and
``biclique-*`` below for the pattern).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import AlgorithmError

__all__ = [
    "MotifSpec",
    "MotifResult",
    "register_motif",
    "unregister_motif",
    "get_motif",
    "motif_names",
    "motif_specs",
    "DEFAULT_MOTIF",
]

#: The engine's original workload; ``count --motif`` defaults to it.
DEFAULT_MOTIF = "common-neighbors"


@dataclass(frozen=True)
class MotifSpec:
    """One registered motif with its counters and brute-force anchor."""

    name: str
    family: str  # "edge" | "clique" | "biclique"
    arity: int  # vertices in one motif occurrence
    params: tuple  # (k,) for cliques, (p, q) for bicliques, () for edge
    structure: str  # "graph" | "dag" | "bipartite"
    orientation: str  # how the structure is derived
    result_shape: str  # "per-edge" | "total"
    description: str = ""
    #: brute-force reference: callable(structure_input) -> int
    reference: object = None
    #: name -> callable(structure, **opts) -> int
    runners: dict = field(default_factory=dict)
    default_backend: str = ""

    def runner_names(self) -> list[str]:
        return list(self.runners)


@dataclass(frozen=True)
class MotifResult:
    """Outcome of one :meth:`GraphSession.count_motif` call.

    ``total`` is the motif occurrence count; for the edge family it is
    the triangle total and ``edge_counts`` carries the full per-edge
    :class:`~repro.core.result.EdgeCounts`.
    """

    motif: str
    params: tuple
    total: int
    backend: str
    edge_counts: object = None


_MOTIFS: OrderedDict[str, MotifSpec] = OrderedDict()


def register_motif(spec: MotifSpec, replace: bool = False) -> None:
    if not replace and spec.name in _MOTIFS:
        raise ValueError(f"motif {spec.name!r} is already registered")
    _MOTIFS[spec.name] = spec


def unregister_motif(name: str) -> None:
    _MOTIFS.pop(name, None)


def motif_names() -> list[str]:
    """Registered motif names, in registration order."""
    return list(_MOTIFS)


def motif_specs() -> list[MotifSpec]:
    return list(_MOTIFS.values())


def get_motif(name: str) -> MotifSpec:
    """The spec for ``name``, or :class:`AlgorithmError` listing what is
    supported (the CLI maps it to exit code 4 — never a bare KeyError)."""
    try:
        return _MOTIFS[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown motif {name!r}; supported motifs: {motif_names()}"
        ) from None


# --------------------------------------------------------------------- #
# built-in registrations
# --------------------------------------------------------------------- #
def _register_builtin_motifs() -> None:
    from repro.core.verify import brute_force_counts
    from repro.motif import biclique as bq
    from repro.motif import clique as cq

    register_motif(
        MotifSpec(
            name=DEFAULT_MOTIF,
            family="edge",
            arity=3,
            params=(),
            structure="graph",
            orientation="none (undirected CSR)",
            result_shape="per-edge",
            description="all-edge common neighbor counts (the paper's workload)",
            reference=brute_force_counts,
            # Edge-family runners are the BackendRegistry's counting
            # backends; the session routes them through count().
            runners={},
            default_backend="auto",
        ),
        replace=True,
    )
    for k in (3, 4, 5):
        register_motif(
            MotifSpec(
                name=f"clique-{k}",
                family="clique",
                arity=k,
                params=(k,),
                structure="dag",
                orientation="degree-ascending edge orientation (kClist)",
                result_shape="total",
                description=f"{k}-cliques via ordered DAG intersection",
                reference=(
                    lambda graph, _k=k: cq.brute_force_cliques(graph, _k)
                ),
                runners={
                    name: (
                        lambda dag, _k=k, _fn=fn, **opts: _fn(dag, _k, **opts)
                    )
                    for name, fn in cq.CLIQUE_RUNNERS.items()
                },
                default_backend="bitmap",
            ),
            replace=True,
        )
    for p, q in ((2, 2), (2, 3), (3, 2), (3, 3)):
        register_motif(
            MotifSpec(
                name=f"biclique-{p}-{q}",
                family="biclique",
                arity=p + q,
                params=(p, q),
                structure="bipartite",
                orientation="2-coloring into the dual-CSR bipartite view",
                result_shape="total",
                description=(
                    f"({p},{q})-bicliques via right-row subset emission"
                ),
                reference=(
                    lambda bip, _p=p, _q=q: bq.brute_force_bicliques(
                        bip, _p, _q
                    )
                ),
                runners={
                    name: (
                        lambda bip, _p=p, _q=q, _fn=fn, **opts: _fn(
                            bip, _p, _q, **opts
                        )
                    )
                    for name, fn in bq.BICLIQUE_RUNNERS.items()
                },
                default_backend="hash",
            ),
            replace=True,
        )


_register_builtin_motifs()
