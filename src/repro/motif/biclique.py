"""(p,q)-biclique counting on a :class:`~repro.graph.bipartite.BipartiteGraph`.

A (p,q)-biclique is p left vertices and q right vertices with all p·q
edges present.  Two exact counters (Qiu et al.'s GPU biclique work in
PAPERS.md motivates both shapes):

``hash``
    Subset emission: for every right vertex ``r``, every p-combination
    ``S`` of its left neighbors increments ``co[S]``; afterwards
    ``co[S] = |∩_{u∈S} N(u)|`` and the total is ``Σ_S C(co[S], q)``.
    Cost ``Σ_r C(d_r, p)`` — the right-degree-driven work the
    :func:`repro.kernels.costmodel.biclique_work` estimator prices.
``bitmap``
    Two-hop enumeration: p-subsets are grown left vertex by left vertex
    in ascending id order, carrying the running right-side intersection
    in a mark plane per level; candidates for the next member come only
    from the two-hop neighborhood of the current intersection, so
    subsets with empty intersections are never touched.

Both are validated against :func:`brute_force_bicliques` (direct
p-subset intersection over Python sets) by the differential fuzzer and
the property suite.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from math import comb

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "brute_force_bicliques",
    "count_bicliques",
    "bicliques_containing_pair",
    "biclique_plan_summary",
    "BICLIQUE_RUNNERS",
]

_MAX_P = 3
_MAX_Q = 4


def _check_pq(p: int, q: int) -> None:
    if not (1 <= p <= _MAX_P) or not (1 <= q <= _MAX_Q):
        raise AlgorithmError(
            f"(p,q)-biclique counting supports 1 <= p <= {_MAX_P} and "
            f"1 <= q <= {_MAX_Q}, got ({p}, {q})"
        )


def brute_force_bicliques(bip: BipartiteGraph, p: int, q: int) -> int:
    """Reference count: intersect every p-subset of active left vertices."""
    _check_pq(p, q)
    sets = [
        frozenset(bip.left_neighbors(u).tolist()) for u in range(bip.num_left)
    ]
    active = [u for u in range(bip.num_left) if len(sets[u]) >= q]
    total = 0
    for subset in combinations(active, p):
        common = sets[subset[0]]
        for u in subset[1:]:
            common = common & sets[u]
            if len(common) < q:
                break
        else:
            total += comb(len(common), q)
    return total


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #
def _count_hash(bip: BipartiteGraph, p: int, q: int, **_) -> int:
    co: Counter = Counter()
    for r in range(bip.num_right):
        nbrs = bip.right_neighbors(r).tolist()
        if len(nbrs) >= p:
            co.update(combinations(nbrs, p))
    return sum(comb(c, q) for c in co.values() if c >= q)


def _extend_bitmap(
    bip: BipartiteGraph,
    last: int,
    inter: np.ndarray,
    remaining: int,
    q: int,
    planes,
) -> int:
    if remaining == 0:
        return comb(len(inter), q)
    plane = planes[remaining]
    plane[inter] = True
    # Two-hop candidates: left vertices above ``last`` adjacent to at
    # least one surviving right vertex.
    cands = np.unique(
        np.concatenate(
            [bip.right_neighbors(int(r)) for r in inter.tolist()]
        )
    )
    cands = cands[cands > last]
    total = 0
    for w in cands.tolist():
        nw = bip.left_neighbors(w)
        ni = nw[plane[nw]]
        if len(ni) >= q:
            total += _extend_bitmap(bip, w, ni, remaining - 1, q, planes)
    plane[inter] = False
    return total


def _count_bitmap(bip: BipartiteGraph, p: int, q: int, **_) -> int:
    planes = {d: np.zeros(bip.num_right, dtype=bool) for d in range(1, p)}
    total = 0
    for u in range(bip.num_left):
        inter = bip.left_neighbors(u)
        if len(inter) < q:
            continue
        if p == 1:
            total += comb(len(inter), q)
        else:
            total += _extend_bitmap(bip, u, inter, p - 1, q, planes)
    return total


BICLIQUE_RUNNERS = {
    "hash": _count_hash,
    "bitmap": _count_bitmap,
}


def count_bicliques(
    bip: BipartiteGraph, p: int, q: int, backend: str = "hash", **_
) -> int:
    """Count (p,q)-bicliques through the named runner."""
    _check_pq(p, q)
    runner = BICLIQUE_RUNNERS.get(backend)
    if runner is None:
        raise AlgorithmError(
            f"unknown biclique backend {backend!r}; "
            f"choose from {sorted(BICLIQUE_RUNNERS)}"
        )
    return runner(bip, p, q)


def bicliques_containing_pair(
    bip: BipartiteGraph, r1: int, r2: int, p: int = 2
) -> int:
    """(p, 2)-bicliques whose right side is exactly ``{r1, r2}``.

    The co-engagement primitive: ``C(|N(r1) ∩ N(r2)|, p)`` distinct
    p-subsets of shared left neighbors, each forming one biclique with
    the fixed right pair.  Used by
    :func:`repro.apps.recommend.co_engagement`.
    """
    if r1 == r2:
        raise ValueError("the right pair must be two distinct vertices")
    common = np.intersect1d(
        bip.right_neighbors(r1), bip.right_neighbors(r2), assume_unique=True
    )
    return comb(len(common), p)


def biclique_plan_summary(bip: BipartiteGraph, p: int, q: int) -> str:
    """Human-readable work summary (``repro plan --motif biclique-p-q``)."""
    from repro.kernels.costmodel import biclique_work

    _check_pq(p, q)
    work = biclique_work(bip.right_degrees, p, q)
    d = bip.right_degrees
    emissions = work.total("branch_ops")
    lines = [
        f"motif biclique-{p}-{q}: |L|={bip.num_left} |R|={bip.num_right} "
        f"|E|={bip.num_edges}",
        f"  right degrees  : max {int(d.max()) if len(d) else 0}, "
        f"mean {float(d.mean()) if len(d) else 0.0:.2f}",
        f"  subset emits   : {emissions:,.0f} (Σ_r C(d_r, {p}))",
        f"  predicted work : {work.total('scalar_ops'):,.0f} scalar ops, "
        f"{work.total('seq_words'):,.0f} words streamed",
    ]
    return "\n".join(lines)
