"""k-clique counting over a degree-ordered DAG (k ∈ {3, 4, 5}).

The kClist construction (Danisch et al.; Almasri et al.'s GPU variant in
PAPERS.md): orient every undirected edge from its lower-ranked endpoint
to its higher-ranked endpoint under a degree-ascending total order, so
low-degree vertices point at hubs and out-degrees stay small.  Every
k-clique then appears exactly once as a root vertex plus a
(k−1)-clique inside its out-neighborhood, and the per-level candidate
intersection is the *same* sorted-adjacency intersection primitive the
common-neighbor kernels already implement — which is why the ``bitmap``
and ``hybrid`` runners below call straight into
:mod:`repro.kernels.batch` / :mod:`repro.kernels.batchsearch` (and the
compiled gallop kernel when available) for the k=3 base case and the
per-edge seeding of deeper recursions.

Runners (all bit-exact, cross-checked by the differential fuzzer):

``merge``
    Sequential reference: per-level ``np.intersect1d`` recursion.
``bitmap``
    Mark-plane intersection; k=3 runs the production BMP batch kernel
    over the DAG's edge offsets.
``hybrid``
    The planner path: DAG edges are priced by
    :func:`repro.kernels.costmodel.clique_work`, bucketed into
    gallop/bitmap by degree skew exactly like the common-neighbor
    planner, and each bucket seeds the recursion through its kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = [
    "orient_dag",
    "brute_force_cliques",
    "count_cliques",
    "CliquePlan",
    "plan_cliques",
    "CLIQUE_RUNNERS",
    "DEFAULT_SKEW_THRESHOLD",
]

#: Degree-skew ratio above which a DAG edge's base intersection goes to
#: the galloping kernel (mirrors the common-neighbor planner's default).
DEFAULT_SKEW_THRESHOLD = 50.0

_SUPPORTED_K = (3, 4, 5)


def orient_dag(graph: CSRGraph) -> CSRGraph:
    """Orient ``graph`` into a DAG CSR under the degree-ascending order.

    Each undirected edge is kept only in the direction from the endpoint
    earlier in (degree, id) order to the later one.  The result is a
    valid (asymmetric) :class:`CSRGraph` whose rows remain sorted by
    vertex id — exactly what the batch intersection kernels require —
    with out-degree bounded by the graph's degeneracy-style ordering, so
    deeper clique levels intersect small candidate sets.
    """
    n = graph.num_vertices
    deg = graph.degrees.astype(np.int64)
    order = np.argsort(deg, kind="stable")  # ascending degree, ties by id
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    src = graph.edge_sources()
    keep = rank[src] < rank[graph.dst]
    out_deg = np.bincount(src[keep].astype(np.int64), minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_deg, out=offsets[1:])
    return CSRGraph(offsets, graph.dst[keep])


def brute_force_cliques(graph: CSRGraph, k: int) -> int:
    """Reference count by id-ordered set recursion (trusted by inspection).

    Enumerates cliques with vertices in ascending *id* order — a
    different total order than :func:`orient_dag`'s degree order, so the
    reference shares no orientation code with the runners it checks.
    """
    _check_k(k)
    n = graph.num_vertices
    adj = [set(graph.neighbors(u).tolist()) for u in range(n)]

    def extend(cand: set, depth: int) -> int:
        if depth == 1:
            return len(cand)
        total = 0
        for v in cand:
            total += extend({w for w in cand & adj[v] if w > v}, depth - 1)
        return total

    return sum(
        extend({v for v in adj[u] if v > u}, k - 1) for u in range(n)
    )


def _check_k(k: int) -> None:
    if k not in _SUPPORTED_K:
        raise AlgorithmError(
            f"k-clique counting supports k in {list(_SUPPORTED_K)}, got {k}"
        )


def _dag_edge_endpoints(dag: CSRGraph):
    src = dag.edge_sources()
    return src, dag.dst


# --------------------------------------------------------------------- #
# recursion helpers
# --------------------------------------------------------------------- #
def _extend_merge(dag: CSRGraph, cand: np.ndarray, depth: int) -> int:
    """Cliques of ``depth`` vertices inside ``cand`` (sorted DAG ids)."""
    if depth == 1:
        return len(cand)
    total = 0
    for v in cand.tolist():
        nxt = np.intersect1d(cand, dag.neighbors(v), assume_unique=True)
        if len(nxt) >= depth - 1:
            total += _extend_merge(dag, nxt, depth - 1)
    return total


def _extend_marked(dag: CSRGraph, cand: np.ndarray, depth: int, planes) -> int:
    """Same recursion with one mark plane per level (no sort/merge cost)."""
    if depth == 1:
        return len(cand)
    plane = planes[depth]
    plane[cand] = True
    total = 0
    for v in cand.tolist():
        nbrs = dag.neighbors(v)
        nxt = nbrs[plane[nbrs]]
        if len(nxt) >= depth - 1:
            total += _extend_marked(dag, nxt, depth - 1, planes)
    plane[cand] = False
    return total


def _make_planes(n: int, k: int) -> dict[int, np.ndarray]:
    return {d: np.zeros(n, dtype=bool) for d in range(2, k)}


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #
def _count_merge(dag: CSRGraph, k: int, **_) -> int:
    total = 0
    for u in range(dag.num_vertices):
        nbrs = dag.neighbors(u)
        if len(nbrs) >= k - 1:
            total += _extend_merge(dag, nbrs, k - 1)
    return total


def _count_bitmap(dag: CSRGraph, k: int, **_) -> int:
    from repro.kernels import batch

    if k == 3:
        # Triangles = Σ over DAG edges |N⁺(u) ∩ N⁺(v)|: exactly the BMP
        # batch kernel run on the DAG's own (asymmetric) adjacency.
        cnt = np.zeros(dag.num_directed_edges, dtype=np.int64)
        eo = np.arange(dag.num_directed_edges, dtype=np.int64)
        if len(eo):
            batch.count_edges_bitmap(dag, eo, cnt)
        return int(cnt.sum())
    planes = _make_planes(dag.num_vertices, k)
    total = 0
    for u in range(dag.num_vertices):
        nbrs = dag.neighbors(u)
        if len(nbrs) >= k - 1:
            total += _extend_marked(dag, nbrs, k - 1, planes)
    return total


def _bucket_edges(dag: CSRGraph, skew_threshold: float):
    """Split DAG edge offsets into (gallop, bitmap) buckets by out-degree
    skew — the same rule the common-neighbor planner applies to its
    undirected edges, here on the oriented out-degrees."""
    src, dst = _dag_edge_endpoints(dag)
    d = dag.degrees.astype(np.float64)
    du, dv = d[src], d[dst]
    ratio = np.maximum(du, dv) / np.maximum(np.minimum(du, dv), 1.0)
    skewed = ratio > skew_threshold
    eo = np.arange(dag.num_directed_edges, dtype=np.int64)
    return eo[skewed], eo[~skewed]


def _count_hybrid(
    dag: CSRGraph, k: int, *, skew_threshold: float | None = None, **_
) -> int:
    """Planner path: per-edge kernel choice for the base intersection.

    k=3 reduces entirely to batch kernels over the two buckets (the
    compiled gallop kernel when the host has it); k≥4 seeds the marked
    recursion from each edge's bucket-computed intersection.
    """
    from repro import compiled
    from repro.kernels import batch, batchsearch

    threshold = (
        DEFAULT_SKEW_THRESHOLD if skew_threshold is None else float(skew_threshold)
    )
    gallop_eo, bitmap_eo = _bucket_edges(dag, threshold)
    if k == 3:
        total = 0
        if len(gallop_eo):
            if compiled.available():
                vals = compiled.count_edges_galloping_compiled(dag, gallop_eo)
            else:
                vals = batchsearch.count_edges_galloping(dag, gallop_eo)
            total += int(np.asarray(vals).sum())
        if len(bitmap_eo):
            cnt = np.zeros(dag.num_directed_edges, dtype=np.int64)
            batch.count_edges_bitmap(dag, bitmap_eo, cnt)
            total += int(cnt.sum())
        return total

    src, dst = _dag_edge_endpoints(dag)
    planes = _make_planes(dag.num_vertices, k)
    seed_plane = np.zeros(dag.num_vertices, dtype=bool)
    total = 0
    # Gallop bucket: sorted-array intersection per skewed edge.
    for i in gallop_eo.tolist():
        w = np.intersect1d(
            dag.neighbors(int(src[i])),
            dag.neighbors(int(dst[i])),
            assume_unique=True,
        )
        if len(w) >= k - 2:
            total += _extend_marked(dag, w, k - 2, planes)
    # Bitmap bucket: mark N⁺(u) once per source row, probe each dst row.
    order = np.argsort(src[bitmap_eo], kind="stable")
    grouped = bitmap_eo[order]
    i = 0
    while i < len(grouped):
        u = int(src[grouped[i]])
        row = dag.neighbors(u)
        seed_plane[row] = True
        j = i
        while j < len(grouped) and int(src[grouped[j]]) == u:
            nbrs = dag.neighbors(int(dst[grouped[j]]))
            w = nbrs[seed_plane[nbrs]]
            if len(w) >= k - 2:
                total += _extend_marked(dag, w, k - 2, planes)
            j += 1
        seed_plane[row] = False
        i = j
    return total


CLIQUE_RUNNERS = {
    "merge": _count_merge,
    "bitmap": _count_bitmap,
    "hybrid": _count_hybrid,
}


def count_cliques(
    graph: CSRGraph,
    k: int,
    backend: str = "merge",
    *,
    dag: CSRGraph | None = None,
    skew_threshold: float | None = None,
) -> int:
    """Count k-cliques of ``graph`` through the named runner.

    ``dag`` lets a session pass its memoized oriented CSR; otherwise the
    orientation is built here.
    """
    _check_k(k)
    runner = CLIQUE_RUNNERS.get(backend)
    if runner is None:
        raise AlgorithmError(
            f"unknown clique backend {backend!r}; "
            f"choose from {sorted(CLIQUE_RUNNERS)}"
        )
    if dag is None:
        dag = orient_dag(graph)
    return runner(dag, k, skew_threshold=skew_threshold)


# --------------------------------------------------------------------- #
# planner surface (``repro plan --motif clique-k``)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CliquePlan:
    """Bucketed DAG-edge plan for one k-clique count."""

    k: int
    dag_edges: int
    gallop_edges: int
    bitmap_edges: int
    skew_threshold: float
    predicted_scalar_ops: float
    predicted_words: float

    def format(self) -> str:
        lines = [
            f"motif clique-{self.k}: {self.dag_edges} oriented DAG edges "
            f"(skew threshold {self.skew_threshold:g})",
            f"  gallop bucket  : {self.gallop_edges:>8d} edges",
            f"  bitmap bucket  : {self.bitmap_edges:>8d} edges",
            f"  predicted work : {self.predicted_scalar_ops:,.0f} scalar ops, "
            f"{self.predicted_words:,.0f} words touched",
        ]
        return "\n".join(lines)


def plan_cliques(
    graph: CSRGraph,
    k: int,
    *,
    dag: CSRGraph | None = None,
    skew_threshold: float | None = None,
) -> CliquePlan:
    """Price and bucket the DAG edges without running the count."""
    from repro.kernels.costmodel import clique_work, dag_edge_set

    _check_k(k)
    if dag is None:
        dag = orient_dag(graph)
    threshold = (
        DEFAULT_SKEW_THRESHOLD if skew_threshold is None else float(skew_threshold)
    )
    gallop_eo, bitmap_eo = _bucket_edges(dag, threshold)
    es = dag_edge_set(dag)
    work = clique_work(es, k)
    return CliquePlan(
        k=k,
        dag_edges=dag.num_directed_edges,
        gallop_edges=len(gallop_eo),
        bitmap_edges=len(bitmap_eo),
        skew_threshold=threshold,
        predicted_scalar_ops=work.total("scalar_ops"),
        predicted_words=work.total("seq_words") + work.total("rand_words"),
    )
