"""Numba provider: the same three hot loops as ``@njit`` machine code.

Imported only after :mod:`repro.compiled` has confirmed numba is
importable, so this module may assume the dependency.  The kernels are
compiled with ``cache=True`` (on-disk jit cache — the second process
pays no compile latency) and ``nogil=True`` so the serving layer's
dispatch threads can overlap kernel execution.

Loop structure deliberately mirrors :data:`repro.compiled._ccjit.
KERNEL_SOURCE` line for line — two providers, one algorithm, so the
differential fuzzer validates whichever the host selected.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["gallop_counts", "lower_bound_batch", "bitmap_counts"]


@njit(cache=True, nogil=True)
def _lower_bound(b, lo, hi, target):
    while lo < hi:
        mid = (lo + hi) >> 1
        if b[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True, nogil=True)
def _gallop_lower_bound(b, pos, n, target):
    if pos >= n or b[pos] >= target:
        return pos
    bound = 1
    while pos + bound < n and b[pos + bound] < target:
        bound <<= 1
    lo = pos + (bound >> 1)
    hi = min(pos + bound, n)
    return _lower_bound(b, lo, hi, target)


@njit(cache=True, nogil=True)
def gallop_counts(offsets, dst, small, large, out):
    for i in range(len(small)):
        a_lo = offsets[small[i]]
        na = offsets[small[i] + 1] - a_lo
        b_lo = offsets[large[i]]
        nb = offsets[large[i] + 1] - b_lo
        b = dst[b_lo : b_lo + nb]
        cnt = 0
        pos = 0
        for j in range(na):
            if pos >= nb:
                break
            t = dst[a_lo + j]
            pos = _gallop_lower_bound(b, pos, nb, t)
            if pos < nb and b[pos] == t:
                cnt += 1
                pos += 1
        out[i] = cnt


@njit(cache=True, nogil=True)
def lower_bound_batch(hay, lo, hi, targets, out):
    for i in range(len(targets)):
        out[i] = _lower_bound(hay, lo[i], hi[i], targets[i])


@njit(cache=True, nogil=True)
def bitmap_counts(offsets, dst, src, eo, mark, out):
    cur = np.int64(-1)
    for i in range(len(eo)):
        u = src[i]
        if u != cur:
            if cur >= 0:
                for k in range(offsets[cur], offsets[cur + 1]):
                    mark[dst[k]] = 0
            for k in range(offsets[u], offsets[u + 1]):
                mark[dst[k]] = 1
            cur = u
        v = dst[eo[i]]
        cnt = 0
        for k in range(offsets[v], offsets[v + 1]):
            cnt += mark[dst[k]]
        out[i] = cnt
    if cur >= 0:
        for k in range(offsets[cur], offsets[cur + 1]):
            mark[dst[k]] = 0
