"""Compiled variants of the per-edge intersection hot loops.

The paper's premise is that all-edge common neighbor counting is bound
by the raw speed of the intersection inner loops; everything else in
this reproduction orchestrates NumPy dispatches around them.  This
package drops the interpreter from those loops entirely.  Three kernels
are provided — the galloping (exponential + binary lower bound)
intersection, the batched lower-bound search, and the BMP mark/probe
loop — through whichever *provider* the host supports:

``numba``
    ``@njit``-compiled machine code (preferred: vendor-tested codegen,
    on-disk jit cache, ``nogil`` so serving dispatch threads overlap).
``cc``
    The same loops as one small C translation unit, compiled on first
    use with the system C compiler and bound via ctypes
    (:mod:`repro.compiled._ccjit`) — covers images that ship a
    toolchain but no numba wheel.

When neither dependency exists the package still imports cleanly and
:func:`available` answers ``False``: the registry entries built on top
of it (``gallop-compiled``/``bitmap-compiled`` in
:mod:`repro.engine.registry`) are declared unavailable, the fuzzer
skips them, and every interpreted path behaves exactly as before.

Selection is automatic (numba, else cc, else unavailable) and can be
forced with ``REPRO_COMPILED=numba|cc|off`` for debugging and the
optional-dependency CI matrix.

All kernels are **bit-exact** against their interpreted counterparts
(:mod:`repro.kernels.batchsearch`, :mod:`repro.kernels.batch`) — the
differential fuzzer cross-checks them on every registered path.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph

__all__ = [
    "provider",
    "available",
    "unavailable_reason",
    "require",
    "reset_provider_cache",
    "count_edges_galloping_compiled",
    "count_edges_bitmap_compiled",
    "batched_lower_bound_compiled",
]

_UNSET = object()
_provider = _UNSET
_impl = None


def _probe_numba():
    try:
        from repro.compiled import _numbajit
    except ImportError:
        return None
    return _numbajit


def _probe_cc():
    from repro.compiled import _ccjit

    lib = _ccjit.load()
    if lib is None:
        return None

    class _CCImpl:
        @staticmethod
        def gallop_counts(offsets, dst, small, large, out):
            lib.repro_gallop_counts(offsets, dst, small, large, len(small), out)

        @staticmethod
        def lower_bound_batch(hay, lo, hi, targets, out):
            lib.repro_lower_bound_batch(hay, lo, hi, targets, len(targets), out)

        @staticmethod
        def bitmap_counts(offsets, dst, src, eo, mark, out):
            lib.repro_bitmap_counts(offsets, dst, src, eo, len(eo), mark, out)

    return _CCImpl


def provider() -> str | None:
    """The selected provider name (``"numba"``/``"cc"``) or ``None``.

    Resolution order is numba, then the system C toolchain; the
    ``REPRO_COMPILED`` environment variable forces one provider
    (``numba``/``cc``) or disables compilation outright (``off``).  The
    probe result is cached for the process (see
    :func:`reset_provider_cache`).
    """
    global _provider, _impl
    if _provider is not _UNSET:
        return _provider
    forced = os.environ.get("REPRO_COMPILED", "auto").strip().lower()
    candidates = {
        "auto": (("numba", _probe_numba), ("cc", _probe_cc)),
        "numba": (("numba", _probe_numba),),
        "cc": (("cc", _probe_cc),),
    }.get(forced, ())
    if forced in ("off", "0", "none", "false"):
        candidates = ()
    _provider, _impl = None, None
    for name, probe in candidates:
        impl = probe()
        if impl is not None:
            _provider, _impl = name, impl
            break
    return _provider


def available() -> bool:
    """True when a compiled provider is usable on this host."""
    return provider() is not None


def unavailable_reason() -> str | None:
    """Why no compiled provider is usable (``None`` when one is)."""
    if available():
        return None
    forced = os.environ.get("REPRO_COMPILED", "auto").strip().lower()
    if forced in ("off", "0", "none", "false"):
        return "compiled kernels disabled via REPRO_COMPILED=off"
    return (
        "no compiled-kernel provider: numba is not installed and no "
        "working C compiler (cc/gcc/clang) was found"
    )


def require():
    """The selected provider implementation, or raise with the reason."""
    if not available():
        raise AlgorithmError(unavailable_reason())
    return _impl


def reset_provider_cache() -> None:
    """Forget the cached provider probe (tests flip ``REPRO_COMPILED``)."""
    global _provider, _impl
    _provider = _UNSET
    _impl = None


# --------------------------------------------------------------------- #
# public kernels (thin array-prep wrappers over the provider loops)
# --------------------------------------------------------------------- #
def count_edges_galloping_compiled(
    graph: CSRGraph, edge_offsets: np.ndarray
) -> np.ndarray:
    """Compiled counterpart of :func:`~repro.kernels.batchsearch.
    count_edges_galloping`: counts for the given ``u < v`` edge offsets.

    Per edge, every element of the smaller endpoint's neighbor list is
    located in the larger endpoint's list by a galloping search resuming
    from the previous match — ``O(d_small · log(d_large / d_small))``
    with no interpreter in the loop.  Returns int64 counts aligned with
    ``edge_offsets``.
    """
    impl = require()
    eo = np.ascontiguousarray(edge_offsets, dtype=np.int64)
    out = np.zeros(len(eo), dtype=np.int64)
    if len(eo) == 0:
        return out
    offsets = graph.offsets
    deg = graph.degrees
    u = np.searchsorted(offsets, eo, side="right") - 1
    v = graph.dst[eo].astype(np.int64)
    swap = deg[v] < deg[u]
    small = np.ascontiguousarray(np.where(swap, v, u), dtype=np.int64)
    large = np.ascontiguousarray(np.where(swap, u, v), dtype=np.int64)
    impl.gallop_counts(offsets, graph.dst, small, large, out)
    return out


def count_edges_bitmap_compiled(
    graph: CSRGraph,
    edge_offsets: np.ndarray,
    cnt: np.ndarray,
    *,
    aligned: bool = False,
) -> None:
    """Compiled counterpart of :func:`~repro.kernels.batch.
    count_edges_bitmap`: BMP counts written into ``cnt``.

    ``edge_offsets`` must be sorted ascending (source-grouped, as
    :meth:`GraphSession.upper_edge_offsets` and the planner's buckets
    produce them): the kernel marks each source's neighborhood exactly
    once per run of edges sharing it, probes every ``N(v)`` against the
    byte-per-vertex mark array, and clears only the marks it set.  With
    ``aligned=True`` the result lands at ``cnt[i]`` instead of
    ``cnt[edge_offsets[i]]`` (compact per-chunk buffers).
    """
    impl = require()
    eo = np.ascontiguousarray(edge_offsets, dtype=np.int64)
    if len(eo) == 0:
        return
    offsets = graph.offsets
    src = np.searchsorted(offsets, eo, side="right") - 1
    src = np.ascontiguousarray(src, dtype=np.int64)
    mark = np.zeros(graph.num_vertices, dtype=np.uint8)
    out = np.zeros(len(eo), dtype=np.int64)
    impl.bitmap_counts(offsets, graph.dst, src, eo, mark, out)
    if aligned:
        cnt[: len(eo)] = out
    else:
        cnt[eo] = out


def batched_lower_bound_compiled(
    haystack: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Compiled counterpart of :func:`~repro.kernels.batchsearch.
    batched_lower_bound` for vertex-valued (int32) haystacks.

    Each lane runs an independent binary search of ``targets[i]`` in
    ``haystack[lo[i]:hi[i]]``; unlike the lockstep NumPy version, lanes
    that converge early cost nothing.
    """
    impl = require()
    hay = np.ascontiguousarray(haystack, dtype=np.int32)
    lo = np.ascontiguousarray(lo, dtype=np.int64)
    hi = np.ascontiguousarray(hi, dtype=np.int64)
    tgt = np.ascontiguousarray(targets, dtype=np.int32)
    out = np.empty(len(tgt), dtype=np.int64)
    if len(tgt):
        impl.lower_bound_batch(hay, lo, hi, tgt, out)
    return out
