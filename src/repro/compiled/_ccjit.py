"""C-toolchain provider: compile the hot loops once, load via ctypes.

Numba is the preferred provider (:mod:`repro.compiled._numbajit`), but
many deployment images carry a system C compiler and no numba wheel.
This module embeds the three hot loops as one small C translation unit,
compiles it on first use with whatever ``cc`` the platform offers
(``-O3 -shared -fPIC``), and binds the symbols through :mod:`ctypes`
with :func:`numpy.ctypeslib.ndpointer` signatures.

The build is cached on disk keyed by a SHA-256 of the source, so the
compiler runs once per source revision per machine, not once per
process.  Every failure mode — no compiler, sandboxed tmpdir, linker
error — degrades to "provider unavailable" rather than an exception:
callers consult :func:`load` and fall back to the interpreted kernels.

Array layouts match :class:`~repro.graph.csr.CSRGraph` exactly:
``offsets`` is int64, the adjacency array ``dst`` (and therefore every
search target) is int32, counts are int64.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

__all__ = ["load", "build_dir", "KERNEL_SOURCE"]

#: The hot loops, exactly mirroring the numba provider: a per-edge
#: galloping intersection (exponential + binary lower bound, resuming
#: from the previous match position), a batched lower-bound search, and
#: the BMP mark/probe loop over source-grouped edges.
KERNEL_SOURCE = r"""
#include <stdint.h>

/* Lower bound of `target` in sorted b[lo, hi). */
static int64_t lower_bound(const int32_t *b, int64_t lo, int64_t hi,
                           int32_t target)
{
    while (lo < hi) {
        int64_t mid = (int64_t)(((uint64_t)lo + (uint64_t)hi) >> 1);
        if (b[mid] < target) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* Galloping (exponential) lower bound resuming from `pos`. */
static int64_t gallop_lower_bound(const int32_t *b, int64_t pos, int64_t n,
                                  int32_t target)
{
    int64_t bound, lo, hi;
    if (pos >= n || b[pos] >= target) return pos;
    bound = 1;
    while (pos + bound < n && b[pos + bound] < target) bound <<= 1;
    lo = pos + (bound >> 1);
    hi = pos + bound < n ? pos + bound : n;
    return lower_bound(b, lo, hi, target);
}

/* |N(small[i]) ∩ N(large[i])| for m vertex pairs: every element of the
 * smaller adjacency list is located in the larger one by a galloping
 * search that never moves backwards (both lists ascend). */
void repro_gallop_counts(const int64_t *offsets, const int32_t *dst,
                         const int64_t *small, const int64_t *large,
                         int64_t m, int64_t *out)
{
    for (int64_t i = 0; i < m; ++i) {
        const int32_t *a = dst + offsets[small[i]];
        int64_t na = offsets[small[i] + 1] - offsets[small[i]];
        const int32_t *b = dst + offsets[large[i]];
        int64_t nb = offsets[large[i] + 1] - offsets[large[i]];
        int64_t cnt = 0, pos = 0;
        for (int64_t j = 0; j < na && pos < nb; ++j) {
            pos = gallop_lower_bound(b, pos, nb, a[j]);
            if (pos < nb && b[pos] == a[j]) { ++cnt; ++pos; }
        }
        out[i] = cnt;
    }
}

/* Independent lower-bound searches: out[i] = smallest j in [lo[i], hi[i])
 * with hay[j] >= targets[i] (hi[i] when none). */
void repro_lower_bound_batch(const int32_t *hay, const int64_t *lo,
                             const int64_t *hi, const int32_t *targets,
                             int64_t m, int64_t *out)
{
    for (int64_t i = 0; i < m; ++i)
        out[i] = lower_bound(hay, lo[i], hi[i], targets[i]);
}

/* BMP mark/probe over edges pre-sorted by source vertex: mark N(u) once
 * per source run, probe each edge's N(v) against the mark array.  The
 * caller provides `mark` as |V| zeroed bytes; it is returned zeroed. */
void repro_bitmap_counts(const int64_t *offsets, const int32_t *dst,
                         const int64_t *src, const int64_t *eo,
                         int64_t m, uint8_t *mark, int64_t *out)
{
    int64_t cur = -1;
    for (int64_t i = 0; i < m; ++i) {
        int64_t u = src[i];
        if (u != cur) {
            if (cur >= 0)
                for (int64_t k = offsets[cur]; k < offsets[cur + 1]; ++k)
                    mark[dst[k]] = 0;
            for (int64_t k = offsets[u]; k < offsets[u + 1]; ++k)
                mark[dst[k]] = 1;
            cur = u;
        }
        int32_t v = dst[eo[i]];
        int64_t cnt = 0;
        for (int64_t k = offsets[v]; k < offsets[v + 1]; ++k)
            cnt += mark[dst[k]];
        out[i] = cnt;
    }
    if (cur >= 0)
        for (int64_t k = offsets[cur]; k < offsets[cur + 1]; ++k)
            mark[dst[k]] = 0;
}
"""

#: Compilers tried in order; the first one on PATH that links wins.
_COMPILERS = ("cc", "gcc", "clang")


def build_dir() -> str:
    """Directory holding compiled kernel libraries (override via env)."""
    custom = os.environ.get("REPRO_COMPILED_CACHE")
    if custom:
        return custom
    return os.path.join(tempfile.gettempdir(), "repro-compiled")


def _compile(so_path: str) -> bool:
    os.makedirs(os.path.dirname(so_path), exist_ok=True)
    c_path = so_path[: -len(".so")] + ".c"
    tmp_so = f"{so_path}.{os.getpid()}.tmp"
    with open(c_path, "w") as fh:
        fh.write(KERNEL_SOURCE)
    for compiler in _COMPILERS:
        try:
            proc = subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp_so, c_path],
                capture_output=True,
                timeout=120,
            )
        except (OSError, subprocess.TimeoutExpired):
            continue
        if proc.returncode == 0:
            os.replace(tmp_so, so_path)  # atomic vs concurrent builders
            return True
    if os.path.exists(tmp_so):  # pragma: no cover - failed link leftovers
        os.unlink(tmp_so)
    return False


_i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_i32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_u8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")

_SIGNATURES = {
    "repro_gallop_counts": [_i64, _i32, _i64, _i64, ctypes.c_int64, _i64],
    "repro_lower_bound_batch": [_i32, _i64, _i64, _i32, ctypes.c_int64, _i64],
    "repro_bitmap_counts": [_i64, _i32, _i64, _i64, ctypes.c_int64, _u8, _i64],
}

_LIB: ctypes.CDLL | None = None
_LOAD_FAILED = False


def load() -> ctypes.CDLL | None:
    """The compiled kernel library, building it on first use.

    Returns ``None`` (and remembers the failure for the process) when no
    working compiler is available or loading fails — the capability
    probe the provider selection in :mod:`repro.compiled` relies on.
    """
    global _LIB, _LOAD_FAILED
    if _LIB is not None or _LOAD_FAILED:
        return _LIB
    digest = hashlib.sha256(KERNEL_SOURCE.encode()).hexdigest()[:16]
    so_path = os.path.join(build_dir(), f"repro_kernels_{digest}.so")
    try:
        if not os.path.exists(so_path) and not _compile(so_path):
            _LOAD_FAILED = True
            return None
        lib = ctypes.CDLL(so_path)
        for name, argtypes in _SIGNATURES.items():
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = None
    except (OSError, AttributeError):  # pragma: no cover - host-specific
        _LOAD_FAILED = True
        return None
    _LIB = lib
    return _LIB
