"""Batched lower-bound search: many independent searches per NumPy dispatch.

The scalar ``LowerBound`` kernels in :mod:`repro.kernels.lowerbound` run
one search at a time — fine for instrumentation, hopeless as a production
path in CPython.  This module is their *batched* counterpart: every lane
(one element of one skewed intersection) advances through the same
bisection rounds in lockstep, the way the paper's GPU executes PS across a
warp.  One round is a handful of whole-array NumPy operations, so the
per-element interpreter overhead is amortized over the entire batch.

:func:`count_edges_galloping` builds on it to intersect *many* degree-skewed
edges at once: for each edge the smaller endpoint's neighbor list is
searched inside the larger endpoint's adjacency segment of ``graph.dst``,
``O(d_small · log d_large)`` work per edge — the pivot-skip economics that
make MPS win on skewed graphs, without a per-edge Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import OpCounts

__all__ = [
    "batched_lower_bound",
    "count_edges_galloping",
]

#: Flat search lanes processed per dispatch; bounds the working-set memory
#: of the lockstep arrays (~7 int64 temporaries per lane).
LANE_BLOCK = 1 << 21


def batched_lower_bound(
    haystack: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    targets: np.ndarray,
    ops: OpCounts | None = None,
) -> np.ndarray:
    """Vectorized lower bound over many ``[lo[i], hi[i])`` segments.

    For each lane ``i`` returns the smallest index ``j`` in
    ``[lo[i], hi[i])`` with ``haystack[j] >= targets[i]`` (``hi[i]`` when no
    such element).  Each segment must be sorted ascending; segments may
    overlap and differ in length.  All lanes bisect in lockstep:
    ``ceil(log2(max segment length))`` rounds of whole-array operations.

    When an :class:`~repro.types.OpCounts` is passed, each bisection step
    of each *active* lane (one not yet converged to ``lo == hi``) charges
    one ``binary_steps`` and one ``rand_words`` — the haystack word the
    step gathers.  Lanes that start empty (``lo == hi``) charge nothing,
    matching the scalar ``LowerBound`` kernels' immediate exit.
    """
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    if len(lo) == 0:
        return lo
    span = int((hi - lo).max())
    if span <= 0:
        return lo
    mid = np.empty_like(lo)
    for _ in range(span.bit_length()):
        active = lo < hi
        if ops is not None:
            stepped = int(np.count_nonzero(active))
            ops.binary_steps += stepped
            ops.rand_words += stepped
        np.add(lo, hi, out=mid)
        mid >>= 1
        # Inactive lanes park on index 0 — harmless gather, result masked.
        np.multiply(mid, active, out=mid)
        go_right = haystack[mid] < targets
        lo = np.where(active & go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    return lo


def _segment_starts(lens: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: start of each segment in the flat layout."""
    return np.cumsum(lens) - lens


def _flat_gather_index(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenation of ``[starts[i], starts[i] + lens[i])`` as one vector."""
    total = int(lens.sum())
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - _segment_starts(lens), lens)
    return flat


def count_edges_galloping(
    graph: CSRGraph, edge_offsets: np.ndarray, ops: OpCounts | None = None
) -> np.ndarray:
    """Common neighbor counts for the given ``u < v`` edge offsets.

    The intersection of each edge runs as a batch of lower-bound searches:
    every element of the smaller endpoint's neighbor list is located inside
    the larger endpoint's adjacency segment, then hits are segment-summed
    per edge.  Intended for the planner's degree-skewed bucket, where
    ``d_small · log2(d_large)`` beats both the bitmap gather
    (``O(d_large)``) and the SpGEMM row share.

    When an :class:`~repro.types.OpCounts` is passed, the search work is
    charged to it: every needle element streamed charges one ``seq_words``,
    bisection steps charge through :func:`batched_lower_bound`
    (``binary_steps`` + ``rand_words``), the per-lane verification probe
    charges one ``rand_words`` and one ``comparisons``, and each confirmed
    common neighbor charges one ``matches`` — so ``ops.matches`` always
    equals the returned counts' total.

    Returns an int64 array aligned with ``edge_offsets``.
    """
    edge_offsets = np.asarray(edge_offsets, dtype=np.int64)
    out = np.zeros(len(edge_offsets), dtype=np.int64)
    if len(edge_offsets) == 0:
        return out

    offsets = graph.offsets
    dst = graph.dst
    deg = graph.degrees
    u = np.searchsorted(offsets, edge_offsets, side="right") - 1
    v = dst[edge_offsets].astype(np.int64)
    swap = deg[v] < deg[u]
    small = np.where(swap, v, u)
    large = np.where(swap, u, v)
    lens = deg[small]

    # Block over edges so the flat lane arrays stay memory-bounded.
    csum = np.cumsum(lens)
    blk_lo = 0
    while blk_lo < len(edge_offsets):
        base = int(csum[blk_lo] - lens[blk_lo])
        blk_hi = int(np.searchsorted(csum, base + LANE_BLOCK, side="right"))
        blk_hi = min(max(blk_hi, blk_lo + 1), len(edge_offsets))
        sl = slice(blk_lo, blk_hi)
        blk_lens = lens[sl]
        targets = dst[_flat_gather_index(offsets[small[sl]], blk_lens)]
        hay_lo = np.repeat(offsets[large[sl]], blk_lens)
        hay_hi = np.repeat(offsets[large[sl] + 1], blk_lens)
        pos = batched_lower_bound(dst, hay_lo, hay_hi, targets, ops)
        found = pos < hay_hi
        found &= dst[np.minimum(pos, len(dst) - 1)] == targets
        if len(found):
            out[sl] = np.add.reduceat(found, _segment_starts(blk_lens))
        if ops is not None:
            ops.seq_words += len(targets)  # needle elements streamed
            ops.rand_words += len(targets)  # verification gather per lane
            ops.comparisons += len(targets)  # equality check per lane
            ops.matches += int(np.count_nonzero(found))
        blk_lo = blk_hi
    return out
