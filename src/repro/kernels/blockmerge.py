"""Vectorized block-wise merge (VB) — paper §3.1, Figure 1.

The SIMD kernel of Inoue et al. [14]: load one block from each array,
compare **all pairs** inside the vector registers simultaneously (shuffles
+ one packed compare), accumulate the match mask, then advance the block
whose last element is smaller by a whole block.

Lane width parameterizes the processor: 8 = AVX2 (8×32-bit), 16 = AVX-512,
32 = one GPU warp (the paper: "the multiplication of block sizes for N(u)
and N(v) is 32").  We execute the identical block logic with NumPy, so the
result is exact and the issued vector-instruction count is what compiled
SIMD code would issue.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.merge import intersect_merge
from repro.types import OpCounts

__all__ = ["intersect_block_merge", "block_sizes"]

#: SIMD instructions issued per all-pair block comparison step: shuffle of
#: one register, packed compare, mask-popcount accumulate (Figure 1's three
#: steps).  Calibrated to Inoue et al.'s reported instruction mix.
VECTOR_OPS_PER_BLOCK_STEP = 3


def block_sizes(lane_width: int) -> tuple[int, int]:
    """Split ``lane_width`` comparator lanes into an all-pair block shape.

    ``b1 × b2 == lane_width`` with the most square feasible split:
    8 → (4, 2); 16 → (4, 4); 32 → (8, 4).
    """
    if lane_width < 1:
        raise ValueError("lane_width must be >= 1")
    b2 = 1
    for cand in range(int(lane_width**0.5), 0, -1):
        if lane_width % cand == 0:
            b2 = cand
            break
    return lane_width // b2, b2


def intersect_block_merge(
    a1: np.ndarray,
    a2: np.ndarray,
    counts: OpCounts | None = None,
    lane_width: int = 8,
) -> int:
    """Count ``|a1 ∩ a2|`` with the vectorized block-wise merge.

    Main loop handles whole blocks (``b1`` from ``a1``, ``b2`` from ``a2``);
    the ragged tail falls back to the scalar merge, as real SIMD
    implementations do.
    """
    b1, b2 = block_sizes(lane_width)
    o1 = 0
    o2 = 0
    end1 = len(a1)
    end2 = len(a2)
    c = 0
    block_steps = 0
    tail_counts = OpCounts() if counts is not None else None

    while o1 + b1 <= end1 and o2 + b2 <= end2:
        blk1 = a1[o1 : o1 + b1]
        blk2 = a2[o2 : o2 + b2]
        # All-pair comparison: one shuffled packed compare in hardware.
        c += int(np.count_nonzero(blk1[:, None] == blk2[None, :]))
        block_steps += 1
        last1 = blk1[-1]
        last2 = blk2[-1]
        if last1 < last2:
            o1 += b1
        elif last1 > last2:
            o2 += b2
        else:
            o1 += b1
            o2 += b2

    # Ragged tail: scalar merge over the remainders.
    c += intersect_merge(a1[o1:], a2[o2:], tail_counts)

    if counts is not None:
        counts.vector_ops += VECTOR_OPS_PER_BLOCK_STEP * block_steps
        counts.lane_width = max(counts.lane_width, lane_width)
        counts.comparisons += block_steps  # last-element compare per step
        counts.seq_words += o1 + o2
        counts.matches += c - tail_counts.matches  # tail added its own below
        counts.__iadd__(tail_counts)
    return c
