"""Set-intersection kernels: instrumented scalar references and fast paths.

Layer map (paper §3):

* :mod:`repro.kernels.lowerbound` — binary / galloping / vectorized-linear
  lower-bound searches used by pivot-skip.
* :mod:`repro.kernels.merge` — ``IntersectM``, the plain merge baseline.
* :mod:`repro.kernels.pivotskip` — ``IntersectPS`` for degree-skewed pairs.
* :mod:`repro.kernels.blockmerge` — the vectorized block-wise merge (VB),
  lane-width parameterized (8 = AVX2, 16 = AVX-512, 32 = one GPU warp).
* :mod:`repro.kernels.bitmap` — word-packed bitmap + ``IntersectBMP``.
* :mod:`repro.kernels.rangefilter` — two-level (range-filtered) bitmap.
* :mod:`repro.kernels.batch` — NumPy/SciPy production paths that compute
  all-edge counts fast (used for results; validated against the scalar
  kernels and networkx).
* :mod:`repro.kernels.costmodel` — vectorized per-edge operation estimates
  feeding the architecture simulator.

Every scalar kernel optionally fills an :class:`repro.types.OpCounts`.
"""

from repro.kernels.lowerbound import (
    binary_lower_bound,
    galloping_lower_bound,
    hybrid_lower_bound,
)
from repro.kernels.merge import intersect_merge
from repro.kernels.pivotskip import intersect_pivot_skip
from repro.kernels.blockmerge import intersect_block_merge
from repro.kernels.bitmap import Bitmap, intersect_bitmap
from repro.kernels.rangefilter import RangeFilteredBitmap, intersect_range_filtered
from repro.kernels.sparsebitmap import SparseBitmap, intersect_sparse

__all__ = [
    "SparseBitmap",
    "intersect_sparse",
    "binary_lower_bound",
    "galloping_lower_bound",
    "hybrid_lower_bound",
    "intersect_merge",
    "intersect_pivot_skip",
    "intersect_block_merge",
    "Bitmap",
    "intersect_bitmap",
    "RangeFilteredBitmap",
    "intersect_range_filtered",
]
