"""Bitmap range filtering (paper §4.3) — a small filter over the big bitmap.

Matches in real-world neighbor-set intersections are sparse, so most probes
of the ``|V|``-bit bitmap miss.  The range filter is a second bitmap with
one bit per ``range_scale`` ids (paper uses a size ratio of 4096 so the
filter fits in L1 cache / GPU shared memory): a probe first checks the
filter bit for its range and touches the big bitmap only when the range is
known to contain at least one set bit.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.bitmap import Bitmap
from repro.types import OpCounts

__all__ = ["RangeFilteredBitmap", "intersect_range_filtered", "DEFAULT_RANGE_SCALE"]

#: Paper: "We set the size ratio of the two bitmaps at 4096, to make the
#: small bitmap fit into L1 cache."
DEFAULT_RANGE_SCALE = 4096


class RangeFilteredBitmap:
    """Two-level bitmap: ``big`` (cardinality ``|V|``) + range ``filter``.

    The BMP usage pattern builds the index for one vertex at a time and
    clears it afterwards, so clearing may reset the filter bits of the
    cleared ids unconditionally (all set bits belong to the current
    vertex's neighbor set).
    """

    __slots__ = ("big", "filter", "range_scale")

    def __init__(self, cardinality: int, range_scale: int = DEFAULT_RANGE_SCALE):
        if range_scale < 1:
            raise ValueError("range_scale must be >= 1")
        self.big = Bitmap(cardinality)
        self.range_scale = int(range_scale)
        num_ranges = (cardinality + self.range_scale - 1) // self.range_scale
        self.filter = Bitmap(max(num_ranges, 1))

    def set_many(self, ids: np.ndarray, counts: OpCounts | None = None) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        self.big.set_many(ids, counts)
        # Filter updates are cheap (tiny, cache-resident) — counted as
        # filter tests, not random words.
        self.filter.set_many(ids // self.range_scale)
        if counts is not None:
            counts.filter_test += len(ids)

    def clear_many(self, ids: np.ndarray, counts: OpCounts | None = None) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        self.big.clear_many(ids, counts)
        self.filter.clear_many(ids // self.range_scale)
        if counts is not None:
            counts.filter_test += len(ids)

    def is_clear(self) -> bool:
        return self.big.is_clear() and self.filter.is_clear()

    def memory_bytes(self) -> int:
        return self.big.memory_bytes() + self.filter.memory_bytes()

    def filter_memory_bytes(self) -> int:
        return self.filter.memory_bytes()


def intersect_range_filtered(
    rf: RangeFilteredBitmap, arr: np.ndarray, counts: OpCounts | None = None
) -> int:
    """Range-filtered ``IntersectBMP``.

    Every element probes the (cache-resident) filter; only elements whose
    range bit is set probe the big bitmap.  The avoided big-bitmap loads
    are recorded as ``filter_skip`` — they are the global-memory / DRAM
    loads the technique eliminates (paper Table 7 and Figure 6).
    """
    arr = np.asarray(arr, dtype=np.int64)
    in_range = rf.filter.test_many(arr // rf.range_scale)
    passed = arr[in_range]
    if counts is not None:
        counts.filter_test += len(arr)
        # The probing array streams through exactly once.  Elements that
        # pass the filter are charged their seq_word inside ``test_many``
        # below; only the filtered-out remainder is charged here — a
        # blanket ``len(arr)`` charge would double-count the passers.
        counts.seq_words += len(arr) - len(passed)
        counts.filter_skip += len(arr) - len(passed)
    hits = rf.big.test_many(passed, counts)
    matches = int(np.count_nonzero(hits))
    if counts is not None:
        counts.matches += matches
    return matches
