"""Production all-edge counting paths (exact, vectorized).

Three independent implementations of the same result — the common neighbor
count for every directed edge offset, aligned with ``graph.dst``:

* :func:`count_all_edges_bitmap` — the paper's BMP structure,
  *degree-bucketed*: source vertices are processed in groups per NumPy
  dispatch (dense sources isolate into small groups, sparse sources batch
  by the thousands), each group marking its neighborhoods in a stacked
  mark plane and segment-reducing all gathered adjacencies at once.  This
  is the "paper-faithful" production path.
* :func:`count_all_edges_matmul` — ``(A·A) ⊙ A`` through SciPy sparse
  matrix multiplication, blocked over row ranges to bound peak memory.
  Fastest on balanced graphs; the default backend and an independent
  checker.  Accepts a ``rows`` subset so the hybrid planner can skip rows
  whose edges run on a cheaper kernel.
* :func:`count_all_edges_merge` — per-edge ``searchsorted`` merge; slow,
  used for cross-validation on small graphs.

Plus the symmetric-assignment machinery shared by every algorithm
(paper §3: compute only ``u < v``, mirror to ``e(v, u)``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "reverse_edge_offsets",
    "symmetric_assign",
    "count_all_edges_bitmap",
    "count_edges_bitmap",
    "count_all_edges_matmul",
    "count_all_edges_merge",
    "count_edge",
]


def reverse_edge_offsets(graph: CSRGraph) -> np.ndarray:
    """For every edge offset ``i = e(u, v)`` return ``e(v, u)``.

    Sorting the directed edge list by ``(dst, src)`` enumerates the
    reversed pairs in CSR order, so a single lexsort yields the whole
    mapping — the vectorized equivalent of the per-edge binary searches
    that the paper's GPU co-processing phase hides on the CPU.
    """
    src = graph.edge_sources()
    order = np.lexsort((src, graph.dst))
    return order


def symmetric_assign(graph: CSRGraph, cnt: np.ndarray) -> np.ndarray:
    """Mirror counts from ``u < v`` edge offsets onto their reverses."""
    rev = reverse_edge_offsets(graph)
    src = graph.edge_sources()
    upper = src < graph.dst  # offsets holding computed counts
    lower_rev = rev[~upper]  # reverse partner of each u > v offset
    cnt[~upper] = cnt[lower_rev]
    return cnt


#: Gathered adjacency elements per bitmap-group dispatch (working-set cap).
BITMAP_GATHER_BUDGET = 1 << 21

#: Bytes of stacked mark rows per group (``group_size × |V|`` booleans).
BITMAP_MARK_BUDGET = 1 << 23


def _segment_starts(lens: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: start of each segment in the flat layout."""
    return np.cumsum(lens) - lens


def _flat_gather_index(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenation of ``[starts[i], starts[i] + lens[i])`` as one vector."""
    flat = np.arange(int(lens.sum()), dtype=np.int64)
    flat += np.repeat(starts - _segment_starts(lens), lens)
    return flat


def count_edges_bitmap(
    graph: CSRGraph,
    edge_offsets: np.ndarray,
    cnt: np.ndarray,
    ops=None,
    *,
    aligned: bool = False,
) -> None:
    """BMP counts for sorted ``u < v`` edge offsets, written into ``cnt``.

    Degree-bucketed execution: source vertices are processed in groups
    sized by two budgets — the stacked mark plane (``group × |V|`` bools
    ≤ :data:`BITMAP_MARK_BUDGET`) and the gathered adjacency volume
    (≤ :data:`BITMAP_GATHER_BUDGET`) — so dense sources land in small
    groups while thousands of sparse sources share one dispatch.  Each
    group marks all its neighborhoods in the plane (row per source),
    gathers every requested ``N(v)`` as one flat vector, tests marks, and
    segment-sums per edge.

    When an :class:`~repro.types.OpCounts` is passed, the BMP-structure
    work (bitmap set/test/clear, word traffic, matches) is charged to it.

    ``cnt`` is indexed by edge offset by default; with ``aligned=True`` it
    is instead aligned with ``edge_offsets`` (``cnt[i]`` receives the count
    of ``edge_offsets[i]``), letting parallel workers fill compact
    per-chunk buffers instead of full-size count vectors.
    """
    eo = np.asarray(edge_offsets, dtype=np.int64)
    if len(eo) == 0:
        return
    n = graph.num_vertices
    offsets = graph.offsets
    dst = graph.dst
    deg = graph.degrees

    src = np.searchsorted(offsets, eo, side="right") - 1
    us, tails = np.unique(src, return_counts=True)
    tail_starts = _segment_starts(tails)
    vs = dst[eo].astype(np.int64)
    gather_lens = deg[vs]
    per_u_gather = np.add.reduceat(gather_lens, tail_starts)
    gather_cum = np.cumsum(per_u_gather)
    max_rows = max(1, BITMAP_MARK_BUDGET // max(n, 1))

    start = 0
    while start < len(us):
        base = int(gather_cum[start] - per_u_gather[start])
        end = int(
            np.searchsorted(gather_cum, base + BITMAP_GATHER_BUDGET, side="right")
        )
        end = min(max(end, start + 1), start + max_rows, len(us))
        us_g = us[start:end]
        rows = end - start

        # Mark plane: one boolean row per source in the group.
        mark_lens = deg[us_g]
        mark_cols = dst[_flat_gather_index(offsets[us_g], mark_lens)].astype(
            np.int64
        )
        mark_rows = np.repeat(np.arange(rows, dtype=np.int64), mark_lens)
        mark = np.zeros(rows * n, dtype=bool)
        mark[mark_rows * n + mark_cols] = True

        # Gather all requested N(v) of the group as one flat vector.
        e_lo = int(tail_starts[start])
        e_hi = int(tail_starts[end - 1] + tails[end - 1])
        lens_g = gather_lens[e_lo:e_hi]
        seg = _segment_starts(lens_g)
        gcols = dst[_flat_gather_index(offsets[vs[e_lo:e_hi]], lens_g)].astype(
            np.int64
        )
        edge_rows = np.repeat(
            np.arange(rows, dtype=np.int64), tails[start:end]
        )
        # ``reduceat`` returns the element *at* a zero-length segment's
        # start instead of an empty sum, and a trailing empty segment
        # would index past ``hits`` — both reachable on asymmetric
        # (DAG-oriented) CSRs where ``N⁺(v)`` may be empty, so reduce
        # only the non-empty segments.
        sums = np.zeros(len(lens_g), dtype=np.int64)
        nz = lens_g > 0
        if nz.any():
            hits = mark[np.repeat(edge_rows, lens_g) * n + gcols]
            sums[nz] = np.add.reduceat(hits, seg[nz])
        if aligned:
            cnt[e_lo:e_hi] = sums
        else:
            cnt[eo[e_lo:e_hi]] = sums

        if ops is not None:
            marked = int(mark_lens.sum())
            gathered = int(lens_g.sum())
            ops.bitmap_set += marked
            ops.bitmap_clear += marked  # plane retired after the group
            ops.bitmap_test += gathered
            ops.rand_words += gathered  # mark probes are random touches
            ops.seq_words += marked + gathered  # streamed adjacency reads
            ops.matches += int(sums.sum())
        start = end


def count_all_edges_bitmap(graph: CSRGraph) -> np.ndarray:
    """BMP-structured exact counting; returns counts aligned with ``dst``.

    Runs :func:`count_edges_bitmap` over every ``u < v`` edge offset —
    groups of source vertices per NumPy dispatch instead of a per-vertex
    Python loop — then mirrors through :func:`symmetric_assign`.
    """
    src = graph.edge_sources()
    eo = np.flatnonzero(src < graph.dst)
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    count_edges_bitmap(graph, eo, cnt)
    return symmetric_assign(graph, cnt)


def count_all_edges_matmul(
    graph: CSRGraph,
    row_block_nnz: int = 2_000_000,
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """Exact counting via blocked sparse ``(A·A) ⊙ A``.

    For adjacent ``(u, v)``, ``(A²)[u, v] = |N(u) ∩ N(v)|``.  Rows are
    processed in blocks sized by their nnz so the intermediate product
    stays small.  ``A`` carries ``int32`` data and the edge-id alignment
    matrix ``int64`` payloads — counts and offsets are exact integers, so
    float carriers would only double the memory traffic.

    When ``rows`` is given (sorted unique vertex ids), only those rows'
    products are computed: every edge offset ``e(u, v)`` with ``u ∈ rows``
    receives its count, everything else is left untouched.  The hybrid
    planner uses this to skip rows whose edges run on a cheaper kernel.
    """
    import scipy.sparse as sp

    n = graph.num_vertices
    offsets = graph.offsets
    dst = graph.dst
    nnz = len(dst)
    cnt = np.zeros(nnz, dtype=np.int64)
    if nnz == 0:
        return cnt
    if rows is None:
        rows = np.arange(n, dtype=np.int64)
    else:
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return cnt

    A = sp.csr_matrix((np.ones(nnz, dtype=np.int32), dst, offsets), shape=(n, n))

    row_nnz = offsets[rows + 1] - offsets[rows]
    nnz_cum = np.cumsum(row_nnz)
    start = 0
    while start < len(rows):
        # Grow the block until its nnz budget is reached.
        base = int(nnz_cum[start] - row_nnz[start])
        end = int(np.searchsorted(nnz_cum, base + row_block_nnz, side="right"))
        end = min(max(end, start + 1), len(rows))
        blk = rows[start:end]
        if len(blk) == blk[-1] - blk[0] + 1:  # contiguous: cheap slice
            block = A[blk[0] : blk[-1] + 1]
        else:
            block = A[blk]
        prod = (block @ A).multiply(block).tocsr()
        prod.sort_indices()
        # prod's pattern is a subset of block's (zero counts vanish);
        # align through the edge-offset positions of the surviving entries.
        if prod.nnz:
            flat = _flat_gather_index(offsets[blk], row_nnz[start:end])
            ids = sp.csr_matrix(
                (
                    flat + 1,
                    dst[flat],
                    np.concatenate(([0], np.cumsum(row_nnz[start:end]))),
                ),
                shape=(len(blk), n),
            )
            pattern = prod.copy()
            pattern.data = np.ones_like(pattern.data)
            pos = ids.multiply(pattern).tocsr()
            pos.sort_indices()
            cnt[pos.data - 1] = prod.data
        start = end

    return cnt


def count_all_edges_merge(graph: CSRGraph) -> np.ndarray:
    """Per-edge ``searchsorted`` merge counting (validation path)."""
    offsets = graph.offsets
    dst = graph.dst
    cnt = np.zeros(len(dst), dtype=np.int64)
    src = graph.edge_sources()
    upper = np.flatnonzero(src < dst)
    for eo in upper:
        u = int(src[eo])
        v = int(dst[eo])
        cnt[eo] = count_edge(graph, u, v)
    return symmetric_assign(graph, cnt)


def count_edge(graph: CSRGraph, u: int, v: int) -> int:
    """Exact ``|N(u) ∩ N(v)|`` for one vertex pair (need not be an edge)."""
    a = graph.neighbors(u)
    b = graph.neighbors(v)
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0:
        return 0
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1 if len(b) else 0
    return int(np.count_nonzero(b[idx] == a)) if len(b) else 0
