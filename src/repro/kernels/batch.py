"""Production all-edge counting paths (exact, vectorized).

Three independent implementations of the same result — the common neighbor
count for every directed edge offset, aligned with ``graph.dst``:

* :func:`count_all_edges_bitmap` — the paper's BMP structure, vectorized
  per vertex: build a boolean mark array over ``N(u)``, gather all
  neighbors-of-neighbors in one shot, segment-reduce.  This is the
  "paper-faithful" production path.
* :func:`count_all_edges_matmul` — ``(A·A) ⊙ A`` through SciPy sparse
  matrix multiplication, blocked over row ranges to bound peak memory.
  Fastest; used as the default backend and as an independent checker.
* :func:`count_all_edges_merge` — per-edge ``searchsorted`` merge; slow,
  used for cross-validation on small graphs.

Plus the symmetric-assignment machinery shared by every algorithm
(paper §3: compute only ``u < v``, mirror to ``e(v, u)``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "reverse_edge_offsets",
    "symmetric_assign",
    "count_all_edges_bitmap",
    "count_all_edges_matmul",
    "count_all_edges_merge",
    "count_edge",
]


def reverse_edge_offsets(graph: CSRGraph) -> np.ndarray:
    """For every edge offset ``i = e(u, v)`` return ``e(v, u)``.

    Sorting the directed edge list by ``(dst, src)`` enumerates the
    reversed pairs in CSR order, so a single lexsort yields the whole
    mapping — the vectorized equivalent of the per-edge binary searches
    that the paper's GPU co-processing phase hides on the CPU.
    """
    src = graph.edge_sources()
    order = np.lexsort((src, graph.dst))
    return order


def symmetric_assign(graph: CSRGraph, cnt: np.ndarray) -> np.ndarray:
    """Mirror counts from ``u < v`` edge offsets onto their reverses."""
    rev = reverse_edge_offsets(graph)
    src = graph.edge_sources()
    upper = src < graph.dst  # offsets holding computed counts
    lower_rev = rev[~upper]  # reverse partner of each u > v offset
    cnt[~upper] = cnt[lower_rev]
    return cnt


def count_all_edges_bitmap(graph: CSRGraph) -> np.ndarray:
    """BMP-structured exact counting; returns counts aligned with ``dst``.

    Per vertex ``u``: mark ``N(u)`` in a boolean array, gather the
    adjacency of every ``v ∈ N(u)`` with ``v > u`` as one flat index
    vector, test marks, and segment-sum per ``v`` (``np.add.reduceat``).
    """
    n = graph.num_vertices
    offsets = graph.offsets
    dst = graph.dst
    cnt = np.zeros(len(dst), dtype=np.int64)
    mark = np.zeros(n, dtype=bool)

    for u in range(n):
        lo, hi = offsets[u], offsets[u + 1]
        if hi == lo:
            continue
        nbrs = dst[lo:hi]
        # Only neighbors v > u are counted here (symmetric assignment
        # fills the rest); they sit in the tail of the sorted list.
        first = int(np.searchsorted(nbrs, u + 1))
        if first == hi - lo:
            continue
        mark[nbrs] = True
        vs = nbrs[first:].astype(np.int64)
        starts = offsets[vs]
        lens = offsets[vs + 1] - starts
        total = int(lens.sum())
        # Flat gather indices: concatenation of [starts[i], starts[i]+lens[i])
        seg_ends = np.cumsum(lens)
        flat = np.arange(total, dtype=np.int64)
        flat += np.repeat(starts - (seg_ends - lens), lens)
        hits = mark[dst[flat]]
        seg_starts = seg_ends - lens
        sums = np.add.reduceat(hits, seg_starts)
        cnt[lo + first : hi] = sums
        mark[nbrs] = False

    return symmetric_assign(graph, cnt)


def count_all_edges_matmul(
    graph: CSRGraph, row_block_nnz: int = 2_000_000
) -> np.ndarray:
    """Exact counting via blocked sparse ``(A·A) ⊙ A``.

    For adjacent ``(u, v)``, ``(A²)[u, v] = |N(u) ∩ N(v)|``.  Rows are
    processed in blocks sized by their nnz so the intermediate product
    stays small.
    """
    import scipy.sparse as sp

    n = graph.num_vertices
    offsets = graph.offsets
    dst = graph.dst
    nnz = len(dst)
    cnt = np.zeros(nnz, dtype=np.int64)
    if nnz == 0:
        return cnt

    A = sp.csr_matrix(
        (np.ones(nnz, dtype=np.float64), dst, offsets), shape=(n, n)
    )

    row = 0
    while row < n:
        # Grow the block until its nnz budget is reached.
        end = int(np.searchsorted(offsets, offsets[row] + row_block_nnz, side="left"))
        end = max(end - 1, row + 1)
        end = min(end, n)
        block = A[row:end]
        prod = (block @ A).multiply(block).tocsr()
        prod.sort_indices()
        # prod's pattern is a subset of block's (zero counts vanish);
        # align through the edge-offset positions of the surviving entries.
        if prod.nnz:
            ids = sp.csr_matrix(
                (
                    np.arange(offsets[row], offsets[end], dtype=np.float64) + 1.0,
                    dst[offsets[row] : offsets[end]],
                    offsets[row : end + 1] - offsets[row],
                ),
                shape=(end - row, n),
            )
            pattern = prod.copy()
            pattern.data = np.ones_like(pattern.data)
            pos = ids.multiply(pattern).tocsr()
            pos.sort_indices()
            cnt[pos.data.astype(np.int64) - 1] = np.rint(prod.data).astype(np.int64)
        row = end

    return cnt


def count_all_edges_merge(graph: CSRGraph) -> np.ndarray:
    """Per-edge ``searchsorted`` merge counting (validation path)."""
    offsets = graph.offsets
    dst = graph.dst
    cnt = np.zeros(len(dst), dtype=np.int64)
    src = graph.edge_sources()
    upper = np.flatnonzero(src < dst)
    for eo in upper:
        u = int(src[eo])
        v = int(dst[eo])
        cnt[eo] = count_edge(graph, u, v)
    return symmetric_assign(graph, cnt)


def count_edge(graph: CSRGraph, u: int, v: int) -> int:
    """Exact ``|N(u) ∩ N(v)|`` for one vertex pair (need not be an edge)."""
    a = graph.neighbors(u)
    b = graph.neighbors(v)
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0:
        return 0
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1 if len(b) else 0
    return int(np.count_nonzero(b[idx] == a)) if len(b) else 0
