"""Sparse bitmap (roaring-lite) — the related-work alternative to BMP.

The paper's §2.2.1 discusses sparse bitmaps "consisting of offset and
bit-state arrays" (EmptyHeaded, Han et al., Roaring): a set is stored as
the sorted array of 64-bit *block offsets* that contain at least one
element, plus the corresponding packed words.  Intersection merges the
offset arrays and ANDs the matching words.  The paper rejects this design
for the *dynamic* all-edge setting because making the bit-states compact
requires offline reordering; we implement it so that trade-off is
measurable (see ``benchmarks/bench_ablation_sparse_bitmap.py``).
"""

from __future__ import annotations

import numpy as np

from repro.types import OpCounts

__all__ = ["SparseBitmap", "intersect_sparse"]

BLOCK_BITS = 64
_ONE = np.uint64(1)


class SparseBitmap:
    """Immutable sparse bitmap built from a sorted id array.

    Attributes
    ----------
    offsets:
        Sorted int64 array of block indices (``id >> 6``) with ≥1 bit.
    words:
        uint64 packed bit-states, aligned with ``offsets``.
    """

    __slots__ = ("offsets", "words", "size")

    def __init__(self, offsets: np.ndarray, words: np.ndarray, size: int):
        self.offsets = offsets
        self.words = words
        self.size = int(size)

    @classmethod
    def from_sorted(cls, ids: np.ndarray) -> "SparseBitmap":
        """Build from a strictly ascending id array (one pass, vectorized)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return cls(np.empty(0, np.int64), np.empty(0, np.uint64), 0)
        if np.any(np.diff(ids) <= 0):
            raise ValueError("ids must be strictly ascending")
        if ids[0] < 0:
            raise ValueError("ids must be non-negative")
        blocks = ids >> 6
        offsets, inverse = np.unique(blocks, return_inverse=True)
        bits = _ONE << (ids & 63).astype(np.uint64)
        words = np.zeros(len(offsets), dtype=np.uint64)
        np.bitwise_or.at(words, inverse, bits)
        return cls(offsets, words, len(ids))

    def __len__(self) -> int:
        return self.size

    @property
    def num_blocks(self) -> int:
        return len(self.offsets)

    def memory_bytes(self) -> int:
        """Offsets + words — proportional to *occupied* blocks, not |V|."""
        return self.offsets.nbytes + self.words.nbytes

    def contains(self, vid: int) -> bool:
        block = vid >> 6
        i = int(np.searchsorted(self.offsets, block))
        if i >= len(self.offsets) or self.offsets[i] != block:
            return False
        return bool((self.words[i] >> np.uint64(vid & 63)) & _ONE)

    def to_ids(self) -> np.ndarray:
        """Decode back to the sorted id array (for tests)."""
        out = []
        for off, word in zip(self.offsets.tolist(), self.words.tolist()):
            w = int(word)
            base = off << 6
            while w:
                b = w & -w
                out.append(base + b.bit_length() - 1)
                w ^= b
        return np.array(out, dtype=np.int64)

    def __repr__(self) -> str:
        return f"SparseBitmap(size={self.size}, blocks={self.num_blocks})"


def intersect_sparse(
    a: SparseBitmap, b: SparseBitmap, counts: OpCounts | None = None
) -> int:
    """``|a ∩ b|`` by merging offset arrays and ANDing matched words.

    Vectorized merge: for each of ``a``'s blocks, locate a match in ``b``
    via ``searchsorted`` (the paper's "merging and filtering on the offset
    arrays"), then popcount the ANDed bit-states.
    """
    if a.num_blocks == 0 or b.num_blocks == 0:
        return 0
    if a.num_blocks > b.num_blocks:
        a, b = b, a
    pos = np.searchsorted(b.offsets, a.offsets)
    pos_clipped = np.minimum(pos, b.num_blocks - 1)
    matched = b.offsets[pos_clipped] == a.offsets
    anded = a.words[matched] & b.words[pos_clipped[matched]]
    if hasattr(np, "bitwise_count"):
        total = int(np.bitwise_count(anded).sum())
    else:  # pragma: no cover - very old numpy
        total = sum(bin(int(w)).count("1") for w in anded)
    if counts is not None:
        # One comparison per merged offset, one word AND+popcount per match.
        counts.comparisons += a.num_blocks
        counts.bitmap_test += int(matched.sum())
        counts.seq_words += a.num_blocks + int(matched.sum()) * 2
        counts.matches += total
    return total
