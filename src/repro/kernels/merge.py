"""``IntersectM`` — the plain two-pointer merge (Algorithm 1, lines 6-12).

This is the baseline *M* of the paper's Figure 3 / Table 4 and the
correctness reference for every other kernel.
"""

from __future__ import annotations

import numpy as np

from repro.types import OpCounts

__all__ = ["intersect_merge"]


def intersect_merge(
    a1: np.ndarray, a2: np.ndarray, counts: OpCounts | None = None
) -> int:
    """Count ``|a1 ∩ a2|`` for two strictly ascending arrays.

    Exactly Algorithm 1's ``IntersectM``: advance the pointer at the
    smaller element, count on equality.  Instrumentation counts one
    comparison per loop iteration (branch decisions on equal keys reuse
    the same flags register, as compiled code would) and one advance per
    pointer increment; every element touched is a sequential word.
    """
    c = 0
    o1 = 0
    o2 = 0
    end1 = len(a1)
    end2 = len(a2)
    comparisons = 0
    advances = 0
    while o1 < end1 and o2 < end2:
        comparisons += 1
        x1 = a1[o1]
        x2 = a2[o2]
        if x1 < x2:
            o1 += 1
            advances += 1
        elif x1 > x2:
            o2 += 1
            advances += 1
        else:
            o1 += 1
            o2 += 1
            c += 1
            advances += 2
    if counts is not None:
        counts.comparisons += comparisons
        counts.advances += advances
        counts.seq_words += o1 + o2
        counts.matches += c
    return c
