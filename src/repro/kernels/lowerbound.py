"""Lower-bound search kernels used by the pivot-skip merge (paper §3.1).

``LowerBound(A, lo, hi, x)`` returns the smallest index ``i`` in
``[lo, hi]`` such that ``A[i] >= x`` (``hi`` when no such element).  The
paper implements it as: (1) a *vectorized linear search* over one SIMD
block, and when that fails (2) *galloping* with exponentially growing skips
``2^4, 2^5, …`` followed by (3) a binary search inside the final range.

Each function reports its step counts so the cost models can price the
skips (which are the random memory accesses that make PS slow on the GPU).
"""

from __future__ import annotations

import numpy as np

from repro.types import OpCounts

__all__ = [
    "binary_lower_bound",
    "galloping_lower_bound",
    "hybrid_lower_bound",
    "GALLOP_START_EXP",
]

#: The paper starts galloping at 2**4 after the vectorized linear probe.
GALLOP_START_EXP = 4


def binary_lower_bound(
    arr: np.ndarray, lo: int, hi: int, target: int, counts: OpCounts | None = None
) -> int:
    """Classic binary search for the lower bound of ``target`` in [lo, hi)."""
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        if arr[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    if counts is not None:
        counts.binary_steps += steps
        counts.rand_words += steps
    return lo


def galloping_lower_bound(
    arr: np.ndarray, lo: int, hi: int, target: int, counts: OpCounts | None = None
) -> int:
    """Galloping (exponential) search then binary search on the last range.

    Skips of size ``2^4, 2^5, …`` from ``lo`` until an element ``>= target``
    is found (or the end is passed), then binary-searches the bracketed
    range, exactly as described in the paper.

    Accounting: each probe of ``arr`` is charged exactly one gallop step
    and one random word.  When the first skip already lands at or beyond
    ``hi`` (``hi - lo <= 2^4``) the whole range goes straight to binary
    search with **no** gallop charge — no array element was touched.
    """
    if lo >= hi:
        return lo
    probes = 0
    prev = lo
    step = 1 << GALLOP_START_EXP
    probe = lo + step
    while probe < hi:
        probes += 1
        if arr[probe] >= target:
            break
        prev = probe
        step <<= 1
        probe = lo + step
    if counts is not None:
        counts.gallop_steps += probes
        counts.rand_words += probes
    return binary_lower_bound(arr, prev, min(probe, hi), target, counts)


def hybrid_lower_bound(
    arr: np.ndarray,
    lo: int,
    hi: int,
    target: int,
    lane_width: int = 8,
    counts: OpCounts | None = None,
) -> int:
    """Vectorized-linear probe over one SIMD block, then galloping.

    Mirrors the paper's two-stage ``LowerBound``: one vector comparison
    covers ``lane_width`` consecutive elements (a single SIMD instruction);
    only if the answer is beyond that block do we fall back to galloping.
    """
    if lo >= hi:
        return lo
    block_end = min(lo + lane_width, hi)
    # One SIMD compare of the whole block against the target.
    block = arr[lo:block_end]
    if counts is not None:
        counts.vector_ops += 1
        counts.lane_width = max(counts.lane_width, lane_width)
        counts.seq_words += block_end - lo
    hits = np.nonzero(block >= target)[0]
    if hits.size:
        return lo + int(hits[0])
    if block_end == hi:
        return hi
    return galloping_lower_bound(arr, block_end, hi, target, counts)
