"""Word-packed bitmap index and ``IntersectBMP`` (paper §3.2, Algorithm 2).

A bitmap of cardinality ``|V|`` supports O(1) put/lookup through simple bit
operations: vertex ``w``'s bit lives in word ``w >> 6`` at position
``w & 63``.  BMP dynamically builds the bitmap over ``N(u)``, probes it
once per element of ``N(v)`` for each neighbor ``v``, and clears it by
flipping the same bits (so clearing costs ``d_u``, not ``|V|``).
"""

from __future__ import annotations

import numpy as np

from repro.types import OpCounts

__all__ = ["Bitmap", "intersect_bitmap"]

WORD_BITS = 64
_ONE = np.uint64(1)


class Bitmap:
    """Fixed-cardinality bitmap over vertex ids ``[0, cardinality)``."""

    __slots__ = ("cardinality", "words")

    def __init__(self, cardinality: int):
        if cardinality < 0:
            raise ValueError("cardinality must be non-negative")
        self.cardinality = int(cardinality)
        num_words = (self.cardinality + WORD_BITS - 1) // WORD_BITS
        self.words = np.zeros(num_words, dtype=np.uint64)

    # ------------------------------------------------------------------ #
    def _check(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.cardinality):
            raise IndexError("bitmap ids out of range")
        return ids

    def set_many(
        self, ids: np.ndarray, counts: OpCounts | None = None, *, checked: bool = True
    ) -> None:
        """Set the bits of ``ids`` (duplicates allowed; idempotent).

        ``checked=False`` skips the bounds scan — for hot paths whose ids
        provably come from adjacency arrays already in ``[0, cardinality)``.
        """
        ids = self._check(ids) if checked else np.asarray(ids, dtype=np.int64)
        word_idx = ids >> 6
        bits = _ONE << (ids & 63).astype(np.uint64)
        np.bitwise_or.at(self.words, word_idx, bits)
        if counts is not None:
            counts.bitmap_set += len(ids)
            counts.rand_words += len(ids)

    def clear_many(
        self, ids: np.ndarray, counts: OpCounts | None = None, *, checked: bool = True
    ) -> None:
        """Clear the bits of ``ids`` (the paper's flip-based clearing)."""
        ids = self._check(ids) if checked else np.asarray(ids, dtype=np.int64)
        word_idx = ids >> 6
        bits = _ONE << (ids & 63).astype(np.uint64)
        np.bitwise_and.at(self.words, word_idx, ~bits)
        if counts is not None:
            counts.bitmap_clear += len(ids)
            counts.rand_words += len(ids)

    def test(self, vid: int) -> bool:
        """Scalar membership probe (a single word load + bit test)."""
        if not 0 <= vid < self.cardinality:
            raise IndexError("bitmap id out of range")
        return bool((self.words[vid >> 6] >> np.uint64(vid & 63)) & _ONE)

    def test_many(
        self, ids: np.ndarray, counts: OpCounts | None = None, *, checked: bool = True
    ) -> np.ndarray:
        """Vectorized membership probes; returns a bool array."""
        ids = self._check(ids) if checked else np.asarray(ids, dtype=np.int64)
        shifts = (ids & 63).astype(np.uint64)
        result = (self.words[ids >> 6] >> shifts) & _ONE
        if counts is not None:
            counts.bitmap_test += len(ids)
            counts.rand_words += len(ids)  # bitmap probes are random access
            counts.seq_words += len(ids)  # the probing array is streamed
        return result.astype(bool)

    def popcount(self) -> int:
        """Number of set bits (uses the CPU popcount via np.bitwise_count)."""
        if hasattr(np, "bitwise_count"):
            return int(np.bitwise_count(self.words).sum())
        return int(sum(bin(int(w)).count("1") for w in self.words))  # pragma: no cover

    def is_clear(self) -> bool:
        return not self.words.any()

    def memory_bytes(self) -> int:
        """Memory cost — the paper's ``|V| / 8`` bytes."""
        return self.words.nbytes

    def __repr__(self) -> str:
        return f"Bitmap(cardinality={self.cardinality}, set={self.popcount()})"


def intersect_bitmap(
    bitmap: Bitmap, arr: np.ndarray, counts: OpCounts | None = None
) -> int:
    """``IntersectBMP``: count elements of ``arr`` whose bit is set.

    Complexity ``O(len(arr))`` — with the degree-descending reorder this is
    ``O(min(d_u, d_v))`` per edge (paper §3.2).
    """
    hits = bitmap.test_many(arr, counts)
    matches = int(np.count_nonzero(hits))
    if counts is not None:
        counts.matches += matches
    return matches
