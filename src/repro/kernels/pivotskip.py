"""``IntersectPS`` — pivot-skip merge for degree-skewed pairs.

Algorithm 1, lines 13-22: iteratively fix a pivot in one array and skip the
other array directly to the lower bound of that pivot via the hybrid
(vectorized-linear → galloping → binary) search.  Complexity
``O(Σ log(skip) + d_s)`` ≈ ``O(c · d_s)`` where ``d_s = min(d_u, d_v)``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.lowerbound import hybrid_lower_bound
from repro.types import OpCounts

__all__ = ["intersect_pivot_skip"]


def intersect_pivot_skip(
    a1: np.ndarray,
    a2: np.ndarray,
    counts: OpCounts | None = None,
    lane_width: int = 8,
) -> int:
    """Count ``|a1 ∩ a2|`` with the pivot-skip strategy.

    Faithful transcription of the paper's ``IntersectPS``:

    1. advance ``off1`` to the lower bound of pivot ``a2[off2]`` in ``a1``;
    2. advance ``off2`` to the lower bound of the (possibly new) pivot
       ``a1[off1]`` in ``a2``;
    3. on a match, count and advance both.
    """
    c = 0
    off1 = 0
    off2 = 0
    end1 = len(a1)
    end2 = len(a2)
    if end1 == 0 or end2 == 0:
        return 0
    while True:
        off1 = hybrid_lower_bound(a1, off1, end1, a2[off2], lane_width, counts)
        if off1 >= end1:
            break
        off2 = hybrid_lower_bound(a2, off2, end2, a1[off1], lane_width, counts)
        if off2 >= end2:
            break
        if counts is not None:
            counts.comparisons += 1
        if a1[off1] == a2[off2]:
            off1 += 1
            off2 += 1
            c += 1
            if counts is not None:
                counts.advances += 2
                counts.matches += 1
            if off1 >= end1 or off2 >= end2:
                break
    return c
