"""Vectorized per-edge operation estimates (the simulator's fuel).

Running the instrumented scalar kernels over every edge of a benchmark
graph would take hours in CPython, so the architecture simulator consumes
*closed-form* per-edge work estimates instead.  The formulas follow the
paper's own complexity analyses (§3.1, §3.2) and are validated against the
exact instrumented kernels on random samples by the test suite
(``tests/kernels/test_costmodel.py``) — see also
:func:`measure_work_sample`, which produces the exact counts for any edge
sample.

All estimators return a :class:`repro.types.WorkVector` aligned with the
``u < v`` edges of :func:`upper_edges` (CSR order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.kernels.blockmerge import VECTOR_OPS_PER_BLOCK_STEP, block_sizes
from repro.types import OpCounts, WorkVector

__all__ = [
    "EdgeSet",
    "upper_edges",
    "merge_work",
    "block_merge_work",
    "pivot_skip_work",
    "mps_work",
    "bmp_work",
    "matmul_work",
    "cover_work",
    "symmetry_work",
    "skew_mask",
    "measure_work_sample",
    "dag_edge_set",
    "clique_work",
    "biclique_work",
]

#: Amortized bitmap build+clear word operations per undirected edge: each
#: directed edge accounts for one set and one flip in its source vertex's
#: bitmap (paper §3.2 "Index Cost"), i.e. 4 word ops per undirected edge.
BMP_BUILD_OPS_PER_EDGE = 4.0

#: Fraction of bitmap probes whose hit/miss branch mispredicts; matches in
#: real graphs are sparse, so the branch is mostly-not-taken. [calibrated]
BMP_BRANCH_FRACTION = 0.2

#: Vertex bits covered by one 64-byte cache line (64 * 8).
BITMAP_BITS_PER_LINE = 512.0


@dataclass(frozen=True)
class EdgeSet:
    """The ``u < v`` half of a graph's edges, with degrees, in CSR order."""

    graph: CSRGraph
    u: np.ndarray
    v: np.ndarray
    du: np.ndarray
    dv: np.ndarray
    edge_offsets: np.ndarray  # e(u, v) positions in graph.dst

    def __len__(self) -> int:
        return len(self.u)

    @property
    def d_small(self) -> np.ndarray:
        return np.minimum(self.du, self.dv)

    @property
    def d_large(self) -> np.ndarray:
        return np.maximum(self.du, self.dv)

    @property
    def skew_ratio(self) -> np.ndarray:
        return self.d_large / np.maximum(self.d_small, 1.0)


def upper_edges(graph: CSRGraph) -> EdgeSet:
    """Extract the ``u < v`` edges with their degrees."""
    src = graph.edge_sources()
    mask = src < graph.dst
    u = src[mask].astype(np.int64)
    v = graph.dst[mask].astype(np.int64)
    d = graph.degrees.astype(np.float64)
    return EdgeSet(
        graph=graph,
        u=u,
        v=v,
        du=d[u],
        dv=d[v],
        edge_offsets=np.flatnonzero(mask),
    )


def skew_mask(es: EdgeSet, threshold: float) -> np.ndarray:
    """Edges whose degree-skew ratio exceeds ``threshold`` (PS territory)."""
    return es.skew_ratio > threshold


# --------------------------------------------------------------------- #
# merge family
# --------------------------------------------------------------------- #
def merge_work(es: EdgeSet) -> WorkVector:
    """Plain merge M: one comparison + one advance per element consumed.

    The two-pointer merge consumes at most ``d_u + d_v`` elements; the
    expected consumption is close to that bound when overlap is sparse.
    """
    touched = es.du + es.dv
    w = WorkVector(len(es))
    w["scalar_ops"] = 2.0 * touched
    # One data-dependent three-way branch per element consumed — the
    # branch-misprediction cost that motivates VB (Inoue et al. [14]).
    w["branch_ops"] = touched
    w["seq_words"] = touched
    return w


def block_merge_work(es: EdgeSet, lane_width: int = 8) -> WorkVector:
    """Vectorized block-wise merge VB at a given lane width.

    Each block step advances ``b1`` or ``b2`` elements and issues
    ``VECTOR_OPS_PER_BLOCK_STEP`` SIMD instructions plus one scalar
    last-element comparison.
    """
    b1, b2 = block_sizes(lane_width)
    steps = es.du / b1 + es.dv / b2
    w = WorkVector(len(es))
    w["vector_ops"] = VECTOR_OPS_PER_BLOCK_STEP * steps
    w["scalar_ops"] = steps
    # Only the block-advance branch remains data-dependent: one per block
    # step instead of one per element — VB's whole point.
    w["branch_ops"] = steps
    w["seq_words"] = es.du + es.dv
    return w


def pivot_skip_work(es: EdgeSet, lane_width: int = 8) -> WorkVector:
    """Pivot-skip merge PS: ``O(Σ log(skip) + d_s)`` (paper's analysis).

    ``2·d_s`` pivot iterations; each runs one vectorized linear probe
    (a SIMD instruction over ``lane_width`` sequential words) and, when the
    lower bound lies beyond the probe block, galloping+binary steps
    ``≈ log2(skip)`` whose memory touches are random.
    """
    ds = es.d_small
    dl = es.d_large
    pivots = 2.0 * ds
    avg_skip = dl / np.maximum(ds, 1.0)
    # Steps beyond the linear probe: gallop + binary, ~log2 of the skip
    # that the probe did not cover.
    lb_steps = np.log2(1.0 + np.maximum(avg_skip - lane_width, 0.0))
    w = WorkVector(len(es))
    w["vector_ops"] = pivots
    w["scalar_ops"] = pivots * (1.0 + 2.0 * lb_steps)
    # Every galloping/binary step branches on loaded data.
    w["branch_ops"] = pivots * (1.0 + lb_steps)
    w["rand_words"] = pivots * lb_steps
    w["seq_words"] = pivots * (lane_width / 2.0) + ds
    return w


def mps_work(
    es: EdgeSet, threshold: float = 50.0, lane_width: int = 8
) -> WorkVector:
    """MPS: VB for balanced pairs, PS for skewed pairs (Algorithm 1)."""
    skewed = skew_mask(es, threshold)
    vb = block_merge_work(es, lane_width)
    ps = pivot_skip_work(es, lane_width)
    w = WorkVector(len(es))
    for name in w.fields():
        w[name] = np.where(skewed, ps[name], vb[name])
    return w


# --------------------------------------------------------------------- #
# bitmap family
# --------------------------------------------------------------------- #
def bmp_work(
    es: EdgeSet,
    *,
    range_filter: bool = False,
    range_scale: int = 4096,
    assume_reordered: bool = True,
) -> WorkVector:
    """BMP / BMP-RF work per edge.

    With the degree-descending reorder the probing side is always the
    smaller neighbor set (``O(min(d_u, d_v))`` per edge, paper §3.2);
    without it the probing side is ``N(v)`` for ``v > u`` regardless of
    size (``O(d_v)``).

    Range filtering (paper §4.3) probes the cache-resident filter for all
    elements and the big bitmap only for elements whose 4096-id range
    contains at least one set bit.  Under a uniform-spread assumption that
    pass probability is ``1 - (1 - s/|V|)^d_build`` for range size ``s``.
    """
    probes = es.d_small if assume_reordered else es.dv
    builder_degree = es.d_large if assume_reordered else es.du
    n = max(es.graph.num_vertices, 1)

    # The probed bit positions are the sorted neighbor ids of the probing
    # side: a 64-byte cache line covers 512 consecutive vertex bits, so an
    # intersection touching d ids spread over [0, n) touches roughly
    # R·(1 − (1 − 1/R)^d) distinct lines (R = n/512 lines in the bitmap).
    # For dense/hub neighborhoods this is far fewer memory transactions
    # than probes — real line-granularity physics, not a fudge.
    lines_total = max(n / BITMAP_BITS_PER_LINE, 1.0)
    distinct_lines = lines_total * (
        1.0 - np.power(1.0 - 1.0 / lines_total, probes)
    )

    w = WorkVector(len(es))
    if not range_filter:
        w["scalar_ops"] = 2.0 * probes + BMP_BUILD_OPS_PER_EDGE
        # The hit/miss branch is mostly-not-taken (sparse matches):
        # largely predictable, so only a small fraction mispredicts.
        w["branch_ops"] = BMP_BRANCH_FRACTION * probes
        w["rand_words"] = distinct_lines + BMP_BUILD_OPS_PER_EDGE
        w["bitmap_words"] = distinct_lines + BMP_BUILD_OPS_PER_EDGE
        w["seq_words"] = probes
        return w

    range_frac = min(range_scale / n, 1.0)
    pass_prob = 1.0 - np.power(1.0 - range_frac, builder_degree)
    big_probes = probes * pass_prob
    # Filter probes are scalar ops on an L1-resident structure: no
    # rand_words charge.  Build ops still touch both levels.
    w["scalar_ops"] = probes + 2.0 * big_probes + BMP_BUILD_OPS_PER_EDGE + 2.0
    w["branch_ops"] = BMP_BRANCH_FRACTION * probes
    w["rand_words"] = distinct_lines * pass_prob + BMP_BUILD_OPS_PER_EDGE
    w["bitmap_words"] = distinct_lines * pass_prob + BMP_BUILD_OPS_PER_EDGE
    w["seq_words"] = probes
    return w


# --------------------------------------------------------------------- #
# algebraic family
# --------------------------------------------------------------------- #
def matmul_work(es: EdgeSet) -> WorkVector:
    """SpGEMM flop share of one ``u < v`` edge in ``(A·A) ⊙ A``.

    Row ``u`` of the product is the merge of the rows of every
    ``w ∈ N(u)``; the undirected edge ``(u, v)`` therefore contributes row
    ``v`` (``d_v`` multiply-adds) to ``u``'s product and row ``u``
    (``d_u``) to ``v``'s — ``d_u + d_v`` flops of marginal work, each a
    streaming touch of the operand rows.  Summed over all edges this
    reproduces the exact SpGEMM total ``Σ_w d_w²``.
    """
    flops = es.du + es.dv
    w = WorkVector(len(es))
    w["scalar_ops"] = flops
    w["seq_words"] = flops
    return w


def cover_work(
    es: EdgeSet, zero_mask: np.ndarray, probe_mask: np.ndarray
) -> WorkVector:
    """Cost of answering an edge through the cover pre-pass (paper-adjacent
    Bader et al. cover-edge skipping; see :mod:`repro.plan.coveredge`).

    Valid only where ``zero_mask | probe_mask`` — elsewhere the pre-pass
    cannot answer the edge and the vector reads zero.  A zero-class edge
    costs the handful of classification gathers already spent; a
    probe-class edge additionally runs one binary search of the wedge
    vertex in the larger adjacency list (``log2 d_large`` random
    touches), mirroring :func:`symmetry_work`'s search pricing.
    """
    w = WorkVector(len(es))
    if len(es) == 0:
        return w
    classify = 4.0  # min/max span gathers + compares, amortized per edge
    steps = np.log2(1.0 + es.d_large)
    w["scalar_ops"] = np.where(
        probe_mask, classify + steps + 2.0, np.where(zero_mask, classify, 0.0)
    )
    w["branch_ops"] = np.where(probe_mask, steps, 0.0)
    w["rand_words"] = np.where(
        probe_mask, steps + 1.0, np.where(zero_mask, 4.0, 0.0)
    )
    return w


def symmetry_work(es: EdgeSet) -> WorkVector:
    """Symmetric assignment cost per ``u < v`` edge (paper §3).

    Finding ``e(v, u)`` is a binary search of ``u`` in ``N(v)``
    (``log2 d_v`` random touches) followed by one scattered store.
    """
    steps = np.log2(1.0 + es.dv)
    w = WorkVector(len(es))
    w["scalar_ops"] = steps + 2.0
    w["branch_ops"] = steps
    w["rand_words"] = steps + 1.0
    return w


# --------------------------------------------------------------------- #
# motif estimators
# --------------------------------------------------------------------- #
def dag_edge_set(dag: CSRGraph) -> EdgeSet:
    """Every directed edge of an *oriented* DAG CSR as an :class:`EdgeSet`.

    Unlike :func:`upper_edges` no ``u < v`` mask applies — the DAG already
    stores each undirected edge once, in rank order, and a hub's stored
    direction may point at a smaller id.  Degrees are the DAG's
    out-degrees, which is what the clique recursion intersects.
    """
    src = dag.edge_sources().astype(np.int64)
    v = dag.dst.astype(np.int64)
    d = dag.degrees.astype(np.float64)
    return EdgeSet(
        graph=dag,
        u=src,
        v=v,
        du=d[src],
        dv=d[v],
        edge_offsets=np.arange(len(v), dtype=np.int64),
    )


def clique_work(es: EdgeSet, k: int) -> WorkVector:
    """Per-DAG-edge work of seeding a k-clique count from that edge.

    The base level intersects the two out-neighborhoods (merge pricing:
    ``d⁺_u + d⁺_v`` consumed elements).  Each deeper level re-intersects
    the surviving candidate set; under a random-graph expectation the
    survivors shrink geometrically by ``d⁺_u·d⁺_v / n`` per level, so the
    extension multiplier is ``Σ_{j≤k-3} r^j`` with that ratio.  Validated
    by monotonicity (deeper k never predicts less work) rather than
    per-instruction exactness — like :func:`bmp_work` it prices a family,
    not one kernel.
    """
    touched = es.du + es.dv
    n = max(es.graph.num_vertices, 1)
    survivors = np.minimum(es.du * es.dv / n, np.maximum(es.d_small, 1.0))
    levels = np.ones(len(es))
    surv = np.ones(len(es))
    for _ in range(max(k - 3, 0)):
        surv = surv * survivors
        levels = levels + surv
    w = WorkVector(len(es))
    w["scalar_ops"] = 2.0 * touched * levels
    w["branch_ops"] = touched * levels
    w["seq_words"] = touched * levels
    return w


def biclique_work(right_degrees, p: int, q: int = 2) -> WorkVector:
    """Per-right-vertex work of (p,q)-biclique subset emission.

    The hash runner emits ``C(d_r, p)`` left-side p-combinations from
    right vertex ``r``, each a ``p``-word tuple build plus one hash
    update; streaming the row costs ``d_r`` sequential words.  ``q``
    only affects the final tally pass, priced as one scalar op per
    emitted subset.
    """
    import math

    d = np.asarray(right_degrees, dtype=np.float64)
    emits = np.ones_like(d)
    for i in range(p):
        emits *= np.maximum(d - i, 0.0)
    emits /= math.factorial(p)
    w = WorkVector(len(d))
    w["scalar_ops"] = (p + 1.0) * emits + d
    w["branch_ops"] = emits
    w["rand_words"] = emits
    w["seq_words"] = d
    return w


# --------------------------------------------------------------------- #
# validation helper
# --------------------------------------------------------------------- #
def measure_work_sample(
    graph: CSRGraph,
    kind: str,
    sample_size: int = 64,
    seed: int = 0,
    *,
    threshold: float = 50.0,
    lane_width: int = 8,
    range_scale: int = 4096,
) -> tuple[OpCounts, EdgeSet, np.ndarray]:
    """Run the exact instrumented kernels on a random edge sample.

    Returns the accumulated :class:`OpCounts`, the full edge set and the
    sampled edge indices, so callers (tests) can compare against the
    closed-form estimate restricted to the same sample.
    """
    from repro.kernels.bitmap import Bitmap, intersect_bitmap
    from repro.kernels.blockmerge import intersect_block_merge
    from repro.kernels.merge import intersect_merge
    from repro.kernels.pivotskip import intersect_pivot_skip
    from repro.kernels.rangefilter import RangeFilteredBitmap, intersect_range_filtered

    es = upper_edges(graph)
    rng = np.random.default_rng(seed)
    if len(es) == 0:
        return OpCounts(), es, np.empty(0, dtype=np.int64)
    idx = rng.choice(len(es), size=min(sample_size, len(es)), replace=False)
    idx.sort()

    totals = OpCounts()
    for i in idx:
        u = int(es.u[i])
        v = int(es.v[i])
        a = graph.neighbors(u)
        b = graph.neighbors(v)
        if kind == "merge":
            intersect_merge(a, b, totals)
        elif kind == "block_merge":
            intersect_block_merge(a, b, totals, lane_width)
        elif kind == "pivot_skip":
            small, large = (a, b) if len(a) <= len(b) else (b, a)
            intersect_pivot_skip(large, small, totals, lane_width)
        elif kind == "mps":
            ratio = max(len(a), len(b)) / max(min(len(a), len(b)), 1)
            if ratio > threshold:
                small, large = (a, b) if len(a) <= len(b) else (b, a)
                intersect_pivot_skip(large, small, totals, lane_width)
            else:
                intersect_block_merge(a, b, totals, lane_width)
        elif kind == "bmp":
            big, small = (a, b) if len(a) >= len(b) else (b, a)
            bm = Bitmap(graph.num_vertices)
            bm.set_many(big, totals)
            intersect_bitmap(bm, small, totals)
            bm.clear_many(big, totals)
        elif kind == "bmp_rf":
            big, small = (a, b) if len(a) >= len(b) else (b, a)
            rf = RangeFilteredBitmap(graph.num_vertices, range_scale)
            rf.set_many(big, totals)
            intersect_range_filtered(rf, small, totals)
            rf.clear_many(big, totals)
        else:
            raise ValueError(f"unknown kernel kind {kind!r}")
    return totals, es, idx
