# Convenience targets for the reproduction workflow.

.PHONY: install test verify fuzz-smoke bench bench-smoke serve-smoke stream-smoke motif-smoke examples experiments all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Tier-1 suite under both multiprocessing start methods — the spawn leg
# exercises the shared-memory parallel backend the way macOS/Windows would
# (mirrors the CI matrix in .github/workflows/ci.yml).
verify:
	PYTHONPATH=src MP_START_METHOD=fork python -m pytest -x -q
	PYTHONPATH=src MP_START_METHOD=spawn python -m pytest -x -q

# Deterministic differential fuzz sweep: 200 seeded cases through every
# registered execution path, cross-checked against brute force.  Failures
# shrink to minimal reproducers under fuzz-artifacts/ (mirrors the
# fuzz-smoke CI leg; the nightly job runs a much larger budget).
fuzz-smoke:
	PYTHONPATH=src python -m repro fuzz --cases 200 --seed 0

bench:
	pytest benchmarks/ --benchmark-only

# Quick backend sweep with plan stats plus the cold-vs-warm session leg,
# the sharded memory-bound/throughput gates, the streaming gates
# (bit-exact sliding window vs model replay, ingest throughput floor,
# reservoir-estimator interval honesty), and the motif gates (clique-3
# reconciles with triangle_count(), every clique/biclique runner agrees
# with brute force); writes BENCH_counting.json, BENCH_session.json,
# BENCH_sharding.json, BENCH_streaming.json and BENCH_motifs.json
# (mirrors the bench-smoke + streaming-smoke + motif-smoke CI legs).
bench-smoke:
	PYTHONPATH=src python benchmarks/bench_counting_backends.py \
		--quick --json BENCH_counting.json
	PYTHONPATH=src python benchmarks/bench_session.py \
		--quick --json BENCH_session.json
	PYTHONPATH=src python benchmarks/bench_sharding.py \
		--quick --json BENCH_sharding.json
	PYTHONPATH=src python benchmarks/bench_streaming.py \
		--quick --json BENCH_streaming.json
	PYTHONPATH=src python benchmarks/bench_motifs.py \
		--quick --json BENCH_motifs.json

# Boot the real serving stack in-process and drive it with closed-loop
# clients: batched dispatch must beat naive per-request dispatch at
# bit-exact correctness, and edit batches applied mid-load must never
# corrupt or block concurrent reads.  Writes BENCH_serving.json
# (mirrors the serving-smoke CI leg).
serve-smoke:
	PYTHONPATH=src python benchmarks/bench_serving.py \
		--quick --json BENCH_serving.json

# Streaming gates alone: trace replay through the sliding-window
# counter with the bit-exact model check, the throughput floor, and the
# estimator interval check (mirrors the streaming-smoke CI leg).
stream-smoke:
	PYTHONPATH=src python benchmarks/bench_streaming.py \
		--quick --json BENCH_streaming.json

# Motif gates alone: k-clique totals reconciled against the production
# common-neighbor triangle counts, every clique runner agreeing for
# k in {3,4,5}, and both biclique runners agreeing with brute force on
# calibrated bipartite generators (mirrors the motif-smoke CI leg).
motif-smoke:
	PYTHONPATH=src python benchmarks/bench_motifs.py \
		--quick --json BENCH_motifs.json

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

# Regenerate every paper table/figure through the CLI.
experiments:
	@for id in table1 table2 table3 table4 table5 table6 table7 \
	           fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10; do \
	    python -m repro experiment $$id; echo; done

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
