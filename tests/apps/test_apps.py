"""Unit tests for the application layer (similarity, SCAN, recommendation)."""

import numpy as np
import pytest

from repro.apps import (
    jaccard_similarity,
    recommend_products,
    scan_clustering,
    structural_similarity,
)
from repro.core import count_common_neighbors
from repro.graph.build import csr_from_pairs
from repro.graph.generators import co_purchase_graph


@pytest.fixture
def two_cliques():
    """Two 5-cliques joined by a single bridge edge — classic SCAN input."""
    edges = []
    for base in (0, 5):
        edges += [(base + i, base + j) for i in range(5) for j in range(i + 1, 5)]
    edges.append((0, 5))  # bridge
    return csr_from_pairs(edges)


def test_structural_similarity_bounds(medium_graph):
    sim = structural_similarity(count_common_neighbors(medium_graph))
    assert np.all(sim > 0)
    assert np.all(sim <= 1.0 + 1e-9)


def test_structural_similarity_exact_value():
    # Triangle: every edge has sigma = (1 + 2)/sqrt(3*3) = 1.
    g = csr_from_pairs([(0, 1), (1, 2), (0, 2)])
    sim = structural_similarity(count_common_neighbors(g))
    assert np.allclose(sim, 1.0)


def test_jaccard_bounds_and_order(medium_graph):
    counted = count_common_neighbors(medium_graph)
    jac = jaccard_similarity(counted)
    assert np.all((0 < jac) & (jac <= 1.0))
    # Jaccard <= cosine for the same sets.
    assert np.all(jac <= structural_similarity(counted) + 1e-9)


def test_scan_separates_cliques(two_cliques):
    counted = count_common_neighbors(two_cliques)
    result = scan_clustering(counted, eps=0.7, mu=3)
    assert result.num_clusters == 2
    labels = result.labels
    assert len(set(labels[0:5])) == 1
    assert len(set(labels[5:10])) == 1
    assert labels[0] != labels[5]


def test_scan_loose_eps_merges_everything(two_cliques):
    counted = count_common_neighbors(two_cliques)
    result = scan_clustering(counted, eps=0.1, mu=2)
    assert result.num_clusters == 1


def test_scan_identifies_hub():
    # A vertex bridging two cliques without belonging to either.
    edges = []
    for base in (0, 5):
        edges += [(base + i, base + j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(10, 0), (10, 5)]  # vertex 10 touches both cliques
    g = csr_from_pairs(edges)
    result = scan_clustering(count_common_neighbors(g), eps=0.6, mu=3)
    assert result.num_clusters == 2
    assert 10 in result.hubs.tolist()


def test_scan_outliers():
    edges = [(0, 1), (1, 2), (0, 2), (3, 0)]  # 3 dangles off a triangle
    g = csr_from_pairs(edges)
    result = scan_clustering(count_common_neighbors(g), eps=0.9, mu=3)
    assert 3 in result.outliers.tolist() or 3 in result.hubs.tolist() or result.labels[3] >= 0


def test_scan_parameter_validation(two_cliques):
    counted = count_common_neighbors(two_cliques)
    with pytest.raises(ValueError):
        scan_clustering(counted, eps=0.0)
    with pytest.raises(ValueError):
        scan_clustering(counted, mu=1)


def test_recommendation_basics():
    g = co_purchase_graph(300, 60, purchases_per_user=5, seed=9)
    counted = count_common_neighbors(g)
    product = int(g.degrees.argmax())
    recs = recommend_products(counted, product, k=5)
    assert 0 < len(recs) <= 5
    scores = [s for _, s in recs]
    assert scores == sorted(scores, reverse=True)
    assert all(g.has_edge(product, p) for p, _ in recs)


def test_recommendation_by_count_vs_similarity():
    g = co_purchase_graph(300, 60, purchases_per_user=5, seed=9)
    counted = count_common_neighbors(g)
    product = int(g.degrees.argmax())
    by_count = recommend_products(counted, product, k=3, by="count")
    assert all(isinstance(p, int) for p, _ in by_count)
    with pytest.raises(ValueError):
        recommend_products(counted, product, by="stars")


def test_recommendation_out_of_range(medium_graph):
    counted = count_common_neighbors(medium_graph)
    with pytest.raises(IndexError):
        recommend_products(counted, medium_graph.num_vertices)


def test_recommendation_isolated_product(small_graph):
    counted = count_common_neighbors(small_graph)
    assert recommend_products(counted, 7) == []
