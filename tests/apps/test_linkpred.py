"""Unit tests for link prediction scores."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.linkpred import (
    adamic_adar_score,
    common_neighbor_score,
    common_neighbors_of,
    predict_links,
    resource_allocation_score,
)
from repro.graph.build import csr_from_pairs


def test_common_neighbors_of(small_graph):
    assert common_neighbors_of(small_graph, 1, 4).tolist() == [0]
    assert common_neighbors_of(small_graph, 0, 1).tolist() == [2, 3]
    assert common_neighbors_of(small_graph, 6, 7).tolist() == []


def test_scores_match_networkx(medium_graph):
    nxg = medium_graph.to_networkx()
    rng = np.random.default_rng(3)
    pairs = [
        (int(a), int(b))
        for a, b in zip(
            rng.integers(0, medium_graph.num_vertices, 15),
            rng.integers(0, medium_graph.num_vertices, 15),
        )
        if a != b and not medium_graph.has_edge(int(a), int(b))
    ]
    aa = {(u, v): p for u, v, p in nx.adamic_adar_index(nxg, pairs)}
    ra = {(u, v): p for u, v, p in nx.resource_allocation_index(nxg, pairs)}
    for u, v in pairs:
        assert adamic_adar_score(medium_graph, u, v) == pytest.approx(aa[(u, v)])
        assert resource_allocation_score(medium_graph, u, v) == pytest.approx(ra[(u, v)])


def test_common_score_is_count(small_graph):
    assert common_neighbor_score(small_graph, 1, 4) == 1.0
    assert common_neighbor_score(small_graph, 0, 7) == 0.0


def test_adamic_adar_ignores_degree_one_sharers():
    # 0-2-1 path: vertex 2 has degree 2, fine.  0-3-1 where 3 only
    # connects to 0 and 1: also degree 2.  Build a case with a degree-1
    # impossible sharer -> use triangle where shared vertex has degree 2.
    g = csr_from_pairs([(0, 2), (1, 2)])
    assert adamic_adar_score(g, 0, 1) == pytest.approx(1 / np.log(2))


def test_predict_links_returns_two_hop_non_neighbors(medium_graph):
    seed = int(medium_graph.degrees.argmax())
    preds = predict_links(medium_graph, seed, k=5)
    assert 0 < len(preds) <= 5
    scores = [s for _, s in preds]
    assert scores == sorted(scores, reverse=True)
    for cand, _ in preds:
        assert not medium_graph.has_edge(seed, cand)
        assert cand != seed


def test_predict_links_methods_differ(medium_graph):
    seed = int(medium_graph.degrees.argmax())
    by_common = predict_links(medium_graph, seed, k=10, method="common")
    by_aa = predict_links(medium_graph, seed, k=10, method="adamic-adar")
    assert len(by_common) == len(by_aa)


def test_predict_links_validation(small_graph):
    with pytest.raises(ValueError):
        predict_links(small_graph, 0, method="tarot")
    with pytest.raises(IndexError):
        predict_links(small_graph, 99)


def test_predict_links_isolated_vertex(small_graph):
    assert predict_links(small_graph, 7) == []
