"""Unit tests for clustering coefficients (validated against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.coefficients import (
    average_clustering,
    local_clustering_coefficient,
    transitivity,
    triangles_per_vertex,
)
from repro.core import count_common_neighbors
from repro.graph.build import csr_from_pairs


def test_triangle_counts_per_vertex(small_graph):
    counted = count_common_neighbors(small_graph)
    tri = triangles_per_vertex(counted)
    nxg = small_graph.to_networkx()
    expected = nx.triangles(nxg)
    for v in range(small_graph.num_vertices):
        assert tri[v] == expected[v]


def test_local_coefficient_matches_networkx(medium_graph):
    counted = count_common_neighbors(medium_graph)
    coeff = local_clustering_coefficient(counted)
    expected = nx.clustering(medium_graph.to_networkx())
    for v in range(0, medium_graph.num_vertices, 13):
        assert coeff[v] == pytest.approx(expected[v], abs=1e-12)


def test_average_clustering_matches_networkx(medium_graph):
    counted = count_common_neighbors(medium_graph)
    assert average_clustering(counted) == pytest.approx(
        nx.average_clustering(medium_graph.to_networkx()), abs=1e-12
    )


def test_transitivity_matches_networkx(medium_graph):
    counted = count_common_neighbors(medium_graph)
    assert transitivity(counted) == pytest.approx(
        nx.transitivity(medium_graph.to_networkx()), abs=1e-12
    )


def test_complete_graph_extremes():
    g = csr_from_pairs([(i, j) for i in range(5) for j in range(i + 1, 5)])
    counted = count_common_neighbors(g)
    assert np.allclose(local_clustering_coefficient(counted), 1.0)
    assert transitivity(counted) == pytest.approx(1.0)


def test_triangle_free_graph():
    g = csr_from_pairs([(i, i + 1) for i in range(6)])
    counted = count_common_neighbors(g)
    assert not triangles_per_vertex(counted).any()
    assert transitivity(counted) == 0.0
    assert average_clustering(counted) == 0.0


def test_corrupted_counts_raise_value_error(small_graph):
    """The parity invariant must raise (not assert — survives python -O)."""
    from repro.core.result import EdgeCounts

    counted = count_common_neighbors(small_graph)
    broken = counted.counts.copy()
    broken[0] += 1  # asymmetric corruption: per-vertex sums turn odd
    with pytest.raises(ValueError, match="even"):
        triangles_per_vertex(EdgeCounts(small_graph, broken))


def test_degree_one_vertices_get_zero(small_graph):
    counted = count_common_neighbors(small_graph)
    coeff = local_clustering_coefficient(counted)
    assert coeff[6] == 0.0  # pendant
    assert coeff[7] == 0.0  # isolated
