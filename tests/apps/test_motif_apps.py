"""Motif-powered app surfaces: clique density scoring + co-engagement."""

from math import comb

import pytest

from repro.apps import clique_density_scores, co_engagement, scan_clustering
from repro.core.api import count_common_neighbors
from repro.graph.bipartite import bipartite_from_pairs
from repro.graph.build import csr_from_pairs


@pytest.fixture
def two_communities():
    """A K5 and a C6 joined by one bridge: one dense and one loose cluster."""
    pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    ring = [5, 6, 7, 8, 9, 10]
    pairs += [(ring[i], ring[(i + 1) % 6]) for i in range(6)]
    pairs += [(ring[i], ring[(i + 2) % 6]) for i in range(6)]  # chords
    pairs += [(4, 5)]
    return csr_from_pairs(pairs, num_vertices=11)


def test_clique_density_separates_tight_from_loose(two_communities):
    result = scan_clustering(
        count_common_neighbors(two_communities), eps=0.5, mu=3
    )
    assert result.num_clusters >= 2
    rows = clique_density_scores(two_communities, result, k=3)
    assert [set(r) for r in rows] == [
        {"cluster", "size", "cliques", "density"}
    ] * len(rows)
    assert all(0.0 <= r["density"] <= 1.0 for r in rows)
    # The K5 cluster is fully saturated; the chorded ring is not.
    assert rows[0]["density"] == 1.0
    assert rows[0]["density"] > rows[-1]["density"]
    # Densest-first ordering.
    densities = [r["density"] for r in rows]
    assert densities == sorted(densities, reverse=True)


def test_clique_density_small_clusters_score_zero(two_communities):
    result = scan_clustering(
        count_common_neighbors(two_communities), eps=0.5, mu=3
    )
    rows = clique_density_scores(two_communities, result, k=5)
    by_cluster = {r["cluster"]: r for r in rows}
    for r in rows:
        if r["size"] < 5:
            assert r["cliques"] == 0 and r["density"] == 0.0
    assert len(by_cluster) == result.num_clusters


def test_co_engagement_ranks_by_shared_cohorts():
    # Users 0-3 all buy products 0 and 1; only user 0 also buys product 2.
    pairs = [(u, 0) for u in range(4)] + [(u, 1) for u in range(4)] + [(0, 2)]
    bip = bipartite_from_pairs(pairs, num_left=4, num_right=3)
    ranked = co_engagement(bip, 0, k=5)
    assert ranked[0] == (1, comb(4, 2))
    assert ranked[1] == (2, comb(1, 2)) if len(ranked) > 1 else True
    # C(1, 2) == 0 shared-pair cohorts: product 2 drops out entirely.
    assert ranked == [(1, comb(4, 2))]


def test_co_engagement_edge_cases():
    bip = bipartite_from_pairs([(0, 0)], num_left=1, num_right=3)
    assert co_engagement(bip, 1) == []  # no users at all
    assert co_engagement(bip, 0) == []  # users but no co-engaged product
    with pytest.raises(IndexError):
        co_engagement(bip, 9)
