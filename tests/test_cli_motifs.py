"""CLI motif surfaces: count/plan --motif, the backends table, exit codes."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def square(tmp_path):
    """A 4-cycle: 2-colorable, exactly one (2,2)-biclique, no triangles."""
    path = tmp_path / "square.txt"
    path.write_text("0 1\n1 2\n2 3\n3 0\n")
    return str(path)


def test_backends_table_lists_backends_and_motifs(capsys):
    code, out, _ = run(capsys, "backends")
    assert code == 0
    # Backend table: capability flags plus the extra-motif column.
    assert "backend" in out and "capabilities" in out
    for name in ("merge", "bitmap", "hybrid", "sharded"):
        assert name in out
    # Motif table: every registered motif with runners and default.
    for motif in ("common-neighbors", "clique-5", "biclique-3-3"):
        assert motif in out
    assert "merge,bitmap,hybrid" in out
    assert "hash,bitmap" in out


def test_count_clique_with_verify(capsys):
    code, out, _ = run(
        capsys, "count", "lj", "--scale", "0.02",
        "--motif", "clique-4", "--verify",
    )
    assert code == 0
    assert "motif            : clique-4 (arity 4)" in out
    assert "backend          : bitmap" in out
    assert "occurrences      : 506" in out
    assert "verification     : passed (brute force)" in out


def test_count_biclique_with_verify(capsys, square):
    code, out, _ = run(
        capsys, "count", square, "--motif", "biclique-2-2", "--verify"
    )
    assert code == 0
    assert "occurrences      : 1" in out
    assert "verification     : passed" in out


def test_count_default_motif_keeps_original_output(capsys):
    code, out, _ = run(capsys, "count", "lj", "--scale", "0.02")
    assert code == 0
    assert "triangles" in out and "occurrences" not in out


def test_plan_clique_prints_buckets(capsys):
    code, out, _ = run(
        capsys, "plan", "lj", "--scale", "0.02", "--motif", "clique-4"
    )
    assert code == 0
    assert "oriented DAG edges" in out
    assert "gallop bucket" in out and "bitmap bucket" in out


def test_plan_biclique_prints_emission_estimate(capsys, square):
    code, out, _ = run(capsys, "plan", square, "--motif", "biclique-2-2")
    assert code == 0
    assert "subset emits" in out


def test_unknown_motif_exits_4_listing_supported(capsys, square):
    code, _, err = run(capsys, "count", square, "--motif", "wedge")
    assert code == 4
    assert "unknown motif 'wedge'" in err
    assert "clique-3" in err and "biclique-2-2" in err


def test_backend_motif_mismatch_exits_4(capsys, square):
    code, _, err = run(
        capsys, "count", square, "--motif", "clique-3", "--backend", "sharded"
    )
    assert code == 4
    assert "does not count motif" in err
    assert "'merge'" in err  # names the capable backends


def test_biclique_on_odd_cycle_exits_4(capsys):
    code, _, err = run(
        capsys, "count", "lj", "--scale", "0.02", "--motif", "biclique-2-2"
    )
    assert code == 4
    assert "not bipartite" in err
