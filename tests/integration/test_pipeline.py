"""Integration tests: the full pipeline on every dataset family."""

import numpy as np
import pytest

from repro import (
    count_common_neighbors,
    load_dataset,
    recommend_processor,
    simulate,
    verify_counts,
)
from repro.apps import scan_clustering, structural_similarity
from repro.graph.datasets import dataset_names
from repro.graph.generators import (
    chung_lu_graph,
    co_purchase_graph,
    erdos_renyi_graph,
    rmat_graph,
    uniformish_graph,
)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: rmat_graph(9, edge_factor=6, seed=2),
        lambda: chung_lu_graph(500, 2500, seed=2),
        lambda: erdos_renyi_graph(400, 1600, seed=2),
        lambda: uniformish_graph(400, 1600, seed=2),
        lambda: co_purchase_graph(300, 100, seed=2),
    ],
)
def test_count_and_verify_every_generator_family(factory):
    g = factory()
    result = count_common_neighbors(g)
    verify_counts(result)


@pytest.mark.parametrize("name", dataset_names())
def test_datasets_end_to_end(name):
    g = load_dataset(name, scale=0.1, cache=False)
    result = count_common_neighbors(g)
    verify_counts(result, against="networkx")
    # Simulation runs for every processor on every dataset.
    for proc in ("cpu", "knl", "gpu"):
        r = simulate(g, "BMP-RF" if proc != "knl" else "MPS-AVX512", proc, threads=None if proc == "gpu" else 8)
        assert r.seconds > 0


def test_full_analytics_workflow():
    """Graph → counts → similarity → clustering, like an online pipeline."""
    g = load_dataset("lj", scale=0.1, cache=False)
    counts = count_common_neighbors(g, backend="bitmap")
    sim = structural_similarity(counts)
    assert len(sim) == g.num_directed_edges
    clusters = scan_clustering(counts, eps=0.5, mu=3)
    assert clusters.labels.max() >= 0  # found at least one cluster
    assert recommend_processor(g) in ("gpu", "knl")


def test_parallel_backend_agrees_on_dataset():
    g = load_dataset("or", scale=0.1, cache=False)
    serial = count_common_neighbors(g)
    parallel = count_common_neighbors(g, backend="parallel", num_workers=2)
    assert np.array_equal(serial.counts, parallel.counts)


def test_algorithm_backends_cross_agree_on_skewed_data():
    g = load_dataset("wi", scale=0.1, cache=False)
    results = [
        count_common_neighbors(g, algorithm=a).counts
        for a in ("M", "MPS", "BMP", "BMP-RF")
    ]
    for r in results[1:]:
        assert np.array_equal(results[0], r)
