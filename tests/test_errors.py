"""Unit tests for the exception hierarchy and the top-level package."""

import pytest

import repro
from repro.errors import (
    AlgorithmError,
    CapacityError,
    EdgeNotFoundError,
    GraphFormatError,
    ReproError,
    SimulationError,
    UnknownAlgorithmError,
    VerificationError,
)


@pytest.mark.parametrize(
    "exc",
    [GraphFormatError, AlgorithmError, SimulationError, CapacityError, VerificationError],
)
def test_hierarchy(exc):
    assert issubclass(exc, ReproError)


def test_edge_not_found_carries_endpoints():
    e = EdgeNotFoundError(3, 7)
    assert e.u == 3 and e.v == 7
    assert isinstance(e, KeyError)


def test_unknown_algorithm_lists_known():
    e = UnknownAlgorithmError("zap", ("M", "MPS"))
    assert "zap" in str(e) and "MPS" in str(e)


def test_package_exports():
    assert repro.__version__
    assert "ICPP 2019" in repro.PAPER
    for name in repro.__all__:
        assert getattr(repro, name) is not None
