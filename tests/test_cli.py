"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_datasets(capsys):
    code, out = run(capsys, "datasets")
    assert code == 0
    for name in ("lj", "or", "wi", "tw", "fr"):
        assert name in out


def test_stats_dataset(capsys):
    code, out = run(capsys, "stats", "tw", "--scale", "0.1")
    assert code == 0
    assert "|V|" in out and "skewed edges" in out


def test_stats_edge_list_file(capsys, tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")
    code, out = run(capsys, "stats", str(path))
    assert code == 0
    assert "|E| (undirected) : 3" in out


def test_count_with_verify_and_output(capsys, tmp_path):
    out_path = tmp_path / "counts.npz"
    code, out = run(
        capsys, "count", "lj", "--scale", "0.05", "--verify",
        "--top", "2", "--output", str(out_path),
    )
    assert code == 0
    assert "verification     : passed" in out
    assert "triangles" in out
    with np.load(out_path) as data:
        assert len(data["counts"]) > 0


def test_count_backends(capsys):
    code, out = run(capsys, "count", "lj", "--scale", "0.05", "--backend", "bitmap")
    assert code == 0


def test_count_workers_stats(capsys):
    code, out = run(
        capsys, "count", "lj", "--scale", "0.05",
        "--workers", "2", "--stats", "--chunks-per-worker", "2",
    )
    assert code == 0
    assert "triangles" in out
    # --workers/--stats route through the parallel backend and print the
    # per-worker telemetry block.
    assert "workers          : 2 effective / 2 requested" in out
    assert "chunks" in out and "imbalance" in out and "kernel ops" in out


def test_update_insert_and_delete(capsys, tmp_path):
    g = tmp_path / "g.txt"
    g.write_text("0 1\n1 2\n2 3\n3 0\n")
    ins = tmp_path / "ins.txt"
    ins.write_text("0 2\n1 3\n0 2\n")  # last line duplicates the first
    dels = tmp_path / "del.txt"
    dels.write_text("2 3\n")
    out_path = tmp_path / "counts.npz"
    code, out = run(
        capsys, "update", str(g), "--edges", str(ins), "--delete", str(dels),
        "--verify", "--output", str(out_path),
    )
    assert code == 0
    assert "inserted         : 2" in out
    assert "deleted          : 1" in out
    assert "skipped (no-op)  : 1" in out
    assert "verification     : passed" in out
    assert "|E| now          : 5" in out
    with np.load(out_path) as data:
        assert len(data["counts"]) == 10


def test_update_batched(capsys, tmp_path):
    g = tmp_path / "g.txt"
    g.write_text("0 1\n1 2\n2 3\n3 4\n4 0\n")
    ins = tmp_path / "ins.txt"
    ins.write_text("0 2\n0 3\n1 3\n1 4\n2 4\n")
    code, out = run(
        capsys, "update", str(g), "--edges", str(ins), "--batch-size", "2",
        "--verify",
    )
    assert code == 0
    assert "inserted         : 5" in out
    assert "verification     : passed" in out


def test_update_requires_an_update_file(capsys, tmp_path):
    g = tmp_path / "g.txt"
    g.write_text("0 1\n")
    code = main(["update", str(g)])
    assert code == 2


def test_simulate_cpu(capsys):
    code, out = run(capsys, "simulate", "tw", "--scale", "0.2",
                    "--processor", "cpu", "--algorithm", "MPS", "--threads", "8")
    assert code == 0
    assert "modeled" in out and "breakdown" in out and "threads" in out


def test_simulate_gpu(capsys):
    code, out = run(capsys, "simulate", "tw", "--scale", "0.2",
                    "--processor", "gpu", "--warps", "8")
    assert code == 0
    assert "warps_per_block  : 8" in out


def test_experiment_list_and_run(capsys):
    code, out = run(capsys, "experiment", "list")
    assert code == 0
    assert "fig10" in out and "table4" in out
    code, out = run(capsys, "experiment", "table2", "--scale", "0.2")
    assert code == 0
    assert "skew_%" in out


def test_experiment_unknown(capsys):
    code = main(["experiment", "fig99"])
    assert code == 2


def test_recommend(capsys):
    code, out = run(capsys, "recommend", "fr", "--scale", "0.1")
    assert code == 0
    assert "KNL" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_experiment_chart(capsys):
    code, out = run(capsys, "experiment", "fig9", "--scale", "0.2", "--chart")
    assert code == 0
    assert "A = MPS" in out and "B = BMP" in out


def test_experiment_chart_ignored_for_tables(capsys):
    code, out = run(capsys, "experiment", "table3", "--scale", "0.2", "--chart")
    assert code == 0
    assert "A =" not in out


def test_cluster_command(capsys):
    code, out = run(capsys, "cluster", "lj", "--scale", "0.1", "--eps", "0.45")
    assert code == 0
    assert "clusters" in out and "outliers" in out


def test_linkpred_command(capsys):
    code, out = run(capsys, "linkpred", "lj", "--scale", "0.1", "--top", "3")
    assert code == 0
    assert "candidate links" in out and "score=" in out


def test_linkpred_explicit_vertex(capsys):
    code, out = run(capsys, "linkpred", "lj", "--scale", "0.1",
                    "--vertex", "0", "--method", "common")
    assert code == 0


def test_fuzz_command_clean_run(capsys, tmp_path):
    code, out = run(
        capsys, "fuzz", "--cases", "8", "--seed", "0",
        "--paths", "merge", "bitmap",
        "--artifact-dir", str(tmp_path / "artifacts"),
    )
    assert code == 0
    assert "cases            : 8" in out
    assert "merge" in out and "bitmap" in out
    assert "failures         : 0" in out


def test_fuzz_command_rejects_unknown_path(capsys):
    code = main(["fuzz", "--cases", "2", "--paths", "no-such-path"])
    assert code == 2


def test_fuzz_command_replays_artifact(capsys, tmp_path):
    from repro.fuzz.differential import Failure
    from repro.fuzz.generators import generate_case
    from repro.fuzz.shrink import save_artifact

    artifact = save_artifact(
        generate_case(3, 1), Failure("merge", "mismatch", "stale"), tmp_path
    )
    code, out = run(capsys, "fuzz", "--replay", artifact)
    assert code == 0  # the recorded bug is fixed, so the replay passes
    assert "merge" in out


def test_fuzz_replay_skips_unavailable_recorded_path(capsys, tmp_path):
    # Regression: an artifact recorded on a compiled-enabled host used to
    # crash replay with AlgorithmError on hosts without the dependency.
    # It must skip with a warning and exit 0.
    from repro.fuzz.differential import Failure
    from repro.fuzz.generators import generate_case
    from repro.fuzz.shrink import save_artifact

    artifact = save_artifact(
        generate_case(3, 2),
        Failure("gone-backend", "mismatch", "stale"),
        tmp_path,
    )
    code = main(["fuzz", "--replay", artifact])
    captured = capsys.readouterr()
    assert code == 0
    assert "skipped" in captured.out
    assert "gone-backend" in captured.err  # the warning reaches stderr


def test_stream_command_replays_trace(capsys, tmp_path):
    import json

    from repro.stream import generate_trace, write_trace

    trace = tmp_path / "trace.txt"
    write_trace(trace, generate_trace(500, 60, seed=5))
    summary_path = tmp_path / "summary.json"
    code, out = run(
        capsys, "stream", "--trace", str(trace), "--window", "100",
        "--snapshot-every", "200", "--json", str(summary_path),
        "--sampled-budget", "65536",
    )
    assert code == 0
    lines = [json.loads(line) for line in out.strip().splitlines()]
    kinds = [rec["type"] for rec in lines]
    assert kinds.count("snapshot") >= 2 and kinds[-1] == "summary"
    summary = json.loads(summary_path.read_text())
    assert summary["events"] == 500
    assert summary["live_edges"] > 0
    assert summary["sampled"]["estimate"]["delta"] == 0.05


def test_stream_command_maps_errors_to_exit_codes(capsys, tmp_path):
    # Out-of-order timestamps → ReproError → 6; malformed trace → 3.
    trace = tmp_path / "bad_order.txt"
    trace.write_text("5 0 1\n3 1 2\n")
    assert main(["stream", "--trace", str(trace)]) == 6
    capsys.readouterr()
    trace = tmp_path / "bad_tokens.txt"
    trace.write_text("1 a b\n")
    assert main(["stream", "--trace", str(trace)]) == 3
    capsys.readouterr()
    assert main(["stream", "--trace", "/no/such/trace.txt"]) == 7


# --------------------------------------------------------------------- #
# error handling: known failures exit with distinct codes + one stderr line
# --------------------------------------------------------------------- #
def test_missing_file_exits_7_with_one_line_stderr(capsys):
    code = main(["stats", "/no/such/file.txt"])
    captured = capsys.readouterr()
    assert code == 7
    assert captured.err.startswith("repro stats:")
    assert captured.err.count("\n") == 1
    assert "Traceback" not in captured.err


def test_malformed_edge_list_exits_3(capsys, tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\nbogus line here\n")
    code = main(["stats", str(path)])
    captured = capsys.readouterr()
    assert code == 3
    assert "non-integer vertex id" in captured.err
    assert captured.err.count("\n") == 1


def test_incompatible_algorithm_backend_exits_4(capsys):
    code = main(["count", "lj", "--scale", "0.05",
                 "--algorithm", "MPS", "--backend", "bitmap"])
    captured = capsys.readouterr()
    assert code == 4
    assert captured.err.startswith("repro count:")
    assert "does not execute" in captured.err


def test_update_with_missing_edit_file_exits_7(capsys, tmp_path):
    g = tmp_path / "g.txt"
    g.write_text("0 1\n1 2\n")
    code = main(["update", str(g), "--edges", str(tmp_path / "missing.txt")])
    captured = capsys.readouterr()
    assert code == 7
    assert captured.err.startswith("repro update:")


def test_usage_error_exits_2_via_system_exit():
    with pytest.raises(SystemExit) as err:
        main(["count", "lj", "--backend", "no-such-backend"])
    assert err.value.code == 2


# --------------------------------------------------------------------- #
# serve subcommand plumbing
# --------------------------------------------------------------------- #
def test_serve_preload_spec_parsing():
    from repro.cli import _parse_preload

    assert _parse_preload("lj") == {"dataset": "lj", "scale": 1.0}
    assert _parse_preload("lj:0.2") == {"dataset": "lj", "scale": 0.2}
    spec = _parse_preload("/tmp/some/graph.txt")
    assert spec == {"path": "/tmp/some/graph.txt"}


def test_serve_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0"])
    assert args.command == "serve"
    assert args.port == 0
    assert args.host == "127.0.0.1"
    assert args.preload is None or args.preload == []
