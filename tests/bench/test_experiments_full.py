"""Smoke tests for the sweep-style experiments at reduced scale.

The full-scale shape assertions live in benchmarks/; these verify the
experiment functions stay structurally sound at any scale (row shapes,
series lengths, value sanity) so refactors cannot silently break the
harness between benchmark runs.
"""

import pytest

from repro.bench import experiments
from repro.bench.harness import render_table

SCALE = 0.1


def test_fig5_series_lengths():
    result = experiments.fig5_scalability(scale=SCALE)
    assert len(result.rows) == 8  # 2 datasets x (cpu,knl) x (MPS,BMP)
    for row in result.rows:
        threads, speedups = row[3], row[4]
        assert len(threads) == len(speedups)
        assert speedups[0] == 1.0
        assert all(s > 0 for s in speedups)


def test_fig8_series_lengths():
    result = experiments.fig8_multipass(scale=SCALE)
    for row in result.rows:
        passes, seconds, thrash = row[3], row[4], row[5]
        assert len(passes) == len(seconds) == len(thrash)
        assert row[2] >= 1  # estimated passes


def test_fig9_series_lengths():
    result = experiments.fig9_block_size(scale=SCALE)
    for row in result.rows:
        warps, seconds = row[2], row[3]
        assert len(warps) == len(seconds)
        assert min(seconds) > 0


def test_fig10_row_per_dataset():
    result = experiments.fig10_comparison(scale=SCALE)
    assert len(result.rows) == 5
    cols = result.columns
    for row in result.rows:
        best, worst = row[cols.index("best")], row[cols.index("worst")]
        times = row[1:7]
        assert min(times) == row[cols.index(best)]
        assert max(times) == row[cols.index(worst)]


def test_table4_configs_complete():
    result = experiments.table4_breakdown(scale=SCALE)
    configs = {(r[0], r[1], r[2]) for r in result.rows}
    for ds in ("tw", "fr"):
        assert (ds, "cpu", "M") in configs
        assert (ds, "knl", "MPS+V+P+HBW") in configs
        assert (ds, "cpu", "BMP+P+RF") in configs
    # Every row renders cleanly.
    render_table(result)


def test_all_experiments_have_unique_ids():
    ids = [
        fn(scale=SCALE).experiment_id
        for fn in (
            experiments.table1_datasets,
            experiments.table2_skew,
            experiments.table3_bitmap_memory,
        )
    ]
    assert len(set(ids)) == len(ids)
