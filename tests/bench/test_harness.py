"""Unit tests for the bench harness and experiment smoke runs."""

import pytest

from repro.bench import experiments
from repro.bench.harness import ExperimentResult, fmt, render_table


@pytest.fixture
def sample():
    return ExperimentResult(
        "tableX",
        "Sample",
        ["name", "value"],
        [["a", 1.5], ["b", 20000]],
        notes=["hello"],
    )


def test_render_contains_everything(sample):
    text = render_table(sample)
    assert "tableX" in text and "Sample" in text
    assert "name" in text and "value" in text
    assert "1.50" in text and "20,000" in text
    assert "note: hello" in text


def test_column_and_row_map(sample):
    assert sample.column("value") == [1.5, 20000]
    assert sample.row_map()["a"] == ["a", 1.5]


def test_fmt_variants():
    assert fmt(0.0) == "0"
    assert fmt(0.1234567) == "0.1235"
    assert fmt(3.14159) == "3.14"
    assert fmt(123456.0) == "123,456"
    assert fmt(42) == "42"
    assert fmt("x") == "x"


# ------------------------- experiment smoke runs ------------------------- #
# Full-scale runs live in benchmarks/; here we only check the experiment
# functions execute and produce well-formed rows at tiny scale.

SMOKE_SCALE = 0.1


@pytest.mark.parametrize(
    "fn,n_rows",
    [
        (experiments.table1_datasets, 5),
        (experiments.table2_skew, 5),
        (experiments.table3_bitmap_memory, 2),
        (experiments.table5_coprocessing, 2),
        (experiments.table6_memory_passes, 4),
        (experiments.table7_gpu_rf, 2),
        (experiments.fig3_skew_handling, 4),
        (experiments.fig4_vectorization, 4),
        (experiments.fig6_range_filtering, 4),
        (experiments.fig7_mcdram, 4),
    ],
)
def test_experiment_smoke(fn, n_rows):
    result = fn(scale=SMOKE_SCALE)
    assert len(result.rows) == n_rows
    assert all(len(r) == len(result.columns) for r in result.rows)
    render_table(result)  # must not raise
