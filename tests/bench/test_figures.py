"""Unit tests for ASCII figure rendering."""

import pytest

from repro.bench.figures import ascii_bars, ascii_series


def test_bars_basic():
    text = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert lines[1].count("#") == 10  # the max fills the width
    assert lines[0].count("#") == 5


def test_bars_zero_values():
    text = ascii_bars(["x"], [0.0])
    assert "#" not in text


def test_bars_validation():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1.0, 2.0])
    assert ascii_bars([], []) == "(empty)"


def test_series_markers_and_legend():
    text = ascii_series([1, 2, 4], {"mps": [1, 2, 3], "bmp": [3, 2, 1]})
    assert "A = mps" in text and "B = bmp" in text
    assert "A" in text and "B" in text
    assert "x: 1 .. 4" in text


def test_series_validation():
    with pytest.raises(ValueError):
        ascii_series([1, 2], {"s": [1.0]})
    assert ascii_series([1], {}) == "(empty)"


def test_series_constant_line():
    text = ascii_series([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
    assert "flat" in text
