"""CountingServer HTTP/1.1 front end: routes, error mapping, keep-alive.

Each test boots the real asyncio server on an ephemeral port inside
``asyncio.run`` and talks to it over asyncio streams — the actual wire
protocol, no test client shims.
"""

import asyncio
import json

from repro.engine import GraphSession
from repro.graph.generators import small_test_graph
from repro.serve import CountingServer, CountingService
from repro.serve.http import MAX_BODY_BYTES


async def started_server(**service_kw):
    service_kw.setdefault("dispatch_threads", 2)
    service = CountingService(**service_kw)
    server = CountingServer(service, port=0)
    await server.start()
    return server, service


async def http_request(port, method, path, body=None, *, keep_alive=False,
                       reader_writer=None):
    """One request over a fresh (or provided keep-alive) connection.

    Returns ``(status, headers, payload, (reader, writer))``.
    """
    if reader_writer is None:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    else:
        reader, writer = reader_writer
    payload = json.dumps(body).encode() if body is not None else b""
    connection = "keep-alive" if keep_alive else "close"
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: {connection}\r\n\r\n"
        .encode() + payload
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    data = await reader.readexactly(int(headers["content-length"]))
    if not keep_alive:
        writer.close()
    return status, headers, json.loads(data), (reader, writer)


def test_health_load_count_roundtrip():
    graph = small_test_graph()
    with GraphSession(graph) as s:
        expected = int(s.count_pairs([0], [2])[0])

    async def main():
        server, service = await started_server()
        try:
            port = server.port
            status, _, body, _ = await http_request(port, "GET", "/healthz")
            assert status == 200 and body == {"status": "ok", "graphs": 0}

            key = (await service.load_graph(graph=graph))["graph"]

            status, _, body, _ = await http_request(port, "GET", "/graphs")
            assert status == 200
            assert body["graphs"][0]["graph"] == key

            status, _, body, _ = await http_request(
                port, "POST", "/count",
                {"graph": key, "pairs": [[0, 2]]},
            )
            assert status == 200
            assert body == {"graph": key, "epoch": 0, "counts": [expected]}

            status, _, body, _ = await http_request(port, "GET", "/stats")
            assert status == 200
            assert body["requests"] == 1
            assert "latency_ms" in body and "queue_depth" in body
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_load_graph_from_edge_list_path(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n0 2\n")

    async def main():
        server, service = await started_server()
        try:
            status, _, body, _ = await http_request(
                server.port, "POST", "/graphs", {"path": str(path)}
            )
            assert status == 200
            assert body["vertices"] == 3 and body["edges"] == 3
            assert body["name"] == "g.txt"

            status, _, body, _ = await http_request(
                server.port, "POST", "/triangles", {"graph": body["graph"]}
            )
            assert status == 200 and body["triangles"] == 1
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_edits_roundtrip_and_epoch():
    async def main():
        server, service = await started_server()
        try:
            key = (await service.load_graph(graph=small_test_graph()))["graph"]
            status, _, body, _ = await http_request(
                server.port, "POST", "/edits",
                {"graph": key, "insert": [[0, 6]], "delete": [[4, 5]]},
            )
            assert status == 200
            assert body["inserted"] == 1 and body["deleted"] == 1
            assert body["epoch"] == 1
            status, _, body, _ = await http_request(
                server.port, "POST", "/count",
                {"graph": key, "pairs": [[0, 1]]},
            )
            assert status == 200 and body["epoch"] == 1
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_error_mapping():
    async def main():
        server, service = await started_server()
        try:
            port = server.port
            key = (await service.load_graph(graph=small_test_graph()))["graph"]

            cases = [
                # (status, method, path, body)
                (404, "GET", "/nope", None),
                (405, "POST", "/healthz", None),
                (404, "POST", "/count", {"graph": "feedfacedead",
                                         "pairs": [[0, 1]]}),
                (400, "POST", "/count", {"pairs": [[0, 1]]}),  # no graph
                (400, "POST", "/count", {"graph": key}),       # no pairs
                (400, "POST", "/count", {"graph": key, "pairs": []}),
                (400, "POST", "/count", {"graph": key, "pairs": [[1, 2, 3]]}),
                (404, "POST", "/graphs", {"path": "/no/such/file.txt"}),
                (400, "POST", "/graphs", {}),  # no source at all
            ]
            for want, method, path, body in cases:
                status, _, payload, _ = await http_request(
                    port, method, path, body
                )
                assert status == want, (method, path, body, payload)
                assert "error" in payload

            # Syntactically invalid JSON body.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"POST /count HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 9\r\nConnection: close\r\n\r\nnot json!"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_overload_returns_503_with_retry_after():
    async def main():
        server, service = await started_server(max_pending=1, retry_after=0.07)
        try:
            key = (await service.load_graph(graph=small_test_graph()))["graph"]
            # Claim the only admission slot by hand: deterministic 503
            # without racing a real in-flight request.
            service._inflight = service.max_pending
            status, headers, body, _ = await http_request(
                server.port, "POST", "/count",
                {"graph": key, "pairs": [[0, 1]]},
            )
            assert status == 503
            # RFC 9110: the header is integer delta-seconds (>= 1); the
            # precise float stays in the JSON body.
            assert headers["retry-after"] == "1"
            assert body["retry_after"] == 0.07
            service._inflight = 0
            status, _, _, _ = await http_request(
                server.port, "POST", "/count",
                {"graph": key, "pairs": [[0, 1]]},
            )
            assert status == 200
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_keep_alive_serves_multiple_requests_per_connection():
    async def main():
        server, service = await started_server()
        try:
            key = (await service.load_graph(graph=small_test_graph()))["graph"]
            conn = None
            for _ in range(3):
                status, _, body, conn = await http_request(
                    server.port, "POST", "/count",
                    {"graph": key, "pairs": [[0, 2]]},
                    keep_alive=True, reader_writer=conn,
                )
                assert status == 200
            conn[1].close()
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_oversized_body_rejected_with_413():
    async def main():
        server, service = await started_server()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /count HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"413" in line
            writer.close()
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_malformed_request_line_rejected_with_400():
    async def main():
        server, service = await started_server()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GARBAGE\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_ephemeral_port_binding_and_address():
    async def main():
        server, service = await started_server()
        try:
            assert server.port != 0
            assert server.address == f"http://127.0.0.1:{server.port}"
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_stream_endpoint_ingest_expiry_and_errors():
    async def main():
        server, service = await started_server()
        try:
            port = server.port
            # First request creates the stream and counts a triangle.
            status, _, body, _ = await http_request(
                port, "POST", "/stream",
                {"stream": "w", "window": 10,
                 "events": [[0, 0, 1], [1, 1, 2], [2, 0, 2]]},
            )
            assert status == 200
            assert body["stream"] == "w" and body["window"] == 10.0
            assert body["live_edges"] == 3 and body["triangles"] == 1

            # Sliding past the window expires the triangle.
            status, _, body, _ = await http_request(
                port, "POST", "/stream",
                {"stream": "w", "events": [[15, 3, 4]]},
            )
            assert status == 200
            assert body["live_edges"] == 1 and body["triangles"] == 0

            # An empty events list is a pure poll.
            status, _, body, _ = await http_request(
                port, "POST", "/stream", {"stream": "w"}
            )
            assert status == 200 and body["events"] == 0

            # Out-of-order timestamps map to 400, and the live set is
            # untouched by the rejected event.
            status, _, body, _ = await http_request(
                port, "POST", "/stream",
                {"stream": "w", "events": [[1, 5, 6]]},
            )
            assert status == 400 and "non-decreasing" in body["error"]
            status, _, body, _ = await http_request(
                port, "POST", "/stream", {"stream": "w"}
            )
            assert body["live_edges"] == 1

            # Reopening with a different window is a client error;
            # a second stream with its own window is fine.
            status, _, body, _ = await http_request(
                port, "POST", "/stream", {"stream": "w", "window": 99}
            )
            assert status == 400 and "already exists" in body["error"]
            status, _, body, _ = await http_request(
                port, "POST", "/stream",
                {"stream": "other", "events": [[0, 1, 2]]},
            )
            assert status == 200 and body["window"] is None

            # Missing the stream field → 400; telemetry lists both.
            status, _, body, _ = await http_request(
                port, "POST", "/stream", {"events": [[0, 1, 2]]}
            )
            assert status == 400
            status, _, body, _ = await http_request(port, "GET", "/stats")
            assert body["streams"] == {"w": 1, "other": 1}
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())
