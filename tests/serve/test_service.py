"""CountingService: coalescing, epoch snapshots, admission, telemetry.

The service is async; each test drives it inside ``asyncio.run`` (no
pytest-asyncio dependency).  Determinism notes: the coalescing tests
park the dispatch executor with sleeps so queries provably accumulate
before the first batch runs, and the admission test holds a request in
flight the same way before firing the one that must be rejected.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.engine import GraphSession
from repro.errors import ServiceOverloadedError, SessionClosedError, UnknownGraphError
from repro.graph.generators import chung_lu_graph, small_test_graph
from repro.serve import CountingService
from repro.serve.service import _parse_edge_array, _parse_pairs


def make_service(**kw):
    kw.setdefault("dispatch_threads", 2)
    return CountingService(**kw)


async def load(service, graph=None):
    info = await service.load_graph(graph=graph or small_test_graph())
    return info["graph"]


def park_executor(service, seconds):
    """Occupy every dispatch thread so no batch can start yet."""
    for _ in range(service._executor._max_workers):
        service._executor.submit(time.sleep, seconds)


# --------------------------------------------------------------------- #
# correctness
# --------------------------------------------------------------------- #
def test_count_pairs_bit_exact_vs_direct_session():
    graph = chung_lu_graph(80, 300, seed=5)
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, graph.num_vertices, size=(32, 2))
    with GraphSession(graph) as s:
        expected = s.count_pairs(pairs[:, 0], pairs[:, 1])

    async def main():
        service = make_service()
        try:
            key = await load(service, graph)
            resp = await service.count_pairs(key, pairs.tolist())
            assert resp["graph"] == key
            assert resp["epoch"] == 0
            assert resp["counts"] == expected.tolist()
        finally:
            service.close()

    asyncio.run(main())


def test_unknown_graph_key_raises():
    async def main():
        service = make_service()
        try:
            await load(service)
            with pytest.raises(UnknownGraphError):
                await service.count_pairs("feedfacedead", [[0, 1]])
        finally:
            service.close()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------- #
def test_concurrent_queries_coalesce_into_batches():
    graph = chung_lu_graph(80, 300, seed=5)
    with GraphSession(graph) as s:
        expected = s.count_pairs(np.arange(10), np.arange(1, 11))

    async def main():
        service = make_service(coalesce=True)
        try:
            key = await load(service, graph)
            park_executor(service, 0.1)
            results = await asyncio.gather(
                *(service.count_pairs(key, [[i, i + 1]]) for i in range(10))
            )
            for i, resp in enumerate(results):
                assert resp["counts"] == [int(expected[i])]
            stats = service.stats()
            # 10 queries, executor parked until all were enqueued: far
            # fewer dispatches than queries, and at least one real batch.
            assert stats["batch_size"]["max"] >= 2
            assert stats["batches"] < 10
            assert stats["pairs"] == 10
        finally:
            service.close()

    asyncio.run(main())


def test_naive_mode_dispatches_per_request():
    async def main():
        service = make_service(coalesce=False)
        try:
            key = await load(service)
            await asyncio.gather(
                *(service.count_pairs(key, [[0, i]]) for i in range(1, 6))
            )
            stats = service.stats()
            assert stats["batches"] == 5
            assert stats["batch_size"]["max"] == 1
        finally:
            service.close()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
def test_overload_rejects_with_retry_after():
    async def main():
        service = make_service(max_pending=1, retry_after=0.125)
        try:
            key = await load(service)
            park_executor(service, 0.2)
            first = asyncio.ensure_future(service.count_pairs(key, [[0, 1]]))
            await asyncio.sleep(0)  # let it admit and block on the batch
            with pytest.raises(ServiceOverloadedError) as err:
                await service.count_pairs(key, [[1, 2]])
            assert err.value.retry_after == 0.125
            await first  # the admitted request still completes
            assert service.stats()["rejected"] == 1
        finally:
            service.close()

    asyncio.run(main())


def test_max_pending_must_be_positive():
    with pytest.raises(ValueError, match="max_pending"):
        CountingService(max_pending=0)


# --------------------------------------------------------------------- #
# edits + epochs
# --------------------------------------------------------------------- #
def test_edits_advance_epoch_and_change_counts():
    async def main():
        service = make_service()
        try:
            graph = small_test_graph()
            key = await load(service, graph)
            before = await service.count_pairs(key, [[0, 2]])

            # Find a vertex adjacent to neither endpoint, then wire it to
            # both: the common-neighbor count of (0, 2) must rise by one.
            n0 = set(graph.neighbors(0))
            n2 = set(graph.neighbors(2))
            w = next(
                x for x in range(graph.num_vertices)
                if x not in (0, 2) and x not in n0 and x not in n2
            )
            resp = await service.apply_edits(key, insertions=[[0, w], [2, w]])
            assert resp["epoch"] == 1
            assert resp["inserted"] == 2

            after = await service.count_pairs(key, [[0, 2]])
            assert after["epoch"] == 1
            assert after["counts"][0] == before["counts"][0] + 1
        finally:
            service.close()

    asyncio.run(main())


def test_noop_edit_batch_does_not_advance_epoch():
    async def main():
        service = make_service()
        try:
            graph = small_test_graph()
            key = await load(service, graph)
            u = int(graph.neighbors(0)[0])
            resp = await service.apply_edits(key, insertions=[[0, u]])
            assert resp["inserted"] == 0
            assert resp["skipped"] == 1
            assert resp["epoch"] == 0
            resp = await service.count_pairs(key, [[0, 1]])
            assert resp["epoch"] == 0
        finally:
            service.close()

    asyncio.run(main())


def test_triangle_count_tracks_edits():
    async def main():
        service = make_service()
        try:
            graph = small_test_graph()
            key = await load(service, graph)
            t0 = (await service.triangle_count(key))["triangles"]
            with GraphSession(graph) as s:
                assert t0 == s.count().triangle_count()
            # Deleting an edge can only lose triangles.
            e = [[int(graph.neighbors(0)[0]), 0]]
            await service.apply_edits(key, deletions=e)
            t1 = (await service.triangle_count(key))["triangles"]
            assert t1 <= t0
        finally:
            service.close()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
def test_evicted_graph_becomes_unknown():
    async def main():
        service = make_service(capacity=1)
        try:
            key1 = await load(service, chung_lu_graph(40, 100, seed=1))
            key2 = await load(service, chung_lu_graph(40, 100, seed=2))
            assert key1 != key2
            with pytest.raises(UnknownGraphError):
                await service.count_pairs(key1, [[0, 1]])
            resp = await service.count_pairs(key2, [[0, 1]])
            assert resp["graph"] == key2
            assert service.stats()["pool"]["evictions"] == 1
        finally:
            service.close()

    asyncio.run(main())


def test_query_after_entry_close_raises_session_closed():
    async def main():
        service = make_service()
        try:
            key = await load(service)
            entry = service.pool.get(key)
            entry.close()
            entry.close()  # idempotent
            with pytest.raises(SessionClosedError):
                await service.count_pairs(key, [[0, 1]])
        finally:
            service.close()

    asyncio.run(main())


def test_stats_shape():
    async def main():
        service = make_service()
        try:
            key = await load(service)
            await service.count_pairs(key, [[0, 1], [1, 2]])
            stats = service.stats()
            assert stats["requests"] == 1
            assert stats["pairs"] == 2
            for field in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"):
                assert field in stats["latency_ms"]
            assert stats["queue_depth"]["max"] >= 1
            assert stats["pool"]["graphs"] == 1
            assert key in stats["pool"]["keys"]
            assert stats["batch_size"]["histogram"] == {1: 1}
        finally:
            service.close()

    asyncio.run(main())


# --------------------------------------------------------------------- #
# input validation
# --------------------------------------------------------------------- #
def test_parse_pairs_rejects_bad_shapes():
    with pytest.raises(ValueError, match="non-empty"):
        _parse_pairs([])
    with pytest.raises(ValueError, match="shape"):
        _parse_pairs([[1, 2, 3]])
    with pytest.raises(ValueError):
        _parse_pairs("nonsense")
    u, v = _parse_pairs([[3, 4], [5, 6]])
    assert u.tolist() == [3, 5] and v.tolist() == [4, 6]


def test_parse_edge_array_accepts_none_and_empty():
    assert _parse_edge_array(None).shape == (0, 2)
    assert _parse_edge_array([]).shape == (0, 2)
    with pytest.raises(ValueError, match="shape"):
        _parse_edge_array([[1, 2, 3]])


def test_load_graph_requires_exactly_one_source():
    async def main():
        service = make_service()
        try:
            with pytest.raises(ValueError, match="exactly one"):
                await service.load_graph()
            with pytest.raises(ValueError, match="exactly one"):
                await service.load_graph(
                    dataset="lj", graph=small_test_graph()
                )
        finally:
            service.close()

    asyncio.run(main())
