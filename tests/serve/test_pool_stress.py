"""Lease pinning under eviction churn: no request sees a closed session.

The regression this guards: ``SessionPool.get`` used to return an entry
with no pin, so a concurrent ``add`` on a full pool could evict and
``close()`` it mid-request — a ``SessionClosedError`` surfacing as a
500.  With leases, an evicted entry's close defers until its last
in-flight lease drains.
"""

import threading
import time

import pytest

from repro.errors import UnknownGraphError
from repro.serve.pool import SessionPool


class FakeEntry:
    def __init__(self, tag):
        self.tag = tag
        self.closed = False

    def close(self):
        self.closed = True


# --------------------------------------------------------------------- #
# deterministic lease semantics
# --------------------------------------------------------------------- #
def test_lease_defers_eviction_close():
    pool = SessionPool(capacity=1)
    a, b = FakeEntry("a"), FakeEntry("b")
    pool.add("a", a)
    lease = pool.acquire("a")
    evicted = pool.add("b", b)  # capacity 1: evicts the leased entry
    assert evicted == [a]
    assert not a.closed  # close deferred: a lease is in flight
    lease.release()
    assert a.closed  # last lease out performs the deferred close
    assert not b.closed


def test_lease_release_is_idempotent():
    pool = SessionPool(capacity=1)
    a = FakeEntry("a")
    pool.add("a", a)
    lease = pool.acquire("a")
    pool.remove("a")
    lease.release()
    lease.release()  # second release must not double-close or underflow
    assert a.closed
    assert pool.lease_counts() == {}


def test_lease_context_manager_yields_entry():
    pool = SessionPool(capacity=2)
    a = FakeEntry("a")
    pool.add("a", a)
    with pool.acquire("a") as entry:
        assert entry is a
        assert pool.lease_counts() == {"a": 1}
    assert pool.lease_counts() == {"a": 0}


def test_overlapping_leases_close_once_after_last():
    pool = SessionPool(capacity=1)
    a = FakeEntry("a")
    pool.add("a", a)
    l1 = pool.acquire("a")
    l2 = pool.acquire("a")
    pool.add("b", FakeEntry("b"))
    l1.release()
    assert not a.closed
    l2.release()
    assert a.closed


def test_replace_defers_close_of_leased_predecessor():
    pool = SessionPool(capacity=4)
    old, new = FakeEntry("old"), FakeEntry("new")
    pool.add("k", old)
    lease = pool.acquire("k")
    pool.add("k", new)  # same-key replace while the old entry is leased
    assert pool.get("k") is new
    assert not old.closed
    lease.release()
    assert old.closed


def test_pool_close_defers_for_leased_entries():
    pool = SessionPool(capacity=2)
    a = FakeEntry("a")
    pool.add("a", a)
    lease = pool.acquire("a")
    pool.close()
    assert len(pool) == 0
    assert not a.closed
    lease.release()
    assert a.closed


def test_unknown_key_acquire_raises():
    pool = SessionPool(capacity=2)
    with pytest.raises(UnknownGraphError):
        pool.acquire("nope")


def test_dunder_queries_and_lease_counts():
    pool = SessionPool(capacity=2)
    pool.add("a", FakeEntry("a"))
    lease = pool.acquire("a")
    assert len(pool) == 1
    assert "a" in pool
    assert "leased" in repr(pool)
    assert pool.lease_counts() == {"a": 1}
    lease.release()


# --------------------------------------------------------------------- #
# concurrent stress: get/acquire vs capacity-1 add churn
# --------------------------------------------------------------------- #
def test_stress_no_request_observes_closed_entry():
    """Readers lease a hot key while writers churn a capacity-1 pool.

    Every reader asserts its leased entry stays open for the whole
    simulated request; ``UnknownGraphError`` (the entry vanished before
    acquire) is an acceptable answer, a closed entry mid-request is not.
    """
    pool = SessionPool(capacity=1)
    pool.add("hot", FakeEntry("hot-0"))
    violations = []
    stop = threading.Event()
    barrier = threading.Barrier(5)

    def writer():
        barrier.wait()
        for i in range(400):
            # Alternate same-key replacement and LRU displacement — both
            # eviction paths must respect in-flight leases.
            pool.add("hot", FakeEntry(f"hot-{i}"))
            pool.add(f"cold-{i}", FakeEntry(f"cold-{i}"))
        stop.set()

    def reader():
        barrier.wait()
        while not stop.is_set():
            try:
                with pool.acquire("hot") as entry:
                    if entry.closed:
                        violations.append(f"closed at acquire: {entry.tag}")
                    time.sleep(0)  # yield mid-request to widen the race
                    if entry.closed:
                        violations.append(f"closed mid-lease: {entry.tag}")
            except UnknownGraphError:
                continue

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not violations, violations[:5]
    # Churn done, all leases drained: every displaced entry must have
    # been closed exactly through the deferred path; the survivor and
    # only the survivor stays open.
    assert pool.lease_counts() == {key: 0 for key in pool.keys()}
    assert pool.evictions > 0
