"""SessionPool LRU semantics: promotion, eviction, closing."""

import pytest

from repro.errors import UnknownGraphError
from repro.serve.pool import SessionPool


class FakeEntry:
    def __init__(self, tag):
        self.tag = tag
        self.closed = False

    def close(self):
        self.closed = True


def test_add_and_get_roundtrip():
    pool = SessionPool(capacity=2)
    a = FakeEntry("a")
    pool.add("a", a)
    assert pool.get("a") is a
    assert len(pool) == 1
    assert "a" in pool


def test_unknown_key_raises_with_known_keys():
    pool = SessionPool(capacity=2)
    pool.add("a", FakeEntry("a"))
    with pytest.raises(UnknownGraphError) as err:
        pool.get("nope")
    assert "nope" in str(err.value)
    assert "a" in str(err.value)


def test_lru_eviction_closes_oldest():
    pool = SessionPool(capacity=2)
    a, b, c = FakeEntry("a"), FakeEntry("b"), FakeEntry("c")
    pool.add("a", a)
    pool.add("b", b)
    pool.add("c", c)  # capacity 2: "a" is LRU and must go
    assert a.closed and not b.closed and not c.closed
    assert pool.keys() == ["b", "c"]
    assert pool.evictions == 1
    with pytest.raises(UnknownGraphError):
        pool.get("a")


def test_get_promotes_to_most_recently_used():
    pool = SessionPool(capacity=2)
    a, b, c = FakeEntry("a"), FakeEntry("b"), FakeEntry("c")
    pool.add("a", a)
    pool.add("b", b)
    pool.get("a")  # now "b" is LRU
    pool.add("c", c)
    assert b.closed and not a.closed
    assert pool.keys() == ["a", "c"]


def test_readding_same_key_replaces_and_closes_old():
    pool = SessionPool(capacity=2)
    old, new = FakeEntry("old"), FakeEntry("new")
    pool.add("k", old)
    evicted = pool.add("k", new)
    assert old.closed
    assert evicted == [old]
    assert pool.get("k") is new
    assert len(pool) == 1
    assert pool.evictions == 0  # a replace is not an eviction


def test_remove_closes_and_reports_unknown():
    pool = SessionPool(capacity=2)
    a = FakeEntry("a")
    pool.add("a", a)
    assert pool.remove("a") is True
    assert a.closed
    assert pool.remove("a") is False


def test_close_drains_everything():
    pool = SessionPool(capacity=4)
    entries = [FakeEntry(i) for i in range(3)]
    for i, e in enumerate(entries):
        pool.add(str(i), e)
    pool.close()
    assert all(e.closed for e in entries)
    assert len(pool) == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        SessionPool(capacity=0)
