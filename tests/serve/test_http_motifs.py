"""Motif counting over the HTTP front end: /count with a motif field."""

import asyncio

from repro.graph.build import csr_from_pairs
from repro.graph.generators import erdos_renyi_graph
from repro.motif.clique import brute_force_cliques
from tests.serve.test_http import http_request, started_server


def test_count_motif_roundtrip_and_error_mapping():
    graph = erdos_renyi_graph(40, 200, seed=7)
    expected = brute_force_cliques(graph, 4)
    square = csr_from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)

    async def main():
        server, service = await started_server()
        try:
            port = server.port
            key = (await service.load_graph(graph=graph))["graph"]
            sq_key = (await service.load_graph(graph=square))["graph"]

            # Clique count through the default runner.
            status, _, body, _ = await http_request(
                port, "POST", "/count", {"graph": key, "motif": "clique-4"},
            )
            assert status == 200
            assert body["total"] == expected
            assert body["motif"] == "clique-4" and body["epoch"] == 0

            # Explicit runner choice rides the same field as pair counts.
            status, _, body, _ = await http_request(
                port, "POST", "/count",
                {"graph": key, "motif": "clique-4", "backend": "merge"},
            )
            assert status == 200 and body["total"] == expected

            # Biclique on a 2-colorable graph.
            status, _, body, _ = await http_request(
                port, "POST", "/count",
                {"graph": sq_key, "motif": "biclique-2-2"},
            )
            assert status == 200 and body["total"] == 1

            # Unknown motif: AlgorithmError maps to 400, not 500.
            status, _, body, _ = await http_request(
                port, "POST", "/count", {"graph": key, "motif": "wedge"},
            )
            assert status == 400 and "unknown motif" in body["error"]

            # Backend that cannot count the motif: also 400.
            status, _, body, _ = await http_request(
                port, "POST", "/count",
                {"graph": key, "motif": "clique-3", "backend": "sharded"},
            )
            assert status == 400 and "does not count" in body["error"]

            # A non-bipartite graph asked for bicliques: 400 with the
            # odd-cycle explanation.
            status, _, body, _ = await http_request(
                port, "POST", "/count",
                {"graph": key, "motif": "biclique-2-2"},
            )
            assert status == 400 and "not bipartite" in body["error"]

            # The original pair-count form is untouched by the new field.
            status, _, body, _ = await http_request(
                port, "POST", "/count", {"graph": sq_key, "pairs": [[0, 2]]},
            )
            assert status == 200 and body["counts"] == [2]
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())


def test_count_motif_sees_the_snapshot_epoch():
    square = csr_from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)

    async def main():
        server, service = await started_server()
        try:
            key = (await service.load_graph(graph=square))["graph"]
            body = await service.motif_count(key, "biclique-2-2")
            assert body["total"] == 1 and body["epoch"] == 0
            # Closing the diagonal creates triangles: the next epoch's
            # bipartite view must fail while pair counts keep working.
            await service.apply_edits(key, insertions=[[0, 2]])
            body = await service.count_pairs(key, [[0, 2]])
            assert body["epoch"] == 1
        finally:
            await server.stop()
            service.close()

    asyncio.run(main())
