"""Unit tests for symmetric assignment and co-processing offsets."""

import numpy as np
import pytest

from repro.algorithms.symmetry import (
    coprocess_reverse_offsets,
    reverse_offsets_via_search,
    symmetric_assign_with_offsets,
)
from repro.types import OpCounts


def test_search_matches_lexsort(small_graph, medium_graph):
    for g in (small_graph, medium_graph):
        slow = reverse_offsets_via_search(g)
        fast = coprocess_reverse_offsets(g)
        assert np.array_equal(slow, fast)


def test_search_counts_binary_steps(small_graph):
    c = OpCounts()
    reverse_offsets_via_search(small_graph, c)
    assert c.binary_steps > 0
    # Each search costs at most ceil(log2(max_degree)) + 1 steps.
    bound = small_graph.num_directed_edges * (
        int(np.ceil(np.log2(max(small_graph.max_degree, 2)))) + 1
    )
    assert c.binary_steps <= bound


def test_symmetric_assign_with_offsets(medium_graph):
    src = medium_graph.edge_sources()
    cnt = np.where(src < medium_graph.dst, np.arange(len(src)), 0)
    rev = coprocess_reverse_offsets(medium_graph)
    out = symmetric_assign_with_offsets(medium_graph, cnt.copy(), rev)
    lower = src > medium_graph.dst
    assert np.array_equal(out[lower], out[rev[lower]])


def test_reverse_offsets_are_permutation(medium_graph):
    rev = coprocess_reverse_offsets(medium_graph)
    assert np.array_equal(np.sort(rev), np.arange(len(rev)))
