"""Tests for the reference executions of Algorithms 1 and 2."""

import numpy as np
import pytest

from repro.algorithms.reference import (
    run_bmp_reference,
    run_merge_reference,
    run_mps_reference,
)
from repro.graph.reorder import reorder_graph
from repro.kernels.batch import count_all_edges_matmul
from repro.types import OpCounts


@pytest.fixture
def expected(medium_graph):
    return count_all_edges_matmul(medium_graph)


def test_merge_reference_exact(medium_graph, expected):
    assert np.array_equal(run_merge_reference(medium_graph), expected)


def test_mps_reference_exact(medium_graph, expected):
    assert np.array_equal(run_mps_reference(medium_graph), expected)


@pytest.mark.parametrize("threshold", [1.5, 50.0, 1e9])
def test_mps_reference_threshold_invariant(medium_graph, expected, threshold):
    """Counts must not depend on the VB/PS dispatch threshold."""
    assert np.array_equal(
        run_mps_reference(medium_graph, skew_threshold=threshold), expected
    )


def test_bmp_reference_exact(medium_graph, expected):
    assert np.array_equal(run_bmp_reference(medium_graph), expected)


def test_bmp_reference_with_range_filter(medium_graph, expected):
    got = run_bmp_reference(medium_graph, range_filter=True, range_scale=32)
    assert np.array_equal(got, expected)


def test_bmp_reference_on_reordered_graph(medium_graph):
    """Reordering changes ids but preserves the triangle structure."""
    rr = reorder_graph(medium_graph)
    plain = run_bmp_reference(medium_graph)
    reordered = run_bmp_reference(rr.graph)
    assert plain.sum() == reordered.sum()


def test_bmp_index_cost_accounting(medium_graph):
    """Paper §3.2: every directed edge accounts for one set + one flip."""
    ops = OpCounts()
    run_bmp_reference(medium_graph, counts=ops)
    m = medium_graph.num_directed_edges
    assert ops.bitmap_set == m
    assert ops.bitmap_clear == m
    # Probes are the N(v) loops over v > u edges only.
    assert ops.bitmap_test > 0


def test_mps_reference_op_profile(medium_graph):
    """Sanity: lowering the threshold moves work from VB to PS."""
    vb_heavy, ps_heavy = OpCounts(), OpCounts()
    run_mps_reference(medium_graph, skew_threshold=1e9, counts=vb_heavy)
    run_mps_reference(medium_graph, skew_threshold=1.0, counts=ps_heavy)
    assert ps_heavy.gallop_steps + ps_heavy.binary_steps > (
        vb_heavy.gallop_steps + vb_heavy.binary_steps
    )


def test_references_on_small_graph(small_graph, small_graph_counts):
    for runner in (run_merge_reference, run_mps_reference, run_bmp_reference):
        cnt = runner(small_graph)
        for (u, v), value in small_graph_counts.items():
            assert cnt[small_graph.edge_offset(u, v)] == value, runner.__name__
