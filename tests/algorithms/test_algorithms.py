"""Unit tests for the algorithm layer (M, MPS, BMP)."""

import numpy as np
import pytest

from repro.algorithms import MPS, BMP, MergeBaseline, algorithm_names, get_algorithm
from repro.algorithms.bmp import map_counts_to_original
from repro.errors import UnknownAlgorithmError
from repro.graph.reorder import reorder_graph
from repro.kernels.batch import count_all_edges_matmul, count_all_edges_bitmap
from repro.kernels.costmodel import upper_edges


def test_registry_contents():
    names = algorithm_names()
    for expected in ("M", "MPS", "BMP", "BMP-RF", "MPS-AVX2", "MPS-AVX512", "MPS-SCALAR"):
        assert expected in names


def test_unknown_algorithm():
    with pytest.raises(UnknownAlgorithmError):
        get_algorithm("quantum")


def test_get_algorithm_case_insensitive():
    assert isinstance(get_algorithm("bmp"), BMP)
    assert isinstance(get_algorithm("mps"), MPS)


def test_get_algorithm_kwargs_override():
    a = get_algorithm("MPS", skew_threshold=20.0)
    assert a.skew_threshold == 20.0
    with pytest.raises(TypeError):
        get_algorithm("MPS", bogus=1)


def test_all_algorithms_same_counts(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    for name in algorithm_names():
        got = get_algorithm(name).count(medium_graph)
        assert np.array_equal(got, ref), name


def test_bmp_requires_reorder_flag():
    assert BMP().requires_reorder
    assert not MPS().requires_reorder
    assert not MergeBaseline().requires_reorder


def test_bmp_count_roundtrips_reorder(medium_graph, small_graph, small_graph_counts):
    cnt = BMP().count(small_graph)
    for (u, v), expected in small_graph_counts.items():
        assert cnt[small_graph.edge_offset(u, v)] == expected


def test_map_counts_to_original(medium_graph):
    rr = reorder_graph(medium_graph)
    counts_new = count_all_edges_bitmap(rr.graph)
    mapped = map_counts_to_original(medium_graph, rr.new_id, counts_new)
    assert np.array_equal(mapped, count_all_edges_matmul(medium_graph))


def test_mps_describe():
    assert "VB16" in MPS(lane_width=16).describe()
    assert "scalar-merge" in MPS(vectorized=False).describe()
    assert "RF" in get_algorithm("BMP-RF").describe()


def test_mps_threshold_affects_work(medium_graph):
    es = upper_edges(medium_graph)
    strict = MPS(skew_threshold=1e9).work(es)  # everything VB
    loose = MPS(skew_threshold=1.0).work(es)  # everything PS
    # With all edges on PS, vector_ops count pivots instead of blocks.
    assert strict.totals() != loose.totals()


def test_mps_scalar_variant_has_branches(medium_graph):
    es = upper_edges(medium_graph)
    scalar = MPS(vectorized=False).work(es)
    vectorized = MPS(vectorized=True).work(es)
    assert scalar["branch_ops"].sum() > vectorized["branch_ops"].sum()


def test_work_vector_alignment(medium_graph):
    es = upper_edges(medium_graph)
    for name in ("M", "MPS", "BMP"):
        w = get_algorithm(name).work(es)
        assert w.n == len(es)


def test_baseline_work_matches_merge_formula(medium_graph):
    es = upper_edges(medium_graph)
    w = MergeBaseline().work(es)
    assert np.allclose(w["scalar_ops"], 2.0 * (es.du + es.dv))
