"""Property-based tests: every intersection kernel agrees with set math."""

import numpy as np
from hypothesis import given, strategies as st

from tests.strategies import sorted_int_arrays

from repro.kernels.bitmap import Bitmap, intersect_bitmap
from repro.kernels.blockmerge import intersect_block_merge
from repro.kernels.lowerbound import (
    binary_lower_bound,
    galloping_lower_bound,
    hybrid_lower_bound,
)
from repro.kernels.merge import intersect_merge
from repro.kernels.pivotskip import intersect_pivot_skip
from repro.kernels.rangefilter import RangeFilteredBitmap, intersect_range_filtered
from repro.types import OpCounts

sorted_sets = sorted_int_arrays(max_value=999, max_size=120)


@given(sorted_sets, sorted_sets)
def test_merge_family_matches_intersect1d(a, b):
    expected = len(np.intersect1d(a, b))
    assert intersect_merge(a, b) == expected
    assert intersect_pivot_skip(a, b) == expected
    assert intersect_block_merge(a, b) == expected


@given(sorted_sets, sorted_sets, st.sampled_from([1, 2, 8, 16, 32]))
def test_lane_width_invariance(a, b, lane):
    expected = len(np.intersect1d(a, b))
    assert intersect_block_merge(a, b, lane_width=lane) == expected
    assert intersect_pivot_skip(a, b, lane_width=lane) == expected


@given(sorted_sets, sorted_sets)
def test_bitmap_matches_intersect1d(a, b):
    expected = len(np.intersect1d(a, b))
    bm = Bitmap(1000)
    bm.set_many(a)
    assert intersect_bitmap(bm, b) == expected
    bm.clear_many(a)
    assert bm.is_clear()


@given(sorted_sets, sorted_sets, st.integers(1, 512))
def test_range_filter_matches_intersect1d(a, b, scale):
    expected = len(np.intersect1d(a, b))
    rf = RangeFilteredBitmap(1000, range_scale=scale)
    rf.set_many(a)
    assert intersect_range_filtered(rf, b) == expected
    rf.clear_many(a)
    assert rf.is_clear()


@given(sorted_sets, sorted_sets)
def test_intersection_commutative(a, b):
    assert intersect_merge(a, b) == intersect_merge(b, a)
    assert intersect_pivot_skip(a, b) == intersect_pivot_skip(b, a)


@given(sorted_sets)
def test_self_intersection_is_identity(a):
    assert intersect_merge(a, a) == len(a)
    assert intersect_block_merge(a, a) == len(a)


@given(sorted_sets, sorted_sets, st.integers(-50, 1100))
def test_lower_bounds_match_searchsorted(a, b, target):
    arr = np.union1d(a, b)
    expected = int(np.searchsorted(arr, target))
    assert binary_lower_bound(arr, 0, len(arr), target) == expected
    assert galloping_lower_bound(arr, 0, len(arr), target) == expected
    assert hybrid_lower_bound(arr, 0, len(arr), target) == expected


@given(sorted_sets, sorted_sets)
def test_match_counts_recorded_consistently(a, b):
    c = OpCounts()
    got = intersect_merge(a, b, c)
    assert c.matches == got
    assert c.seq_words >= max(got, 0)
