"""Property-based tests for the architecture simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.datasets import load_dataset
from repro.simarch import simulate

# One shared small graph: hypothesis varies the knobs, not the data.
GRAPH = load_dataset("tw", scale=0.15, reordered=True, cache=False)


@given(st.sampled_from(["M", "MPS", "BMP", "BMP-RF", "MPS-AVX512"]))
def test_simulation_deterministic(algorithm):
    a = simulate(GRAPH, algorithm, "cpu", threads=8)
    b = simulate(GRAPH, algorithm, "cpu", threads=8)
    assert a.seconds == b.seconds
    assert a.breakdown == b.breakdown


@given(st.integers(1, 5))  # up to 32 threads (cap is 56)
def test_more_threads_never_slower_compute_bound(exp):
    t1 = 2 ** (exp - 1)
    t2 = 2**exp
    a = simulate(GRAPH, "MPS", "cpu", threads=t1).seconds
    b = simulate(GRAPH, "MPS", "cpu", threads=t2).seconds
    assert b <= a * 1.01


@given(st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_gpu_warps_knob_safe(warps):
    r = simulate(GRAPH, "BMP-RF", "gpu", warps_per_block=warps)
    assert r.seconds > 0
    assert 0 < r.config["occupancy"] <= 1.0


@given(st.integers(1, 12))
def test_gpu_passes_monotone_overhead(passes):
    """At or above the clean-pass count, more passes cost more."""
    base = simulate(GRAPH, "MPS", "gpu", passes=passes)
    more = simulate(GRAPH, "MPS", "gpu", passes=passes + 1)
    if not base.config["thrashing"] and not more.config["thrashing"]:
        assert more.seconds >= base.seconds - 1e-12


@given(st.sampled_from(["ddr", "flat", "cache"]))
def test_mcdram_modes_all_valid(mode):
    r = simulate(GRAPH, "MPS-AVX512", "knl", threads=64, mcdram_mode=mode)
    assert r.seconds > 0
    flat = simulate(GRAPH, "MPS-AVX512", "knl", threads=64, mcdram_mode="flat")
    assert flat.seconds <= r.seconds * 1.0001  # flat is never beaten


@given(st.floats(100.0, 100000.0))
def test_hw_scale_safe(scale):
    r = simulate(GRAPH, "BMP-RF", "cpu", threads=4, hw_scale=scale)
    assert r.seconds > 0


@given(st.integers(1, 2048))
def test_task_size_never_changes_exactness_only_time(task_size):
    r = simulate(GRAPH, "MPS", "cpu", threads=8, task_size=task_size)
    assert r.seconds > 0
    assert r.config["task_size"] == task_size
