"""Property-based tests for scheduler, work vectors and the simulator."""

import numpy as np
from hypothesis import given, strategies as st

from repro.parallel.scheduler import chunk_work, simulate_dynamic, simulate_static
from repro.simarch.cache import analytic_miss_rate
from repro.simarch.multipass import estimate_passes
from repro.types import OpCounts, WorkVector

cost_arrays = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=200
).map(np.array)


@given(cost_arrays, st.integers(1, 32))
def test_dynamic_makespan_bounds(costs, workers):
    s = simulate_dynamic(costs, workers)
    total = costs.sum() if len(costs) else 0.0
    assert s.makespan >= total / workers - 1e-9
    assert s.makespan <= total + 1e-9
    assert 0 <= s.efficiency <= 1.0 + 1e-9


@given(cost_arrays, st.integers(1, 32))
def test_static_never_faster_than_ideal(costs, workers):
    s = simulate_static(costs, workers)
    total = costs.sum() if len(costs) else 0.0
    assert s.makespan >= total / workers - 1e-9


@given(cost_arrays, st.integers(1, 64))
def test_chunk_work_conserves_total(costs, size):
    chunks = chunk_work(costs, size)
    assert np.isclose(chunks.sum() if len(chunks) else 0.0, costs.sum() if len(costs) else 0.0)


@given(st.floats(0, 1e9), st.floats(0, 1e9))
def test_analytic_miss_rate_in_unit_interval(ws, cache):
    m = analytic_miss_rate(ws, cache)
    assert 0.0 <= m <= 1.0


@given(
    st.floats(1, 1e12),
    st.floats(1, 1e12),
)
def test_miss_rate_monotone_in_working_set(cache, ws):
    smaller = analytic_miss_rate(ws, cache)
    larger = analytic_miss_rate(ws * 2, cache)
    assert larger >= smaller - 1e-12


@given(st.floats(1, 1e12), st.floats(0.1, 1e12), st.floats(0, 1e10), st.floats(0, 1e10))
def test_estimate_passes_properties(csr, glob, reserved, bitmaps):
    if glob <= reserved + bitmaps:
        return  # CapacityError territory, covered by unit tests
    p = estimate_passes(csr, glob, reserved, bitmaps)
    assert p >= 1
    # More passes never needed when memory grows.
    p2 = estimate_passes(csr, glob * 2, reserved, bitmaps)
    assert p2 <= p


@given(st.integers(0, 1000), st.integers(0, 1000))
def test_opcounts_addition_commutes(a, b):
    x = OpCounts(comparisons=a, seq_words=b, matches=a)
    y = OpCounts(comparisons=b, rand_words=a)
    assert (x + y).as_dict() == (y + x).as_dict()
    assert (x + y).comparisons == a + b


@given(st.integers(1, 50))
def test_workvector_group_by_conserves(n):
    rng = np.random.default_rng(n)
    w = WorkVector(n, scalar_ops=rng.random(n))
    groups = rng.integers(0, 5, n)
    grouped = w.group_by(groups, 5)
    assert np.isclose(grouped.total("scalar_ops"), w.total("scalar_ops"))


@given(st.integers(1, 50), st.floats(0.1, 10.0))
def test_workvector_scaling(n, factor):
    rng = np.random.default_rng(n)
    w = WorkVector(n, seq_words=rng.random(n))
    assert np.isclose(w.scaled(factor).total("seq_words"), w.total("seq_words") * factor)
