"""Property-based tests for graph construction, reordering, and counting."""

import numpy as np
from hypothesis import given

from repro.core import count_common_neighbors
from repro.core.verify import brute_force_counts
from repro.graph.build import csr_from_pairs, csr_to_undirected_pairs, edges_to_csr
from repro.graph.reorder import reorder_graph
from repro.graph.validate import check_symmetric, validate_csr
from repro.kernels.batch import (
    count_all_edges_bitmap,
    count_all_edges_matmul,
    reverse_edge_offsets,
)
from tests.strategies import edge_lists

edge_lists = edge_lists(max_vertex=30, max_size=120)


@given(edge_lists)
def test_build_always_valid(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    validate_csr(g)
    check_symmetric(g)


@given(edge_lists)
def test_roundtrip_through_pairs(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    u, v = csr_to_undirected_pairs(g)
    assert edges_to_csr(u, v, 31) == g


@given(edge_lists)
def test_reorder_preserves_structure(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    rr = reorder_graph(g)
    validate_csr(rr.graph)
    assert rr.graph.num_edges == g.num_edges
    assert sorted(rr.graph.degrees.tolist()) == sorted(g.degrees.tolist())
    # BMP invariant
    d = rr.graph.degrees
    src = rr.graph.edge_sources()
    mask = src < rr.graph.dst
    assert np.all(d[src[mask]] >= d[rr.graph.dst[mask]])


@given(edge_lists)
def test_counting_paths_agree_with_brute_force(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    expected = brute_force_counts(g)
    assert np.array_equal(count_all_edges_bitmap(g), expected)
    assert np.array_equal(count_all_edges_matmul(g), expected)


@given(edge_lists)
def test_counts_symmetric_and_bounded(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    result = count_common_neighbors(g)
    assert result.is_symmetric()
    # cnt[(u,v)] <= min(d_u, d_v) - 1 is not generally true (u,v are not
    # common neighbors of themselves) but cnt <= min(d_u, d_v) always is.
    src = g.edge_sources()
    d = g.degrees
    bound = np.minimum(d[src], d[g.dst])
    assert np.all(result.counts <= bound)


@given(edge_lists)
def test_reverse_offsets_involution(edges):
    g = csr_from_pairs(edges, num_vertices=31)
    rev = reverse_edge_offsets(g)
    assert np.array_equal(rev[rev], np.arange(len(rev)))


@given(edge_lists)
def test_triangle_identity_against_networkx(edges):
    import networkx as nx

    g = csr_from_pairs(edges, num_vertices=31)
    result = count_common_neighbors(g)
    expected = sum(nx.triangles(g.to_networkx()).values()) // 3
    assert result.triangle_count() == expected
