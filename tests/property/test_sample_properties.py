"""Property-based tests for sampling and subgraph extraction."""

import numpy as np
from hypothesis import given, strategies as st

from repro.graph.build import csr_from_pairs
from repro.graph.sample import ego_network, induced_subgraph
from repro.graph.validate import check_symmetric, validate_csr

edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=80
)
vertex_sets = st.lists(st.integers(0, 20), min_size=1, max_size=21)


@given(edge_lists, vertex_sets)
def test_induced_subgraph_always_valid(edges, vertices):
    g = csr_from_pairs(edges, num_vertices=21)
    sub, old_ids = induced_subgraph(g, np.array(vertices))
    validate_csr(sub)
    check_symmetric(sub)
    assert sub.num_vertices == len(np.unique(vertices))
    # Every subgraph edge exists in the original under the id map.
    src = sub.edge_sources()
    for eo in range(sub.num_directed_edges):
        u = int(old_ids[src[eo]])
        v = int(old_ids[sub.dst[eo]])
        assert g.has_edge(u, v)


@given(edge_lists, vertex_sets)
def test_induced_subgraph_edge_count_never_grows(edges, vertices):
    g = csr_from_pairs(edges, num_vertices=21)
    sub, _ = induced_subgraph(g, np.array(vertices))
    assert sub.num_edges <= g.num_edges


@given(edge_lists, st.integers(0, 20), st.integers(0, 3))
def test_ego_network_contains_center_and_radius_monotone(edges, center, radius):
    g = csr_from_pairs(edges, num_vertices=21)
    _, ids_r = ego_network(g, center, radius)
    _, ids_r1 = ego_network(g, center, radius + 1)
    assert center in ids_r.tolist()
    assert set(ids_r.tolist()) <= set(ids_r1.tolist())


@given(edge_lists, st.integers(0, 20))
def test_ego_radius_one_is_closed_neighborhood(edges, center):
    g = csr_from_pairs(edges, num_vertices=21)
    _, ids = ego_network(g, center, 1)
    expected = set(g.neighbors(center).tolist()) | {center}
    assert set(ids.tolist()) == expected
