"""All production backends return identical counts, on anything.

The hybrid planner splits work across three kernels along bucket
boundaries that sit exactly at degenerate shapes — stars (max skew),
cliques (max density), paths (min everything) — so those shapes are pinned
explicitly next to randomized graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import csr_from_pairs
from repro.kernels.batch import (
    count_all_edges_bitmap,
    count_all_edges_matmul,
    count_all_edges_merge,
)
from repro.plan import clear_plan_cache, count_all_edges_hybrid
from tests.strategies import edge_lists, fuzz_graphs


def _assert_all_agree(graph):
    clear_plan_cache()
    reference = count_all_edges_matmul(graph)
    assert np.array_equal(count_all_edges_hybrid(graph), reference)
    assert np.array_equal(count_all_edges_bitmap(graph), reference)
    assert np.array_equal(count_all_edges_merge(graph), reference)


# --------------------------------------------------------------------- #
# adversarial shapes
# --------------------------------------------------------------------- #
def test_star():
    _assert_all_agree(csr_from_pairs([(0, i) for i in range(1, 40)]))


def test_clique():
    n = 12
    _assert_all_agree(
        csr_from_pairs([(i, j) for i in range(n) for j in range(i + 1, n)])
    )


def test_path():
    _assert_all_agree(csr_from_pairs([(i, i + 1) for i in range(30)]))


def test_isolated_vertices():
    # Vertices 5..9 have no edges at all.
    _assert_all_agree(csr_from_pairs([(0, 1), (1, 2), (0, 2)], num_vertices=10))


def test_empty_graph():
    _assert_all_agree(csr_from_pairs([], num_vertices=6))


def test_star_plus_clique():
    # A hub star attached to a clique: gallop and bitmap buckets coexist.
    clique = [(i, j) for i in range(1, 8) for j in range(i + 1, 8)]
    star = [(0, i) for i in range(1, 30)]
    _assert_all_agree(csr_from_pairs(clique + star))


# --------------------------------------------------------------------- #
# randomized graphs
# --------------------------------------------------------------------- #
@settings(deadline=None, max_examples=30)
@given(edge_lists(max_vertex=29, allow_self_loops=False))
def test_property_random_edge_lists(pairs):
    _assert_all_agree(csr_from_pairs(pairs, num_vertices=30))


@settings(deadline=None, max_examples=25)
@given(fuzz_graphs(max_vertices=24))
def test_property_fuzz_grammar_graphs(graph):
    # The fuzz grammar composes the motifs above at random; running the
    # agreement check over it keeps hypothesis and `repro fuzz` aligned.
    _assert_all_agree(graph)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_skewed_graphs(seed):
    from repro.graph.generators import chung_lu_graph

    _assert_all_agree(chung_lu_graph(300, 1800, exponent=2.0, seed=seed))
