"""Threaded stress: concurrent reads + interleaved edits on ONE session.

A single :class:`GraphSession` is hammered by reader threads running
``count`` / ``count_pairs`` while a writer thread applies edit batches
through :meth:`GraphSession.apply_edits`.  The session serializes on its
internal lock, so every read must be *linearized*: bit-exact equal to
the sequential replay of exactly one epoch — never a torn mix of two.

Epoch batches are sized so every epoch's edge count is distinct, which
lets a full-count read identify the epoch it observed; per-reader epoch
sequences must then be monotonically non-decreasing (a session can never
serve an older graph after a newer one).
"""

import threading
import time

import numpy as np

from repro.core.dynamic import DynamicCounter
from repro.engine import GraphSession
from repro.graph.generators import chung_lu_graph

#: Distinct batch sizes -> distinct per-epoch edge counts (see module doc).
BATCH_SIZES = (6, 10)


def absent_edges(graph, rng, count, taken):
    """``count`` fresh u<v edges absent from ``graph`` and ``taken``."""
    out = []
    adj = {u: set(map(int, graph.neighbors(u))) for u in range(graph.num_vertices)}
    while len(out) < count:
        u, v = rng.integers(0, graph.num_vertices, 2)
        u, v = int(min(u, v)), int(max(u, v))
        if u == v or v in adj[u] or (u, v) in taken:
            continue
        taken.add((u, v))
        out.append((u, v))
    return np.array(out, dtype=np.int64)


def build_epochs(graph, rng):
    """Sequential replay: per-epoch graphs + expected read results.

    Epochs: 0 = base, 1 = +b1, 2 = +b1+b2, 3 = +b2 (b1 deleted again).
    """
    taken = set()
    b1 = absent_edges(graph, rng, BATCH_SIZES[0], taken)
    b2 = absent_edges(graph, rng, BATCH_SIZES[1], taken)
    edits = [
        {"insertions": b1},
        {"insertions": b2},
        {"deletions": b1},
    ]
    counter = DynamicCounter(graph)
    graphs = [counter.materialize()]
    for edit in edits:
        counter.apply(**edit)
        graphs.append(counter.materialize())
    counter.close()

    probes = rng.integers(0, graph.num_vertices, size=(24, 2))
    expected_full = []
    expected_pairs = []
    for g in graphs:
        with GraphSession(g) as s:
            expected_full.append(s.count(backend="merge").counts.copy())
            expected_pairs.append(s.count_pairs(probes[:, 0], probes[:, 1]))
    return edits, graphs, probes, expected_full, expected_pairs


def test_concurrent_reads_with_interleaved_edits_are_linearized():
    graph = chung_lu_graph(100, 400, seed=2)
    rng = np.random.default_rng(11)
    edits, graphs, probes, expected_full, expected_pairs = build_epochs(
        graph, rng
    )
    edges_by_epoch = {len(c): e for e, c in enumerate(expected_full)}
    assert len(edges_by_epoch) == len(graphs), (
        "epochs must have distinct counts-array lengths for epoch inference"
    )
    pair_tuples = [tuple(a.tolist()) for a in expected_pairs]

    stop = threading.Event()
    errors = []
    full_epoch_seqs = [[] for _ in range(2)]
    pair_reads = []

    session = GraphSession(graphs[0])
    try:
        def full_reader(slot):
            try:
                while not stop.is_set():
                    counts = session.count(backend="merge").counts
                    epoch = edges_by_epoch.get(len(counts))
                    assert epoch is not None, (
                        f"read a graph with {len(counts)} edges, matching "
                        "no epoch — torn read"
                    )
                    assert np.array_equal(counts, expected_full[epoch]), (
                        f"full counts at epoch {epoch} diverge from the "
                        "sequential replay"
                    )
                    full_epoch_seqs[slot].append(epoch)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def pair_reader():
            try:
                while not stop.is_set():
                    got = tuple(
                        session.count_pairs(probes[:, 0], probes[:, 1]).tolist()
                    )
                    assert got in pair_tuples, (
                        "count_pairs result matches no epoch's replay — "
                        "torn read"
                    )
                    pair_reads.append(got)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def writer():
            try:
                for edit, new_graph in zip(edits, graphs[1:]):
                    time.sleep(0.05)
                    session.apply_edits(**edit, new_graph=new_graph)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                time.sleep(0.05)  # let readers observe the final epoch
                stop.set()

        threads = [
            threading.Thread(target=full_reader, args=(0,)),
            threading.Thread(target=full_reader, args=(1,)),
            threading.Thread(target=pair_reader),
            threading.Thread(target=writer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "stress thread hung"
        assert not errors, errors

        # Readers saw real traffic, and nobody time-traveled: per-reader
        # epoch sequences are monotone and end at the final epoch.
        for seq in full_epoch_seqs:
            assert seq, "full-count reader never completed a read"
            assert seq == sorted(seq), f"epoch sequence went backwards: {seq}"
            assert seq[-1] == len(graphs) - 1
        assert pair_reads, "pair reader never completed a read"
        assert pair_reads[-1] == pair_tuples[-1]

        # The session itself ends bit-exact at the final epoch.
        final = session.count_pairs(probes[:, 0], probes[:, 1])
        assert np.array_equal(final, expected_pairs[-1])
        assert np.array_equal(
            session.count(backend="merge").counts, expected_full[-1]
        )
    finally:
        session.close()
