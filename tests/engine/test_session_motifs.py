"""GraphSession motif surface: memoized structures, count_motif routing,
error mapping, and the build-time profile."""

import numpy as np
import pytest

from repro.engine import GraphSession
from repro.errors import AlgorithmError, SessionClosedError
from repro.graph.build import csr_from_pairs
from repro.graph.generators import erdos_renyi_graph, small_test_graph
from repro.motif.clique import brute_force_cliques


def test_count_motif_edge_family_wraps_count():
    with GraphSession(small_test_graph()) as s:
        result = s.count_motif("common-neighbors")
        assert result.edge_counts is not None
        assert result.total == result.edge_counts.triangle_count()
        assert result.params == ()


def test_count_motif_clique_matches_brute_force():
    g = erdos_renyi_graph(40, 200, seed=7)
    expected = brute_force_cliques(g, 4)
    with GraphSession(g) as s:
        auto = s.count_motif("clique-4")
        assert auto.total == expected
        assert auto.backend == "bitmap"  # the motif's default runner
        for backend in ("merge", "hybrid"):
            assert s.count_motif("clique-4", backend=backend).total == expected


def test_count_motif_biclique_on_bipartite_graph():
    # 4-cycle 0-1-2-3-0: 2-colorable, and its view is a 2x2 biclique.
    g = csr_from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=4)
    with GraphSession(g) as s:
        assert s.count_motif("biclique-2-2").total == 1
        assert s.count_motif("biclique-2-2", backend="bitmap").total == 1


def test_motif_structures_memoize_and_invalidate():
    g = erdos_renyi_graph(30, 100, seed=1)
    with GraphSession(g) as s:
        for _ in range(3):
            s.count_motif("clique-3")
        stats = s.artifact_stats()
        assert stats["oriented_dag"].builds == 1
        assert stats["oriented_dag"].hits == 2
        # A structural edit drops the oriented DAG; the next count rebuilds.
        edited = csr_from_pairs([(0, 1), (1, 2), (0, 2)], num_vertices=30)
        s.apply_edits(insertions=np.array([[0, 1]]), new_graph=edited)
        assert s.artifact_stats()["oriented_dag"].invalidations == 1
        assert s.count_motif("clique-3").total == 1
        assert s.artifact_stats()["oriented_dag"].builds == 2


def test_bipartite_view_failure_is_not_cached():
    # A triangle has no bipartite view; after an edit removes the odd
    # cycle the memo must retry instead of replaying the failure.
    g = csr_from_pairs([(0, 1), (1, 2), (0, 2)], num_vertices=3)
    with GraphSession(g) as s:
        with pytest.raises(AlgorithmError, match="not bipartite"):
            s.count_motif("biclique-2-2")
        path = csr_from_pairs([(0, 1), (1, 2)], num_vertices=3)
        s.apply_edits(deletions=np.array([[0, 2]]), new_graph=path)
        assert s.count_motif("biclique-2-2").total == 0


def test_count_motif_error_mapping():
    with GraphSession(small_test_graph()) as s:
        with pytest.raises(AlgorithmError, match="unknown motif"):
            s.count_motif("wedge")
        # A real counting backend that cannot run this motif family.
        with pytest.raises(AlgorithmError, match="does not count"):
            s.count_motif("clique-3", backend="sharded")
        # A name that is neither a runner nor a registered backend.
        with pytest.raises(AlgorithmError, match="unknown backend"):
            s.count_motif("clique-3", backend="nope")


def test_count_motif_on_closed_session_raises():
    s = GraphSession(small_test_graph())
    s.close()
    with pytest.raises(SessionClosedError):
        s.count_motif("clique-3")


def test_profile_reports_build_time_per_artifact():
    with GraphSession(erdos_renyi_graph(30, 100, seed=2)) as s:
        s.count_motif("clique-4")
        s.count_motif("clique-4")
        prof = s.profile()
        row = prof["artifacts"]["oriented_dag"]
        assert row["builds"] == 1 and row["hits"] == 1
        assert row["build_seconds"] >= 0.0
        assert row["last_build_seconds"] <= row["build_seconds"]
        assert prof["total_builds"] >= 1
        assert prof["total_build_seconds"] >= row["build_seconds"]
        # Sorted most-expensive-first.
        times = [r["build_seconds"] for r in prof["artifacts"].values()]
        assert times == sorted(times, reverse=True)
