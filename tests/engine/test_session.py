"""GraphSession artifact memoization and selective invalidation."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicCounter
from repro.core.verify import brute_force_counts
from repro.engine import GraphSession
from repro.errors import AlgorithmError, SessionClosedError
from repro.graph.generators import chung_lu_graph, small_test_graph


# --------------------------------------------------------------------- #
# memoization
# --------------------------------------------------------------------- #
def test_artifacts_build_once_and_hit_afterwards():
    with GraphSession(small_test_graph()) as s:
        fp1 = s.fingerprint()
        fp2 = s.fingerprint()
        assert fp1 == fp2
        d1 = s.degrees()
        d2 = s.degrees()
        assert d1 is d2
        stats = s.artifact_stats()
        assert stats["fingerprint"].builds == 1
        assert stats["fingerprint"].hits == 1
        assert stats["degrees"].builds == 1
        assert stats["degrees"].hits == 1


def test_plan_memoized_per_skew_threshold():
    with GraphSession(chung_lu_graph(120, 500, seed=3)) as s:
        p_default = s.plan()
        assert s.plan() is p_default
        p_tight = s.plan(2.0)
        assert p_tight is not p_default
        assert s.plan(2.0) is p_tight
        assert s.artifact_stats()["plan:50:cover"].builds == 1


def test_repeated_counts_reuse_plan_and_fingerprint():
    with GraphSession(chung_lu_graph(120, 500, seed=3)) as s:
        a = s.count(backend="hybrid")
        b = s.count(backend="hybrid")
        assert np.array_equal(a.counts, b.counts)
        stats = s.artifact_stats()
        assert stats["plan:50:cover"].builds == 1
        assert stats["plan:50:cover"].hits >= 1
        assert stats["fingerprint"].builds == 1


def test_count_pairs_reuses_mark_buffer_and_degrees():
    g = small_test_graph()
    with GraphSession(g) as s:
        rng = np.random.default_rng(0)
        u = rng.integers(0, g.num_vertices, 20)
        v = rng.integers(0, g.num_vertices, 20)
        first = s.count_pairs(u, v)
        second = s.count_pairs(u, v)
        assert np.array_equal(first, second)
        stats = s.artifact_stats()
        assert stats["mark_buffer"].builds == 1
        assert stats["mark_buffer"].hits >= 1
        assert stats["degrees"].builds == 1


def test_closed_session_rejects_artifact_access():
    s = GraphSession(small_test_graph())
    s.close()
    with pytest.raises(RuntimeError, match="closed"):
        s.fingerprint()


def test_collect_stats_on_statless_backend_raises():
    with GraphSession(small_test_graph()) as s:
        with pytest.raises(AlgorithmError, match="stats"):
            s.count(backend="merge", collect_stats=True)


def test_hybrid_collect_stats_surfaces_bucket_timings():
    with GraphSession(chung_lu_graph(120, 500, seed=3)) as s:
        result = s.count(backend="hybrid", collect_stats=True)
        report = result.hybrid_report
        assert report is not None
        names = {t.name for t in report.timings}
        assert {"gallop", "bitmap", "matmul"} <= names <= {
            "cover", "gallop", "bitmap", "matmul",
        }
        assert sum(t.edges for t in report.timings) == report.plan.num_upper_edges


# --------------------------------------------------------------------- #
# selective invalidation
# --------------------------------------------------------------------- #
def _warm(session):
    session.fingerprint()
    session.degrees()
    session.upper_edge_offsets()
    session.plan()
    session.mark_buffer()


def test_apply_edits_drops_structure_keeps_size_artifacts():
    g = small_test_graph()
    with GraphSession(g) as s:
        _warm(s)
        mark = s.mark_buffer()
        s.apply_edits(insertions=np.array([[0, 6]]), new_graph=g)
        warm = set(s.cached_artifacts())
        assert "mark_buffer" in warm  # |V| unchanged → survives
        assert "degrees" in warm  # patched in place, not dropped
        assert "fingerprint" not in warm
        assert "plan:50:cover" not in warm
        assert "upper_edges" not in warm
        assert s.mark_buffer() is mark
        stats = s.artifact_stats()
        assert stats["fingerprint"].invalidations == 1
        assert stats["mark_buffer"].invalidations == 0
        assert stats["degrees"].updates == 1


def test_apply_edits_patches_degrees_in_place():
    g = small_test_graph()
    with GraphSession(g) as s:
        deg = s.degrees()
        before = deg.copy()
        s.apply_edits(
            insertions=np.array([[0, 6]]),
            deletions=np.array([[4, 5]]),
            new_graph=g,
        )
        assert s.degrees() is deg
        expected = before.copy()
        expected[[0, 6]] += 1
        expected[[4, 5]] -= 1
        assert np.array_equal(deg, expected)


def test_dynamic_counter_drives_selective_invalidation():
    """A compaction-triggering edit stream invalidates structure-keyed
    artifacts exactly once per base swap while the session's size-keyed
    buffers and patched degree vector stay warm."""
    g = chung_lu_graph(80, 300, seed=7)
    with DynamicCounter(g, compaction_threshold=0.01) as counter:
        session = counter.session
        session.mark_buffer()
        session.degrees()
        fp_before = session.fingerprint()

        rng = np.random.default_rng(1)
        compactions_seen = 0
        for _ in range(6):
            u, v = rng.integers(0, 80, 2)
            if u == v:
                continue
            r = counter.apply(insertions=[(int(u), int(v))])
            if r.compacted:
                compactions_seen += 1
        assert compactions_seen > 0, "edit stream never compacted"

        stats = session.artifact_stats()
        assert stats["mark_buffer"].invalidations == 0
        assert stats["degrees"].builds == 1  # never rebuilt, only patched
        assert stats["degrees"].updates >= compactions_seen
        # The fingerprint is dropped at the first swap and not rebuilt in
        # between, so later swaps find nothing to invalidate.
        assert stats["fingerprint"].invalidations >= 1

        # The patched degree vector matches the swapped-in base CSR.
        assert np.array_equal(
            session.degrees(), np.diff(session.graph.offsets)
        )
        assert session.fingerprint() != fp_before

        # Counts served after the invalidations are still exact.
        snap = counter.snapshot()
        assert np.array_equal(snap.counts, brute_force_counts(snap.graph))


def test_recount_batch_syncs_session_to_new_base():
    g = chung_lu_graph(80, 300, seed=7)
    with DynamicCounter(g, recount_fraction=0.0001) as counter:
        session = counter.session
        session.degrees()
        counter.apply(insertions=[(0, 50), (1, 51), (2, 52)])
        assert counter.recounts == 1
        assert session.graph is counter.overlay.base
        assert np.array_equal(session.degrees(), np.diff(session.graph.offsets))


def test_invalidate_everything_then_rebuild():
    with GraphSession(small_test_graph()) as s:
        fp = s.fingerprint()
        s.invalidate()
        assert s.cached_artifacts() == []
        assert s.fingerprint() == fp
        assert s.artifact_stats()["fingerprint"].builds == 2


# --------------------------------------------------------------------- #
# teardown / use-after-close
# --------------------------------------------------------------------- #
def test_close_is_idempotent():
    s = GraphSession(small_test_graph())
    assert not s.closed
    s.close()
    s.close()  # second close is a no-op, not an error
    assert s.closed


def test_closed_session_raises_session_closed_error():
    s = GraphSession(small_test_graph())
    s.count()  # warm, then tear down
    s.close()
    with pytest.raises(SessionClosedError, match="count on"):
        s.count()
    with pytest.raises(SessionClosedError, match="count pairs"):
        s.count_pairs([0], [1])
    with pytest.raises(SessionClosedError, match="apply edits"):
        s.apply_edits(insertions=[(0, 6)])
    # Callers that guard on RuntimeError (the historical behavior) still
    # catch the dedicated error type.
    assert issubclass(SessionClosedError, RuntimeError)


def test_context_manager_exit_then_reuse_raises():
    with GraphSession(small_test_graph()) as s:
        s.count_pairs([0], [1])
    with pytest.raises(SessionClosedError):
        s.count_pairs([0], [1])


# --------------------------------------------------------------------- #
# sequential-fallback warning dedup
# --------------------------------------------------------------------- #
def _break_shared_memory(monkeypatch):
    import repro.parallel.sharedmem as sharedmem
    import repro.parallel.threadpool as tp

    def boom(graph):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(sharedmem, "SharedGraph", boom)
    monkeypatch.setattr(tp, "SharedGraph", boom)


def test_parallel_fallback_warns_once_per_session(monkeypatch):
    """Regression: a warm session used to emit one RuntimeWarning per
    count when the pool degraded to sequential execution.  The fallback
    reason is a property of the host, so the session warns exactly once —
    even across pool rebuilds with different worker counts."""
    import warnings as warnings_mod

    _break_shared_memory(monkeypatch)
    g = chung_lu_graph(60, 200, seed=4)
    with GraphSession(g) as s:
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            a = s.count(backend="parallel", num_workers=2)
            b = s.count(backend="parallel", num_workers=2)
            c = s.count(backend="parallel", num_workers=3)  # pool rebuild
        assert np.array_equal(a.counts, b.counts)
        assert np.array_equal(a.counts, c.counts)
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "sequentially" in str(w.message)
        ]
        assert len(fallback) == 1, (
            f"expected exactly one fallback warning, got {len(fallback)}"
        )

    # A fresh session is a fresh host report: it warns once again.
    with GraphSession(g) as s2:
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            s2.count(backend="parallel", num_workers=2)
        fallback = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "sequentially" in str(w.message)
        ]
        assert len(fallback) == 1
