"""BackendRegistry capability checks + cross-backend agreement property."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.verify import brute_force_counts
from repro.engine import BackendSpec, BackendRegistry, GraphSession, default_registry
from repro.errors import AlgorithmError
from tests.strategies import csr_graphs

EXPECTED_BUILTINS = {
    "merge",
    "bitmap",
    "matmul",
    "gallop",
    "parallel",
    "sharded",
    "hybrid",
}


def test_builtin_backends_registered():
    assert EXPECTED_BUILTINS <= set(default_registry().names())


def test_unknown_backend_raises_with_choices():
    with pytest.raises(AlgorithmError, match="unknown backend"):
        default_registry().get("gpu")


def test_capability_tables_match_old_contract():
    reg = default_registry()
    assert set(reg.backends_for("M")) == {"merge"}
    assert set(reg.backends_for("MPS")) == {"merge", "gallop", "gallop-compiled"}
    assert set(reg.backends_for("BMP")) == {
        "bitmap",
        "bitmap-compiled",
        "parallel",
        "sharded",
    }
    assert reg.get("parallel").supports_stats
    assert reg.get("sharded").supports_stats
    assert reg.get("sharded").supports_num_workers
    assert reg.get("hybrid").supports_stats
    assert reg.get("hybrid").supports_num_workers
    assert not reg.get("merge").supports_stats


def test_check_algorithm_rejects_mismatch():
    with pytest.raises(AlgorithmError, match="does not execute"):
        default_registry().check_algorithm("MPS-AVX512", "MPS", "bitmap")


def test_register_duplicate_requires_replace():
    reg = BackendRegistry()
    spec = BackendSpec(name="x", run=lambda s, **k: (None, None))
    reg.register(spec)
    with pytest.raises(ValueError, match="already registered"):
        reg.register(spec)
    reg.register(spec, replace=True)
    reg.unregister("x")
    assert "x" not in reg


def test_custom_backend_routes_through_session():
    """A backend registered tomorrow is dispatchable today — no API edits."""
    reg = default_registry()

    def run_shifted(session, **_):
        from repro.kernels.batch import count_all_edges_merge

        return count_all_edges_merge(session.graph), None

    reg.register(BackendSpec(name="merge2", run=run_shifted))
    try:
        from repro.graph.generators import small_test_graph

        g = small_test_graph()
        with GraphSession(g) as s:
            got = s.count(backend="merge2").counts
        assert np.array_equal(got, brute_force_counts(g))
    finally:
        reg.unregister("merge2")


@settings(max_examples=25, deadline=None)
@given(graph=csr_graphs(max_vertex=20, max_size=80))
def test_every_registered_backend_agrees_bit_exactly(graph):
    """The registry *is* the coverage list: every enumerated backend must
    produce the brute-force counts bit-exactly on shared strategy graphs.

    Estimators (``exact=False``) are excluded — they are validated
    statistically by the streaming test harness — as are backends whose
    optional dependency is absent on this host (e.g. the compiled kernels
    under ``REPRO_COMPILED=off``).
    """
    expected = brute_force_counts(graph)
    with GraphSession(graph) as session:
        for spec in session.registry.specs():
            if not spec.exact or not spec.is_available():
                continue
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                kwargs = (
                    {"num_workers": 1} if spec.supports_num_workers else {}
                )
                got = session.count(backend=spec.name, **kwargs).counts
            assert got.dtype == np.int64
            assert np.array_equal(got, expected), spec.name


def test_estimator_backend_flagged_inexact():
    reg = default_registry()
    assert not reg.get("stream-sampled").exact
    assert reg.get("stream-exact").exact
    # Estimators never serve DynamicCounter builds or recounts.
    assert "stream-sampled" not in reg.dynamic_backends()
    assert "stream-exact" not in reg.dynamic_backends()
