"""Shared hypothesis strategies for the property-based suite.

Before this module existed, each property file declared its own
``st.lists(st.tuples(...))`` edge-list strategy and its own sorted-array
strategy with slightly different bounds.  They now live here, next to a
bridge into the fuzz grammar (:mod:`repro.fuzz.generators`) so hypothesis
tests can draw the same adversarial motif mixes the differential fuzzer
generates.
"""

import numpy as np
from hypothesis import strategies as st

from repro.fuzz.generators import FuzzCase, generate_case
from repro.graph.build import csr_from_pairs
from repro.graph.csr import CSRGraph

__all__ = [
    "edge_lists",
    "sorted_int_arrays",
    "csr_graphs",
    "cost_vectors",
    "fuzz_cases",
    "fuzz_graphs",
]


def edge_lists(
    max_vertex: int = 30,
    max_size: int = 120,
    allow_self_loops: bool = True,
):
    """Lists of raw ``(u, v)`` pairs with vertex ids in ``[0, max_vertex]``.

    Duplicates and both orientations are always allowed; CSR construction
    collapses them.  Self-loops are allowed by default because
    :func:`~repro.graph.build.csr_from_pairs` must reject-or-drop them
    consistently — pass ``allow_self_loops=False`` for call sites that
    filter them anyway.
    """
    pair = st.tuples(
        st.integers(0, max_vertex), st.integers(0, max_vertex)
    )
    if not allow_self_loops:
        pair = pair.filter(lambda uv: uv[0] != uv[1])
    return st.lists(pair, max_size=max_size)


def sorted_int_arrays(
    max_value: int = 999, max_size: int = 120, min_size: int = 0
):
    """Sorted, duplicate-free int64 arrays — intersection-kernel inputs."""
    return st.lists(
        st.integers(0, max_value), min_size=min_size, max_size=max_size
    ).map(lambda xs: np.unique(np.array(xs, dtype=np.int64)))


def csr_graphs(max_vertex: int = 30, max_size: int = 120):
    """Small random CSR graphs built from :func:`edge_lists`."""
    num_vertices = max_vertex + 1

    def build(pairs) -> CSRGraph:
        pairs = [(u, v) for u, v in pairs if u != v]
        return csr_from_pairs(pairs, num_vertices=num_vertices)

    return edge_lists(max_vertex=max_vertex, max_size=max_size).map(build)


def cost_vectors(max_size: int = 50, max_cost: float = 100.0):
    """Non-negative per-vertex cost vectors for chunk-partition tests."""
    return st.lists(
        st.floats(0.0, max_cost), min_size=1, max_size=max_size
    ).map(lambda xs: np.array(xs, dtype=np.float64))


def fuzz_cases(max_vertices: int = 24):
    """Bridge into the fuzz grammar: draw a :class:`FuzzCase` by key.

    Hypothesis draws only the ``(seed, index)`` RNG key; the case itself
    comes from :func:`repro.fuzz.generators.generate_case`, so property
    tests see the same motif mixes (stars, cliques, bipartite blocks,
    duplicate-dense rows, isolated vertices) as ``repro fuzz`` — and a
    failing example prints the two integers that regenerate it.
    """
    return st.builds(
        lambda seed, index: generate_case(
            seed, index, max_vertices=max_vertices
        ),
        st.integers(0, 2**32 - 1),
        st.integers(0, 10_000),
    )


def fuzz_graphs(max_vertices: int = 24):
    """CSR graphs drawn from the fuzz grammar (edits discarded)."""
    return fuzz_cases(max_vertices=max_vertices).map(FuzzCase.graph)
