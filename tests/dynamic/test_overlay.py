"""Unit tests for the updatable adjacency overlay."""

import numpy as np
import pytest

from repro.dynamic.overlay import AdjacencyOverlay
from repro.graph.build import csr_from_pairs, csr_to_undirected_pairs
from repro.graph.generators import small_test_graph
from repro.graph.validate import validate_csr


@pytest.fixture
def overlay():
    return AdjacencyOverlay(small_test_graph())


def test_passthrough_before_any_update(overlay):
    base = overlay.base
    assert overlay.num_edges == base.num_edges
    for u in range(base.num_vertices):
        assert np.array_equal(overlay.neighbors(u), base.neighbors(u))
    assert overlay.to_csr() is base


def test_insert_merges_sorted(overlay):
    assert overlay.insert_edge(0, 6)
    assert overlay.has_edge(0, 6) and overlay.has_edge(6, 0)
    nbrs = overlay.neighbors(0)
    assert np.array_equal(nbrs, np.sort(nbrs))
    assert 6 in nbrs.tolist()
    assert overlay.degree(0) == overlay.base.degree(0) + 1


def test_insert_duplicate_is_noop(overlay):
    before = overlay.num_edges
    assert not overlay.insert_edge(0, 1)  # already in base
    overlay.insert_edge(0, 6)
    assert not overlay.insert_edge(6, 0)  # already in overlay
    assert overlay.num_edges == before + 1


def test_delete_base_edge(overlay):
    assert overlay.delete_edge(0, 1)
    assert not overlay.has_edge(0, 1) and not overlay.has_edge(1, 0)
    assert 1 not in overlay.neighbors(0).tolist()
    assert not overlay.delete_edge(0, 1)  # second delete is a no-op


def test_delete_then_reinsert_cancels(overlay):
    overlay.delete_edge(0, 1)
    overlay.insert_edge(0, 1)
    assert overlay.has_edge(0, 1)
    assert overlay.delta_entries == 0


def test_insert_then_delete_cancels(overlay):
    overlay.insert_edge(0, 6)
    overlay.delete_edge(0, 6)
    assert not overlay.has_edge(0, 6)
    assert overlay.delta_entries == 0


def test_rejects_self_loops_and_bad_ids(overlay):
    with pytest.raises(ValueError):
        overlay.insert_edge(3, 3)
    with pytest.raises(IndexError):
        overlay.insert_edge(0, overlay.num_vertices)
    with pytest.raises(IndexError):
        overlay.delete_edge(-1, 0)


def test_compaction_threshold_triggers_rebuild():
    base = csr_from_pairs([(0, 1)], num_vertices=8)
    ov = AdjacencyOverlay(base, compaction_threshold=0.1)
    for v in range(2, 8):
        ov.insert_edge(0, v)
        ov.maybe_compact()
    assert ov.compactions >= 1
    assert ov.delta_entries <= ov.compaction_threshold * ov.base.num_directed_edges + 64


def test_compact_is_equivalent_to_rebuild():
    rng = np.random.default_rng(7)
    base = csr_from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)], num_vertices=12)
    ov = AdjacencyOverlay(base)
    pairs = {(0, 1), (1, 2), (2, 3), (3, 0)}
    for _ in range(60):
        u, v = sorted(rng.integers(0, 12, 2).tolist())
        if u == v:
            continue
        if (u, v) in pairs:
            ov.delete_edge(u, v)
            pairs.remove((u, v))
        else:
            ov.insert_edge(u, v)
            pairs.add((u, v))
    compacted = ov.compact()
    validate_csr(compacted)
    assert ov.delta_entries == 0
    expected = csr_from_pairs(sorted(pairs), num_vertices=12)
    assert compacted == expected
    # reads after compaction still see the same adjacency
    u, v = csr_to_undirected_pairs(expected)
    for a, b in zip(u.tolist(), v.tolist()):
        assert ov.has_edge(a, b)


def test_invalid_threshold():
    with pytest.raises(ValueError):
        AdjacencyOverlay(small_test_graph(), compaction_threshold=0.0)
