"""Stateful property test: DynamicCounter vs a model set + brute force.

Hypothesis drives a random interleaving of insert and delete batches —
including deletes of edges inserted moments earlier, duplicate inserts,
deletes of absent edges, and oversized batches that cross the
``recount_fraction`` threshold — while the machine keeps its own model of
the live edge set.  After every batch the counter's snapshot must agree
bit-exactly with a from-scratch brute-force recount, and the
:class:`UpdateResult` bookkeeping must match the model's prediction.

The counter runs with a deliberately small ``compaction_threshold`` so
overlay compaction fires repeatedly mid-sequence.
"""

import numpy as np
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.dynamic import DynamicCounter
from repro.core.verify import brute_force_counts
from repro.graph.build import csr_from_pairs, csr_to_undirected_pairs

N = 16  # vertex universe; small enough to brute-force every step

edge = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
    lambda uv: uv[0] != uv[1]
)
edge_batch = st.lists(edge, min_size=1, max_size=4)


def _canon(u, v):
    return (u, v) if u < v else (v, u)


def _seed_graph():
    # Clique on 0..7 (28 edges) plus a path through the rest: enough
    # edges that small batches stay on the incremental path while a
    # 4-row batch (> 10% of |E|) crosses into recount territory.
    clique = [(i, j) for i in range(8) for j in range(i + 1, 8)]
    path = [(i, i + 1) for i in range(8, N - 1)]
    return csr_from_pairs(clique + path, num_vertices=N)


class DynamicCounterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        graph = _seed_graph()
        # Tiny compaction threshold: a handful of structural deltas
        # forces an overlay rebuild, so compaction interleaves with the
        # incremental and recount paths instead of never firing.
        self.counter = DynamicCounter(
            graph, backend="matmul", compaction_threshold=0.05
        )
        u, v = csr_to_undirected_pairs(graph)
        self.model = {
            _canon(int(a), int(b)) for a, b in zip(u.tolist(), v.tolist())
        }
        self.recent: list[tuple[int, int]] = []

    def _apply(self, insertions=None, deletions=None):
        ins = insertions or []
        dels = deletions or []
        expect_ins = set()
        for u, v in ins:
            if _canon(u, v) not in self.model:
                expect_ins.add(_canon(u, v))
        expect_del = {
            _canon(u, v) for u, v in dels if _canon(u, v) in self.model
        }
        # Within one batch the kernel applies inserts before deletes, so
        # an edge both inserted and deleted here counts for both.
        expect_del |= {_canon(u, v) for u, v in dels if _canon(u, v) in expect_ins}

        res = self.counter.apply(insertions=ins or None, deletions=dels or None)

        assert res.inserted == len(expect_ins)
        assert res.deleted == len(expect_del)
        assert res.skipped == (len(ins) + len(dels)) - (
            res.inserted + res.deleted
        )
        self.model |= expect_ins
        self.model -= expect_del
        self.recent = sorted(expect_ins - expect_del)

    @rule(batch=edge_batch)
    def insert_batch(self, batch):
        self._apply(insertions=batch)

    @rule(batch=edge_batch)
    def delete_batch(self, batch):
        self._apply(deletions=batch)

    @rule(ins=edge_batch, dels=edge_batch)
    def mixed_batch(self, ins, dels):
        self._apply(insertions=ins, deletions=dels)

    @rule()
    def delete_just_inserted(self):
        # Remove whatever the previous batch genuinely added — the
        # incremental kernel must unwind its own freshest deltas.
        if self.recent:
            self._apply(deletions=list(self.recent))

    @rule(data=st.data())
    def oversized_batch(self, data):
        # Strictly larger than recount_fraction · |E|: must take the
        # structural-update-then-recount path, not per-edge deltas.
        size = int(
            self.counter.recount_fraction * max(self.counter.num_edges, 1)
        ) + 2
        batch = data.draw(
            st.lists(edge, min_size=size, max_size=size + 3)
        )
        before = self.counter.recounts
        self._apply(insertions=batch)
        assert self.counter.recounts == before + 1

    @invariant()
    def counts_match_brute_force(self):
        snap = self.counter.snapshot()
        assert np.array_equal(snap.counts, brute_force_counts(snap.graph))
        assert snap.counts.sum() % 6 == 0  # each triangle counted 6×
        # Structure agrees with the model edge set.
        src = snap.graph.edge_sources()
        got = {
            _canon(int(u), int(v))
            for u, v in zip(src.tolist(), snap.graph.dst.tolist())
        }
        assert got == self.model


TestDynamicCounterStateful = DynamicCounterMachine.TestCase
TestDynamicCounterStateful.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
