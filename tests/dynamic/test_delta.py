"""Unit tests for the incremental delta kernel."""

import numpy as np
import pytest

from repro.core import count_common_neighbors
from repro.dynamic import AdjacencyOverlay, DeltaKernel
from repro.dynamic.delta import edge_key
from repro.graph.build import csr_from_pairs
from repro.graph.generators import small_test_graph
from repro.types import OpCounts


def make_kernel(graph):
    counts = count_common_neighbors(graph)
    src = graph.edge_sources()
    mask = src < graph.dst
    d = dict(
        zip(
            zip(src[mask].tolist(), graph.dst[mask].tolist()),
            counts.counts[mask].tolist(),
        )
    )
    return DeltaKernel(AdjacencyOverlay(graph), d)


def reference(overlay):
    """Ground-truth counts dict via a from-scratch recount."""
    graph = overlay.to_csr()
    counts = count_common_neighbors(graph)
    src = graph.edge_sources()
    mask = src < graph.dst
    return dict(
        zip(
            zip(src[mask].tolist(), graph.dst[mask].tolist()),
            counts.counts[mask].tolist(),
        )
    )


def test_edge_key_canonical():
    assert edge_key(3, 5) == edge_key(5, 3) == (3, 5)


def test_common_members_matches_intersect1d():
    k = make_kernel(small_test_graph())
    rng = np.random.default_rng(1)
    for _ in range(20):
        u, v = rng.integers(0, 7, 2).tolist()
        if u == v:
            continue
        got = k.common_members(u, v)
        exp = np.intersect1d(k.overlay.neighbors(u), k.overlay.neighbors(v))
        assert np.array_equal(np.sort(got), exp)


def test_insert_creates_triangle():
    # path 0-1, 1-2: inserting 0-2 closes one triangle.
    g = csr_from_pairs([(0, 1), (1, 2)], num_vertices=3)
    k = make_kernel(g)
    assert k.insert(0, 2)
    assert k.counts[(0, 2)] == 1
    assert k.counts[(0, 1)] == 1
    assert k.counts[(1, 2)] == 1
    assert k.counts == reference(k.overlay)


def test_delete_breaks_triangle():
    g = csr_from_pairs([(0, 1), (1, 2), (0, 2)], num_vertices=3)
    k = make_kernel(g)
    assert k.delete(0, 2)
    assert (0, 2) not in k.counts
    assert k.counts[(0, 1)] == 0
    assert k.counts[(1, 2)] == 0
    assert k.counts == reference(k.overlay)


def test_insert_then_delete_roundtrip():
    k = make_kernel(small_test_graph())
    before = dict(k.counts)
    assert k.insert(0, 6)
    assert k.delete(0, 6)
    assert k.counts == before


def test_noop_insert_and_delete_leave_counts_alone():
    k = make_kernel(small_test_graph())
    before = dict(k.counts)
    assert not k.insert(0, 1)  # exists
    assert not k.delete(0, 7)  # absent
    assert k.counts == before


def test_opcounts_charged():
    k = make_kernel(small_test_graph())
    ops = OpCounts()
    assert k.insert(0, 6, ops)
    # One bitmap build/probe/clear cycle must have been charged.
    assert ops.bitmap_set > 0
    assert ops.bitmap_test > 0
    assert ops.bitmap_clear == ops.bitmap_set
    assert ops.rand_words > 0


def test_random_single_edge_updates_stay_exact():
    rng = np.random.default_rng(9)
    g = csr_from_pairs(
        [(int(a), int(b)) for a, b in rng.integers(0, 20, (40, 2)) if a != b],
        num_vertices=20,
    )
    k = make_kernel(g)
    for _ in range(120):
        u, v = rng.integers(0, 20, 2).tolist()
        if u == v:
            continue
        if k.overlay.has_edge(u, v):
            k.delete(u, v)
        else:
            k.insert(u, v)
        assert k.counts == reference(k.overlay)
