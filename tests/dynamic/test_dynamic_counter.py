"""Tests for the DynamicCounter facade, including the randomized
equivalence acceptance test (incremental vs. from-scratch recount)."""

import numpy as np
import pytest

from repro.core import DynamicCounter, count_common_neighbors
from repro.errors import EdgeNotFoundError, VerificationError
from repro.graph.build import csr_from_pairs, csr_to_undirected_pairs
from repro.graph.generators import chung_lu_graph, small_test_graph


def random_batch(rng, counter, max_ins=4, max_del=3):
    """A mixed batch: some random candidate pairs, some existing edges."""
    n = counter.num_vertices
    ins = rng.integers(0, n, size=(int(rng.integers(0, max_ins + 1)), 2))
    ins = ins[ins[:, 0] != ins[:, 1]]
    u, v = csr_to_undirected_pairs(counter.overlay.to_csr())
    k = min(int(rng.integers(0, max_del + 1)), len(u))
    idx = rng.choice(len(u), size=k, replace=False) if k else np.empty(0, np.int64)
    dels = np.stack([u[idx], v[idx]], axis=1) if k else None
    return (ins if len(ins) else None), dels


@pytest.mark.parametrize("backend", ["matmul", "parallel"])
def test_randomized_equivalence_200_batches(backend):
    """Acceptance: ≥200 mixed batches, exact equality after every batch."""
    graph = chung_lu_graph(120, 420, exponent=2.1, seed=23)
    kwargs = {"num_workers": 2} if backend == "parallel" else {}
    counter = DynamicCounter(graph, backend=backend, **kwargs)
    rng = np.random.default_rng(17)
    for batch_no in range(200):
        ins, dels = random_batch(rng, counter)
        counter.apply(ins, dels)
        snap = counter.snapshot()
        expected = count_common_neighbors(snap.graph)
        assert np.array_equal(snap.counts, expected.counts), f"batch {batch_no}"
    assert counter.updates_applied > 200  # the batches did real work


def test_initial_counts_match_batch_build(medium_graph):
    counter = DynamicCounter(medium_graph)
    batch = count_common_neighbors(medium_graph)
    snap = counter.snapshot()
    assert np.array_equal(snap.counts, batch.counts)
    assert counter.triangle_count() == batch.triangle_count()


def test_count_lookup_and_getitem():
    counter = DynamicCounter(small_test_graph())
    assert counter.count(0, 1) == 2
    assert counter[1, 0] == 2
    with pytest.raises(EdgeNotFoundError):
        counter.count(0, 7)


def test_insert_updates_lookup():
    counter = DynamicCounter(small_test_graph())
    counter.apply(insertions=[(4, 6)])
    # 5 is adjacent to both 4 and 6, so the new edge sees one common nbr.
    assert counter[4, 6] == 1
    assert counter.verify()


def test_large_batch_routes_through_recount():
    graph = csr_from_pairs([(0, 1), (1, 2)], num_vertices=10)
    counter = DynamicCounter(graph, recount_fraction=0.5)
    ins = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    result = counter.apply(insertions=ins)
    assert result.mode == "recount"
    assert counter.recounts == 1
    assert counter.verify()


def test_small_batch_stays_incremental(medium_graph):
    counter = DynamicCounter(medium_graph)
    result = counter.apply(insertions=[(0, 1), (0, 2)], deletions=None)
    assert result.mode == "incremental"
    assert counter.recounts == 0


def test_noop_batch():
    counter = DynamicCounter(small_test_graph())
    result = counter.apply()
    assert result.mode == "noop"
    assert result.applied == 0


def test_skipped_updates_reported():
    counter = DynamicCounter(small_test_graph())
    result = counter.apply(insertions=[(0, 1)], deletions=[(0, 7)])
    assert result.skipped == 2
    assert result.applied == 0
    assert counter.verify()


def test_bad_batch_shape_rejected():
    counter = DynamicCounter(small_test_graph())
    with pytest.raises(ValueError):
        counter.apply(insertions=np.arange(6))


def test_verify_detects_corruption():
    counter = DynamicCounter(small_test_graph())
    counter._counts[(0, 1)] += 1
    with pytest.raises(VerificationError):
        counter.verify()


def test_deletion_to_empty_graph():
    graph = csr_from_pairs([(0, 1), (1, 2), (0, 2)], num_vertices=3)
    counter = DynamicCounter(graph)
    counter.apply(deletions=[(0, 1), (1, 2), (0, 2)])
    assert counter.num_edges == 0
    assert counter.triangle_count() == 0
    assert counter.verify()


def test_compaction_preserves_counts():
    graph = csr_from_pairs([(0, 1)], num_vertices=16)
    counter = DynamicCounter(graph, compaction_threshold=0.05)
    rng = np.random.default_rng(3)
    for _ in range(40):
        u, v = rng.integers(0, 16, 2).tolist()
        if u != v:
            counter.apply(insertions=[(u, v)])
    assert counter.overlay.compactions >= 1
    assert counter.verify()


def test_ops_accounting_accrues(medium_graph):
    counter = DynamicCounter(medium_graph)
    counter.apply(insertions=[(0, 1), (2, 3)])
    assert counter.total_ops.bitmap_set > 0
    assert counter.total_ops.total_words > 0
