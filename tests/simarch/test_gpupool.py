"""Tests for the Algorithm 6 bitmap pool and GPU block execution."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels.batch import count_all_edges_matmul
from repro.simarch.gpupool import BitmapPool, run_gpu_bmp_reference


def test_acquire_release_cycle():
    pool = BitmapPool(sms=2, blocks_per_sm=2, cardinality=64)
    a = pool.acquire(0)
    b = pool.acquire(0)
    assert {a, b} == {0, 1}  # SM 0's slot range
    with pytest.raises(SimulationError, match="oversubscribed"):
        pool.acquire(0)
    c = pool.acquire(1)
    assert c == 2  # SM 1's range starts after SM 0's
    pool.release(a)
    assert pool.acquire(0) == a  # slot is reusable


def test_release_requires_clean_bitmap():
    pool = BitmapPool(1, 1, 64)
    slot = pool.acquire(0)
    pool.bitmaps[slot].set_many(np.array([3]))
    with pytest.raises(SimulationError, match="dirty"):
        pool.release(slot)
    pool.bitmaps[slot].clear_many(np.array([3]))
    pool.release(slot)


def test_double_release_rejected():
    pool = BitmapPool(1, 2, 64)
    slot = pool.acquire(0)
    pool.bitmaps[slot]  # untouched, clean
    pool.release(slot)
    with pytest.raises(SimulationError, match="twice"):
        pool.release(slot)


def test_invalid_geometry():
    with pytest.raises(SimulationError):
        BitmapPool(0, 4, 64)
    pool = BitmapPool(2, 2, 64)
    with pytest.raises(SimulationError):
        pool.acquire(5)


def test_pool_memory_matches_paper_formula():
    """Paper §5.2.2: pool bytes = SMs x n_C x |V|/8."""
    pool = BitmapPool(sms=30, blocks_per_sm=16, cardinality=4096)
    assert pool.memory_bytes() == 30 * 16 * 4096 / 8


def test_gpu_reference_exact(medium_graph):
    stats = run_gpu_bmp_reference(medium_graph, sms=3, blocks_per_sm=2)
    assert np.array_equal(stats.counts, count_all_edges_matmul(medium_graph))


def test_gpu_reference_respects_concurrency_cap(medium_graph):
    stats = run_gpu_bmp_reference(medium_graph, sms=2, blocks_per_sm=3)
    assert stats.max_concurrent_blocks <= 2 * 3
    assert stats.blocks_executed == int((medium_graph.degrees > 0).sum())


def test_gpu_reference_single_slot(small_graph, small_graph_counts):
    """Fully serialized blocks still compute exact counts."""
    stats = run_gpu_bmp_reference(small_graph, sms=1, blocks_per_sm=1)
    for (u, v), expected in small_graph_counts.items():
        assert stats.counts[small_graph.edge_offset(u, v)] == expected
    assert stats.max_concurrent_blocks == 1
