"""Cross-matrix simulator tests: every dataset × processor × algorithm.

Shape assertions live in test_engine/test_multicore/test_gpu; this module
checks *consistency* of the model everywhere: totals positive, the max()
composition holds, breakdowns carry the right components, and structural
toggles (symmetry inclusion, reorder cost, co-processing) act in the
right direction on every input.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.graph.datasets import dataset_names, load_dataset
from repro.simarch import simulate
from repro.simarch.multicore import simulate_multicore
from repro.simarch.specs import PAPER_CPU, PAPER_KNL, scaled_specs

CPU = scaled_specs(PAPER_CPU)
KNL = scaled_specs(PAPER_KNL)

SCALE = 0.2


@pytest.fixture(scope="module")
def graphs():
    return {
        name: load_dataset(name, scale=SCALE, reordered=True, cache=False)
        for name in dataset_names()
    }


@pytest.mark.parametrize("ds", dataset_names())
@pytest.mark.parametrize("proc", ["cpu", "knl", "gpu"])
@pytest.mark.parametrize("algo", ["MPS", "BMP-RF"])
def test_every_combination_runs(graphs, ds, proc, algo):
    kwargs = {} if proc == "gpu" else {"threads": 8}
    r = simulate(graphs[ds], algo, proc, **kwargs)
    assert r.seconds > 0
    assert all(v >= 0 for v in r.breakdown.values())


@pytest.mark.parametrize("ds", dataset_names())
def test_multicore_max_composition(graphs, ds):
    r = simulate_multicore(graphs[ds], get_algorithm("BMP"), CPU, threads=8)
    core = max(r.compute_seconds, r.latency_seconds, r.bandwidth_seconds)
    assert r.seconds == pytest.approx(core + r.reorder_seconds)


@pytest.mark.parametrize("ds", ["tw", "fr"])
def test_symmetry_inclusion_adds_work(graphs, ds):
    with_sym = simulate_multicore(
        graphs[ds], get_algorithm("MPS"), CPU, threads=8, include_symmetry=True
    ).seconds
    without = simulate_multicore(
        graphs[ds], get_algorithm("MPS"), CPU, threads=8, include_symmetry=False
    ).seconds
    assert with_sym >= without


@pytest.mark.parametrize("proc", ["cpu", "knl"])
def test_reorder_charged_to_bmp_only(graphs, proc):
    spec = CPU if proc == "cpu" else KNL
    bmp = simulate_multicore(graphs["tw"], get_algorithm("BMP"), spec, threads=8)
    mps = simulate_multicore(graphs["tw"], get_algorithm("MPS"), spec, threads=8)
    assert bmp.reorder_seconds > 0
    assert mps.reorder_seconds == 0


@pytest.mark.parametrize("ds", dataset_names())
def test_gpu_coprocessing_never_hurts(graphs, ds):
    on = simulate(graphs[ds], "BMP-RF", "gpu", coprocessing=True).seconds
    off = simulate(graphs[ds], "BMP-RF", "gpu", coprocessing=False).seconds
    assert on <= off + 1e-15


@pytest.mark.parametrize("ds", dataset_names())
def test_knl_ddr_never_beats_flat(graphs, ds):
    flat = simulate(graphs[ds], "MPS-AVX512", "knl", threads=64, mcdram_mode="flat").seconds
    ddr = simulate(graphs[ds], "MPS-AVX512", "knl", threads=64, mcdram_mode="ddr").seconds
    assert flat <= ddr * 1.0001


def test_best_configuration_matches_manual(graphs):
    from repro.simarch import best_configuration

    manual = simulate(graphs["tw"], "BMP-RF", "gpu", coprocessing=True).seconds
    assert best_configuration(graphs["tw"], "gpu").seconds == pytest.approx(manual)
