"""Unit tests for the simulation engine and the paper's headline findings."""

import pytest

from repro.errors import SimulationError
from repro.graph.datasets import load_dataset
from repro.simarch import best_configuration, simulate
from repro.simarch.engine import resolve_spec
from repro.simarch.specs import CPUSpec, GPUSpec, KNLSpec


@pytest.fixture(scope="module")
def graphs():
    return {
        name: load_dataset(name, reordered=True)
        for name in ("tw", "fr")
    }


def test_resolve_spec_names():
    assert isinstance(resolve_spec("cpu"), CPUSpec)
    assert isinstance(resolve_spec("knl"), KNLSpec)
    assert isinstance(resolve_spec("GPU"), GPUSpec)
    with pytest.raises(SimulationError):
        resolve_spec("tpu")


def test_resolve_spec_passthrough():
    spec = resolve_spec("cpu")
    assert resolve_spec(spec) is spec


def test_simulate_returns_breakdown(graphs):
    r = simulate(graphs["tw"], "BMP-RF", "cpu")
    assert r.seconds > 0
    assert set(r.breakdown) >= {"compute", "latency", "bandwidth"}
    assert r.config["threads"] == 56
    assert "BMP" in str(r)


def test_gpu_config_surface(graphs):
    r = simulate(graphs["tw"], "BMP-RF", "gpu", warps_per_block=8)
    assert r.config["warps_per_block"] == 8
    assert "paging" in r.breakdown


def test_algorithm_instance_accepted(graphs):
    from repro.algorithms import get_algorithm

    algo = get_algorithm("MPS", skew_threshold=10)
    r = simulate(graphs["tw"], algo, "cpu", threads=4)
    assert "t=10" in r.algorithm


# ---------------- headline findings (§5.3 / §5.4) ---------------- #

def test_finding_cpu_favors_bmp_on_skewed(graphs):
    bmp = simulate(graphs["tw"], "BMP-RF", "cpu").seconds
    mps = simulate(graphs["tw"], "MPS-AVX2", "cpu").seconds
    assert bmp < mps


def test_finding_knl_favors_mps(graphs):
    for ds in ("tw", "fr"):
        mps = simulate(graphs[ds], "MPS-AVX512", "knl").seconds
        bmp = simulate(graphs[ds], "BMP-RF", "knl", threads=64).seconds
        assert mps < bmp * 1.2  # MPS wins or ties on the KNL


def test_finding_gpu_favors_bmp_on_skewed(graphs):
    bmp = simulate(graphs["tw"], "BMP-RF", "gpu").seconds
    mps = simulate(graphs["tw"], "MPS", "gpu").seconds
    assert bmp < mps


def test_finding_best_is_gpu_bmp_on_skewed(graphs):
    """WI/TW-like graphs: GPU-BMP is the overall winner (Fig. 10)."""
    results = {
        "cpu": best_configuration(graphs["tw"], "cpu").seconds,
        "knl": best_configuration(graphs["tw"], "knl").seconds,
        "gpu": best_configuration(graphs["tw"], "gpu").seconds,
    }
    assert min(results, key=results.get) == "gpu"


def test_finding_best_is_knl_mps_on_uniform(graphs):
    """FR-like graphs: KNL-MPS is the overall winner (Fig. 10)."""
    results = {
        "cpu": best_configuration(graphs["fr"], "cpu").seconds,
        "knl": best_configuration(graphs["fr"], "knl").seconds,
        "gpu": best_configuration(graphs["fr"], "gpu").seconds,
    }
    assert min(results, key=results.get) == "knl"


def test_finding_gpu_mps_is_the_loser(graphs):
    """Paper: 'MPS on the GPU is always the slowest'."""
    t = graphs["tw"]
    gpu_mps = simulate(t, "MPS", "gpu").seconds
    others = [
        simulate(t, "BMP-RF", "cpu").seconds,
        simulate(t, "MPS-AVX512", "knl").seconds,
        simulate(t, "BMP-RF", "gpu").seconds,
    ]
    assert all(gpu_mps > x for x in others)


def test_hw_scale_changes_capacities(graphs):
    small = simulate(graphs["tw"], "BMP-RF", "gpu", hw_scale=100.0)
    large = simulate(graphs["tw"], "BMP-RF", "gpu", hw_scale=10000.0)
    # Less scaled-down memory → fewer estimated passes.
    assert small.config["estimated_passes"] <= large.config["estimated_passes"]
