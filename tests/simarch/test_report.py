"""Unit tests for simulation-result reporting."""

from repro.graph.datasets import load_dataset
from repro.simarch import simulate
from repro.simarch.report import format_sim_result


def test_multicore_report_fields():
    g = load_dataset("lj", scale=0.1, reordered=True, cache=False)
    text = format_sim_result(simulate(g, "MPS", "cpu", threads=8))
    assert "modeled" in text
    assert "compute" in text and "bandwidth" in text
    assert "threads" in text
    assert "#" in text  # the proportional bars


def test_gpu_report_fields():
    g = load_dataset("lj", scale=0.1, reordered=True, cache=False)
    text = format_sim_result(simulate(g, "BMP-RF", "gpu"))
    assert "paging" in text
    assert "warps_per_block" in text
    assert "occupancy" in text
