"""Unit tests for the GPU execution model — the paper's GPU shapes."""

import pytest

from repro.algorithms import get_algorithm
from repro.errors import SimulationError
from repro.graph.datasets import load_dataset, memory_scale
from repro.simarch.engine import simulate
from repro.simarch.gpu import bitmap_pool_bytes, blocks_per_sm, simulate_gpu
from repro.simarch.specs import PAPER_GPU, scaled_specs

GPU = scaled_specs(PAPER_GPU)


@pytest.fixture(scope="module")
def tw():
    return load_dataset("tw", reordered=True)


@pytest.fixture(scope="module")
def fr():
    return load_dataset("fr", reordered=True)


def test_blocks_per_sm_paper_default():
    """Paper: 4 warps/block (128 threads) → 16 concurrent blocks per SM."""
    assert blocks_per_sm(PAPER_GPU, 4) == 16
    assert blocks_per_sm(PAPER_GPU, 32) == 2
    assert blocks_per_sm(PAPER_GPU, 1) == 16  # capped by max_blocks_per_sm


def test_blocks_per_sm_bounds():
    with pytest.raises(SimulationError):
        blocks_per_sm(PAPER_GPU, 0)
    with pytest.raises(SimulationError):
        blocks_per_sm(PAPER_GPU, 65)


def test_bitmap_pool_matches_paper_arithmetic():
    """Paper §5.2.2: 30 SMs x 16 blocks = 480 bitmaps."""
    pool = bitmap_pool_bytes(PAPER_GPU, 41_652_230, 4)  # paper TW |V|
    assert pool == pytest.approx(480 * 41_652_230 / 8)


def test_result_fields(tw):
    r = simulate_gpu(tw, get_algorithm("BMP"), GPU)
    assert r.seconds > 0
    assert r.passes >= 1
    assert 0 < r.occupancy <= 1.0
    assert r.kernel_seconds <= r.seconds


def test_gpu_favors_bmp_on_skewed(tw):
    """Paper finding: GPU favors BMP; the PS kernel's irregular gathers
    make MPS the loser.  Strongest on the skewed datasets (WI, TW)."""
    bmp = simulate_gpu(tw, get_algorithm("BMP"), GPU).seconds
    mps = simulate_gpu(tw, get_algorithm("MPS"), GPU).seconds
    assert bmp < mps


def test_coprocessing_reduces_post_time(tw):
    cp = simulate_gpu(tw, get_algorithm("BMP"), GPU, coprocessing=True)
    no_cp = simulate_gpu(tw, get_algorithm("BMP"), GPU, coprocessing=False)
    assert cp.post_seconds < no_cp.post_seconds
    # Paper Table 5: CP removes > 80% of post-processing.
    assert cp.post_seconds < 0.35 * no_cp.post_seconds


def test_fig8_more_passes_cost_slightly_more(tw):
    ms = memory_scale("tw", tw)
    times = [
        simulate(tw, "BMP-RF", "gpu", passes=p, hw_scale=ms).seconds
        for p in (1, 2, 4, 8)
    ]
    assert times == sorted(times)
    assert times[-1] < times[0] * 2.0  # "increases slightly"


def test_fig8_fr_thrashes_below_estimate(fr):
    ms = memory_scale("fr", fr)
    est = simulate(fr, "BMP-RF", "gpu", hw_scale=ms).config["estimated_passes"]
    assert est >= 2  # paper: FR does not fit in one pass
    ok = simulate(fr, "BMP-RF", "gpu", passes=est, hw_scale=ms)
    thrash = simulate(fr, "BMP-RF", "gpu", passes=1, hw_scale=ms)
    assert not ok.config["thrashing"]
    assert thrash.config["thrashing"]
    assert thrash.seconds > 3 * ok.seconds


def test_fig9_bmp_improves_with_block_size_then_flattens(tw):
    t1 = simulate_gpu(tw, get_algorithm("BMP"), GPU, warps_per_block=1).seconds
    t4 = simulate_gpu(tw, get_algorithm("BMP"), GPU, warps_per_block=4).seconds
    t32 = simulate_gpu(tw, get_algorithm("BMP"), GPU, warps_per_block=32).seconds
    assert t4 <= t1
    assert t32 <= t4 * 1.1  # flattens, never much worse


def test_occupancy_drops_with_one_warp_blocks(tw):
    r1 = simulate_gpu(tw, get_algorithm("BMP"), GPU, warps_per_block=1)
    r4 = simulate_gpu(tw, get_algorithm("BMP"), GPU, warps_per_block=4)
    assert r1.occupancy < r4.occupancy


def test_rf_with_shared_memory_helps(tw):
    rf = get_algorithm("BMP-RF", range_scale=16)
    plain = get_algorithm("BMP")
    t_rf = simulate_gpu(tw, rf, GPU).seconds
    t_plain = simulate_gpu(tw, plain, GPU).seconds
    assert t_rf <= t_plain
