"""Unit tests for the cache simulator and the analytic miss-rate model."""

import numpy as np
import pytest

from repro.simarch.cache import (
    CacheSimulator,
    analytic_miss_rate,
    bitmap_working_set_miss_rate,
)


def test_cold_miss_then_hit():
    c = CacheSimulator(1024, line_bytes=64, ways=2)
    assert not c.access(0)
    assert c.access(0)
    assert c.access(63)  # same line
    assert not c.access(64)  # next line


def test_lru_eviction_within_set():
    c = CacheSimulator(64 * 2, line_bytes=64, ways=2)  # one set, two ways
    c.access(0)
    c.access(64)
    c.access(0)  # refresh 0
    c.access(128)  # evicts 64 (LRU)
    assert c.access(0)
    assert not c.access(64)


def test_working_set_fits_all_hits():
    c = CacheSimulator(8192, line_bytes=64, ways=8)
    addresses = np.arange(0, 4096, 64)
    c.access_many(addresses)  # cold
    c.reset_stats()
    rng = np.random.default_rng(0)
    c.access_many(rng.choice(addresses, 500))
    assert c.miss_rate < 0.05


def test_tiny_cache_thrashes():
    c = CacheSimulator(512, line_bytes=64, ways=8)
    rng = np.random.default_rng(1)
    c.access_many(rng.integers(0, 1 << 20, 400) * 64)
    assert c.miss_rate > 0.9


def test_invalid_geometry():
    with pytest.raises(ValueError):
        CacheSimulator(64, line_bytes=64, ways=8)


def test_analytic_extremes():
    assert analytic_miss_rate(0, 1024) == 0.0
    assert analytic_miss_rate(1024, 0) == 1.0
    assert analytic_miss_rate(100, 10_000) == pytest.approx(0.02)  # floor
    assert analytic_miss_rate(10_000, 100) == pytest.approx(0.99)


def test_analytic_matches_trace_driven_simulation():
    """The analytic curve must track the real LRU simulator."""
    rng = np.random.default_rng(7)
    cache_bytes = 4096
    for ws_lines in (32, 128, 512):
        working_set = np.arange(ws_lines) * 64
        sim = CacheSimulator(cache_bytes, 64, ways=8)
        trace = rng.choice(working_set, 3000)
        sim.access_many(trace[:1000])  # warm up
        sim.reset_stats()
        sim.access_many(trace[1000:])
        predicted = analytic_miss_rate(ws_lines * 64, cache_bytes)
        assert abs(sim.miss_rate - predicted) < 0.15, (
            f"ws={ws_lines}: sim {sim.miss_rate:.2f} vs analytic {predicted:.2f}"
        )


def test_bitmap_working_set_scales_with_contexts():
    single = bitmap_working_set_miss_rate(1000, 1, 8000)
    many = bitmap_working_set_miss_rate(1000, 64, 8000)
    assert many > single
