"""Unit tests for hardware specs and capacity scaling."""

import pytest

from repro.simarch.specs import (
    DEFAULT_HW_SCALE,
    PAPER_CPU,
    PAPER_GPU,
    PAPER_KNL,
    scaled_specs,
)


def test_paper_cpu_matches_section_5_1():
    assert PAPER_CPU.cores == 28  # two 14-core Xeons
    assert PAPER_CPU.freq_ghz == 2.4
    assert PAPER_CPU.llc.size_bytes == 35 * 1024 * 1024
    assert PAPER_CPU.lane_width == 8  # AVX2


def test_paper_knl_matches_section_5_1():
    assert PAPER_KNL.cores == 64
    assert PAPER_KNL.freq_ghz == 1.3
    assert PAPER_KNL.mcdram.capacity_bytes == 16 * 1024**3
    assert PAPER_KNL.l2.size_bytes == 1024 * 1024
    assert PAPER_KNL.lane_width == 16  # AVX-512
    assert PAPER_KNL.max_threads == 256


def test_paper_gpu_matches_section_5_1():
    assert PAPER_GPU.sms == 30
    assert PAPER_GPU.max_threads_per_sm == 2048
    assert PAPER_GPU.global_mem.capacity_bytes == 12 * 1024**3
    assert PAPER_GPU.max_warps_per_sm == 64


def test_scaling_divides_capacities_only():
    s = scaled_specs(PAPER_CPU, 1000.0)
    assert s.llc.size_bytes == pytest.approx(PAPER_CPU.llc.size_bytes / 1000)
    assert s.dram.capacity_bytes == pytest.approx(PAPER_CPU.dram.capacity_bytes / 1000)
    # Rates untouched:
    assert s.freq_ghz == PAPER_CPU.freq_ghz
    assert s.dram.bandwidth_gbs == PAPER_CPU.dram.bandwidth_gbs
    assert s.dram.latency_ns == PAPER_CPU.dram.latency_ns
    assert s.cores == PAPER_CPU.cores


def test_scaling_knl_both_tiers():
    s = scaled_specs(PAPER_KNL, 100.0)
    assert s.mcdram.capacity_bytes == pytest.approx(16 * 1024**3 / 100)
    assert s.dram.capacity_bytes == pytest.approx(96 * 1024**3 / 100)
    assert s.mcdram.bandwidth_gbs == PAPER_KNL.mcdram.bandwidth_gbs


def test_scaling_gpu_keeps_page_granule():
    s = scaled_specs(PAPER_GPU, 1000.0)
    assert s.page_bytes == PAPER_GPU.page_bytes
    assert s.global_mem.capacity_bytes == pytest.approx(12 * 1024**3 / 1000)
    assert s.shared_mem_per_sm == PAPER_GPU.shared_mem_per_sm


def test_scaling_rejects_nonpositive():
    with pytest.raises(ValueError):
        scaled_specs(PAPER_CPU, 0)


def test_scaling_rejects_unknown_type():
    with pytest.raises(TypeError):
        scaled_specs(object(), 10)


def test_default_scale_matches_datasets():
    assert DEFAULT_HW_SCALE == 1000.0
