"""Unit tests for cache trace generation and analytic-model validation."""

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.simarch.trace import (
    bitmap_probe_trace,
    replay_trace,
    validate_analytic_model,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("tw")


def test_trace_addresses_are_word_aligned(graph):
    trace = bitmap_probe_trace(graph, sample_edges=50)
    assert len(trace) > 0
    assert np.all(trace % 8 == 0)
    # Every address lies inside the |V|-bit bitmap.
    assert trace.max() < (graph.num_vertices + 63) // 64 * 8


def test_trace_empty_graph():
    from repro.graph.build import csr_from_pairs

    g = csr_from_pairs([], num_vertices=3)
    assert len(bitmap_probe_trace(g)) == 0


def test_replay_big_cache_mostly_hits(graph):
    trace = bitmap_probe_trace(graph, sample_edges=100)
    bitmap_bytes = graph.num_vertices // 8
    assert replay_trace(trace, cache_bytes=bitmap_bytes * 4) < 0.1


def test_replay_tiny_cache_misses_more(graph):
    trace = bitmap_probe_trace(graph, sample_edges=100)
    bitmap_bytes = graph.num_vertices // 8
    tiny = replay_trace(trace, cache_bytes=max(bitmap_bytes // 4, 512))
    big = replay_trace(trace, cache_bytes=bitmap_bytes * 4)
    assert tiny > big + 0.1


def test_analytic_model_tracks_measurement(graph):
    """The analytic miss model must follow the trace-driven simulator
    across cache sizes — this is what licenses its use in the timing."""
    bitmap_bytes = graph.num_vertices / 8.0
    for factor in (0.25, 0.5, 4.0):
        measured, predicted = validate_analytic_model(
            graph, cache_bytes=int(bitmap_bytes * factor)
        )
        # Real probe traces have hot (hub) lines, so measured miss rates
        # sit below the uniform-access prediction; within a wide band the
        # two must track each other.
        assert abs(measured - predicted) < 0.45, (
            f"cache={factor}x bitmap: measured {measured:.2f} vs "
            f"predicted {predicted:.2f}"
        )
        if factor >= 4.0:
            assert measured < 0.1 and predicted < 0.1
