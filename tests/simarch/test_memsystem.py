"""Unit tests for the memory-system timing model."""

import pytest

from repro.errors import SimulationError
from repro.simarch.memsystem import (
    cpu_tier,
    knl_tier,
    latency_time_s,
    saturated_bandwidth,
    stream_time_s,
)
from repro.simarch.specs import PAPER_CPU, PAPER_KNL


def test_saturation_curve():
    assert saturated_bandwidth(100.0, 4, 10.0) == 40.0
    assert saturated_bandwidth(100.0, 20, 10.0) == 100.0


def test_saturation_invalid_threads():
    with pytest.raises(SimulationError):
        saturated_bandwidth(100.0, 0, 10.0)


def test_stream_time():
    assert stream_time_s(80e9, 80.0) == pytest.approx(1.0)
    with pytest.raises(SimulationError):
        stream_time_s(1.0, 0.0)


def test_latency_time_overlap():
    base = latency_time_s(1e6, 100.0, mlp=1, contexts=1)
    overlapped = latency_time_s(1e6, 100.0, mlp=10, contexts=10)
    assert overlapped == pytest.approx(base / 100)
    with pytest.raises(SimulationError):
        latency_time_s(1, 100.0, mlp=0, contexts=1)


def test_cpu_tier():
    t = cpu_tier(PAPER_CPU)
    assert t.bandwidth_gbs == PAPER_CPU.dram.bandwidth_gbs
    assert t.label == "DDR4"


def test_knl_ddr_mode():
    t = knl_tier(PAPER_KNL, "ddr", working_set_bytes=1.0)
    assert t.bandwidth_gbs == PAPER_KNL.dram.bandwidth_gbs


def test_knl_flat_fits():
    t = knl_tier(PAPER_KNL, "flat", working_set_bytes=1e9)
    assert t.bandwidth_gbs == PAPER_KNL.mcdram.bandwidth_gbs
    assert "flat" in t.label


def test_knl_flat_overflow_blends():
    cap = PAPER_KNL.mcdram.capacity_bytes
    t = knl_tier(PAPER_KNL, "flat", working_set_bytes=cap * 2)
    assert PAPER_KNL.dram.bandwidth_gbs < t.bandwidth_gbs < PAPER_KNL.mcdram.bandwidth_gbs


def test_knl_cache_mode_discounted():
    fits = knl_tier(PAPER_KNL, "cache", working_set_bytes=1e9)
    flat = knl_tier(PAPER_KNL, "flat", working_set_bytes=1e9)
    assert fits.bandwidth_gbs < flat.bandwidth_gbs  # movement overhead
    assert fits.latency_ns > flat.latency_ns


def test_knl_cache_mode_thrash():
    t = knl_tier(PAPER_KNL, "cache", working_set_bytes=1e12)
    assert t.bandwidth_gbs == PAPER_KNL.dram.bandwidth_gbs
    assert "thrash" in t.label


def test_unknown_mode():
    with pytest.raises(SimulationError):
        knl_tier(PAPER_KNL, "turbo", 1.0)
