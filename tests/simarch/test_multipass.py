"""Unit tests for the multi-pass planner (paper §4.2.2)."""

import math

import pytest

from repro.errors import CapacityError
from repro.simarch.multipass import (
    PassPlan,
    estimate_passes,
    page_fault_time_s,
    plan_passes,
)
from repro.simarch.specs import PAPER_GPU, scaled_specs

GPU = scaled_specs(PAPER_GPU)


def test_estimator_formula():
    """ceil(Mem_CSR / (Mem_global - Mem_reserved - Mem_BA)) exactly."""
    assert estimate_passes(10.0, 12.0, 1.0, 1.0) == 1
    assert estimate_passes(25.0, 12.0, 1.0, 1.0) == math.ceil(25 / 10)
    assert estimate_passes(100.0, 12.0, 1.0, 1.0) == 10


def test_estimator_paper_scale_friendster():
    """FR at paper scale needs several passes (Fig. 8: fails below 3)."""
    csr = 29e9  # dst + cnt + offsets for 1.8B edges
    bitmaps = 480 * 124_836_180 / 8
    passes = estimate_passes(csr, 12 * 1024**3, 500 * 1024**2, bitmaps)
    assert passes >= 3


def test_estimator_capacity_error():
    with pytest.raises(CapacityError):
        estimate_passes(1.0, 10.0, 6.0, 5.0)


def test_plan_defaults_to_estimate():
    plan = plan_passes(GPU, csr_bytes=GPU.global_mem.capacity_bytes * 3, bitmap_pool_bytes=0)
    assert plan.passes == plan.estimated_passes
    assert not plan.thrashing


def test_plan_thrashes_below_estimate():
    csr = GPU.global_mem.capacity_bytes * 3
    plan = plan_passes(GPU, csr, 0, passes=1)
    assert plan.thrashing
    clean = plan_passes(GPU, csr, 0)
    assert plan.fault_pages > 3 * clean.fault_pages


def test_extra_passes_add_mild_refaults():
    csr = GPU.global_mem.capacity_bytes / 2
    p1 = plan_passes(GPU, csr, 0, passes=1)
    p4 = plan_passes(GPU, csr, 0, passes=4)
    assert p1.fault_pages < p4.fault_pages < p1.fault_pages * 2


def test_invalid_passes():
    with pytest.raises(CapacityError):
        plan_passes(GPU, 1e6, 0, passes=0)


def test_fault_time_components():
    plan = PassPlan(
        passes=1,
        estimated_passes=1,
        available_bytes=1e6,
        per_pass_bytes=1e5,
        fault_pages=100.0,
        thrashing=False,
    )
    t = page_fault_time_s(GPU, plan)
    expected = 100 * GPU.page_fault_us * 1e-6 + 100 * GPU.page_bytes / (
        GPU.host_link_gbs * 1e9
    )
    assert t == pytest.approx(expected)
