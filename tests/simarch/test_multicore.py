"""Unit tests for the CPU/KNL execution model — the paper's CPU/KNL shapes."""

import pytest

from repro.algorithms import get_algorithm
from repro.errors import SimulationError
from repro.graph.datasets import load_dataset
from repro.simarch.multicore import simulate_multicore
from repro.simarch.specs import PAPER_CPU, PAPER_KNL, scaled_specs

CPU = scaled_specs(PAPER_CPU)
KNL = scaled_specs(PAPER_KNL)


@pytest.fixture(scope="module")
def tw():
    return load_dataset("tw", reordered=True)


@pytest.fixture(scope="module")
def fr():
    return load_dataset("fr", reordered=True)


def _t(graph, name, spec, **kw):
    kw.setdefault("task_size", 32)
    return simulate_multicore(graph, get_algorithm(name), spec, **kw).seconds


def test_thread_bounds(tw):
    with pytest.raises(SimulationError):
        _t(tw, "M", CPU, threads=0)
    with pytest.raises(SimulationError):
        _t(tw, "M", CPU, threads=CPU.max_threads + 1)


def test_breakdown_fields(tw):
    r = simulate_multicore(tw, get_algorithm("BMP"), CPU, threads=4)
    assert r.seconds > 0
    assert r.reorder_seconds > 0  # BMP pays the reorder
    assert r.tier_label == "DDR4"
    assert 0 < r.efficiency <= 1.0


def test_mps_skips_reorder_cost(tw):
    r = simulate_multicore(tw, get_algorithm("MPS"), CPU, threads=4)
    assert r.reorder_seconds == 0.0


# ---- paper shape assertions (Figure 3 / 4 / 5 / 6 / 7, Table 4) ---- #

def test_fig3_skew_handling_on_tw(tw):
    """Skewed graph: MPS and BMP both beat plain merge by a lot."""
    m = _t(tw, "M", CPU, threads=1, mcdram_mode="ddr")
    mps = _t(tw, "MPS-SCALAR", CPU, threads=1, mcdram_mode="ddr")
    bmp = _t(tw, "BMP", CPU, threads=1, mcdram_mode="ddr")
    assert m / mps > 1.5
    assert m / bmp > 8.0


def test_fig3_no_gain_on_uniform_fr(fr):
    """Uniform graph: pivot-skip ~ plain merge (paper: MPS ≈ M on FR)."""
    m = _t(fr, "M", CPU, threads=1, mcdram_mode="ddr")
    mps = _t(fr, "MPS-SCALAR", CPU, threads=1, mcdram_mode="ddr")
    assert 0.7 < m / mps < 1.5


def test_fig4_vectorization_speedup(tw):
    scalar = _t(tw, "MPS-SCALAR", KNL, threads=1, mcdram_mode="ddr")
    vec = _t(tw, "MPS-AVX512", KNL, threads=1, mcdram_mode="ddr")
    assert scalar / vec > 1.5  # paper: 2.5-2.6x on the KNL


def test_fig4_avx512_beats_avx2(fr):
    avx2 = simulate_multicore(fr, get_algorithm("MPS-AVX2"), CPU, threads=1).seconds
    # Compare lane effect on the same spec to isolate vector width.
    wide = simulate_multicore(
        fr, get_algorithm("MPS", lane_width=16), CPU, threads=1
    ).seconds
    assert wide <= avx2


def test_fig5_mps_scales_better_than_bmp_on_cpu(tw):
    mps_speedup = _t(tw, "MPS", CPU, threads=1) / _t(tw, "MPS", CPU, threads=56)
    bmp_speedup = _t(tw, "BMP", CPU, threads=1) / _t(tw, "BMP", CPU, threads=56)
    assert mps_speedup > bmp_speedup


def test_fig5_knl_bmp_slows_beyond_64_threads(tw):
    t64 = _t(tw, "BMP", KNL, threads=64)
    t256 = _t(tw, "BMP", KNL, threads=256)
    assert t256 > t64  # paper: "BMP slows down" at 128/256


def test_fig5_knl_mps_keeps_scaling_past_64(tw):
    t64 = _t(tw, "MPS-AVX512", KNL, threads=64)
    t128 = _t(tw, "MPS-AVX512", KNL, threads=128)
    assert t128 < t64


def test_fig7_flat_beats_ddr(tw, fr):
    for g in (tw, fr):
        ddr = _t(g, "MPS-AVX512", KNL, threads=256, mcdram_mode="ddr")
        flat = _t(g, "MPS-AVX512", KNL, threads=256, mcdram_mode="flat")
        assert 1.2 < ddr / flat < 5.0  # paper: 1.6x-1.8x


def test_fig7_cache_close_to_flat_but_not_faster(tw):
    flat = _t(tw, "BMP-RF", KNL, threads=64, mcdram_mode="flat")
    cache = _t(tw, "BMP-RF", KNL, threads=64, mcdram_mode="cache")
    assert flat <= cache <= flat * 1.5


def test_table4_cpu_parallel_speedups(tw):
    """Paper: V+P gives 79-84x over sequential scalar MPS on the CPU."""
    seq = _t(tw, "MPS-SCALAR", CPU, threads=1)
    par = _t(tw, "MPS-AVX2", CPU, threads=56)
    assert seq / par > 30


def test_static_schedule_never_beats_dynamic(tw):
    dyn = _t(tw, "MPS", CPU, threads=28)
    stat = _t(tw, "MPS", CPU, threads=28, static_schedule=True)
    assert stat >= dyn * 0.99
