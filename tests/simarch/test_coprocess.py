"""Unit tests for the CPU-GPU co-processing model (Table 5)."""

import pytest

from repro.simarch.coprocess import host_post_processing
from repro.graph.build import csr_from_pairs


def test_coprocessing_hides_searches(medium_graph):
    slow = host_post_processing(medium_graph, gpu_busy_seconds=1.0, coprocessing=False)
    fast = host_post_processing(medium_graph, gpu_busy_seconds=1.0, coprocessing=True)
    assert fast.seconds < slow.seconds
    # With a long GPU phase the searches fully overlap: only the gather
    # remains (paper: CP removes >80% of post-processing).
    assert fast.seconds == pytest.approx(fast.gather_seconds)


def test_short_gpu_phase_exposes_remainder(medium_graph):
    full = host_post_processing(medium_graph, gpu_busy_seconds=0.0, coprocessing=True)
    assert full.seconds == pytest.approx(full.gather_seconds + full.search_seconds)


def test_search_dominates_gather(medium_graph):
    """The binary searches are the expensive part — why CP matters."""
    p = host_post_processing(medium_graph, 0.0, coprocessing=False)
    assert p.search_seconds > p.gather_seconds


def test_empty_graph():
    g = csr_from_pairs([], num_vertices=2)
    p = host_post_processing(g, 1.0, coprocessing=True)
    assert p.seconds == 0.0


def test_scales_with_edges(medium_graph, small_graph):
    big = host_post_processing(medium_graph, 0.0, coprocessing=False)
    small = host_post_processing(small_graph, 0.0, coprocessing=False)
    assert big.seconds > small.seconds
