"""Unit tests for OpCounts and WorkVector."""

import numpy as np
import pytest

from repro.types import WORK_FIELDS, OpCounts, WorkVector


def test_opcounts_defaults_zero():
    c = OpCounts()
    assert c.total_instructions == 0
    assert c.total_words == 0


def test_opcounts_iadd():
    c = OpCounts(comparisons=2)
    c += OpCounts(comparisons=3, vector_ops=1, lane_width=16)
    assert c.comparisons == 5
    assert c.vector_ops == 1
    assert c.lane_width == 16


def test_opcounts_scalar_instructions_aggregates():
    c = OpCounts(comparisons=1, advances=2, gallop_steps=3, binary_steps=4,
                 bitmap_set=5, bitmap_test=6, bitmap_clear=7, filter_test=8)
    assert c.scalar_instructions == 36
    c.vector_ops = 4
    assert c.total_instructions == 40


def test_opcounts_as_dict_roundtrip():
    c = OpCounts(matches=3, seq_words=9)
    d = c.as_dict()
    assert d["matches"] == 3 and d["seq_words"] == 9


def test_workvector_defaults():
    w = WorkVector(4)
    for f in WORK_FIELDS:
        assert np.array_equal(w[f], np.zeros(4))


def test_workvector_shape_checks():
    with pytest.raises(ValueError):
        WorkVector(3, scalar_ops=np.zeros(2))
    with pytest.raises(TypeError):
        WorkVector(3, warp_ops=np.zeros(3))
    w = WorkVector(3)
    with pytest.raises(KeyError):
        w["bogus"] = np.zeros(3)
    with pytest.raises(ValueError):
        w["scalar_ops"] = np.zeros(4)


def test_workvector_add():
    a = WorkVector(2, scalar_ops=np.array([1.0, 2.0]))
    b = WorkVector(2, scalar_ops=np.array([3.0, 4.0]))
    assert np.array_equal((a + b)["scalar_ops"], [4.0, 6.0])
    with pytest.raises(ValueError):
        a + WorkVector(3)


def test_workvector_totals():
    w = WorkVector(3, seq_words=np.array([1.0, 2.0, 3.0]))
    assert w.total("seq_words") == 6.0
    assert w.totals()["seq_words"] == 6.0


def test_workvector_group_by_shape_check():
    w = WorkVector(3)
    with pytest.raises(ValueError):
        w.group_by(np.zeros(2, dtype=int), 2)
