"""Cover-edge pre-pass: exact classification, probe counts, plan wiring."""

import numpy as np
import pytest

from repro.graph.build import csr_from_pairs
from repro.graph.generators import chung_lu_graph
from repro.kernels.batch import count_all_edges_merge
from repro.kernels.costmodel import cover_work, upper_edges
from repro.plan import (
    build_plan,
    classify_cover_edges,
    clear_plan_cache,
    count_all_edges_hybrid,
    get_plan,
    probe_cover_counts,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def brute_counts(graph):
    """Reference per-directed-edge counts via per-edge set intersection."""
    src = graph.edge_sources()
    cnt = np.zeros(graph.num_directed_edges, dtype=np.int64)
    for e in range(graph.num_directed_edges):
        u, v = int(src[e]), int(graph.dst[e])
        nu = graph.dst[graph.offsets[u]:graph.offsets[u + 1]]
        nv = graph.dst[graph.offsets[v]:graph.offsets[v + 1]]
        cnt[e] = len(np.intersect1d(nu, nv))
    return cnt


# --------------------------------------------------------------------- #
# classification on handcrafted graphs
# --------------------------------------------------------------------- #
def test_star_edges_are_all_zero_class():
    # K_{1,6}: every edge has a degree-1 endpoint, every count is zero.
    g = csr_from_pairs([(0, i) for i in range(1, 7)])
    cls = classify_cover_edges(g, upper_edges(g))
    assert cls.zero_mask.all()
    assert not cls.probe_mask.any()
    assert cls.num_covered == 6


def test_path_interior_edge_zero_by_disjoint_spans():
    # 0-1-2-3: the middle edge (1,2) has both degrees 2, but the trimmed
    # spans N(1)\{2}=[0,0] and N(2)\{1}=[3,3] are disjoint — the zero
    # class must claim it before the probe class gets a look.
    g = csr_from_pairs([(0, 1), (1, 2), (2, 3)])
    es = upper_edges(g)
    cls = classify_cover_edges(g, es)
    assert cls.zero_mask.all()
    assert not cls.probe_mask.any()


def test_triangle_edges_probe_and_close():
    # Every triangle edge has d_small == 2 and a wedge that closes.
    g = csr_from_pairs([(0, 1), (1, 2), (0, 2)])
    es = upper_edges(g)
    cls = classify_cover_edges(g, es)
    assert not cls.zero_mask.any()
    assert cls.probe_mask.all()
    counts = probe_cover_counts(g, cls.probe_src, cls.probe_target)
    assert counts.tolist() == [1, 1, 1]


def test_non_closing_wedge_probe_returns_zero():
    # Edge (0,1): N(0)\{1} spans [2,4], N(1)\{0} = {3} — overlapping
    # spans (not zero class) but the wedge 0-1-3 does not close, so the
    # probe must answer 0.
    g = csr_from_pairs([(0, 1), (0, 2), (0, 4), (1, 3)])
    es = upper_edges(g)
    cls = classify_cover_edges(g, es)
    e01 = int(np.flatnonzero((es.u == 0) & (es.v == 1))[0])
    assert not cls.zero_mask[e01]
    assert cls.probe_mask[e01]
    pos = int(np.searchsorted(np.flatnonzero(cls.probe_mask), e01))
    assert cls.probe_src[pos] == 0 and cls.probe_target[pos] == 3
    counts = probe_cover_counts(g, cls.probe_src, cls.probe_target)
    assert counts[pos] == 0


def test_classes_are_disjoint_and_exact_on_random_graphs():
    for seed in range(5):
        g = chung_lu_graph(300, 1500, exponent=2.1, seed=seed)
        es = upper_edges(g)
        cls = classify_cover_edges(g, es)
        assert not (cls.zero_mask & cls.probe_mask).any()
        ref = brute_counts(g)[es.edge_offsets]
        # Zero-class edges really have count zero.
        assert not ref[cls.zero_mask].any()
        # Probe-class answers match the reference exactly.
        got = probe_cover_counts(g, cls.probe_src, cls.probe_target)
        np.testing.assert_array_equal(got, ref[cls.probe_mask])


def test_cover_work_prices_only_the_masks():
    g = chung_lu_graph(200, 900, exponent=2.0, seed=7)
    es = upper_edges(g)
    cls = classify_cover_edges(g, es)
    w = cover_work(es, cls.zero_mask, cls.probe_mask)
    cost = w["scalar_ops"] + w["rand_words"]
    covered = cls.covered_mask
    assert (cost[covered] > 0).all()
    assert not cost[~covered].any()


# --------------------------------------------------------------------- #
# planner wiring
# --------------------------------------------------------------------- #
def test_plan_buckets_stay_a_partition_with_cover():
    g = chung_lu_graph(400, 2000, exponent=2.0, seed=3)
    plan = build_plan(g, cover=True)
    planned = np.concatenate(
        [
            plan.cover_zero_edges,
            plan.cover_probe_edges,
            plan.gallop_edges,
            plan.bitmap_edges,
            plan.matmul_edges,
        ]
    )
    src = g.edge_sources()
    expected = np.flatnonzero(src < g.dst)
    assert np.array_equal(np.sort(planned), expected)
    assert plan.num_cover_edges > 0  # real graphs always have cover edges
    assert "cover split" in plan.format()


def test_cover_false_disables_the_bucket():
    g = chung_lu_graph(400, 2000, exponent=2.0, seed=3)
    plan = build_plan(g, cover=False)
    assert plan.num_cover_edges == 0
    assert len(plan.gallop_edges) + len(plan.bitmap_edges) + len(
        plan.matmul_edges
    ) == plan.num_upper_edges


def test_hybrid_cover_and_nocover_bit_exact():
    for seed in (11, 12):
        g = chung_lu_graph(350, 1800, exponent=2.1, seed=seed)
        ref = count_all_edges_merge(g)
        with_cover = count_all_edges_hybrid(g, cover=True)
        without = count_all_edges_hybrid(g, cover=False)
        np.testing.assert_array_equal(with_cover, ref)
        np.testing.assert_array_equal(without, ref)


def test_plan_cache_keys_cover_variants_separately():
    g = chung_lu_graph(300, 1500, exponent=2.0, seed=5)
    covered = get_plan(g, cover=True)
    plain = get_plan(g, cover=False)
    assert covered is not plain
    assert plain.num_cover_edges == 0
    # Each flag value hits its own cached plan on re-request.
    assert get_plan(g, cover=True) is covered
    assert get_plan(g, cover=False) is plain
