"""ShardPlan: coverage, boundary correctness, byte accounting, K choice."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.parallel.scheduler import simulate_dynamic, simulate_sharded
from repro.plan.shardplan import MAX_SHARDS, plan_shards, shard_boundary
from tests.strategies import csr_graphs


def _cover(plan, n):
    """Owned ranges must tile [0, n) disjointly in order."""
    cursor = 0
    for s in plan.shards:
        assert s.lo == cursor
        assert s.hi > s.lo
        cursor = s.hi
    assert cursor == n


def test_shards_tile_vertex_space(medium_graph):
    for k in (1, 2, 4, 7):
        plan = plan_shards(medium_graph, num_shards=k)
        _cover(plan, medium_graph.num_vertices)
        assert plan.num_shards <= k


def test_boundary_is_exactly_the_upper_out_of_range_dsts(medium_graph):
    g = medium_graph
    plan = plan_shards(g, num_shards=4)
    for s in plan.shards:
        src = np.repeat(
            np.arange(s.lo, s.hi, dtype=np.int64), g.degrees[s.lo : s.hi]
        )
        d = g.dst[g.offsets[s.lo] : g.offsets[s.hi]].astype(np.int64)
        expected = np.unique(d[(d > src) & ((d < s.lo) | (d >= s.hi))])
        assert np.array_equal(s.boundary, expected)
        # Upper-edge destinations are never below the owned range.
        assert len(s.boundary) == 0 or s.boundary.min() >= s.hi


def test_byte_accounting(medium_graph):
    g = medium_graph
    plan = plan_shards(g, num_shards=3)
    item = g.dst.dtype.itemsize
    for s in plan.shards:
        assert s.owned_bytes == (g.offsets[s.hi] - g.offsets[s.lo]) * item
        assert s.boundary_bytes == g.degrees[s.boundary].sum() * item
        assert s.offsets_bytes == g.offsets.nbytes
        assert s.total_bytes == (
            s.owned_bytes + s.boundary_bytes + s.offsets_bytes
        )
    # One shard owning everything replicates nothing.
    single = plan_shards(g, num_shards=1)
    assert single.replication_bytes == 0
    assert single.total_bytes == g.memory_bytes()
    assert single.replication_factor == pytest.approx(1.0)
    assert plan.replication_factor >= 1.0
    assert plan.total_bytes == g.memory_bytes() + plan.replication_bytes


def test_cost_curve_drives_boundaries(medium_graph):
    """Loading all predicted cost onto the low vertices must pull every
    cut toward them, versus a uniform-cost split."""
    n = medium_graph.num_vertices
    skewed = np.zeros(n)
    skewed[: n // 4] = 100.0
    skewed[n // 4 :] = 1.0
    uniform_plan = plan_shards(medium_graph, num_shards=4, plan=np.ones(n))
    skew_plan = plan_shards(medium_graph, num_shards=4, plan=skewed)
    assert skew_plan.shards[0].hi < uniform_plan.shards[0].hi


def test_budget_driven_k_fits(medium_graph):
    # A budget exactly at the K=2 layout's largest shard forces K > 1
    # (the single export is bigger) while staying feasible.
    single = plan_shards(medium_graph, num_shards=1)
    budget = plan_shards(medium_graph, num_shards=2).max_shard_bytes
    assert budget < single.max_shard_bytes
    plan = plan_shards(medium_graph, budget_bytes=budget)
    assert plan.fits_budget
    assert plan.num_shards > 1
    assert plan.max_shard_bytes <= budget


def test_budget_infeasible_flags_instead_of_raising(medium_graph):
    plan = plan_shards(medium_graph, budget_bytes=1, max_shards=4)
    assert not plan.fits_budget
    assert plan.num_shards <= 4
    assert plan.max_shard_bytes > 1


def test_explicit_k_with_budget_reports_fit(medium_graph):
    plan = plan_shards(medium_graph, num_shards=2, budget_bytes=1)
    assert not plan.fits_budget


def test_bad_inputs(medium_graph):
    with pytest.raises(ValueError, match="num_shards"):
        plan_shards(medium_graph, num_shards=0)
    with pytest.raises(ValueError, match="cost vector"):
        plan_shards(medium_graph, plan=np.ones(3))


def test_shard_for_vertex(medium_graph):
    plan = plan_shards(medium_graph, num_shards=4)
    for s in plan.shards:
        assert plan.shard_for_vertex(s.lo) is s
        assert plan.shard_for_vertex(s.hi - 1) is s
    with pytest.raises(IndexError):
        plan.shard_for_vertex(medium_graph.num_vertices)


def test_default_max_shards_bound():
    assert 1 <= MAX_SHARDS


@settings(max_examples=25, deadline=None)
@given(graph=csr_graphs(max_vertex=25, max_size=100))
def test_shard_boundary_makes_upper_edges_resolvable(graph):
    """Every u<v edge with an owned source has its destination's row
    resident (owned or boundary) — the 2D 'own both endpoints' invariant."""
    plan = plan_shards(graph, num_shards=3, plan=None)
    _cover(plan, graph.num_vertices)
    for s in plan.shards:
        resident = set(range(s.lo, s.hi)) | set(s.boundary.tolist())
        for u in range(s.lo, s.hi):
            for v in graph.neighbors(u):
                if v > u:
                    assert int(v) in resident


# --------------------------------------------------------------------- #
# simulate_sharded
# --------------------------------------------------------------------- #
def test_simulate_sharded_charges_replication_copy():
    free = simulate_sharded([10.0, 10.0], [0, 0], copy_ns_per_byte=1.0)
    paid = simulate_sharded([10.0, 10.0], [3, 4], copy_ns_per_byte=1.0)
    assert free.makespan == 10.0
    assert paid.makespan == 10.0 + 7.0
    assert paid.overhead == 7.0
    assert paid.total_work == 20.0


def test_simulate_sharded_concurrent_shards_take_the_max():
    sched = simulate_sharded([5.0, 9.0, 2.0], [0, 0, 0])
    assert sched.makespan == 9.0
    assert sched.num_workers == 3


def test_simulate_sharded_chunked_costs_match_dynamic():
    chunks = np.array([3.0, 1.0, 4.0, 1.0])
    sched = simulate_sharded([chunks], [0], workers_per_shard=2)
    assert sched.makespan == simulate_dynamic(chunks, 2).makespan
    assert sched.num_chunks == 4


def test_simulate_sharded_validates():
    with pytest.raises(ValueError, match="align"):
        simulate_sharded([1.0], [1, 2])
    with pytest.raises(ValueError, match="workers_per_shard"):
        simulate_sharded([1.0], [1], workers_per_shard=0)


def test_plan_simulate_prefers_fewer_shards_when_copy_dominates(medium_graph):
    """With an enormous copy cost the simulator must rank K=1 fastest —
    the guard that budget search never picks gratuitous replication."""
    k1 = plan_shards(medium_graph, num_shards=1).simulate(copy_ns_per_byte=1e9)
    k4 = plan_shards(medium_graph, num_shards=4).simulate(copy_ns_per_byte=1e9)
    assert k1.makespan < k4.makespan
