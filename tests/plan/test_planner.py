"""Planner: bucketing rule, fingerprint-keyed cache, execution."""

import numpy as np
import pytest

from repro.graph.build import csr_from_pairs
from repro.graph.generators import chung_lu_graph, small_test_graph
from repro.kernels.batch import count_all_edges_matmul
from repro.plan import (
    build_plan,
    clear_plan_cache,
    count_all_edges_hybrid,
    execute_plan,
    get_plan,
    plan_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_buckets_partition_upper_edges():
    g = chung_lu_graph(500, 2500, exponent=2.0, seed=1)
    plan = build_plan(g)
    all_planned = np.concatenate(
        [
            plan.cover_zero_edges,
            plan.cover_probe_edges,
            plan.gallop_edges,
            plan.bitmap_edges,
            plan.matmul_edges,
        ]
    )
    src = g.edge_sources()
    expected = np.flatnonzero(src < g.dst)
    assert np.array_equal(np.sort(all_planned), expected)
    assert plan.num_upper_edges == len(expected)
    # Per-edge costs and per-vertex chunk costs are positive and aligned.
    assert len(plan.edge_cost) == plan.num_upper_edges
    assert (plan.edge_cost > 0).all()
    assert len(plan.chunk_cost) == g.num_vertices


def test_skew_threshold_moves_edges_to_gallop():
    g = chung_lu_graph(500, 2500, exponent=2.0, seed=1)
    strict = build_plan(g, skew_threshold=1e9)
    loose = build_plan(g, skew_threshold=2.0)
    assert len(strict.gallop_edges) == 0
    assert len(loose.gallop_edges) >= len(build_plan(g).gallop_edges)


def test_empty_graph_plan():
    g = csr_from_pairs([], num_vertices=5)
    plan = build_plan(g)
    assert plan.num_upper_edges == 0
    cnt, report = execute_plan(g, plan)
    assert len(cnt) == 0
    assert "0" in plan.format()


def test_execute_matches_matmul():
    g = chung_lu_graph(600, 3600, exponent=2.1, seed=9)
    cnt, report = execute_plan(g, build_plan(g))
    assert np.array_equal(cnt, count_all_edges_matmul(g))
    assert report.total_seconds > 0
    names = {t.name for t in report.timings}
    assert {"gallop", "bitmap", "matmul"} <= names <= {
        "cover", "gallop", "bitmap", "matmul",
    }


# --------------------------------------------------------------------- #
# cache
# --------------------------------------------------------------------- #
def test_cache_hit_skips_planning():
    g = chung_lu_graph(400, 2000, exponent=2.0, seed=4)
    p1 = get_plan(g)
    assert not p1.from_cache
    stats = plan_cache_stats()
    assert (stats.hits, stats.misses) == (0, 1)
    p2 = get_plan(g)
    assert p2.from_cache
    assert p2 is p1
    stats = plan_cache_stats()
    assert (stats.hits, stats.misses) == (1, 1)


def test_fingerprint_mismatch_invalidates():
    g1 = chung_lu_graph(400, 2000, exponent=2.0, seed=4)
    g2 = chung_lu_graph(400, 2000, exponent=2.0, seed=5)  # different CSR
    get_plan(g1)
    get_plan(g2)
    stats = plan_cache_stats()
    assert stats.misses == 2  # second graph cannot reuse the first's plan
    assert stats.hits == 0


def test_second_count_hits_cache_through_api():
    from repro.core import count_common_neighbors

    g = small_test_graph()
    count_common_neighbors(g)  # auto -> hybrid -> planner
    misses_after_first = plan_cache_stats().misses
    count_common_neighbors(g)
    stats = plan_cache_stats()
    assert stats.misses == misses_after_first  # no re-pricing
    assert stats.hits >= 1


def test_hybrid_wrapper_returns_counts_and_report():
    g = small_test_graph()
    cnt = count_all_edges_hybrid(g)
    assert np.array_equal(cnt, count_all_edges_matmul(g))
    cnt2, report = count_all_edges_hybrid(g, return_report=True)
    assert np.array_equal(cnt2, cnt)
    assert report.plan.from_cache  # second call reused the cached plan
