"""Work-weighted chunk boundaries."""

import numpy as np
from hypothesis import given, strategies as st

from repro.plan import weighted_vertex_chunks
from tests.strategies import cost_vectors


def test_covers_range_without_gaps():
    cost = np.array([5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 0.0])
    bounds, pred = weighted_vertex_chunks(cost, 3)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(cost)
    for (_, a), (b, _) in zip(bounds[:-1], bounds[1:]):
        assert a == b
    assert np.isclose(pred.sum(), cost.sum())


def test_balances_better_than_equal_split():
    # One hub vertex carries half the work; equal vertex ranges would put
    # it with a full share of the rest.
    cost = np.ones(100)
    cost[0] = 100.0
    bounds, pred = weighted_vertex_chunks(cost, 4)
    assert pred.max() / pred.mean() < 2.0
    # The hub lands in a chunk of its own (or nearly).
    assert bounds[0][1] <= 2


def test_zero_cost_falls_back_to_equal_ranges():
    bounds, pred = weighted_vertex_chunks(np.zeros(10), 2)
    assert bounds == [(0, 5), (5, 10)]
    assert pred.tolist() == [0.0, 0.0]


def test_degenerate_inputs():
    assert weighted_vertex_chunks(np.empty(0), 4)[0] == []
    assert weighted_vertex_chunks(np.ones(3), 0)[0] == []
    bounds, _ = weighted_vertex_chunks(np.ones(2), 8)  # more chunks than work
    assert bounds[0][0] == 0 and bounds[-1][1] == 2


@given(cost_vectors(max_size=50), st.integers(1, 8))
def test_property_partition_is_exact(cost, k):
    bounds, pred = weighted_vertex_chunks(cost, k)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(cost)
    covered = sum(hi - lo for lo, hi in bounds)
    assert covered == len(cost)
    assert np.isclose(pred.sum(), cost.sum())
