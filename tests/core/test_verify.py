"""Unit tests for verification machinery."""

import numpy as np
import pytest

from repro.core import count_common_neighbors, verify_counts
from repro.core.result import EdgeCounts
from repro.core.verify import brute_force_counts, sample_edge_offsets
from repro.errors import VerificationError
from repro.kernels.batch import count_all_edges_matmul, reverse_edge_offsets


def test_brute_force_matches_fast_paths(medium_graph):
    assert np.array_equal(
        brute_force_counts(medium_graph), count_all_edges_matmul(medium_graph)
    )


def test_verify_passes_on_correct_counts(small_graph, medium_graph):
    verify_counts(count_common_neighbors(small_graph), against="brute")
    verify_counts(count_common_neighbors(medium_graph), against="networkx")
    verify_counts(count_common_neighbors(medium_graph), against="auto")


def test_verify_detects_corruption_brute(small_graph):
    result = count_common_neighbors(small_graph)
    bad = result.counts.copy()
    eo = small_graph.edge_offset(0, 1)
    bad[eo] += 1
    bad[small_graph.edge_offset(1, 0)] += 1  # keep symmetric
    with pytest.raises(VerificationError, match="mismatch"):
        verify_counts(EdgeCounts(small_graph, bad), against="brute")


def test_verify_detects_asymmetry(small_graph):
    result = count_common_neighbors(small_graph)
    bad = result.counts.copy()
    bad[0] += 1
    with pytest.raises(VerificationError, match="symmetric"):
        verify_counts(EdgeCounts(small_graph, bad))


def test_verify_detects_corruption_networkx(medium_graph):
    result = count_common_neighbors(medium_graph)
    bad = result.counts + 6  # symmetric but wrong everywhere
    with pytest.raises(VerificationError, match="triangle"):
        verify_counts(EdgeCounts(medium_graph, bad), against="networkx")


def test_verify_unknown_reference(small_graph):
    with pytest.raises(ValueError):
        verify_counts(count_common_neighbors(small_graph), against="oracle")


# --------------------------------------------------------------------- #
# sampled spot-check of the networkx path
# --------------------------------------------------------------------- #
def test_sample_edge_offsets_deterministic(medium_graph):
    a = sample_edge_offsets(medium_graph, sample_size=64, seed=7)
    assert np.array_equal(a, sample_edge_offsets(medium_graph, sample_size=64, seed=7))
    assert len(np.unique(a)) == 64  # sampled without replacement
    assert sample_edge_offsets(medium_graph, sample_size=0).size == 0
    # Oversized requests clamp to the number of directed edges.
    m = medium_graph.num_directed_edges
    assert len(sample_edge_offsets(medium_graph, sample_size=10 * m)) == m


def test_verify_networkx_honors_sampling_kwargs(medium_graph):
    verify_counts(
        count_common_neighbors(medium_graph),
        against="networkx",
        sample_size=16,
        sample_seed=3,
    )


def test_verify_detects_triangle_sum_preserving_corruption(medium_graph):
    # Regression: +1 on one edge and -1 on another (both directions each)
    # preserves Σcnt/6 exactly, so the triangle identity alone passes.
    # The seeded edge sample must catch it.
    result = count_common_neighbors(medium_graph)
    rev = reverse_edge_offsets(medium_graph)
    bump = int(sample_edge_offsets(medium_graph)[0])  # guaranteed sampled
    drop = next(
        eo
        for eo in range(medium_graph.num_directed_edges)
        if result.counts[eo] >= 1 and eo not in (bump, int(rev[bump]))
    )
    bad = result.counts.copy()
    bad[bump] += 1
    bad[rev[bump]] += 1
    bad[drop] -= 1
    bad[rev[drop]] -= 1
    corrupted = EdgeCounts(medium_graph, bad)
    assert corrupted.triangle_count() == result.triangle_count()
    assert corrupted.is_symmetric()
    with pytest.raises(VerificationError, match="sampled count mismatch"):
        verify_counts(corrupted, against="networkx")
