"""Unit tests for verification machinery."""

import numpy as np
import pytest

from repro.core import count_common_neighbors, verify_counts
from repro.core.result import EdgeCounts
from repro.core.verify import brute_force_counts
from repro.errors import VerificationError
from repro.kernels.batch import count_all_edges_matmul


def test_brute_force_matches_fast_paths(medium_graph):
    assert np.array_equal(
        brute_force_counts(medium_graph), count_all_edges_matmul(medium_graph)
    )


def test_verify_passes_on_correct_counts(small_graph, medium_graph):
    verify_counts(count_common_neighbors(small_graph), against="brute")
    verify_counts(count_common_neighbors(medium_graph), against="networkx")
    verify_counts(count_common_neighbors(medium_graph), against="auto")


def test_verify_detects_corruption_brute(small_graph):
    result = count_common_neighbors(small_graph)
    bad = result.counts.copy()
    eo = small_graph.edge_offset(0, 1)
    bad[eo] += 1
    bad[small_graph.edge_offset(1, 0)] += 1  # keep symmetric
    with pytest.raises(VerificationError, match="mismatch"):
        verify_counts(EdgeCounts(small_graph, bad), against="brute")


def test_verify_detects_asymmetry(small_graph):
    result = count_common_neighbors(small_graph)
    bad = result.counts.copy()
    bad[0] += 1
    with pytest.raises(VerificationError, match="symmetric"):
        verify_counts(EdgeCounts(small_graph, bad))


def test_verify_detects_corruption_networkx(medium_graph):
    result = count_common_neighbors(medium_graph)
    bad = result.counts + 6  # symmetric but wrong everywhere
    with pytest.raises(VerificationError, match="triangle"):
        verify_counts(EdgeCounts(medium_graph, bad), against="networkx")


def test_verify_unknown_reference(small_graph):
    with pytest.raises(ValueError):
        verify_counts(count_common_neighbors(small_graph), against="oracle")
