"""Unit tests for the EdgeCounts result wrapper."""

import numpy as np
import pytest

from repro.core import count_common_neighbors
from repro.core.result import EdgeCounts
from repro.graph.build import csr_from_pairs


@pytest.fixture
def counted(small_graph):
    return count_common_neighbors(small_graph)


def test_lookup_both_directions(counted):
    assert counted[0, 1] == counted[1, 0] == 2


def test_lookup_missing_edge_raises(counted):
    with pytest.raises(KeyError):
        counted[0, 6]


def test_len(counted, small_graph):
    assert len(counted) == small_graph.num_directed_edges


def test_misaligned_counts_rejected(small_graph):
    with pytest.raises(ValueError):
        EdgeCounts(small_graph, np.zeros(3))


def test_triangle_count(counted):
    # small_test_graph has triangles: 012, 013, 023, 123, 045 = 5.
    assert counted.triangle_count() == 5


def test_per_vertex_sum(counted, small_graph):
    sums = counted.per_vertex_sum()
    assert len(sums) == small_graph.num_vertices
    assert sums[7] == 0  # isolated vertex
    assert sums.sum() == counted.counts.sum()


def test_top_edges(counted):
    top = counted.top_edges(3)
    assert len(top) == 3
    assert all(u < v for u, v, _ in top)
    counts = [c for _, _, c in top]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] == 2


def test_is_symmetric(counted):
    assert counted.is_symmetric()
    broken = counted.counts.copy()
    broken[0] += 1
    assert not EdgeCounts(counted.graph, broken).is_symmetric()


def test_repr(counted):
    assert "triangles=5" in repr(counted)


def test_complete_graph_triangles():
    n = 6
    g = csr_from_pairs([(i, j) for i in range(n) for j in range(i + 1, n)])
    c = count_common_neighbors(g)
    assert c.triangle_count() == n * (n - 1) * (n - 2) // 6


def test_histogram_accounts_every_edge(counted, small_graph):
    values, freq = counted.histogram()
    assert freq.sum() == small_graph.num_edges
    hist = dict(zip(values.tolist(), freq.tolist()))
    # small graph: one zero-count edge (5,6), three count-1, six count-2.
    assert hist == {0: 1, 1: 3, 2: 6}


def test_per_vertex_sum_exact_past_float53(small_graph):
    """int64 accumulation: float64 weights lose exactness past 2^53."""
    big = np.full(small_graph.num_directed_edges, 2**53 + 1, dtype=np.int64)
    sums = EdgeCounts(small_graph, big).per_vertex_sum()
    assert sums.dtype == np.int64
    expected = small_graph.degrees.astype(np.int64) * (2**53 + 1)
    assert np.array_equal(sums, expected)


def test_save_load_roundtrip(tmp_path, counted, small_graph):
    path = tmp_path / "counts.npz"
    counted.save(path)
    loaded = EdgeCounts.load(small_graph, path)
    assert np.array_equal(loaded.counts, counted.counts)


@pytest.mark.parametrize("dtype", [np.int64, np.int32, np.uint32])
def test_save_load_preserves_dtype(tmp_path, small_graph, dtype):
    counts = EdgeCounts(
        small_graph,
        np.arange(small_graph.num_directed_edges, dtype=dtype),
    )
    path = tmp_path / "counts.npz"
    counts.save(path)
    loaded = EdgeCounts.load(small_graph, path)
    assert loaded.counts.dtype == dtype
    assert np.array_equal(loaded.counts, counts.counts)


def test_load_rejects_wrong_graph(tmp_path, counted):
    path = tmp_path / "counts.npz"
    counted.save(path)
    other = csr_from_pairs([(0, 1)], num_vertices=3)
    with pytest.raises(ValueError, match="different graph"):
        EdgeCounts.load(other, path)


def test_fingerprint_rejects_same_sized_different_graph(tmp_path):
    """Equal |V| and |E| but different structure must be rejected."""
    a = csr_from_pairs([(0, 1), (2, 3)], num_vertices=4)
    b = csr_from_pairs([(0, 2), (1, 3)], num_vertices=4)
    assert a.num_vertices == b.num_vertices
    assert a.num_directed_edges == b.num_directed_edges
    counts = count_common_neighbors(a)
    path = tmp_path / "counts.npz"
    counts.save(path)
    with pytest.raises(ValueError, match="different graph"):
        EdgeCounts.load(b, path)


def test_legacy_file_without_fingerprint_still_loads(tmp_path, counted, small_graph):
    path = tmp_path / "counts.npz"
    np.savez_compressed(
        path,
        counts=counted.counts,
        num_vertices=small_graph.num_vertices,
        num_directed_edges=small_graph.num_directed_edges,
    )
    loaded = EdgeCounts.load(small_graph, path)
    assert np.array_equal(loaded.counts, counted.counts)


def test_saved_counts_seed_dynamic_counter(tmp_path, counted, small_graph):
    from repro.core import DynamicCounter

    path = tmp_path / "counts.npz"
    counted.save(path)
    counter = DynamicCounter(small_graph, initial=EdgeCounts.load(small_graph, path))
    assert counter[0, 1] == counted[0, 1]
    counter.apply(insertions=[(4, 6)])
    assert counter.verify()


def test_dynamic_counter_rejects_foreign_initial(tmp_path, counted):
    from repro.core import DynamicCounter

    other = csr_from_pairs([(0, 1), (1, 2)], num_vertices=8)
    with pytest.raises(ValueError, match="different graph"):
        DynamicCounter(other, initial=counted)
