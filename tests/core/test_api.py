"""Unit tests for the public counting API."""

import numpy as np
import pytest

from repro.core import CommonNeighborCounter, count_common_neighbors, recommend_processor
from repro.errors import AlgorithmError
from repro.graph.datasets import load_dataset
from repro.kernels.batch import count_all_edges_matmul


def test_default_count(medium_graph):
    result = count_common_neighbors(medium_graph)
    assert np.array_equal(result.counts, count_all_edges_matmul(medium_graph))


@pytest.mark.parametrize("backend", ["matmul", "bitmap", "merge", "parallel"])
def test_all_backends_agree(small_graph, small_graph_counts, backend):
    result = count_common_neighbors(small_graph, backend=backend)
    for (u, v), expected in small_graph_counts.items():
        assert result[u, v] == expected


@pytest.mark.parametrize("algorithm", ["M", "MPS", "BMP", "BMP-RF"])
def test_all_algorithms_agree(medium_graph, algorithm):
    ref = count_common_neighbors(medium_graph)
    got = count_common_neighbors(medium_graph, algorithm=algorithm)
    assert np.array_equal(ref.counts, got.counts)


def test_parallel_backend_with_stats(medium_graph):
    result = count_common_neighbors(
        medium_graph, backend="parallel", num_workers=2, collect_stats=True
    )
    assert np.array_equal(result.counts, count_all_edges_matmul(medium_graph))
    stats = result.parallel_stats
    assert stats is not None
    assert stats.effective_workers == 2
    assert stats.num_chunks > 0
    assert stats.total_edges == int(
        np.count_nonzero(medium_graph.edge_sources() < medium_graph.dst)
    )


def test_non_parallel_backend_has_no_stats(medium_graph):
    result = count_common_neighbors(medium_graph, backend="matmul")
    assert result.parallel_stats is None


def test_unknown_backend(medium_graph):
    with pytest.raises(AlgorithmError):
        count_common_neighbors(medium_graph, backend="gpu-magic")


@pytest.mark.parametrize(
    "algorithm,backend",
    [("M", "merge"), ("MPS", "merge"), ("BMP", "bitmap"), ("BMP-RF", "bitmap"),
     ("BMP", "parallel")],
)
def test_compatible_algorithm_backend_pairs_honored(
    small_graph, small_graph_counts, algorithm, backend
):
    result = count_common_neighbors(small_graph, algorithm=algorithm, backend=backend)
    for (u, v), expected in small_graph_counts.items():
        assert result[u, v] == expected


@pytest.mark.parametrize(
    "algorithm,backend",
    [("MPS", "matmul"), ("M", "bitmap"), ("BMP", "merge"), ("BMP-RF", "matmul"),
     ("MPS", "parallel")],
)
def test_incompatible_algorithm_backend_pairs_raise(
    medium_graph, algorithm, backend
):
    """Regression: an explicit algorithm used to be silently discarded
    whenever an explicit backend was also given."""
    with pytest.raises(AlgorithmError, match="does not execute"):
        count_common_neighbors(medium_graph, algorithm=algorithm, backend=backend)


def test_counter_simulate(medium_graph):
    counter = CommonNeighborCounter(algorithm="MPS")
    r = counter.simulate(medium_graph, "cpu", threads=4)
    assert r.seconds > 0
    assert "MPS" in r.algorithm


def test_counter_simulate_auto_selects(medium_graph):
    counter = CommonNeighborCounter()
    assert "BMP" in counter.simulate(medium_graph, "cpu", threads=2).algorithm
    assert "MPS" in counter.simulate(medium_graph, "knl", threads=2).algorithm


def test_recommend_processor_matches_paper_findings():
    skewed = load_dataset("tw", scale=0.25, cache=False)
    uniform = load_dataset("fr", scale=0.25, cache=False)
    assert recommend_processor(skewed) == "gpu"
    assert recommend_processor(uniform) == "knl"
