"""Unit tests for arbitrary-pair similarity queries."""

import numpy as np
import pytest

from repro.core import count_common_neighbors, count_pairs


def test_pairs_match_edge_counts(small_graph, small_graph_counts):
    pairs = list(small_graph_counts)
    u = np.array([p[0] for p in pairs])
    v = np.array([p[1] for p in pairs])
    got = count_pairs(small_graph, u, v)
    assert got.tolist() == [small_graph_counts[p] for p in pairs]


def test_non_adjacent_pairs(small_graph):
    # (1, 4): not an edge; vertex 0 is the only common neighbor.
    # (2, 4): not an edge; vertex 0 again.
    got = count_pairs(small_graph, [1, 2, 6], [4, 4, 7])
    assert got.tolist() == [1, 1, 0]


def test_pairs_symmetric(medium_graph):
    rng = np.random.default_rng(0)
    u = rng.integers(0, medium_graph.num_vertices, 20)
    v = rng.integers(0, medium_graph.num_vertices, 20)
    assert np.array_equal(
        count_pairs(medium_graph, u, v), count_pairs(medium_graph, v, u)
    )


def test_pairs_match_brute_force(medium_graph):
    rng = np.random.default_rng(1)
    u = rng.integers(0, medium_graph.num_vertices, 30)
    v = rng.integers(0, medium_graph.num_vertices, 30)
    got = count_pairs(medium_graph, u, v)
    for i in range(len(u)):
        a = set(medium_graph.neighbors(int(u[i])).tolist())
        b = set(medium_graph.neighbors(int(v[i])).tolist())
        assert got[i] == len(a & b)


def test_pairs_validation(small_graph):
    with pytest.raises(ValueError):
        count_pairs(small_graph, [0, 1], [2])
    with pytest.raises(IndexError):
        count_pairs(small_graph, [0], [99])
    assert len(count_pairs(small_graph, [], [])) == 0
