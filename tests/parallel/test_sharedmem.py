"""Unit tests for the shared-memory CSR export/attach layer."""

import pickle

import numpy as np
import pytest

from repro.errors import ReproError, SharedExportError
from repro.graph.build import csr_from_pairs
from repro.graph.csr import CSRGraph
from repro.parallel.sharedmem import SharedGraph


def test_buffer_spec_roundtrip(medium_graph):
    spec = medium_graph.buffer_spec()
    off = bytearray(medium_graph.offsets.tobytes())
    dst = bytearray(medium_graph.dst.tobytes())
    rebuilt = CSRGraph.from_buffers(off, dst, spec)
    assert rebuilt == medium_graph


def test_from_buffers_is_zero_copy(medium_graph):
    spec = medium_graph.buffer_spec()
    dst = bytearray(medium_graph.dst.tobytes())
    off = bytearray(medium_graph.offsets.tobytes())
    g = CSRGraph.from_buffers(off, dst, spec)
    # Mutating the backing buffer is visible through the graph view.
    first = int(g.dst[0])
    np.ndarray(g.dst.shape, dtype=g.dst.dtype, buffer=dst)[0] = first + 1
    assert int(g.dst[0]) == first + 1


def test_shared_graph_attach_roundtrip(medium_graph):
    with SharedGraph(medium_graph) as shared:
        attached = shared.handle.attach()
        assert attached.graph == medium_graph
        # The attached view must not alias the original arrays.
        assert attached.graph.dst.base is not medium_graph.dst
        attached.close()


def test_shared_graph_two_attachments_share_pages(medium_graph):
    with SharedGraph(medium_graph) as shared:
        a = shared.handle.attach()
        b = shared.handle.attach()
        original = int(a.graph.dst[0])
        a.graph.dst[0] = original + 7
        assert int(b.graph.dst[0]) == original + 7
        a.graph.dst[0] = original
        a.close()
        b.close()


def test_handle_is_picklable(medium_graph):
    with SharedGraph(medium_graph) as shared:
        handle = pickle.loads(pickle.dumps(shared.handle))
        assert handle.offsets_name == shared.handle.offsets_name
        assert handle.dst_name == shared.handle.dst_name
        attached = handle.attach()
        assert attached.graph == medium_graph
        attached.close()


def test_empty_graph_export(caplog):
    g = csr_from_pairs([], num_vertices=4)
    with SharedGraph(g) as shared:
        attached = shared.handle.attach()
        assert attached.graph.num_vertices == 4
        assert attached.graph.num_edges == 0
        attached.close()


def test_unlink_is_idempotent(small_graph):
    shared = SharedGraph(small_graph)
    name = shared.handle.offsets_name
    shared.unlink()
    shared.unlink()  # second call is a no-op
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_nbytes_covers_csr(medium_graph):
    with SharedGraph(medium_graph) as shared:
        assert shared.nbytes() >= medium_graph.memory_bytes()


def test_double_close_context_manager(small_graph):
    """Explicit unlink inside the with-block must not break __exit__."""
    with SharedGraph(small_graph) as shared:
        shared.unlink()
    shared.unlink()  # and a third time after exit


def test_attach_after_unlink_raises_repro_error(small_graph):
    shared = SharedGraph(small_graph)
    handle = shared.handle
    shared.unlink()
    with pytest.raises(SharedExportError, match="already unlinked"):
        handle.attach()
    # The package base class catches it too (no raw FileNotFoundError).
    with pytest.raises(ReproError):
        handle.attach()


def test_attach_partial_failure_releases_first_block(small_graph):
    """If only the dst block is gone, attach must close the offsets block
    it already opened before raising (no leaked mapping)."""
    from dataclasses import replace as dc_replace

    with SharedGraph(small_graph) as shared:
        broken = dc_replace(shared.handle, dst_name="repro-missing-block")
        with pytest.raises(SharedExportError):
            broken.attach()
        # The healthy export is unaffected and still attachable.
        ok = shared.handle.attach()
        assert ok.graph == small_graph
        ok.close()


def test_attached_close_idempotent(small_graph):
    with SharedGraph(small_graph) as shared:
        attached = shared.handle.attach()
        assert attached.nbytes() >= small_graph.memory_bytes()
        attached.close()
        attached.close()  # double close is a no-op
        assert attached.graph is None
