"""Sharded execution: bit-exactness, segment lifecycle, telemetry."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.verify import brute_force_counts
from repro.engine import GraphSession
from repro.graph.datasets import DATASETS, load_dataset
from repro.kernels.batch import count_all_edges_merge
from repro.parallel.sharding import (
    ShardedCounter,
    ShardedGraph,
    build_shard_csr,
    count_all_edges_sharded,
)
from repro.plan.shardplan import plan_shards
from tests.strategies import csr_graphs


# --------------------------------------------------------------------- #
# local CSR construction
# --------------------------------------------------------------------- #
def test_build_shard_csr_owned_rows_identical(medium_graph):
    g = medium_graph
    plan = plan_shards(g, num_shards=3)
    for spec in plan.shards:
        local, delta = build_shard_csr(g, spec)
        assert local.num_vertices == g.num_vertices
        # Owned rows carry identical adjacency under the offset delta.
        for u in range(spec.lo, min(spec.hi, spec.lo + 40)):
            assert np.array_equal(local.neighbors(u), g.neighbors(u))
            assert local.offsets[u] + delta == g.offsets[u]
        # Non-resident rows are empty.
        resident = np.zeros(g.num_vertices, dtype=bool)
        resident[spec.lo : spec.hi] = True
        resident[spec.boundary] = True
        assert (np.diff(local.offsets)[~resident] == 0).all()


# --------------------------------------------------------------------- #
# bit-exactness
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
@settings(max_examples=40, deadline=None)
@given(graph=csr_graphs(max_vertex=30, max_size=120))
def test_sharded_bit_equal_merge_property(num_shards, graph):
    """The ISSUE's property: sharded counts == merge counts for
    K in {1, 2, 4, 7} over the shared CSR strategy."""
    expected = count_all_edges_merge(graph)
    got = count_all_edges_sharded(
        graph, num_shards=num_shards, start_method="inline"
    )
    assert got.dtype == np.int64
    assert np.array_equal(got, expected)


def test_sharded_processes_bit_exact(medium_graph):
    expected = brute_force_counts(medium_graph)
    counter = ShardedCounter(medium_graph, num_shards=2)
    with counter:
        assert counter.is_parallel
        assert len(counter.worker_pids()) == 2
        got = counter.count_all_edges()
        # A warm pool answers repeated requests identically.
        again = counter.count_all_edges(chunks_per_shard=1)
    assert np.array_equal(got, expected)
    assert np.array_equal(again, expected)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_sharded_matches_merge_and_hybrid_on_bundled(name):
    graph = load_dataset(name, scale=0.02)
    with GraphSession(graph) as session:
        merge = session.count(backend="merge").counts
        hybrid = session.count(backend="hybrid").counts
        sharded = session.count(
            backend="sharded", num_workers=3, start_method="inline"
        ).counts
    assert np.array_equal(sharded, merge)
    assert np.array_equal(sharded, hybrid)


def test_budget_driven_counter(medium_graph):
    expected = brute_force_counts(medium_graph)
    budget = plan_shards(medium_graph, num_shards=2).max_shard_bytes
    with ShardedCounter(
        medium_graph, budget_bytes=budget, start_method="inline"
    ) as counter:
        assert counter.num_shards > 1
        assert counter.sharded.max_shard_bytes() <= budget
        assert np.array_equal(counter.count_all_edges(), expected)


# --------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------- #
def test_sharded_graph_unlink_idempotent(medium_graph):
    sharded = ShardedGraph(medium_graph, plan_shards(medium_graph, num_shards=2))
    assert sharded.num_shards == 2
    assert sharded.nbytes() > 0
    sharded.unlink()
    sharded.unlink()  # double close is a no-op
    with sharded:
        pass  # __exit__ after unlink is also a no-op


def test_counter_does_not_unlink_borrowed_segments(medium_graph):
    with ShardedGraph(
        medium_graph, plan_shards(medium_graph, num_shards=2)
    ) as sharded:
        with ShardedCounter(
            medium_graph, sharded=sharded, start_method="inline"
        ) as counter:
            counter.count_all_edges()
        # The borrowed export must still be attachable after pool close.
        attached = sharded.handles[0].attach()
        assert attached.graph is not None
        attached.close()


def test_counter_closed_raises(medium_graph):
    counter = ShardedCounter(medium_graph, num_shards=2, start_method="inline")
    counter.start()
    counter.close()
    counter.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        counter.count_all_edges()


def test_single_shard_runs_in_process(medium_graph):
    with ShardedCounter(medium_graph, num_shards=1) as counter:
        assert not counter.is_parallel
        got, stats = counter.count_all_edges(with_stats=True)
    assert np.array_equal(got, brute_force_counts(medium_graph))
    assert stats.effective_workers == 1


# --------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------- #
def test_sharded_stats_fields(medium_graph):
    with ShardedCounter(medium_graph, num_shards=2) as counter:
        _, stats = counter.count_all_edges(with_stats=True)
    assert stats.requested_workers == 2
    assert stats.effective_workers == 2
    assert len(stats.shard_stats) == 2
    assert stats.replication_factor >= 1.0
    for c in stats.chunk_stats:
        assert c.shard in (0, 1)
        assert c.bytes_attached > 0
        assert c.rss_bytes > 0
        assert c.predicted_cost is not None
    # Each worker attaches only its shard segment, never the full export.
    per_shard = {s.index: s.attached_bytes for s in stats.shard_stats}
    for c in stats.chunk_stats:
        assert c.bytes_attached == per_shard[c.shard]
    assert stats.max_worker_bytes_attached < medium_graph.memory_bytes()
    text = stats.format()
    assert "shard 0" in text and "replication" in text
    assert "MiB attached" in text


def test_session_sharded_artifacts_memoized(medium_graph):
    with GraphSession(medium_graph) as session:
        pool1 = session.sharded_counter(num_shards=2, start_method="inline")
        pool2 = session.sharded_counter(num_shards=2, start_method="inline")
        assert pool1 is pool2
        # A different shard count rebuilds the pool (new export artifact).
        pool3 = session.sharded_counter(num_shards=3, start_method="inline")
        assert pool3 is not pool1
        stats = session.artifact_stats()
        assert stats["sharded_pool"].invalidations == 1
        assert "sharded_export:2" in session.cached_artifacts()
        assert "sharded_export:3" in session.cached_artifacts()


def test_session_auto_routes_on_budget(medium_graph):
    budget_mb = plan_shards(medium_graph, num_shards=2).max_shard_bytes / 2**20
    with GraphSession(
        medium_graph, shard_budget_mb=budget_mb, start_method="inline"
    ) as session:
        assert session._auto_backend() == "sharded"
        result = session.count(collect_stats=True)
        assert result.parallel_stats is not None
        assert len(result.parallel_stats.shard_stats) > 1
        assert (
            result.parallel_stats.max_worker_bytes_attached
            <= session.shard_budget_bytes
        )
    assert np.array_equal(result.counts, brute_force_counts(medium_graph))


def test_session_no_budget_keeps_hybrid(medium_graph):
    with GraphSession(medium_graph) as session:
        assert session._auto_backend() == "hybrid"
