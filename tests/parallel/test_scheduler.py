"""Unit tests for the dynamic-scheduling simulator."""

import numpy as np
import pytest

from repro.parallel.scheduler import (
    Schedule,
    chunk_work,
    simulate_dynamic,
    simulate_static,
)


def test_chunk_work_sums():
    costs = np.arange(10, dtype=float)
    chunks = chunk_work(costs, 3)
    assert np.allclose(chunks, [0 + 1 + 2, 3 + 4 + 5, 6 + 7 + 8, 9])


def test_chunk_work_empty():
    assert len(chunk_work(np.empty(0), 4)) == 0


def test_single_worker_is_serial():
    costs = np.ones(100)
    s = simulate_dynamic(costs, 1, dequeue_overhead=0.5)
    assert s.makespan == pytest.approx(100 + 50)
    assert s.overhead == pytest.approx(50)


def test_work_conservation():
    rng = np.random.default_rng(0)
    costs = rng.random(500)
    s = simulate_dynamic(costs, 8)
    assert s.total_work == pytest.approx(costs.sum())
    # Makespan bounded below by ideal and above by serial.
    assert s.ideal <= s.makespan <= costs.sum()


def test_uniform_work_scales_linearly():
    costs = np.ones(1024)
    s = simulate_dynamic(costs, 16)
    assert s.efficiency > 0.95


def test_one_giant_chunk_limits_makespan():
    costs = np.array([100.0] + [1.0] * 99)
    s = simulate_dynamic(costs, 10)
    assert s.makespan >= 100.0  # the giant chunk is a lower bound
    assert s.makespan < 100.0 + 99.0  # but others overlap it


def test_dynamic_beats_static_on_skewed_front_loaded_work():
    # Heavy chunks first (like hub-first CSR order after the reorder).
    costs = np.concatenate([np.full(8, 50.0), np.full(512, 1.0)])
    dyn = simulate_dynamic(costs, 8)
    stat = simulate_static(costs, 8)
    assert dyn.makespan <= stat.makespan


def test_overhead_accumulates_per_chunk():
    costs = np.ones(64)
    cheap = simulate_dynamic(costs, 4, dequeue_overhead=0.0)
    costly = simulate_dynamic(costs, 4, dequeue_overhead=1.0)
    assert costly.makespan > cheap.makespan
    assert costly.overhead == 64.0


def test_more_workers_never_slower():
    rng = np.random.default_rng(4)
    costs = rng.random(200) * 10
    prev = np.inf
    for workers in (1, 2, 4, 8, 16):
        mk = simulate_dynamic(costs, workers).makespan
        assert mk <= prev + 1e-9
        prev = mk


def test_static_contiguous_split():
    costs = np.array([10.0, 10.0, 1.0, 1.0])
    s = simulate_static(costs, 2)
    assert s.makespan == pytest.approx(20.0)


def test_static_more_workers_than_chunks():
    s = simulate_static(np.array([3.0, 4.0]), 8)
    assert s.makespan >= 4.0


def test_empty_schedules():
    for fn in (simulate_dynamic, simulate_static):
        s = fn(np.empty(0), 4)
        assert s.makespan == 0.0
        assert s.efficiency == 1.0


def test_invalid_workers():
    with pytest.raises(ValueError):
        simulate_dynamic(np.ones(3), 0)
    with pytest.raises(ValueError):
        simulate_static(np.ones(3), 0)


def test_schedule_metrics():
    s = Schedule(makespan=2.0, total_work=8.0, overhead=0.0, num_chunks=8, num_workers=4)
    assert s.ideal == 2.0
    assert s.efficiency == 1.0
    assert s.imbalance == 0.0
