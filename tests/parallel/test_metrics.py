"""Unit tests for the parallel telemetry layer."""

import numpy as np
import pytest

from repro.parallel.metrics import ChunkStat, ParallelStats
from repro.types import OpCounts


def _ops(**kw) -> OpCounts:
    c = OpCounts()
    for k, v in kw.items():
        setattr(c, k, v)
    return c


@pytest.fixture
def stats() -> ParallelStats:
    chunks = [
        ChunkStat(100, 0, 10, edges=40, seconds=0.2, ops=_ops(bitmap_set=5)),
        ChunkStat(100, 10, 20, edges=60, seconds=0.1, ops=_ops(bitmap_set=3)),
        ChunkStat(200, 20, 40, edges=100, seconds=0.5, ops=_ops(bitmap_set=8)),
    ]
    return ParallelStats(
        requested_workers=2,
        effective_workers=2,
        start_method="spawn",
        wall_seconds=0.6,
        chunk_stats=chunks,
    )


def test_totals(stats):
    assert stats.num_chunks == 3
    assert stats.total_edges == 200
    assert stats.busy_seconds == pytest.approx(0.8)
    assert stats.edges_per_sec == pytest.approx(200 / 0.6)


def test_per_worker_aggregation(stats):
    workers = stats.per_worker()
    assert [w.pid for w in workers] == [100, 200]
    w100, w200 = workers
    assert w100.chunks == 2 and w100.edges == 100
    assert w100.busy_seconds == pytest.approx(0.3)
    assert w200.edges_per_sec == pytest.approx(100 / 0.5)


def test_imbalance(stats):
    # busy: {100: 0.3, 200: 0.5}; mean over 2 workers = 0.4
    assert stats.imbalance == pytest.approx(0.5 / 0.4 - 1.0)


def test_imbalance_counts_idle_workers():
    s = ParallelStats(4, 4, "fork", 1.0, [ChunkStat(1, 0, 5, 10, 0.8)])
    # One busy worker out of four: max/mean = 0.8 / 0.2.
    assert s.imbalance == pytest.approx(3.0)


def test_aggregate_ops(stats):
    assert stats.aggregate_ops().bitmap_set == 16


def test_aggregate_ops_tolerates_missing():
    s = ParallelStats(1, 1, "in-process", 0.1, [ChunkStat(1, 0, 5, 10, 0.1)])
    assert s.aggregate_ops().bitmap_set == 0


def test_chunk_seconds_in_queue_order(stats):
    assert np.allclose(stats.chunk_seconds(), [0.2, 0.1, 0.5])


def test_simulated_schedule_consistency(stats):
    sched = stats.simulated_schedule()
    assert sched.num_workers == 2
    assert sched.total_work == pytest.approx(0.8)
    # Greedy dynamic: A takes 0.2; B takes 0.1 then (earliest free) 0.5.
    assert sched.makespan == pytest.approx(0.6)
    assert sched.makespan <= stats.busy_seconds


def test_empty_stats():
    s = ParallelStats(2, 2, "fork", 0.0, [])
    assert s.imbalance == 0.0
    assert s.edges_per_sec == 0.0
    assert s.per_worker() == []
    assert "workers" in s.format()


def test_format_mentions_fallback():
    s = ParallelStats(
        4, 1, "in-process", 0.1,
        [ChunkStat(1, 0, 5, 10, 0.1)],
        fallback_reason="shared-memory pool setup failed: test",
    )
    text = s.format()
    assert "fallback" in text
    assert "1 effective / 4 requested" in text


def test_format_lists_every_worker(stats):
    text = stats.format()
    assert "worker 100" in text and "worker 200" in text
    assert "imbalance" in text
