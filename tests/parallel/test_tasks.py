"""Unit tests for task construction."""

import numpy as np
import pytest

from repro.kernels.costmodel import upper_edges
from repro.parallel.tasks import (
    DEFAULT_TASK_SIZE,
    coarse_grained_tasks,
    fine_grained_chunks,
)


def test_fine_grained_boundaries():
    starts = fine_grained_chunks(10, 4)
    assert starts.tolist() == [0, 4, 8]


def test_fine_grained_exact_multiple():
    assert fine_grained_chunks(8, 4).tolist() == [0, 4]


def test_fine_grained_single_unit_tasks():
    assert len(fine_grained_chunks(5, 1)) == 5


def test_fine_grained_empty():
    assert len(fine_grained_chunks(0, 8)) == 0


def test_fine_grained_invalid_size():
    with pytest.raises(ValueError):
        fine_grained_chunks(10, 0)


def test_default_task_size_positive():
    assert DEFAULT_TASK_SIZE >= 1


def test_coarse_grained_maps_to_sources(medium_graph):
    es = upper_edges(medium_graph)
    tasks = coarse_grained_tasks(medium_graph, es.u)
    assert np.array_equal(tasks, es.u)
    # Grouping work by task is a bincount over vertex ids.
    per_vertex = np.bincount(tasks, minlength=medium_graph.num_vertices)
    assert per_vertex.sum() == len(es)


def test_coarse_grained_rejects_bad_sources(medium_graph):
    with pytest.raises(ValueError):
        coarse_grained_tasks(medium_graph, np.array([medium_graph.num_vertices]))
