"""Unit tests for the amortized FindSrc lookup (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import csr_from_pairs
from repro.graph.generators import chung_lu_graph
from repro.parallel.findsrc import SourceFinder
from repro.types import OpCounts
from tests.strategies import csr_graphs


def test_sequential_scan_matches(small_graph):
    sf = SourceFinder(small_graph)
    src = small_graph.edge_sources()
    for eo in range(small_graph.num_directed_edges):
        assert sf.find(eo) == src[eo]


def test_random_access_matches(medium_graph):
    sf = SourceFinder(medium_graph)
    src = medium_graph.edge_sources()
    rng = np.random.default_rng(0)
    for eo in rng.integers(0, medium_graph.num_directed_edges, 300):
        assert sf.find(int(eo)) == src[eo]


def test_zero_degree_vertices():
    g = csr_from_pairs([(0, 2), (2, 5), (5, 6)], num_vertices=8)
    assert (g.degrees == 0).sum() >= 3
    sf = SourceFinder(g)
    src = g.edge_sources()
    for eo in range(g.num_directed_edges):
        assert sf.find(eo) == src[eo]
    # backwards too
    sf2 = SourceFinder(g)
    for eo in reversed(range(g.num_directed_edges)):
        assert sf2.find(eo) == src[eo]


def test_amortization_on_scans():
    """Scanning a long run of same-source offsets must not re-search."""
    g = chung_lu_graph(400, 1500, seed=3)
    c = OpCounts()
    sf = SourceFinder(g, counts=c)
    for eo in range(g.num_directed_edges):
        sf.find(eo)
    # One search per vertex transition at most — far fewer steps than
    # searching every edge independently.
    naive_bound = g.num_directed_edges * np.ceil(np.log2(g.num_vertices))
    assert c.binary_steps < naive_bound / 4


def test_reset(medium_graph):
    sf = SourceFinder(medium_graph)
    last = medium_graph.num_directed_edges - 1
    sf.find(last)
    sf.reset()
    assert sf.find(0) == medium_graph.edge_sources()[0]


@settings(max_examples=40, deadline=None)
@given(graph=csr_graphs(max_vertex=25, max_size=100), data=st.data())
def test_find_matches_edge_sources_property(graph, data):
    """On arbitrary strategy graphs, any access pattern — including the
    shard router's jumps between shard-local offset runs — resolves the
    same source as the materialized edge_sources vector."""
    m = graph.num_directed_edges
    if m == 0:
        return
    pattern = data.draw(
        st.lists(st.integers(0, m - 1), min_size=1, max_size=60)
    )
    sf = SourceFinder(graph)
    src = graph.edge_sources()
    for eo in pattern:
        assert sf.find(eo) == src[eo]
