"""Unit tests for the shared-memory multiprocessing execution path."""

import multiprocessing as mp
import warnings

import numpy as np
import pytest

from repro.graph.build import csr_from_pairs
from repro.kernels.batch import count_all_edges_bitmap, count_all_edges_matmul
from repro.parallel.threadpool import (
    ParallelCounter,
    _vertex_chunks,
    count_all_edges_parallel,
    count_vertex_range,
    resolve_start_method,
)
from repro.types import OpCounts

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]


def test_vertex_range_counts(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    n = medium_graph.num_vertices
    eo, vals = count_vertex_range(medium_graph, 0, n)
    assert np.array_equal(ref[eo], vals)


def test_vertex_range_partition_is_complete(medium_graph):
    n = medium_graph.num_vertices
    mid = n // 2
    eo1, _ = count_vertex_range(medium_graph, 0, mid)
    eo2, _ = count_vertex_range(medium_graph, mid, n)
    src = medium_graph.edge_sources()
    upper = np.flatnonzero(src < medium_graph.dst)
    assert np.array_equal(np.sort(np.concatenate([eo1, eo2])), upper)


def test_vertex_range_empty_graph():
    g = csr_from_pairs([], num_vertices=5)
    eo, vals = count_vertex_range(g, 0, 5)
    assert len(eo) == 0 and len(vals) == 0


def test_vertex_range_isolated_vertices():
    # Vertices 2 and 4 are isolated; the rest form a triangle plus a tail.
    g = csr_from_pairs([(0, 1), (1, 3), (0, 3), (3, 5)], num_vertices=6)
    ref = count_all_edges_bitmap(g)
    eo, vals = count_vertex_range(g, 0, 6)
    assert np.array_equal(ref[eo], vals)


def test_vertex_range_charges_op_counts(medium_graph):
    ops = OpCounts()
    count_vertex_range(medium_graph, 0, medium_graph.num_vertices, ops)
    assert ops.bitmap_set > 0
    assert ops.bitmap_set == ops.bitmap_clear
    assert ops.bitmap_test > 0
    assert ops.rand_words == ops.bitmap_test
    # Every computed count contributes its matches.
    ref = count_all_edges_matmul(medium_graph)
    src = medium_graph.edge_sources()
    assert ops.matches == int(ref[src < medium_graph.dst].sum())


def test_parallel_matches_reference_single_worker(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    got = count_all_edges_parallel(medium_graph, num_workers=1)
    assert np.array_equal(ref, got)


@pytest.mark.parametrize("method", START_METHODS)
def test_parallel_matches_bitmap_under_both_start_methods(medium_graph, method):
    """Acceptance: counts identical to the bitmap path with >1 worker under
    fork AND spawn — the spawn leg exercises the shared-memory attach."""
    ref = count_all_edges_bitmap(medium_graph)
    got, stats = count_all_edges_parallel(
        medium_graph, num_workers=2, start_method=method, return_stats=True
    )
    assert np.array_equal(ref, got)
    assert stats.effective_workers == 2
    assert stats.start_method == method
    assert stats.fallback_reason is None


def test_parallel_empty_graph():
    g = csr_from_pairs([], num_vertices=3)
    assert len(count_all_edges_parallel(g, num_workers=2)) == 0


def test_persistent_pool_reuses_workers(medium_graph):
    """Acceptance: a second request is served by the same worker processes."""
    ref = count_all_edges_bitmap(medium_graph)
    with ParallelCounter(medium_graph, num_workers=2) as pc:
        assert pc.is_parallel
        pids_before = pc.worker_pids()
        assert len(pids_before) == 2
        c1, s1 = pc.count_all_edges(with_stats=True)
        c2, s2 = pc.count_all_edges(with_stats=True)
        assert pc.worker_pids() == pids_before  # no re-creation
        assert np.array_equal(c1, ref) and np.array_equal(c2, ref)
        for stats in (s1, s2):
            assert set(c.worker_pid for c in stats.chunk_stats) <= set(pids_before)


def test_persistent_pool_chunks_per_worker_override(medium_graph):
    ref = count_all_edges_bitmap(medium_graph)
    with ParallelCounter(medium_graph, num_workers=2, chunks_per_worker=2) as pc:
        c, s = pc.count_all_edges(chunks_per_worker=8, with_stats=True)
        assert np.array_equal(c, ref)
        assert s.num_chunks > 2  # over-decomposition took effect


def test_closed_counter_rejects_requests(small_graph):
    pc = ParallelCounter(small_graph, num_workers=1)
    pc.start()
    pc.close()
    with pytest.raises(RuntimeError, match="closed"):
        pc.count_all_edges()


def test_fallback_emits_warning(medium_graph, monkeypatch):
    """When the shared-memory pool cannot start, the backend must degrade
    loudly: a RuntimeWarning plus telemetry reporting 1 effective worker."""
    import repro.parallel.threadpool as tp

    def boom(graph):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(tp, "SharedGraph", boom)
    ref = count_all_edges_matmul(medium_graph)
    with pytest.warns(RuntimeWarning, match="sequentially"):
        got, stats = count_all_edges_parallel(
            medium_graph, num_workers=2, return_stats=True
        )
    assert np.array_equal(ref, got)
    assert stats.effective_workers == 1
    assert stats.requested_workers == 2
    assert "shared-memory pool setup failed" in stats.fallback_reason


def test_explicit_single_worker_does_not_warn(medium_graph):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        count_all_edges_parallel(medium_graph, num_workers=1)


def test_resolve_start_method_env(monkeypatch):
    monkeypatch.setenv("MP_START_METHOD", "spawn")
    assert resolve_start_method() == "spawn"
    # An explicit argument wins over the environment.
    if "fork" in mp.get_all_start_methods():
        assert resolve_start_method("fork") == "fork"


def test_resolve_start_method_rejects_unknown(monkeypatch):
    monkeypatch.delenv("MP_START_METHOD", raising=False)
    with pytest.raises(ValueError, match="not available"):
        resolve_start_method("not-a-method")
    monkeypatch.setenv("MP_START_METHOD", "bogus")
    with pytest.raises(ValueError, match="not available"):
        resolve_start_method()


def test_vertex_chunks_cover_everything(medium_graph):
    chunks = _vertex_chunks(medium_graph, 7)
    assert chunks[0][0] == 0
    assert chunks[-1][1] == medium_graph.num_vertices
    for (a, b), (c, d) in zip(chunks, chunks[1:]):
        assert b == c and a < b


def test_vertex_chunks_balanced_by_volume(medium_graph):
    chunks = _vertex_chunks(medium_graph, 4)
    volumes = [
        int(medium_graph.offsets[hi] - medium_graph.offsets[lo]) for lo, hi in chunks
    ]
    assert max(volumes) < 3 * (sum(volumes) / len(volumes) + 1)


def test_vertex_chunks_empty_graph():
    g = csr_from_pairs([], num_vertices=0)
    assert _vertex_chunks(g, 4) == []


def test_vertex_chunks_edgeless_vertices():
    g = csr_from_pairs([], num_vertices=3)
    chunks = _vertex_chunks(g, 4)
    assert chunks and chunks[0][0] == 0 and chunks[-1][1] == 3


def test_vertex_chunks_more_chunks_than_vertices(small_graph):
    n = small_graph.num_vertices
    chunks = _vertex_chunks(small_graph, 10 * n)
    assert len(chunks) <= n
    assert chunks[0][0] == 0 and chunks[-1][1] == n
    covered = sum(hi - lo for lo, hi in chunks)
    assert covered == n


def test_vertex_chunks_isolated_vertices():
    # Isolated vertices share offsets; chunk boundaries must stay monotone
    # and still cover every vertex exactly once.
    pairs = [(0, 9), (1, 9), (5, 9)]
    g = csr_from_pairs(pairs, num_vertices=12)
    chunks = _vertex_chunks(g, 5)
    assert chunks[0][0] == 0 and chunks[-1][1] == 12
    covered = sum(hi - lo for lo, hi in chunks)
    assert covered == 12


@pytest.mark.parametrize("method", START_METHODS)
def test_parallel_isolated_vertices_cross_check(method):
    pairs = [(0, 9), (1, 9), (5, 9), (0, 1)]
    g = csr_from_pairs(pairs, num_vertices=12)
    ref = count_all_edges_bitmap(g)
    got = count_all_edges_parallel(g, num_workers=2, start_method=method)
    assert np.array_equal(ref, got)


def test_more_workers_than_vertices(small_graph):
    ref = count_all_edges_bitmap(small_graph)
    got = count_all_edges_parallel(small_graph, num_workers=2, chunks_per_worker=16)
    assert np.array_equal(ref, got)


def test_stats_telemetry_shape(medium_graph):
    _, stats = count_all_edges_parallel(
        medium_graph, num_workers=2, return_stats=True
    )
    src = medium_graph.edge_sources()
    upper = int(np.count_nonzero(src < medium_graph.dst))
    assert stats.total_edges == upper
    assert stats.num_chunks == len(stats.chunk_stats)
    assert stats.wall_seconds > 0
    assert all(c.seconds >= 0 for c in stats.chunk_stats)
    sched = stats.simulated_schedule()
    assert sched.num_chunks == stats.num_chunks
    assert sched.makespan <= stats.busy_seconds + 1e-9
