"""Unit tests for the real multiprocessing execution path."""

import numpy as np
import pytest

from repro.graph.build import csr_from_pairs
from repro.kernels.batch import count_all_edges_matmul
from repro.parallel.threadpool import (
    _vertex_chunks,
    count_all_edges_parallel,
    count_vertex_range,
)


def test_vertex_range_counts(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    n = medium_graph.num_vertices
    eo, vals = count_vertex_range(medium_graph, 0, n)
    assert np.array_equal(ref[eo], vals)


def test_vertex_range_partition_is_complete(medium_graph):
    n = medium_graph.num_vertices
    mid = n // 2
    eo1, _ = count_vertex_range(medium_graph, 0, mid)
    eo2, _ = count_vertex_range(medium_graph, mid, n)
    src = medium_graph.edge_sources()
    upper = np.flatnonzero(src < medium_graph.dst)
    assert np.array_equal(np.sort(np.concatenate([eo1, eo2])), upper)


def test_parallel_matches_reference_single_worker(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    got = count_all_edges_parallel(medium_graph, num_workers=1)
    assert np.array_equal(ref, got)


def test_parallel_matches_reference_two_workers(medium_graph):
    ref = count_all_edges_matmul(medium_graph)
    got = count_all_edges_parallel(medium_graph, num_workers=2)
    assert np.array_equal(ref, got)


def test_parallel_empty_graph():
    g = csr_from_pairs([], num_vertices=3)
    assert len(count_all_edges_parallel(g, num_workers=2)) == 0


def test_vertex_chunks_cover_everything(medium_graph):
    chunks = _vertex_chunks(medium_graph, 7)
    assert chunks[0][0] == 0
    assert chunks[-1][1] == medium_graph.num_vertices
    for (a, b), (c, d) in zip(chunks, chunks[1:]):
        assert b == c and a < b


def test_vertex_chunks_balanced_by_volume(medium_graph):
    chunks = _vertex_chunks(medium_graph, 4)
    volumes = [
        int(medium_graph.offsets[hi] - medium_graph.offsets[lo]) for lo, hi in chunks
    ]
    assert max(volumes) < 3 * (sum(volumes) / len(volumes) + 1)
