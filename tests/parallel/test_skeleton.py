"""Tests for the Algorithm 3 parallel-skeleton executor."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.reorder import reorder_graph
from repro.kernels.batch import count_all_edges_matmul, count_all_edges_merge
from repro.parallel.skeleton import run_parallel_skeleton
from tests.strategies import csr_graphs


@pytest.fixture
def expected(medium_graph):
    return count_all_edges_matmul(medium_graph)


@pytest.mark.parametrize("algorithm", ["bmp", "mps"])
def test_skeleton_exact(medium_graph, expected, algorithm):
    stats = run_parallel_skeleton(medium_graph, algorithm, num_threads=3)
    assert np.array_equal(stats.counts, expected)


@pytest.mark.parametrize("task_size", [1, 7, 64, 100000])
def test_decomposition_invariance_task_size(medium_graph, expected, task_size):
    """Counts are identical for any task granularity (paper §4)."""
    stats = run_parallel_skeleton(medium_graph, "bmp", task_size=task_size)
    assert np.array_equal(stats.counts, expected)


@pytest.mark.parametrize("threads", [1, 2, 5, 16])
@pytest.mark.parametrize("schedule", ["round-robin", "blocked"])
def test_decomposition_invariance_threads(medium_graph, expected, threads, schedule):
    stats = run_parallel_skeleton(
        medium_graph, "bmp", num_threads=threads, schedule=schedule, task_size=32
    )
    assert np.array_equal(stats.counts, expected)


def test_bitmap_rebuild_amortization(medium_graph):
    """Scanning in CSR order, a thread rebuilds ~once per source vertex;
    finer interleaving forces more rebuilds — the |T| trade-off."""
    coarse = run_parallel_skeleton(medium_graph, "bmp", task_size=10_000, num_threads=2)
    fine = run_parallel_skeleton(medium_graph, "bmp", task_size=4, num_threads=8)
    nonzero = int((medium_graph.degrees > 0).sum())
    assert coarse.bitmap_builds <= nonzero + 2
    assert fine.bitmap_builds >= coarse.bitmap_builds


def test_skeleton_on_reordered_graph(medium_graph):
    rr = reorder_graph(medium_graph)
    stats = run_parallel_skeleton(rr.graph, "bmp", num_threads=4)
    assert stats.counts.sum() == count_all_edges_matmul(medium_graph).sum()


def test_skeleton_validation(medium_graph):
    with pytest.raises(ValueError):
        run_parallel_skeleton(medium_graph, "quantum")
    with pytest.raises(ValueError):
        run_parallel_skeleton(medium_graph, "bmp", num_threads=0)
    with pytest.raises(ValueError):
        run_parallel_skeleton(medium_graph, "bmp", schedule="magic")


def test_stats_fields(medium_graph):
    stats = run_parallel_skeleton(medium_graph, "bmp", task_size=64, num_threads=4)
    assert stats.threads == 4
    assert stats.tasks == -(-medium_graph.num_directed_edges // 64)
    assert stats.op_counts.bitmap_test > 0


@settings(max_examples=25, deadline=None)
@given(graph=csr_graphs(max_vertex=20, max_size=80))
def test_skeleton_bit_equal_merge_property(graph):
    """Decomposition invariance on arbitrary strategy graphs: the modeled
    dynamic schedule produces reference counts for both structures."""
    expected = count_all_edges_merge(graph)
    for algorithm in ("bmp", "mps"):
        stats = run_parallel_skeleton(
            graph, algorithm, num_threads=3, task_size=5
        )
        assert np.array_equal(stats.counts, expected)
